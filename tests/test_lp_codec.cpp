// Bit-level tests of the LP codec: reference decode semantics, code-table
// properties (monotonicity, uniqueness, symmetry), quantizer optimality,
// and agreement between table-based and log-rounded encoders.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <set>

#include "core/lp_codec.h"
#include "core/lp_config.h"
#include "core/lp_format.h"
#include "util/rng.h"

namespace lp {
namespace {

/// Inputs that stress every decision the quantizer makes: exact
/// representable values, the floats straddling each inter-value midpoint
/// (ties), signed zero, denormals, the float extremes, non-finite values,
/// and random data at several magnitude scales.
std::vector<float> batch_probe_inputs(const std::vector<double>& vals,
                                      std::uint64_t seed) {
  std::vector<float> xs;
  xs.reserve(vals.size() * 4 + 1200);
  const float inf = std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    xs.push_back(static_cast<float>(vals[i]));
    if (i + 1 < vals.size()) {
      const float m = static_cast<float>(vals[i] + (vals[i + 1] - vals[i]) * 0.5);
      xs.push_back(m);
      xs.push_back(std::nextafterf(m, -inf));
      xs.push_back(std::nextafterf(m, inf));
    }
  }
  for (float s : {0.0F, -0.0F, std::numeric_limits<float>::denorm_min(),
                  -std::numeric_limits<float>::denorm_min(),
                  std::numeric_limits<float>::min(),
                  std::numeric_limits<float>::max(),
                  -std::numeric_limits<float>::max(), inf, -inf,
                  std::numeric_limits<float>::quiet_NaN()}) {
    xs.push_back(s);
  }
  Rng rng(seed);
  for (int scale = -8; scale <= 8; scale += 4) {
    for (int i = 0; i < 200; ++i) {
      xs.push_back(static_cast<float>(std::ldexp(rng.gaussian(), scale)));
    }
  }
  return xs;
}

/// Bitwise float equality with NaN == NaN.
::testing::AssertionResult same_float(float a, float b) {
  if (std::isnan(a) && std::isnan(b)) return ::testing::AssertionSuccess();
  if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " vs " << b;
}

TEST(LPConfig, ValidationAcceptsPaperSearchSpace) {
  for (int n = 3; n <= 8; ++n) {
    for (int es = 0; es <= n - 3; ++es) {
      for (int rs = 2; rs <= n - 1; ++rs) {
        LPConfig c{n, es, rs, 0.0};
        EXPECT_TRUE(c.valid()) << c.to_string();
      }
    }
  }
}

TEST(LPConfig, ValidationRejectsBadFields) {
  EXPECT_THROW((LPConfig{1, 0, 1, 0.0}.validate()), std::invalid_argument);
  EXPECT_THROW((LPConfig{8, 6, 7, 0.0}.validate()), std::invalid_argument);
  EXPECT_THROW((LPConfig{4, 3, 3, 0.0}.validate()), std::invalid_argument);  // es > n-3
  EXPECT_THROW((LPConfig{8, 2, 0, 0.0}.validate()), std::invalid_argument);  // rs < 1
  EXPECT_THROW((LPConfig{8, 2, 8, 0.0}.validate()), std::invalid_argument);  // rs > n-1
}

TEST(LPDecode, SpecialCodes) {
  const LPConfig cfg{8, 2, 5, 0.0};
  EXPECT_EQ(decode_value(0, cfg), 0.0);
  EXPECT_TRUE(std::isnan(decode_value(nar_code(cfg), cfg)));
  EXPECT_EQ(nar_code(cfg), 0x80U);
}

// Hand-checked example: n=8, es=2, rs=3, sf=0.
// Code 0b0_110_10_11: sign 0; run "11" then terminator "0" (m=2 < rs) -> k=1,
// consumed 3; tail = "1011" (4 bits); ulfx = 0b1011 * 2^(es-4) = 11/4 = 2.75;
// scale = 4*1 + 2.75 = 6.75; value = 2^6.75.
TEST(LPDecode, HandCheckedExample) {
  const LPConfig cfg{8, 2, 3, 0.0};
  const auto f = decode_fields(0b01101011U, cfg);
  EXPECT_EQ(f.sign, 0);
  EXPECT_EQ(f.k, 1);
  EXPECT_EQ(f.regime_consumed, 3);
  EXPECT_EQ(f.tail_len, 4);
  EXPECT_EQ(f.tail_bits, 0b1011U);
  EXPECT_DOUBLE_EQ(f.ulfx, 2.75);
  EXPECT_DOUBLE_EQ(f.scale, 6.75);
  EXPECT_DOUBLE_EQ(decode_value(0b01101011U, cfg), std::exp2(6.75));
}

// Regime cap: with rs=2 the pattern "11" is a complete regime (no
// terminator) and the next bits belong to the tail even if they repeat.
TEST(LPDecode, RegimeCapStopsRun) {
  const LPConfig cfg{8, 2, 2, 0.0};
  const auto f = decode_fields(0b01111111U, cfg);
  EXPECT_EQ(f.k, 1);
  EXPECT_EQ(f.regime_consumed, 2);
  EXPECT_EQ(f.tail_len, 5);
  EXPECT_EQ(f.tail_bits, 0b11111U);
}

// Scale factor shifts every value by exactly 2^-sf.
TEST(LPDecode, ScaleFactorShiftsValues) {
  const LPConfig base{8, 2, 5, 0.0};
  const LPConfig biased{8, 2, 5, 3.5};
  for (std::uint32_t c = 1; c < 256; ++c) {
    if (c == nar_code(base)) continue;
    const double v0 = decode_value(c, base);
    const double v1 = decode_value(c, biased);
    EXPECT_NEAR(v1, v0 * std::exp2(-3.5), std::fabs(v0) * 1e-12) << "code " << c;
  }
}

TEST(LPDecode, NegativeCodesAreTwosComplement) {
  const LPConfig cfg{8, 1, 4, 0.0};
  for (std::uint32_t c = 1; c < 128; ++c) {  // positive codes
    const double pos = decode_value(c, cfg);
    const std::uint32_t neg = (~c + 1U) & 0xFFU;
    const double negv = decode_value(neg, cfg);
    EXPECT_DOUBLE_EQ(negv, -pos) << "code " << c;
  }
}

struct GridParam {
  int n;
  int es;
  int rs;
  double sf;
};

class LPCodecGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(LPCodecGrid, PositiveCodesStrictlyMonotone) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  double prev = 0.0;
  for (std::uint32_t c = 1; c < (1U << (p.n - 1)); ++c) {
    const double v = decode_value(c, cfg);
    EXPECT_GT(v, prev) << "code " << c << " cfg " << cfg.to_string();
    prev = v;
  }
}

TEST_P(LPCodecGrid, AllValuesDistinct) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  std::set<double> seen(table.values().begin(), table.values().end());
  EXPECT_EQ(seen.size(), table.values().size()) << cfg.to_string();
  EXPECT_EQ(table.values().size(), cfg.code_count() - 1);  // all codes minus NaR
}

TEST_P(LPCodecGrid, QuantizeIsIdempotentOnRepresentables) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  for (double v : table.values()) {
    EXPECT_EQ(table.quantize(v), v) << cfg.to_string();
  }
}

TEST_P(LPCodecGrid, QuantizeReturnsNearestValue) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  const auto& vals = table.values();
  // Probe midpoints and asymmetric offsets between adjacent values.
  for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
    const double lo = vals[i];
    const double hi = vals[i + 1];
    const double just_below_mid = lo + (hi - lo) * 0.49;
    const double just_above_mid = lo + (hi - lo) * 0.51;
    EXPECT_EQ(table.quantize(just_below_mid), lo);
    EXPECT_EQ(table.quantize(just_above_mid), hi);
  }
}

TEST_P(LPCodecGrid, QuantizeSaturates) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  EXPECT_EQ(table.quantize(table.max_value() * 64.0), table.max_value());
  EXPECT_EQ(table.quantize(-table.max_value() * 64.0), -table.max_value());
}

TEST_P(LPCodecGrid, RoundTripCodeValueCode) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  for (std::size_t i = 0; i < table.values().size(); ++i) {
    const double v = table.values()[i];
    EXPECT_EQ(table.quantize_code(v), table.codes()[i]);
  }
}

TEST_P(LPCodecGrid, LogRoundedEncoderHitsRepresentablesExactly) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  for (std::size_t i = 0; i < table.values().size(); ++i) {
    const double v = table.values()[i];
    if (v == 0.0) continue;  // log encoder maps 0 specially
    EXPECT_EQ(encode_log_rounded(v, cfg), table.codes()[i])
        << "value " << v << " cfg " << cfg.to_string();
  }
}

TEST(BatchQuantize, BitExactAcrossPaperSearchSpace) {
  // Every valid (n, es, rs) of the paper's width range (2..8 bits), at two
  // scale-factor biases, must quantize batched exactly as scalar.
  for (int n = 2; n <= 8; ++n) {
    for (int es = 0; es <= (n >= 3 ? n - 3 : 0); ++es) {
      for (int rs = 1; rs <= n - 1; ++rs) {
        for (const double sf : {0.0, 0.31}) {
          const LPConfig cfg{n, es, rs, sf};
          const CodeTable table(cfg);
          const std::vector<float> xs =
              batch_probe_inputs(table.values(), 1000U + static_cast<unsigned>(n));
          std::vector<float> batch = xs;
          (void)table.quantize_batch(batch);
          for (std::size_t i = 0; i < xs.size(); ++i) {
            ASSERT_TRUE(same_float(batch[i],
                                   static_cast<float>(table.quantize(xs[i]))))
                << "input " << xs[i] << " cfg " << cfg.to_string();
          }
        }
      }
    }
  }
}

TEST_P(LPCodecGrid, BatchQuantizeBitExactWithScalar) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  const std::vector<float> xs = batch_probe_inputs(table.values(), 99);
  std::vector<float> batch = xs;
  (void)table.quantize_batch(batch);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto ref = static_cast<float>(table.quantize(xs[i]));
    EXPECT_TRUE(same_float(batch[i], ref))
        << "input " << xs[i] << " cfg " << cfg.to_string();
  }
}

TEST_P(LPCodecGrid, EncodeBatchMatchesQuantizeCode) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  const std::vector<float> xs = batch_probe_inputs(table.values(), 44);
  std::vector<std::uint32_t> codes(xs.size());
  table.encode_batch(xs, codes);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(codes[i], table.quantize_code(xs[i]))
        << "input " << xs[i] << " cfg " << cfg.to_string();
  }
}

TEST_P(LPCodecGrid, DecodeBatchMatchesDecodeValue) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const CodeTable table(cfg);
  std::vector<std::uint32_t> codes(cfg.code_count());
  for (std::uint32_t c = 0; c < cfg.code_count(); ++c) codes[c] = c;
  std::vector<float> decoded(codes.size());
  table.decode_batch(codes, decoded);
  for (std::uint32_t c = 0; c < cfg.code_count(); ++c) {
    EXPECT_TRUE(same_float(decoded[c],
                           static_cast<float>(decode_value(c, cfg))))
        << "code " << c << " cfg " << cfg.to_string();
  }
}

TEST_P(LPCodecGrid, QuantizeSpanRmseMatchesScalarReference) {
  const auto p = GetParam();
  const LPConfig cfg{p.n, p.es, p.rs, p.sf};
  const LPFormat fmt(cfg);
  std::vector<float> xs;
  Rng rng(7);
  for (int i = 0; i < 2048; ++i) {
    xs.push_back(static_cast<float>(rng.gaussian(0.0, 2.0)));
  }
  // Scalar reference, accumulated exactly as the seed implementation did.
  double se = 0.0;
  std::vector<float> scalar = xs;
  for (float& x : scalar) {
    const double q = fmt.quantize(x);
    const double d = static_cast<double>(x) - q;
    se += d * d;
    x = static_cast<float>(q);
  }
  const double ref = std::sqrt(se / static_cast<double>(xs.size()));
  std::vector<float> batch = xs;
  EXPECT_EQ(quantize_span(batch, fmt), ref) << cfg.to_string();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_TRUE(same_float(batch[i], scalar[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LPCodecGrid,
    ::testing::Values(
        GridParam{3, 0, 1, 0.0}, GridParam{3, 0, 2, 0.0},
        GridParam{4, 0, 2, 0.0}, GridParam{4, 1, 2, 0.0}, GridParam{4, 1, 3, 0.0},
        GridParam{5, 0, 3, 0.0}, GridParam{5, 2, 2, 0.0},
        GridParam{6, 1, 4, 0.0}, GridParam{6, 3, 2, 0.25},
        GridParam{7, 2, 3, -1.5}, GridParam{7, 0, 6, 0.0},
        GridParam{8, 0, 2, 0.0}, GridParam{8, 1, 3, 0.0}, GridParam{8, 2, 5, 0.0},
        GridParam{8, 3, 4, 2.0}, GridParam{8, 4, 2, 0.0}, GridParam{8, 5, 2, 0.0},
        GridParam{8, 2, 7, -0.75}, GridParam{2, 0, 1, 0.0},
        GridParam{10, 3, 6, 0.5}, GridParam{12, 2, 9, 0.0}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      const auto& p = info.param;
      std::string s = "n" + std::to_string(p.n) + "_es" + std::to_string(p.es) +
                      "_rs" + std::to_string(p.rs);
      s += (p.sf == 0.0) ? "_sf0" : "_sfX";
      return s + "_" + std::to_string(info.index);
    });

TEST(LPCodeTable, MinPositiveAndMaxValueAreConsistent) {
  const LPConfig cfg{8, 2, 5, 0.0};
  const CodeTable table(cfg);
  EXPECT_GT(table.min_positive(), 0.0);
  EXPECT_GT(table.max_value(), 1.0);
  // max scale = 2^es*(rs-1) + (2^es - ulp): just under 2^es*rs
  EXPECT_LT(table.max_value(), std::exp2(4.0 * 5));
  EXPECT_GE(table.max_value(), std::exp2(4.0 * 4));
}

TEST(LPCodeTable, DynamicRangeDoublesWithEs) {
  // Each es increment should (roughly) square the max value: 2^es*k scaling.
  const CodeTable t0(LPConfig{8, 0, 4, 0.0});
  const CodeTable t1(LPConfig{8, 1, 4, 0.0});
  const CodeTable t2(LPConfig{8, 2, 4, 0.0});
  EXPECT_GT(t1.max_value(), t0.max_value());
  EXPECT_GT(t2.max_value(), t1.max_value());
  const double r1 = std::log2(t1.max_value()) / std::log2(t0.max_value());
  EXPECT_NEAR(r1, 2.0, 0.5);
}

TEST(LPCodeTable, TaperingFollowsRegimeCap) {
  // Larger rs widens the range; smaller rs concentrates codes near 2^-sf.
  const CodeTable wide(LPConfig{8, 1, 7, 0.0});
  const CodeTable narrow(LPConfig{8, 1, 2, 0.0});
  EXPECT_GT(wide.max_value(), narrow.max_value());
  EXPECT_LT(wide.min_positive(), narrow.min_positive());
}

TEST(LPFormat, NameAndBits) {
  const LPFormat fmt(LPConfig{6, 1, 3, 0.5});
  EXPECT_EQ(fmt.bits(), 6);
  EXPECT_NE(fmt.name().find("LP<6,1,3"), std::string::npos);
}

TEST(LPEncodeLogRounded, ZeroAndNonFinite) {
  const LPConfig cfg{8, 2, 5, 0.0};
  EXPECT_EQ(encode_log_rounded(0.0, cfg), 0U);
  EXPECT_EQ(encode_log_rounded(std::numeric_limits<double>::infinity(), cfg),
            nar_code(cfg));
  EXPECT_EQ(encode_log_rounded(std::nan(""), cfg), nar_code(cfg));
}

TEST(LPEncodeLogRounded, SaturatesOutOfRange) {
  const LPConfig cfg{8, 2, 5, 0.0};
  const CodeTable table(cfg);
  const double big = table.max_value() * 1e6;
  EXPECT_EQ(decode_value(encode_log_rounded(big, cfg), cfg), table.max_value());
  const double tiny = table.min_positive() * 1e-6;
  EXPECT_EQ(decode_value(encode_log_rounded(tiny, cfg), cfg),
            table.min_positive());
}

}  // namespace
}  // namespace lp
