// Tensor and op tests: shape contracts, conv/matmul reference checks,
// pooling, softmax/layernorm invariants.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace lp {
namespace {

TEST(Tensor, ShapeAndAccessors) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2U);
  t.at2(1, 2) = 5.0F;
  EXPECT_EQ(t[5], 5.0F);
  EXPECT_THROW(t.at2(2, 0), std::invalid_argument);
  EXPECT_THROW(t.at2(0, 3), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r[7], 7.0F);
  EXPECT_THROW(t.reshaped({5, 2}), std::invalid_argument);
}

TEST(Tensor, ConstructorRejectsMismatchedData) {
  EXPECT_THROW(Tensor({2, 2}, {1.0F, 2.0F}), std::invalid_argument);
}

TEST(MatMul, AgainstHandComputed) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0F);
}

TEST(MatMul, NtMatchesExplicitTranspose) {
  const Tensor a({2, 3}, {1, -2, 3, 0.5F, 4, -1});
  const Tensor bt({4, 3}, {1, 0, 2, -1, 3, 1, 0.5F, 0.5F, 0.5F, 2, 2, 2});
  Tensor b({3, 4});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) b.at2(j, i) = bt.at2(i, j);
  }
  const Tensor c1 = matmul(a, b);
  const Tensor c2 = matmul_nt(a, bt);
  for (int i = 0; i < c1.numel(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5F);
}

// The two matmul layouts must round identically (both accumulate each
// output in double, ascending-k): same logical layer, same bits, even when
// element magnitudes span ~60 decades and cancellation is severe.
TEST(MatMul, NtBitIdenticalAdversarialMagnitudes) {
  constexpr std::int64_t m = 9;
  constexpr std::int64_t k = 37;
  constexpr std::int64_t n = 11;
  Tensor a({m, k});
  Tensor b({k, n});
  Tensor bt({n, k});
  Tensor bias({n});
  Rng rng(17);
  auto adversarial = [&rng]() -> float {
    // Magnitudes from 1e-30 to 1e30, signs mixed, exact zeros sprinkled in
    // (the kernels skip zero A entries — the skip must match too).
    if (rng.next_u64() % 8 == 0) return 0.0F;
    const auto exp10 = static_cast<int>(rng.next_u64() % 61) - 30;
    const float sign = (rng.next_u64() % 2 == 0) ? 1.0F : -1.0F;
    return sign * static_cast<float>(std::pow(10.0, exp10) *
                                     (0.5 + 0.5 * rng.uniform()));
  };
  for (float& v : a.data()) v = adversarial();
  for (float& v : bias.data()) v = adversarial();
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float v = adversarial();
      b.at2(p, j) = v;
      bt.at2(j, p) = v;
    }
  }
  const Tensor c1 = matmul(a, b, &bias);
  const Tensor c2 = matmul_nt(a, bt, &bias);
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(c1[i]),
              std::bit_cast<std::uint32_t>(c2[i]))
        << "element " << i << ": " << c1[i] << " vs " << c2[i];
  }
}

// Same equivalence above the parallel threshold, where both layouts run
// row-blocked on the thread pool.
TEST(MatMul, NtBitIdenticalOnPooledSizes) {
  constexpr std::int64_t d = 96;  // 96^3 ≈ 885k flops, well above threshold
  Tensor a({d, d});
  Tensor b({d, d});
  Tensor bt({d, d});
  Rng rng(23);
  for (float& v : a.data()) v = static_cast<float>(rng.gaussian(0.0, 100.0));
  for (std::int64_t p = 0; p < d; ++p) {
    for (std::int64_t j = 0; j < d; ++j) {
      const float v = static_cast<float>(rng.gaussian(0.0, 1e-3));
      b.at2(p, j) = v;
      bt.at2(j, p) = v;
    }
  }
  const Tensor c1 = matmul(a, b);
  const Tensor c2 = matmul_nt(a, bt);
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(c1[i]),
              std::bit_cast<std::uint32_t>(c2[i]))
        << "element " << i;
  }
}

TEST(MatMul, BiasBroadcasts) {
  const Tensor a({2, 2}, {1, 0, 0, 1});
  const Tensor b({2, 2}, {1, 2, 3, 4});
  const Tensor bias({2}, {10, 20});
  const Tensor c = matmul(a, b, &bias);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 11.0F);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 24.0F);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Tensor input({1, 1, 4, 4});
  for (int i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  Tensor w({1, 1, 1, 1});
  w[0] = 1.0F;
  const Tensor out = conv2d(input, w, nullptr, {1, 0, 1});
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(Conv2d, HandComputed3x3) {
  // 3x3 all-ones kernel over a 3x3 all-ones image with padding 1:
  // corner sums 4, edge sums 6, center 9.
  Tensor input({1, 1, 3, 3});
  input.fill(1.0F);
  Tensor w({1, 1, 3, 3});
  w.fill(1.0F);
  const Tensor out = conv2d(input, w, nullptr, {1, 1, 1});
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0F);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 6.0F);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0F);
}

TEST(Conv2d, StrideReducesSpatialDims) {
  Tensor input({2, 3, 8, 8});
  Tensor w({4, 3, 3, 3});
  const Tensor out = conv2d(input, w, nullptr, {2, 1, 1});
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 4, 4, 4}));
}

TEST(Conv2d, DepthwiseGroupsKeepChannelsIndependent) {
  Tensor input({1, 2, 3, 3});
  for (int i = 0; i < 9; ++i) input[i] = 1.0F;           // channel 0 = 1
  for (int i = 9; i < 18; ++i) input[i] = 2.0F;          // channel 1 = 2
  Tensor w({2, 1, 1, 1});
  w[0] = 10.0F;  // channel 0 kernel
  w[1] = 100.0F; // channel 1 kernel
  const Tensor out = conv2d(input, w, nullptr, {1, 0, 2});
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 10.0F);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 1, 1), 200.0F);
}

TEST(Conv2d, RejectsBadGroups) {
  Tensor input({1, 3, 4, 4});
  Tensor w({4, 1, 3, 3});
  EXPECT_THROW(conv2d(input, w, nullptr, {1, 1, 2}), std::invalid_argument);
}

TEST(Pooling, GlobalAvg) {
  Tensor input({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor out = global_avg_pool(input);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 2.5F);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 25.0F);
}

TEST(Pooling, MaxPoolPicksMaximum) {
  Tensor input({1, 1, 4, 4});
  for (int i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  const Tensor out = max_pool2d(input, 2, 2);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 5.0F);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 15.0F);
}

TEST(Activations, ReluFamilies) {
  Tensor t({5}, {-2, -0.5F, 0, 3, 10});
  const Tensor r = relu(t);
  EXPECT_FLOAT_EQ(r[0], 0.0F);
  EXPECT_FLOAT_EQ(r[3], 3.0F);
  const Tensor r6 = relu6(t);
  EXPECT_FLOAT_EQ(r6[4], 6.0F);
  const Tensor g = gelu(t);
  EXPECT_NEAR(g[2], 0.0F, 1e-6F);
  EXPECT_NEAR(g[3], 2.9964F, 1e-3F);  // gelu(3) ~ 2.9964
  EXPECT_LT(g[0], 0.0F);              // gelu(-2) slightly negative
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Tensor t({2, 3}, {1, 2, 3, -1, -1, 5});
  const Tensor s = softmax_lastdim(t);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < 3; ++c) sum += s.at2(r, c);
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
  EXPECT_GT(s.at2(0, 2), s.at2(0, 1));
  EXPECT_GT(s.at2(1, 2), 0.99F);
}

TEST(Softmax, StableForLargeLogits) {
  Tensor t({1, 2}, {1000.0F, 1001.0F});
  const Tensor s = softmax_lastdim(t);
  EXPECT_TRUE(std::isfinite(s[0]));
  EXPECT_NEAR(s[0] + s[1], 1.0F, 1e-5F);
}

TEST(Softmax, FullyMaskedRowProducesUniformNotNaN) {
  // A fully masked attention row (all -inf) used to yield sum == 0 and
  // inv == inf, propagating NaN through the model.
  constexpr float kInf = std::numeric_limits<float>::infinity();
  Tensor t({2, 4}, {-kInf, -kInf, -kInf, -kInf, 1.0F, 2.0F, -kInf, 0.5F});
  const Tensor s = softmax_lastdim(t);
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(s.at2(0, c), 0.25F);  // uniform fallback
  }
  // A partially masked row still softmaxes normally: masked slot gets 0.
  float sum = 0.0F;
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(std::isfinite(s.at2(1, c)));
    sum += s.at2(1, c);
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
  EXPECT_FLOAT_EQ(s.at2(1, 2), 0.0F);
}

TEST(Softmax, NonFiniteRowsDegradeToUniform) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor t({2, 3}, {kInf, 1.0F, 2.0F, nan, nan, nan});
  const Tensor s = softmax_lastdim(t);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(s.at2(r, c), 1.0F / 3.0F) << "row " << r << " col " << c;
    }
  }
}

TEST(LayerNorm, NormalizesRows) {
  Tensor t({2, 4}, {1, 2, 3, 4, -10, 0, 10, 20});
  Tensor gamma({4});
  gamma.fill(1.0F);
  Tensor beta({4});
  const Tensor y = layernorm_lastdim(t, gamma, beta);
  for (int r = 0; r < 2; ++r) {
    float mean = 0.0F, var = 0.0F;
    for (int c = 0; c < 4; ++c) mean += y.at2(r, c);
    mean /= 4.0F;
    for (int c = 0; c < 4; ++c) var += (y.at2(r, c) - mean) * (y.at2(r, c) - mean);
    var /= 4.0F;
    EXPECT_NEAR(mean, 0.0F, 1e-5F);
    EXPECT_NEAR(var, 1.0F, 1e-2F);
  }
}

TEST(ArgmaxRows, PicksFirstOnStrictMax) {
  Tensor t({2, 3}, {0, 5, 1, 7, 2, 7});
  const auto idx = argmax_rows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);  // first of the tied maxima
}

TEST(Im2col, PatchLayoutMatchesConvContract) {
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor cols = im2col(input, 0, 1, 2, 2, {1, 0, 1});
  // Single output position; rows are kernel positions.
  EXPECT_EQ(cols.shape(), (std::vector<std::int64_t>{4, 1}));
  EXPECT_FLOAT_EQ(cols[0], 1.0F);
  EXPECT_FLOAT_EQ(cols[3], 4.0F);
}

TEST(ConvOutDim, FormulaAndValidation) {
  EXPECT_EQ(conv_out_dim(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_dim(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_dim(8, 8, 8, 0), 1);
  EXPECT_THROW(static_cast<void>(conv_out_dim(2, 5, 1, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lp
