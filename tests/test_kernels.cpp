// Bit-equality contract of the kernel dispatch layer: every table in
// kernels::available_kernels() must reproduce the scalar reference
// bit-for-bit — GEMM (both B layouts), quantize chunks, and nearest
// indices — on adversarial inputs: denormals, ±inf-adjacent magnitudes,
// NaN/inf, structural zeros under infinities (the zero-skip), tie
// midpoints, and sizes that are not multiples of the vector width.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "core/lp_codec.h"
#include "core/lp_format.h"
#include "core/quant_index.h"
#include "kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace lp;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kDenorm = 1e-42F;  // subnormal
constexpr float kHuge = 3.0e38F;   // just below FLT_MAX

/// Adversarial fill: gaussians spanning many magnitudes with special
/// values (zeros, denormals, ±huge) injected at deterministic positions.
void fill_adversarial(float* data, std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng.uniform(-42.0, 38.0));
    data[i] = static_cast<float>(rng.gaussian() * mag);
  }
  for (std::int64_t i = 0; i < n; i += 7) data[i] = 0.0F;
  for (std::int64_t i = 3; i < n; i += 11) data[i] = kDenorm;
  for (std::int64_t i = 5; i < n; i += 13) data[i] = -kHuge;
  for (std::int64_t i = 8; i < n; i += 17) data[i] = kHuge;
  if (n > 2) data[2] = -0.0F;
}

bool bitwise_equal(const float* a, const float* b, std::int64_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(float)) == 0;
}

struct GemmShape {
  std::int64_t m, k, n;
};

const GemmShape kShapes[] = {{1, 1, 1},  {2, 3, 5},   {3, 7, 9},
                             {5, 16, 8}, {4, 17, 33}, {7, 64, 31},
                             {8, 129, 40}};

class KernelTablesTest : public ::testing::Test {
 protected:
  std::vector<const kernels::KernelTable*> tables_ =
      kernels::available_kernels();
};

TEST_F(KernelTablesTest, ScalarAlwaysFirstAndComplete) {
  ASSERT_FALSE(tables_.empty());
  EXPECT_EQ(tables_[0], &kernels::scalar_kernels());
  for (const auto* t : tables_) {
    EXPECT_NE(t->name, nullptr);
    EXPECT_NE(t->gemm_rows, nullptr);
    EXPECT_NE(t->gemm_nt_rows, nullptr);
    EXPECT_NE(t->gemm_codes_rows, nullptr);
    EXPECT_NE(t->gemm_codes_nt_rows, nullptr);
    EXPECT_NE(t->gemm_codes_codes_rows, nullptr);
    EXPECT_NE(t->gemm_codes_codes_nt_rows, nullptr);
    EXPECT_NE(t->quantize_chunk, nullptr);
    EXPECT_NE(t->nearest_indices, nullptr);
  }
}

TEST_F(KernelTablesTest, ByNameAndSelection) {
  EXPECT_EQ(kernels::by_name("scalar"), &kernels::scalar_kernels());
  EXPECT_EQ(kernels::by_name("not-a-kernel"), nullptr);
  EXPECT_STREQ(kernels::select_kernels("scalar").name, "scalar");
  // Unknown names warn and fall back to automatic selection.
  const kernels::KernelTable& fb = kernels::select_kernels("not-a-kernel");
  EXPECT_EQ(&fb, &kernels::select_kernels(nullptr));
  EXPECT_EQ(&fb, &kernels::select_kernels(""));
  // dispatch() must return a table this host can run.
  bool found = false;
  for (const auto* t : tables_) found = found || t == &kernels::dispatch();
  EXPECT_TRUE(found);
}

TEST_F(KernelTablesTest, DispatchHonorsLpKernelEnv) {
  // Guards the CI LP_KERNEL A/B legs against passing vacuously: when the
  // requested table is usable on this host, dispatch() must BE that table
  // (a silent fallback to scalar would make the avx2 leg meaningless).
  const char* requested = std::getenv("LP_KERNEL");
  if (requested == nullptr || *requested == '\0') {
    GTEST_SKIP() << "LP_KERNEL not set";
  }
  // "Usable" is defined by available_kernels() membership, so a future
  // table (avx512, ...) tightens this guard automatically.
  const kernels::KernelTable* t = kernels::by_name(requested);
  const bool usable = t != nullptr && std::find(tables_.begin(), tables_.end(),
                                                t) != tables_.end();
  if (!usable) GTEST_SKIP() << "LP_KERNEL=" << requested << " not usable here";
  EXPECT_STREQ(kernels::dispatch().name, requested);
}

TEST_F(KernelTablesTest, Avx2CompiledInOnCapableX86Builds) {
#if defined(__x86_64__)
  // gcc and clang both accept -mavx2 on x86-64, so a capable CPU paired
  // with a missing AVX2 table means the build-system probe regressed and
  // the SIMD path silently vanished.
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "CPU lacks AVX2";
  EXPECT_NE(kernels::avx2_kernels(), nullptr);
#else
  GTEST_SKIP() << "not an x86-64 build";
#endif
}

TEST_F(KernelTablesTest, Avx2TableRequiresCpuSupport) {
  const kernels::KernelTable* avx2 = kernels::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 not compiled into this build";
  EXPECT_STREQ(avx2->name, "avx2");
  const bool listed =
      tables_.size() > 1 && tables_[1] == avx2;
  EXPECT_EQ(listed, kernels::cpu_supports_avx2());
}

// --- GEMM ------------------------------------------------------------------

class GemmBitEquality : public KernelTablesTest {
 protected:
  /// Run both layouts of one shape under `table` and the scalar reference,
  /// with bias present and absent, and require bitwise-equal outputs.
  void check_shape(const kernels::KernelTable& table, const GemmShape& s,
                   bool inject_inf) {
    const auto mm = static_cast<std::size_t>(s.m);
    std::vector<float> a(mm * static_cast<std::size_t>(s.k));
    std::vector<float> b(static_cast<std::size_t>(s.k) *
                         static_cast<std::size_t>(s.n));
    std::vector<float> bias(static_cast<std::size_t>(s.n));
    fill_adversarial(a.data(), s.m * s.k, 11);
    fill_adversarial(b.data(), s.k * s.n, 23);
    fill_adversarial(bias.data(), s.n, 31);
    if (inject_inf && s.k >= 2) {
      // Infinities in B at k-position 0; every row of A gets a structural
      // zero there, so the scalar zero-skip keeps the products out of the
      // accumulator.  A kernel that multiplies instead of skipping turns
      // these into NaN and fails the bitwise compare.
      for (std::int64_t j = 0; j < s.n; j += 2) {
        b[static_cast<std::size_t>(j)] = (j % 4 == 0) ? kInf : -kInf;
      }
      for (std::int64_t i = 0; i < s.m; ++i) {
        a[static_cast<std::size_t>(i * s.k)] = 0.0F;
      }
    }
    std::vector<float> bt(b.size());  // B^T, [n, k] row-major
    for (std::int64_t p = 0; p < s.k; ++p) {
      for (std::int64_t j = 0; j < s.n; ++j) {
        bt[static_cast<std::size_t>(j * s.k + p)] =
            b[static_cast<std::size_t>(p * s.n + j)];
      }
    }
    const std::size_t cn = mm * static_cast<std::size_t>(s.n);
    std::vector<float> c_ref(cn), c_tab(cn);
    for (const float* bp : {static_cast<const float*>(nullptr),
                            static_cast<const float*>(bias.data())}) {
      kernels::scalar_kernels().gemm_rows(a.data(), b.data(), bp, c_ref.data(),
                                          0, s.m, s.k, s.n);
      table.gemm_rows(a.data(), b.data(), bp, c_tab.data(), 0, s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(c_ref.data(), c_tab.data(), s.m * s.n))
          << table.name << " gemm_rows " << s.m << "x" << s.k << "x" << s.n
          << (bp != nullptr ? " +bias" : "") << (inject_inf ? " +inf" : "");

      kernels::scalar_kernels().gemm_nt_rows(a.data(), bt.data(), bp,
                                             c_ref.data(), 0, s.m, s.k, s.n);
      table.gemm_nt_rows(a.data(), bt.data(), bp, c_tab.data(), 0, s.m, s.k,
                         s.n);
      EXPECT_TRUE(bitwise_equal(c_ref.data(), c_tab.data(), s.m * s.n))
          << table.name << " gemm_nt_rows " << s.m << "x" << s.k << "x" << s.n
          << (bp != nullptr ? " +bias" : "") << (inject_inf ? " +inf" : "");
    }
  }
};

TEST_F(GemmBitEquality, AllTablesAllShapes) {
  for (const auto* t : tables_) {
    for (const GemmShape& s : kShapes) {
      check_shape(*t, s, false);
      check_shape(*t, s, true);
    }
  }
}

TEST_F(GemmBitEquality, SplitRowRangesMatchFullRange) {
  // Kernels are handed arbitrary row blocks by the thread pool; uneven
  // splits must still produce the full-range result bit-for-bit.
  const GemmShape s{9, 33, 17};
  std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
  std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
  fill_adversarial(a.data(), s.m * s.k, 5);
  fill_adversarial(b.data(), s.k * s.n, 9);
  std::vector<float> c_full(static_cast<std::size_t>(s.m * s.n));
  std::vector<float> c_split(c_full.size());
  for (const auto* t : tables_) {
    t->gemm_rows(a.data(), b.data(), nullptr, c_full.data(), 0, s.m, s.k, s.n);
    const std::int64_t cuts[] = {0, 1, 2, 5, 6, s.m};
    for (std::size_t ci = 0; ci + 1 < std::size(cuts); ++ci) {
      t->gemm_rows(a.data(), b.data(), nullptr, c_split.data(), cuts[ci],
                   cuts[ci + 1], s.k, s.n);
    }
    EXPECT_TRUE(bitwise_equal(c_full.data(), c_split.data(), s.m * s.n))
        << t->name;
  }
}

TEST_F(GemmBitEquality, OpsLayerUsesDispatchedKernel) {
  // Whatever dispatch() picked, matmul/matmul_nt must equal the scalar
  // kernel applied by hand — pins the rewiring of src/tensor/ops.cpp.
  const GemmShape s{6, 40, 21};
  Tensor a({s.m, s.k});
  Tensor b({s.k, s.n});
  fill_adversarial(a.raw(), s.m * s.k, 41);
  fill_adversarial(b.raw(), s.k * s.n, 43);
  const Tensor c = matmul(a, b);
  std::vector<float> c_ref(static_cast<std::size_t>(s.m * s.n));
  kernels::scalar_kernels().gemm_rows(a.raw(), b.raw(), nullptr, c_ref.data(),
                                      0, s.m, s.k, s.n);
  EXPECT_TRUE(bitwise_equal(c.raw(), c_ref.data(), s.m * s.n));
}

// --- quantization ----------------------------------------------------------

class QuantizeBitEquality : public KernelTablesTest {
 protected:
  /// Buffer mixing random magnitudes, exact table values, tie midpoints
  /// and their float neighbours, denormals, ±inf, and NaN.
  static std::vector<float> adversarial_floats(const std::vector<double>& vals,
                                               std::size_t n,
                                               std::uint64_t seed) {
    std::vector<float> xs(n);
    fill_adversarial(xs.data(), static_cast<std::int64_t>(n), seed);
    Rng rng(seed + 1);
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 9) {
        case 2: {  // exact table value
          const auto vi = static_cast<std::size_t>(rng.uniform(
              0.0, static_cast<double>(vals.size()) - 0.5));
          xs[i] = static_cast<float>(vals[vi]);
          break;
        }
        case 4: {  // tie midpoint and neighbours
          const auto vi = static_cast<std::size_t>(rng.uniform(
              0.0, static_cast<double>(vals.size()) - 1.5));
          const auto mid =
              static_cast<float>(0.5 * (vals[vi] + vals[vi + 1]));
          const float eps = (i % 2 == 0) ? 1.0F : -1.0F;
          xs[i] = std::nextafter(mid, eps * kInf);
          if (i % 18 == 4) xs[i] = mid;
          break;
        }
        case 6:
          xs[i] = (i % 12 == 6) ? kInf : -kInf;
          break;
        case 8:
          xs[i] = kNan;
          break;
        default:
          break;
      }
    }
    return xs;
  }

  void check_format(const std::vector<double>& vals, bool with_nonfinite) {
    const QuantIndex qi(vals);
    const kernels::QuantIndexView view = qi.view();
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                std::size_t{8}, std::size_t{9},
                                std::size_t{31}, std::size_t{257},
                                std::size_t{1000}}) {
      std::vector<float> base = adversarial_floats(vals, n, 77 + n);
      if (!with_nonfinite) {
        for (float& x : base) {
          if (!std::isfinite(x)) x = 0.125F;
        }
      }
      std::vector<float> ref = base;
      const double se_ref =
          kernels::scalar_kernels().quantize_chunk(view, ref.data(), n);
      std::vector<std::uint32_t> idx_ref(n);
      kernels::scalar_kernels().nearest_indices(view, base.data(),
                                                idx_ref.data(), n);
      for (const auto* t : tables_) {
        std::vector<float> got = base;
        const double se = t->quantize_chunk(view, got.data(), n);
        EXPECT_TRUE(bitwise_equal(ref.data(), got.data(),
                                  static_cast<std::int64_t>(n)))
            << t->name << " n=" << n << " table=" << vals.size();
        EXPECT_EQ(std::bit_cast<std::uint64_t>(se_ref),
                  std::bit_cast<std::uint64_t>(se))
            << t->name << " n=" << n << " table=" << vals.size();
        std::vector<std::uint32_t> idx(n);
        t->nearest_indices(view, base.data(), idx.data(), n);
        EXPECT_EQ(idx_ref, idx) << t->name << " n=" << n;
      }
    }
  }
};

TEST_F(QuantizeBitEquality, NarrowLPFormat) {
  const LPFormat fmt(LPConfig{4, 1, 2, 2.0});
  check_format(fmt.all_values(), true);
}

TEST_F(QuantizeBitEquality, TypicalLPFormat) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  check_format(fmt.all_values(), true);
  check_format(fmt.all_values(), false);
}

TEST_F(QuantizeBitEquality, WideFormatDenseBuckets) {
  // 12-bit table: buckets exceed the scalar path's linear-scan span, so
  // this exercises the upper_bound branch and the SIMD 8-wide count loop.
  const CodeTable table(LPConfig{12, 2, 5, 0.5});
  check_format(table.values(), true);
}

TEST_F(QuantizeBitEquality, NonFiniteOnlyBuffer) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  const QuantIndex qi(fmt.all_values());
  const kernels::QuantIndexView view = qi.view();
  std::vector<float> base = {kInf, -kInf, kNan, kInf, kNan, -kInf, kNan};
  std::vector<float> ref = base;
  const double se_ref = kernels::scalar_kernels().quantize_chunk(
      view, ref.data(), ref.size());
  EXPECT_TRUE(std::isnan(se_ref));
  for (const auto* t : tables_) {
    std::vector<float> got = base;
    const double se = t->quantize_chunk(view, got.data(), got.size());
    EXPECT_TRUE(bitwise_equal(ref.data(), got.data(),
                              static_cast<std::int64_t>(got.size())))
        << t->name;
    EXPECT_TRUE(std::isnan(se)) << t->name;
  }
}

TEST_F(QuantizeBitEquality, DenormalBoundariesExact) {
  // A table whose decision boundaries sit in the subnormal range: the key
  // math must be exact down there too.
  const std::vector<double> vals = {-1e-39, -2e-42, 0.0, 3e-42, 5e-40, 1e-38};
  check_format(vals, true);
}

}  // namespace
