// Bit-equality contract of the kernel dispatch layer: every table in
// kernels::available_kernels() must reproduce the scalar reference
// bit-for-bit — GEMM (both B layouts), quantize chunks, and nearest
// indices — on adversarial inputs: denormals, ±inf-adjacent magnitudes,
// NaN/inf, structural zeros under infinities (the zero-skip), tie
// midpoints, and sizes that are not multiples of the vector width.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include <string>
#include <string_view>

#include "core/lp_codec.h"
#include "core/lp_format.h"
#include "core/packed_codes.h"
#include "core/quant_index.h"
#include "kernels/kernels.h"
#include "lpa/systolic.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace lp;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kDenorm = 1e-42F;  // subnormal
constexpr float kHuge = 3.0e38F;   // just below FLT_MAX

/// Adversarial fill: gaussians spanning many magnitudes with special
/// values (zeros, denormals, ±huge) injected at deterministic positions.
void fill_adversarial(float* data, std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng.uniform(-42.0, 38.0));
    data[i] = static_cast<float>(rng.gaussian() * mag);
  }
  for (std::int64_t i = 0; i < n; i += 7) data[i] = 0.0F;
  for (std::int64_t i = 3; i < n; i += 11) data[i] = kDenorm;
  for (std::int64_t i = 5; i < n; i += 13) data[i] = -kHuge;
  for (std::int64_t i = 8; i < n; i += 17) data[i] = kHuge;
  if (n > 2) data[2] = -0.0F;
}

bool bitwise_equal(const float* a, const float* b, std::int64_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(float)) == 0;
}

struct GemmShape {
  std::int64_t m, k, n;
};

const GemmShape kShapes[] = {{1, 1, 1},  {2, 3, 5},   {3, 7, 9},
                             {5, 16, 8}, {4, 17, 33}, {7, 64, 31},
                             {8, 129, 40}};

class KernelTablesTest : public ::testing::Test {
 protected:
  std::vector<const kernels::KernelTable*> tables_ =
      kernels::available_kernels();
};

TEST_F(KernelTablesTest, ScalarAlwaysFirstAndComplete) {
  ASSERT_FALSE(tables_.empty());
  EXPECT_EQ(tables_[0], &kernels::scalar_kernels());
  for (const auto* t : tables_) {
    EXPECT_NE(t->name, nullptr);
    EXPECT_NE(t->gemm_rows, nullptr);
    EXPECT_NE(t->gemm_nt_rows, nullptr);
    EXPECT_NE(t->gemm_codes_rows, nullptr);
    EXPECT_NE(t->gemm_codes_nt_rows, nullptr);
    EXPECT_NE(t->gemm_codes_codes_rows, nullptr);
    EXPECT_NE(t->gemm_codes_codes_nt_rows, nullptr);
    EXPECT_NE(t->quantize_chunk, nullptr);
    EXPECT_NE(t->nearest_indices, nullptr);
  }
}

TEST_F(KernelTablesTest, ByNameAndSelection) {
  EXPECT_EQ(kernels::by_name("scalar"), &kernels::scalar_kernels());
  EXPECT_EQ(kernels::by_name("not-a-kernel"), nullptr);
  EXPECT_STREQ(kernels::select_kernels("scalar").name, "scalar");
  // Unknown names warn and fall back to automatic selection.
  const kernels::KernelTable& fb = kernels::select_kernels("not-a-kernel");
  EXPECT_EQ(&fb, &kernels::select_kernels(nullptr));
  EXPECT_EQ(&fb, &kernels::select_kernels(""));
  // dispatch() must return a table this host can run.
  bool found = false;
  for (const auto* t : tables_) found = found || t == &kernels::dispatch();
  EXPECT_TRUE(found);
}

TEST_F(KernelTablesTest, DispatchHonorsLpKernelEnv) {
  // Guards the CI LP_KERNEL A/B legs against passing vacuously: when the
  // requested table is usable on this host, dispatch() must BE that table
  // (a silent fallback to scalar would make the avx2 leg meaningless).
  const char* requested = std::getenv("LP_KERNEL");
  if (requested == nullptr || *requested == '\0') {
    GTEST_SKIP() << "LP_KERNEL not set";
  }
  // "Usable" is defined by available_kernels() membership, so a future
  // table (avx512, ...) tightens this guard automatically.
  const kernels::KernelTable* t = kernels::by_name(requested);
  const bool usable = t != nullptr && std::find(tables_.begin(), tables_.end(),
                                                t) != tables_.end();
  if (!usable) GTEST_SKIP() << "LP_KERNEL=" << requested << " not usable here";
  EXPECT_STREQ(kernels::dispatch().name, requested);
}

TEST_F(KernelTablesTest, Avx2CompiledInOnCapableX86Builds) {
#if defined(__x86_64__)
  // gcc and clang both accept -mavx2 on x86-64, so a capable CPU paired
  // with a missing AVX2 table means the build-system probe regressed and
  // the SIMD path silently vanished.
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "CPU lacks AVX2";
  EXPECT_NE(kernels::avx2_kernels(), nullptr);
#else
  GTEST_SKIP() << "not an x86-64 build";
#endif
}

TEST_F(KernelTablesTest, Avx2TableRequiresCpuSupport) {
  const kernels::KernelTable* avx2 = kernels::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 not compiled into this build";
  EXPECT_STREQ(avx2->name, "avx2");
  const bool listed =
      tables_.size() > 1 && tables_[1] == avx2;
  EXPECT_EQ(listed, kernels::cpu_supports_avx2());
}

TEST_F(KernelTablesTest, Avx512CompiledInOnCapableX86Builds) {
#if defined(__x86_64__)
  // Same probe-regression guard as the AVX2 variant: gcc and clang both
  // accept -mavx512{f,bw,vl} on x86-64, so a capable CPU paired with a
  // missing table means the build gate silently dropped the widest tier.
  if (!kernels::cpu_supports_avx512()) GTEST_SKIP() << "CPU lacks AVX-512";
  EXPECT_NE(kernels::avx512_kernels(), nullptr);
#else
  GTEST_SKIP() << "not an x86-64 build";
#endif
}

TEST_F(KernelTablesTest, Avx512TableRequiresCpuSupport) {
  const kernels::KernelTable* avx512 = kernels::avx512_kernels();
  if (avx512 == nullptr) GTEST_SKIP() << "AVX-512 not compiled into this build";
  EXPECT_STREQ(avx512->name, "avx512");
  const bool listed =
      std::find(tables_.begin(), tables_.end(), avx512) != tables_.end();
  EXPECT_EQ(listed, kernels::cpu_supports_avx512());
  // A host with the avx512 table usable must auto-select it over avx2.
  if (kernels::cpu_supports_avx512()) {
    EXPECT_EQ(&kernels::select_kernels(nullptr), avx512);
  }
}

// --- dispatch fallback diagnostics -----------------------------------------

TEST(DispatchDiagnostics, KnownNameListIsExact) {
  EXPECT_TRUE(kernels::is_known_kernel_name("scalar"));
  EXPECT_TRUE(kernels::is_known_kernel_name("avx2"));
  EXPECT_TRUE(kernels::is_known_kernel_name("avx512"));
  EXPECT_FALSE(kernels::is_known_kernel_name("avx"));
  EXPECT_FALSE(kernels::is_known_kernel_name("AVX2"));
  EXPECT_FALSE(kernels::is_known_kernel_name(""));
}

TEST(DispatchDiagnostics, UnknownNameWarnsWithUnknownReason) {
  testing::internal::CaptureStderr();
  const kernels::KernelTable& fb = kernels::select_kernels("not-a-kernel");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("LP_KERNEL=not-a-kernel"), std::string::npos) << err;
  EXPECT_NE(err.find("unknown kernel name"), std::string::npos) << err;
  EXPECT_NE(err.find(fb.name), std::string::npos) << err;
}

TEST(DispatchDiagnostics, UsableNameSelectsSilently) {
  testing::internal::CaptureStderr();
  EXPECT_STREQ(kernels::select_kernels("scalar").name, "scalar");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(DispatchDiagnostics, KnownUnusableNameNamesPreciseReason) {
  // A known-but-unusable tier falls back for one of two reasons, and the
  // warning must say which: "not compiled into this binary" (the build
  // gate dropped the TU) vs "CPU lacks the required instruction-set
  // features" (built, but cpuid says no).  On hosts where every tier is
  // usable neither branch is reachable — skip rather than pass vacuously.
  bool exercised = false;
  for (const char* name : {"avx2", "avx512"}) {
    ASSERT_TRUE(kernels::is_known_kernel_name(name));
    const kernels::KernelTable* t = kernels::by_name(name);
    const bool supported = std::string_view(name) == "avx2"
                               ? kernels::cpu_supports_avx2()
                               : kernels::cpu_supports_avx512();
    if (t != nullptr && supported) continue;
    testing::internal::CaptureStderr();
    (void)kernels::select_kernels(name);
    const std::string err = testing::internal::GetCapturedStderr();
    const char* expect =
        t == nullptr ? "not compiled into this binary"
                     : "CPU lacks the required instruction-set features";
    EXPECT_NE(err.find(expect), std::string::npos) << name << ": " << err;
    exercised = true;
  }
  if (!exercised) GTEST_SKIP() << "every SIMD tier is usable on this host";
}

// --- LP_APPROX parsing ------------------------------------------------------

TEST(ApproxModeParsing, RecognizedNames) {
  using kernels::ApproxMode;
  EXPECT_EQ(kernels::approx_mode_from_name(nullptr), ApproxMode::kExact);
  EXPECT_EQ(kernels::approx_mode_from_name(""), ApproxMode::kExact);
  EXPECT_EQ(kernels::approx_mode_from_name("off"), ApproxMode::kExact);
  EXPECT_EQ(kernels::approx_mode_from_name("exact"), ApproxMode::kExact);
  EXPECT_EQ(kernels::approx_mode_from_name("plam"), ApproxMode::kPlam);
}

TEST(ApproxModeParsing, UnknownNameWarnsAndStaysExact) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(kernels::approx_mode_from_name("mitchell3"),
            kernels::ApproxMode::kExact);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("LP_APPROX=mitchell3"), std::string::npos) << err;
}

// --- GEMM ------------------------------------------------------------------

class GemmBitEquality : public KernelTablesTest {
 protected:
  /// Run both layouts of one shape under `table` and the scalar reference,
  /// with bias present and absent, and require bitwise-equal outputs.
  void check_shape(const kernels::KernelTable& table, const GemmShape& s,
                   bool inject_inf) {
    const auto mm = static_cast<std::size_t>(s.m);
    std::vector<float> a(mm * static_cast<std::size_t>(s.k));
    std::vector<float> b(static_cast<std::size_t>(s.k) *
                         static_cast<std::size_t>(s.n));
    std::vector<float> bias(static_cast<std::size_t>(s.n));
    fill_adversarial(a.data(), s.m * s.k, 11);
    fill_adversarial(b.data(), s.k * s.n, 23);
    fill_adversarial(bias.data(), s.n, 31);
    if (inject_inf && s.k >= 2) {
      // Infinities in B at k-position 0; every row of A gets a structural
      // zero there, so the scalar zero-skip keeps the products out of the
      // accumulator.  A kernel that multiplies instead of skipping turns
      // these into NaN and fails the bitwise compare.
      for (std::int64_t j = 0; j < s.n; j += 2) {
        b[static_cast<std::size_t>(j)] = (j % 4 == 0) ? kInf : -kInf;
      }
      for (std::int64_t i = 0; i < s.m; ++i) {
        a[static_cast<std::size_t>(i * s.k)] = 0.0F;
      }
    }
    std::vector<float> bt(b.size());  // B^T, [n, k] row-major
    for (std::int64_t p = 0; p < s.k; ++p) {
      for (std::int64_t j = 0; j < s.n; ++j) {
        bt[static_cast<std::size_t>(j * s.k + p)] =
            b[static_cast<std::size_t>(p * s.n + j)];
      }
    }
    const std::size_t cn = mm * static_cast<std::size_t>(s.n);
    std::vector<float> c_ref(cn), c_tab(cn);
    for (const float* bp : {static_cast<const float*>(nullptr),
                            static_cast<const float*>(bias.data())}) {
      kernels::scalar_kernels().gemm_rows(a.data(), b.data(), bp, c_ref.data(),
                                          0, s.m, s.k, s.n);
      table.gemm_rows(a.data(), b.data(), bp, c_tab.data(), 0, s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(c_ref.data(), c_tab.data(), s.m * s.n))
          << table.name << " gemm_rows " << s.m << "x" << s.k << "x" << s.n
          << (bp != nullptr ? " +bias" : "") << (inject_inf ? " +inf" : "");

      kernels::scalar_kernels().gemm_nt_rows(a.data(), bt.data(), bp,
                                             c_ref.data(), 0, s.m, s.k, s.n);
      table.gemm_nt_rows(a.data(), bt.data(), bp, c_tab.data(), 0, s.m, s.k,
                         s.n);
      EXPECT_TRUE(bitwise_equal(c_ref.data(), c_tab.data(), s.m * s.n))
          << table.name << " gemm_nt_rows " << s.m << "x" << s.k << "x" << s.n
          << (bp != nullptr ? " +bias" : "") << (inject_inf ? " +inf" : "");
    }
  }
};

TEST_F(GemmBitEquality, AllTablesAllShapes) {
  for (const auto* t : tables_) {
    for (const GemmShape& s : kShapes) {
      check_shape(*t, s, false);
      check_shape(*t, s, true);
    }
  }
}

TEST_F(GemmBitEquality, SplitRowRangesMatchFullRange) {
  // Kernels are handed arbitrary row blocks by the thread pool; uneven
  // splits must still produce the full-range result bit-for-bit.
  const GemmShape s{9, 33, 17};
  std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
  std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
  fill_adversarial(a.data(), s.m * s.k, 5);
  fill_adversarial(b.data(), s.k * s.n, 9);
  std::vector<float> c_full(static_cast<std::size_t>(s.m * s.n));
  std::vector<float> c_split(c_full.size());
  for (const auto* t : tables_) {
    t->gemm_rows(a.data(), b.data(), nullptr, c_full.data(), 0, s.m, s.k, s.n);
    const std::int64_t cuts[] = {0, 1, 2, 5, 6, s.m};
    for (std::size_t ci = 0; ci + 1 < std::size(cuts); ++ci) {
      t->gemm_rows(a.data(), b.data(), nullptr, c_split.data(), cuts[ci],
                   cuts[ci + 1], s.k, s.n);
    }
    EXPECT_TRUE(bitwise_equal(c_full.data(), c_split.data(), s.m * s.n))
        << t->name;
  }
}

TEST_F(GemmBitEquality, OpsLayerUsesDispatchedKernel) {
  // Whatever dispatch() picked, matmul/matmul_nt must equal the scalar
  // kernel applied by hand — pins the rewiring of src/tensor/ops.cpp.
  const GemmShape s{6, 40, 21};
  Tensor a({s.m, s.k});
  Tensor b({s.k, s.n});
  fill_adversarial(a.raw(), s.m * s.k, 41);
  fill_adversarial(b.raw(), s.k * s.n, 43);
  const Tensor c = matmul(a, b);
  std::vector<float> c_ref(static_cast<std::size_t>(s.m * s.n));
  kernels::scalar_kernels().gemm_rows(a.raw(), b.raw(), nullptr, c_ref.data(),
                                      0, s.m, s.k, s.n);
  EXPECT_TRUE(bitwise_equal(c.raw(), c_ref.data(), s.m * s.n));
}

// --- quantization ----------------------------------------------------------

class QuantizeBitEquality : public KernelTablesTest {
 protected:
  /// Buffer mixing random magnitudes, exact table values, tie midpoints
  /// and their float neighbours, denormals, ±inf, and NaN.
  static std::vector<float> adversarial_floats(const std::vector<double>& vals,
                                               std::size_t n,
                                               std::uint64_t seed) {
    std::vector<float> xs(n);
    fill_adversarial(xs.data(), static_cast<std::int64_t>(n), seed);
    Rng rng(seed + 1);
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 9) {
        case 2: {  // exact table value
          const auto vi = static_cast<std::size_t>(rng.uniform(
              0.0, static_cast<double>(vals.size()) - 0.5));
          xs[i] = static_cast<float>(vals[vi]);
          break;
        }
        case 4: {  // tie midpoint and neighbours
          const auto vi = static_cast<std::size_t>(rng.uniform(
              0.0, static_cast<double>(vals.size()) - 1.5));
          const auto mid =
              static_cast<float>(0.5 * (vals[vi] + vals[vi + 1]));
          const float eps = (i % 2 == 0) ? 1.0F : -1.0F;
          xs[i] = std::nextafter(mid, eps * kInf);
          if (i % 18 == 4) xs[i] = mid;
          break;
        }
        case 6:
          xs[i] = (i % 12 == 6) ? kInf : -kInf;
          break;
        case 8:
          xs[i] = kNan;
          break;
        default:
          break;
      }
    }
    return xs;
  }

  void check_format(const std::vector<double>& vals, bool with_nonfinite) {
    const QuantIndex qi(vals);
    const kernels::QuantIndexView view = qi.view();
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                std::size_t{8}, std::size_t{9},
                                std::size_t{31}, std::size_t{257},
                                std::size_t{1000}}) {
      std::vector<float> base = adversarial_floats(vals, n, 77 + n);
      if (!with_nonfinite) {
        for (float& x : base) {
          if (!std::isfinite(x)) x = 0.125F;
        }
      }
      std::vector<float> ref = base;
      const double se_ref =
          kernels::scalar_kernels().quantize_chunk(view, ref.data(), n);
      std::vector<std::uint32_t> idx_ref(n);
      kernels::scalar_kernels().nearest_indices(view, base.data(),
                                                idx_ref.data(), n);
      for (const auto* t : tables_) {
        std::vector<float> got = base;
        const double se = t->quantize_chunk(view, got.data(), n);
        EXPECT_TRUE(bitwise_equal(ref.data(), got.data(),
                                  static_cast<std::int64_t>(n)))
            << t->name << " n=" << n << " table=" << vals.size();
        EXPECT_EQ(std::bit_cast<std::uint64_t>(se_ref),
                  std::bit_cast<std::uint64_t>(se))
            << t->name << " n=" << n << " table=" << vals.size();
        std::vector<std::uint32_t> idx(n);
        t->nearest_indices(view, base.data(), idx.data(), n);
        EXPECT_EQ(idx_ref, idx) << t->name << " n=" << n;
      }
    }
  }
};

TEST_F(QuantizeBitEquality, NarrowLPFormat) {
  const LPFormat fmt(LPConfig{4, 1, 2, 2.0});
  check_format(fmt.all_values(), true);
}

TEST_F(QuantizeBitEquality, TypicalLPFormat) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  check_format(fmt.all_values(), true);
  check_format(fmt.all_values(), false);
}

TEST_F(QuantizeBitEquality, WideFormatDenseBuckets) {
  // 12-bit table: buckets exceed the scalar path's linear-scan span, so
  // this exercises the upper_bound branch and the SIMD 8-wide count loop.
  const CodeTable table(LPConfig{12, 2, 5, 0.5});
  check_format(table.values(), true);
}

TEST_F(QuantizeBitEquality, NonFiniteOnlyBuffer) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  const QuantIndex qi(fmt.all_values());
  const kernels::QuantIndexView view = qi.view();
  std::vector<float> base = {kInf, -kInf, kNan, kInf, kNan, -kInf, kNan};
  std::vector<float> ref = base;
  const double se_ref = kernels::scalar_kernels().quantize_chunk(
      view, ref.data(), ref.size());
  EXPECT_TRUE(std::isnan(se_ref));
  for (const auto* t : tables_) {
    std::vector<float> got = base;
    const double se = t->quantize_chunk(view, got.data(), got.size());
    EXPECT_TRUE(bitwise_equal(ref.data(), got.data(),
                              static_cast<std::int64_t>(got.size())))
        << t->name;
    EXPECT_TRUE(std::isnan(se)) << t->name;
  }
}

TEST_F(QuantizeBitEquality, DenormalBoundariesExact) {
  // A table whose decision boundaries sit in the subnormal range: the key
  // math must be exact down there too.
  const std::vector<double> vals = {-1e-39, -2e-42, 0.0, 3e-42, 5e-40, 1e-38};
  check_format(vals, true);
}

// --- PLAM approximate multiply (LP_APPROX=plam) -----------------------------

TEST(PlamMultiply, SpecialValuesAreExact) {
  using kernels::plam::mitchell_mul;
  EXPECT_EQ(mitchell_mul(0.0, 3.5), 0.0);
  EXPECT_EQ(mitchell_mul(-2.0, 0.0), 0.0);
  EXPECT_TRUE(std::isnan(mitchell_mul(static_cast<double>(kNan), 1.0)));
  EXPECT_EQ(mitchell_mul(static_cast<double>(kInf), 2.0),
            static_cast<double>(kInf));
  EXPECT_EQ(mitchell_mul(static_cast<double>(-kInf), 2.0),
            static_cast<double>(-kInf));
  // Powers of two carry zero log-fraction, so the approximation is exact.
  EXPECT_EQ(mitchell_mul(4.0, 8.0), 32.0);
  EXPECT_EQ(mitchell_mul(-0.5, 0.25), -0.125);
  EXPECT_EQ(mitchell_mul(-0.5, -0.25), 0.125);
}

TEST(PlamMultiply, UnderestimatesWithinPinnedBound) {
  using kernels::plam::mitchell_mul;
  // The canonical worst case: both mantissas 1.5 (log fractions 0.5),
  // where 2^(e+f) loses exactly 1/9 of the product.
  EXPECT_NEAR((2.25 - mitchell_mul(1.5, 1.5)) / 2.25, 1.0 / 9.0, 1e-12);

  Rng rng(2024);
  double max_rel = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.gaussian() * std::pow(10.0, rng.uniform(-30.0, 30.0));
    const double y = rng.gaussian() * std::pow(10.0, rng.uniform(-30.0, 30.0));
    if (x == 0.0 || y == 0.0) continue;
    const double exact = x * y;
    const double got = mitchell_mul(x, y);
    ASSERT_EQ(std::signbit(got), std::signbit(exact)) << x << " * " << y;
    // Mitchell is a monotone underestimate of the magnitude...
    ASSERT_LE(std::fabs(got), std::fabs(exact)) << x << " * " << y;
    // ...by at most the pinned per-multiply bound.
    const double rel = (std::fabs(exact) - std::fabs(got)) / std::fabs(exact);
    ASSERT_LE(rel, kernels::kPlamMaxRelError) << x << " * " << y;
    max_rel = std::max(max_rel, rel);
  }
  // The sweep must actually visit the high-error region, or the bound
  // check above is vacuous.
  EXPECT_GT(max_rel, 0.09);
}

namespace plam_gemm {

/// Pack dense 8-bit indices into a byte stream (one code per byte).
kernels::PackedCodesView view_of(const std::vector<std::uint8_t>& stream,
                                 const std::vector<float>& lut) {
  return kernels::PackedCodesView{stream.data(), 0, 8, lut.data(),
                                  static_cast<std::uint32_t>(lut.size())};
}

}  // namespace plam_gemm

TEST(PlamGemm, DotProductErrorWithinLinearBound) {
  // Accumulation is exact (double, ascending k) and only the multiplies
  // approximate, so a dot product's absolute error is bounded by
  // kPlamMaxRelError * sum_k |a_k * b_k| — the linear composition the
  // header pins.  Benign finite magnitudes: the approximate path is for
  // DNN data, not the ±inf adversarial corpus.
  std::vector<float> lut(64);
  Rng lrng(7);
  lut[0] = 0.0F;
  for (std::size_t i = 1; i < lut.size(); ++i) {
    lut[i] = static_cast<float>(lrng.gaussian() *
                                std::pow(10.0, lrng.uniform(-3.0, 3.0)));
  }
  const GemmShape shapes[] = {{1, 1, 1}, {3, 7, 5}, {5, 33, 17}, {8, 64, 9}};
  int diffs = 0;
  for (const GemmShape& s : shapes) {
    Rng rng(100 + static_cast<std::uint64_t>(s.k));
    std::vector<std::uint8_t> stream(static_cast<std::size_t>(s.n * s.k));
    for (auto& c : stream) {
      c = static_cast<std::uint8_t>(rng.uniform(0.0, 63.4));
    }
    const kernels::PackedCodesView view = plam_gemm::view_of(stream, lut);
    std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
    std::vector<float> bias(static_cast<std::size_t>(s.n));
    for (auto& v : a) v = static_cast<float>(rng.gaussian());
    for (auto& v : bias) v = static_cast<float>(rng.gaussian());
    for (std::int64_t i = 0; i < s.m * s.k; i += 5) {
      a[static_cast<std::size_t>(i)] = 0.0F;  // zero-skip stays exact
    }
    const std::size_t cn = static_cast<std::size_t>(s.m * s.n);
    std::vector<float> c_ref(cn), c_plam(cn);
    for (const float* bp : {static_cast<const float*>(nullptr),
                            static_cast<const float*>(bias.data())}) {
      kernels::scalar_kernels().gemm_codes_nt_rows(a.data(), view, bp,
                                                   c_ref.data(), nullptr, 0,
                                                   s.m, s.k, s.n);
      ASSERT_TRUE(kernels::plam::gemm_codes_nt_rows(
          a.data(), view, bp, c_plam.data(), nullptr, 0, s.m, s.k, s.n));
      for (std::int64_t i = 0; i < s.m; ++i) {
        for (std::int64_t j = 0; j < s.n; ++j) {
          double sumabs = 0.0;
          for (std::int64_t p = 0; p < s.k; ++p) {
            const double av = a[static_cast<std::size_t>(i * s.k + p)];
            const double bv = lut[stream[static_cast<std::size_t>(j * s.k + p)]];
            sumabs += std::fabs(av * bv);
          }
          const auto e = static_cast<std::size_t>(i * s.n + j);
          const double diff = std::fabs(static_cast<double>(c_plam[e]) - c_ref[e]);
          EXPECT_LE(diff, kernels::kPlamMaxRelError * sumabs +
                              1e-5 * std::fabs(c_ref[e]) + 1e-30)
              << s.m << "x" << s.k << "x" << s.n << " @" << i << "," << j;
          if (c_plam[e] != c_ref[e]) ++diffs;
        }
      }
    }
  }
  // The approximation must actually engage, or the bound is vacuous.
  EXPECT_GT(diffs, 0);
}

TEST(PlamGemm, CodedAOperandMatchesDecodedAOperand) {
  // The codes-codes plam kernel decodes A exactly and multiplies the same
  // way, so it must be bit-identical to the float-A plam kernel on the
  // decoded operand.
  std::vector<float> lut(32);
  Rng lrng(11);
  lut[0] = 0.0F;
  for (std::size_t i = 1; i < lut.size(); ++i) {
    lut[i] = static_cast<float>(lrng.gaussian());
  }
  const GemmShape s{6, 21, 13};
  Rng rng(13);
  std::vector<std::uint8_t> a_stream(static_cast<std::size_t>(s.m * s.k));
  std::vector<std::uint8_t> b_stream(static_cast<std::size_t>(s.n * s.k));
  for (auto& c : a_stream) c = static_cast<std::uint8_t>(rng.uniform(0.0, 31.4));
  for (auto& c : b_stream) c = static_cast<std::uint8_t>(rng.uniform(0.0, 31.4));
  const kernels::PackedCodesView av = plam_gemm::view_of(a_stream, lut);
  const kernels::PackedCodesView bv = plam_gemm::view_of(b_stream, lut);
  std::vector<float> a_dec(a_stream.size());
  for (std::size_t i = 0; i < a_stream.size(); ++i) a_dec[i] = lut[a_stream[i]];

  const std::size_t cn = static_cast<std::size_t>(s.m * s.n);
  std::vector<float> c_float_a(cn), c_coded_a(cn);
  ASSERT_TRUE(kernels::plam::gemm_codes_nt_rows(
      a_dec.data(), bv, nullptr, c_float_a.data(), nullptr, 0, s.m, s.k, s.n));
  ASSERT_TRUE(kernels::plam::gemm_codes_codes_nt_rows(
      av, bv, nullptr, c_coded_a.data(), nullptr, 0, s.m, s.k, s.n));
  EXPECT_TRUE(bitwise_equal(c_float_a.data(), c_coded_a.data(), s.m * s.n));
}

TEST(PlamGemm, CrossValidatesAgainstLpaDatapathSim) {
  // The plam kernel and the src/lpa systolic datapath are two independent
  // models of log-domain approximate multiplication over the *same*
  // quantized operands (LPFormat delegates to the CodeTable lpa encodes
  // through).  Exact kernel == double-GEMM reference bit-for-bit; each
  // approximation stays inside its own bound of that reference; and the
  // two approximations therefore bracket each other within the combined
  // bound — the cross-validation ISSUE.md asks for.
  const LPConfig wcfg{8, 2, 4, 0.5};
  const LPConfig acfg{8, 2, 4, 0.0};
  const std::int64_t m = 6, k = 19, n = 7;
  Tensor w({m, k});
  Tensor x({k, n});
  Rng rng(77);
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());

  const Tensor ref = lpa::lpa_gemm_reference(w, x, wcfg, acfg);
  const Tensor dp = lpa::lpa_gemm(w, x, wcfg, acfg);

  const LPFormat wf(wcfg);
  const LPFormat af(acfg);
  Tensor wq = w;
  quantize_inplace(wq, wf);
  Tensor xt({n, k});  // x^T: the coded-B^T layout matmul_nt_codes takes
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) xt.at2(j, p) = x.at2(p, j);
  }
  auto lut = build_decode_table(af);
  ASSERT_NE(lut, nullptr);
  auto codes = PackedCodes::pack(xt.data(), xt.shape(), af, lut, 8);
  ASSERT_TRUE(codes.has_value());
  Tensor xtq(xt.shape());
  codes->decode(xtq.data());

  const Tensor exact = matmul_nt_codes(wq, *codes, nullptr);
  const Tensor plam =
      matmul_nt_codes(wq, *codes, nullptr, kernels::ApproxMode::kPlam);

  // Same quantized operands, same double ascending-k accumulation: the
  // exact coded kernel must reproduce the lpa reference bit-for-bit.
  ASSERT_TRUE(bitwise_equal(exact.raw(), ref.raw(), m * n));

  // The lpa PE's 8-bit log<->linear converters bound each product's
  // relative error far tighter than Mitchell; test_lpa pins ~2% at the
  // accumulator, which we reuse here.
  constexpr double kDatapathRel = 0.02;
  int plam_diffs = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double sumabs = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        sumabs += std::fabs(static_cast<double>(wq.at2(i, p)) * xtq.at2(j, p));
      }
      const double r = ref.at2(i, j);
      EXPECT_LE(std::fabs(plam.at2(i, j) - r),
                kernels::kPlamMaxRelError * sumabs + 1e-6)
          << i << "," << j;
      EXPECT_LE(std::fabs(dp.at2(i, j) - r), kDatapathRel * sumabs + 1e-6)
          << i << "," << j;
      EXPECT_LE(std::fabs(plam.at2(i, j) - dp.at2(i, j)),
                (kernels::kPlamMaxRelError + kDatapathRel) * sumabs + 1e-6)
          << i << "," << j;
      if (plam.at2(i, j) != r) ++plam_diffs;
    }
  }
  EXPECT_GT(plam_diffs, 0);  // the approximate path really ran
}

}  // namespace
