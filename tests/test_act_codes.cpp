// End-to-end coded activation datapath tests.
//
// The contract under test: with coded activations on (the session
// default), inter-layer activations flow between weighted nodes as packed
// LP codes, and the logits are bit-identical to the float activation path
// — across models (CNN and ViT families), LP_THREADS (pinned in-process)
// and LP_KERNEL (the CI kernel A/B step re-runs this binary under
// LP_KERNEL=scalar and =avx2, and the ASan/TSan legs run it too).  On top
// of that: per-edge float fallback, capture hooks forcing the float path,
// the fused codes-codes GEMM/conv epilogues on odd shapes, and the
// encode-failure (non-finite) escape hatch.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/lp_format.h"
#include "core/packed_codes.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/session.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lp {
namespace {

struct PoolGuard {
  ~PoolGuard() { set_default_pool_threads(0); }
};

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  return o;
}

Tensor random_batch(int n, int c, int s, std::uint64_t seed) {
  Tensor x({n, c, s, s});
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  return x;
}

std::vector<LPConfig> varied_weight_cfgs(const nn::Model& m) {
  std::vector<LPConfig> cfgs;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const int n = 4 + static_cast<int>(s % 3) * 2;  // 4, 6, 8
    cfgs.push_back(LPConfig{n, n >= 6 ? 2 : 1, n / 2, centers[s]});
  }
  return cfgs;
}

std::vector<LPConfig> varied_act_cfgs(const std::vector<LPConfig>& w) {
  std::vector<LPConfig> cfgs;
  for (const LPConfig& c : w) cfgs.push_back(activation_config(c, 0.5));
  return cfgs;
}

std::vector<std::uint32_t> float_bits(const Tensor& t) {
  std::vector<std::uint32_t> bits;
  bits.reserve(static_cast<std::size_t>(t.numel()));
  for (const float v : t.data()) bits.push_back(std::bit_cast<std::uint32_t>(v));
  return bits;
}

bool bits_equal(const Tensor& a, const Tensor& b) {
  return float_bits(a) == float_bits(b);
}

// --- session level: coded vs float forward ---------------------------------

TEST(CodedActivations, ForwardBitIdenticalAcrossModelsAndThreads) {
  PoolGuard guard;
  for (const char* name : {"tiny_cnn", "tiny_vit"}) {
    const nn::Model m = nn::build_model(name, small_opts());
    const Tensor x = random_batch(4, 3, 16, 31);
    const auto w = varied_weight_cfgs(m);
    const auto a = varied_act_cfgs(w);

    std::vector<std::vector<std::uint32_t>> runs;
    for (const int threads : {1, 8}) {
      set_default_pool_threads(threads);

      runtime::SessionOptions float_opts;
      float_opts.coded_activations = false;
      runtime::InferenceSession float_session(m, float_opts);
      float_session.set_formats(w, a);
      nn::ActTraffic float_traffic;
      const auto ref = float_session.run(x, false, &float_traffic);
      EXPECT_EQ(float_traffic.coded_bytes, 0) << name;
      EXPECT_GT(float_traffic.float_bytes, 0) << name;

      runtime::InferenceSession coded_session(m);  // coded on by default
      coded_session.set_formats(w, a);
      nn::ActTraffic coded_traffic;
      const auto got = coded_session.run(x, false, &coded_traffic);

      ASSERT_TRUE(bits_equal(got.logits, ref.logits))
          << name << " threads=" << threads;
      // The coded path must actually engage — a silent all-float fallback
      // would make this test vacuous.
      EXPECT_GT(coded_traffic.coded_bytes, 0) << name;
      // Every coded edge replaced a float32 edge with <=16-bit codes, so
      // the float bytes eliminated must be at least 2x the coded bytes
      // added (4x at the 8-bit activation widths used here).
      EXPECT_GE(float_traffic.float_bytes - coded_traffic.float_bytes,
                2 * coded_traffic.coded_bytes)
          << name;
      runs.push_back(float_bits(got.logits));
    }
    EXPECT_EQ(runs[0], runs[1]) << name;  // threads=1 vs threads=8
  }
}

TEST(CodedActivations, ForwardBitIdenticalOnLargerZooModels) {
  // One single-thread pass over deeper zoo members: residual CNN with
  // strided/grouped convs (mobilenet uses ReLU6 + depthwise) and the
  // default-size tiny ViT with a bigger batch.
  for (const char* name : {"resnet18", "mobilenetv2"}) {
    const nn::Model m = nn::build_model(name, small_opts());
    const Tensor x = random_batch(2, 3, 16, 57);
    const auto w = varied_weight_cfgs(m);
    const auto a = varied_act_cfgs(w);

    runtime::SessionOptions float_opts;
    float_opts.coded_activations = false;
    runtime::InferenceSession float_session(m, float_opts);
    float_session.set_formats(w, a);
    const auto ref = float_session.run(x);

    runtime::InferenceSession coded_session(m);
    coded_session.set_formats(w, a);
    nn::ActTraffic traffic;
    const auto got = coded_session.run(x, false, &traffic);
    ASSERT_TRUE(bits_equal(got.logits, ref.logits)) << name;
    EXPECT_GT(traffic.coded_bytes, 0) << name;
  }
}

TEST(CodedActivations, FuseOffReproducesFusedForwardBitExactly) {
  // SessionOptions::fuse toggles only the float-in fused encode; both
  // settings must produce bit-identical logits (the fused pass applies
  // the same act_eval + nearest-index encode the unfused flow does) —
  // this is the invariant behind the BM_ForwardFused A/B benchmark.
  PoolGuard guard;
  set_default_pool_threads(4);
  for (const char* name : {"tiny_cnn", "tiny_vit"}) {
    const nn::Model m = nn::build_model(name, small_opts());
    const Tensor x = random_batch(4, 3, 16, 83);
    const auto w = varied_weight_cfgs(m);
    const auto a = varied_act_cfgs(w);

    runtime::InferenceSession fused(m);  // fuse defaults on
    fused.set_formats(w, a);
    nn::ActTraffic fused_traffic;
    const auto got = fused.run(x, false, &fused_traffic);

    runtime::SessionOptions unfused_opts;
    unfused_opts.fuse = false;
    runtime::InferenceSession unfused(m, unfused_opts);
    unfused.set_formats(w, a);
    nn::ActTraffic unfused_traffic;
    const auto ref = unfused.run(x, false, &unfused_traffic);

    ASSERT_TRUE(bits_equal(got.logits, ref.logits)) << name;
    // Same coded edges either way — fusion changes how codes are made,
    // never whether.
    EXPECT_EQ(fused_traffic.coded_bytes, unfused_traffic.coded_bytes) << name;
    EXPECT_EQ(fused_traffic.float_bytes, unfused_traffic.float_bytes) << name;
    EXPECT_GT(fused_traffic.coded_bytes, 0) << name;
  }
}

TEST(CodedActivations, PlamSessionRunsAndApproximationEngages) {
  // LP_APPROX=plam end-to-end smoke at the session level: the snapshot
  // executes, logits stay finite, and the approximate multiply actually
  // changes the result (kernel-level error bounds live in test_kernels).
  const nn::Model m = nn::build_model("tiny_vit", small_opts());
  const Tensor x = random_batch(2, 3, 16, 91);
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);

  runtime::SessionOptions exact_opts;
  exact_opts.approx = kernels::ApproxMode::kExact;  // env-robust reference
  runtime::InferenceSession exact(m, exact_opts);
  exact.set_formats(w, a);
  const auto ref = exact.run(x);

  runtime::SessionOptions plam_opts;
  plam_opts.approx = kernels::ApproxMode::kPlam;
  runtime::InferenceSession plam(m, plam_opts);
  plam.set_formats(w, a);
  const auto got = plam.run(x);

  ASSERT_EQ(got.logits.shape(), ref.logits.shape());
  for (const float v : got.logits.data()) ASSERT_TRUE(std::isfinite(v));
  EXPECT_FALSE(bits_equal(got.logits, ref.logits));
}

TEST(CodedActivations, CaptureHooksForceFloatPathAndStayBitIdentical) {
  // Pooled capture needs the dense activations, so a capturing run must
  // fall back to float on every edge — and still produce the same pooled
  // rows and logits as the float session.
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const Tensor x = random_batch(3, 3, 16, 91);
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);

  runtime::SessionOptions float_opts;
  float_opts.coded_activations = false;
  runtime::InferenceSession float_session(m, float_opts);
  float_session.set_formats(w, a);
  const auto ref = float_session.run(x, /*capture_pooled=*/true);

  runtime::InferenceSession coded_session(m);
  coded_session.set_formats(w, a);
  nn::ActTraffic traffic;
  const auto got = coded_session.run(x, /*capture_pooled=*/true, &traffic);
  EXPECT_EQ(traffic.coded_bytes, 0);
  ASSERT_TRUE(bits_equal(got.logits, ref.logits));
  EXPECT_EQ(got.pooled, ref.pooled);
}

TEST(CodedActivations, PerEdgeFloatFallback) {
  // A slot-sized act_coding span with null entries on odd slots: those
  // edges stay float, coded edges stay coded, logits unchanged.  Exercised
  // directly through the Model overload (the session builds all-or-nothing
  // spans; the per-edge contract must hold regardless).
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const Tensor x = random_batch(2, 3, 16, 13);
  const auto wc = varied_weight_cfgs(m);
  const auto ac = varied_act_cfgs(wc);
  const std::size_t n = m.num_slots();

  std::vector<std::unique_ptr<LPFormat>> storage;
  nn::QuantSpec spec;
  spec.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    storage.push_back(std::make_unique<LPFormat>(wc[s]));
    spec.weight_fmt[s] = storage.back().get();
    storage.push_back(std::make_unique<LPFormat>(ac[s]));
    spec.act_fmt[s] = storage.back().get();
  }
  const auto ref = m.forward_quantized(x, spec);

  const std::vector<Tensor> qweights = nn::quantize_weights(m, spec);
  std::vector<const Tensor*> wptrs(n);
  for (std::size_t s = 0; s < n; ++s) wptrs[s] = &qweights[s];
  const std::vector<const PackedCodes*> no_codes(n, nullptr);

  std::vector<nn::ActCoding> coding(n);  // all-null: pure float
  for (std::size_t s = 0; s < n; s += 2) {
    const LPFormat* fmt = static_cast<const LPFormat*>(spec.act_fmt[s]);
    auto lut = build_decode_table(*fmt);
    ASSERT_NE(lut, nullptr);
    const int bits = PackedCodes::bits_for(lut->size(), 8);
    coding[s] = nn::ActCoding{fmt->quant_index(), std::move(lut), bits};
  }
  nn::ActTraffic traffic;
  const auto got = m.forward_with_weights(x, wptrs, no_codes, spec, coding,
                                          &traffic);
  ASSERT_TRUE(bits_equal(got.logits, ref.logits));
  EXPECT_GT(traffic.coded_bytes, 0);
  EXPECT_GT(traffic.float_bytes, 0);  // the odd slots really produced float
}

// --- ops level: fused codes-codes GEMM/conv on odd shapes ------------------

struct CodedPair {
  std::optional<PackedCodes> codes;
  Tensor dense;
};

/// Quantize `t` through `fmt` on the activation-style (byte-aligned)
/// packed path, returning both representations (dense = the float path's
/// quantized tensor, bit-identical to decoding the codes).
CodedPair code_tensor(const Tensor& t, const LPFormat& fmt, int min_bits) {
  CodedPair out;
  auto lut = build_decode_table(fmt);
  EXPECT_NE(lut, nullptr);
  out.codes = PackedCodes::pack(t.data(), t.shape(), fmt, lut, min_bits);
  EXPECT_TRUE(out.codes.has_value());
  out.dense = t;
  quantize_inplace(out.dense, fmt);
  return out;
}

TEST(CodedGemm, CodesCodesMatchesFloatOnOddShapes) {
  const LPFormat wf(LPConfig{4, 1, 2, 1.0});   // 4-bit weights
  const LPFormat af(LPConfig{8, 2, 4, 0.25});  // 8-bit activations
  Rng rng(515);
  const struct {
    std::int64_t m, k, n;
  } shapes[] = {{1, 1, 1}, {3, 7, 5}, {5, 17, 9}, {16, 33, 16}, {8, 129, 31}};
  for (const auto& s : shapes) {
    Tensor a({s.m, s.k});
    Tensor b({s.n, s.k});
    Tensor bias({s.n});
    for (float& v : a.data()) v = static_cast<float>(rng.gaussian());
    for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
    for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());
    const CodedPair ca = code_tensor(a, af, /*min_bits=*/8);
    const CodedPair cb = code_tensor(b, wf, /*min_bits=*/0);
    const Tensor* bias_ptrs[] = {nullptr, &bias};
    for (const Tensor* bp : bias_ptrs) {
      const Tensor ref = matmul_nt(ca.dense, cb.dense, bp);
      const Tensor got = matmul_nt_codes_codes(*ca.codes, *cb.codes, bp);
      ASSERT_TRUE(bits_equal(got, ref))
          << s.m << "x" << s.k << "x" << s.n << (bp != nullptr ? " +bias" : "");
    }
  }
}

TEST(CodedGemm, FusedEncodeEpilogueMatchesQuantizeOfFloatResult) {
  const LPFormat wf(LPConfig{6, 2, 3, 0.5});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  Rng rng(929);
  Tensor a({7, 19});
  Tensor b({11, 19});
  Tensor bias({11});
  for (float& v : a.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());
  const CodedPair ca = code_tensor(a, af, 8);
  const CodedPair cb = code_tensor(b, wf, 0);

  auto out_lut = build_decode_table(af);
  ASSERT_NE(out_lut, nullptr);
  for (const int act :
       {kernels::kActNone, kernels::kActRelu, kernels::kActGelu}) {
    ActEncodeSpec enc{af.quant_index()->view(), out_lut,
                      PackedCodes::bits_for(out_lut->size(), 8), act};
    const auto coded = matmul_nt_codes_codes_enc(*ca.codes, *cb.codes, &bias,
                                                 enc);
    ASSERT_TRUE(coded.has_value()) << "act=" << act;

    // Reference: the float path — fused GEMM, nonlinearity, then one
    // quantize_batch pass — decoded codes must match bit-for-bit.
    Tensor ref = matmul_nt(ca.dense, cb.dense, &bias);
    for (float& v : ref.data()) v = kernels::act_eval(v, act);
    quantize_inplace(ref, af);
    Tensor got(coded->shape());
    coded->decode(got.data());
    ASSERT_TRUE(bits_equal(got, ref)) << "act=" << act;
  }
}

TEST(CodedGemm, FloatInFusedEncodeMatchesUnfusedFlow) {
  // The float-activation x coded-weight fusion (PR's tentpole): the
  // GEMM→bias→act→encode pass must produce exactly the codes the unfused
  // flow (finish the float block, act, quantize) produces.
  const LPFormat wf(LPConfig{6, 2, 3, 0.5});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  Rng rng(1213);
  Tensor a({9, 23});
  Tensor b({13, 23});
  Tensor bias({13});
  for (float& v : a.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());
  const CodedPair cb = code_tensor(b, wf, 0);

  auto out_lut = build_decode_table(af);
  ASSERT_NE(out_lut, nullptr);
  for (const int act :
       {kernels::kActNone, kernels::kActRelu, kernels::kActGelu}) {
    const ActEncodeSpec enc{af.quant_index()->view(), out_lut,
                            PackedCodes::bits_for(out_lut->size(), 8), act};
    const auto coded = matmul_nt_codes_enc(a, *cb.codes, &bias, enc);
    ASSERT_TRUE(coded.has_value()) << "act=" << act;

    Tensor ref = matmul_nt_codes(a, *cb.codes, &bias);
    for (float& v : ref.data()) v = kernels::act_eval(v, act);
    quantize_inplace(ref, af);
    Tensor got(coded->shape());
    coded->decode(got.data());
    ASSERT_TRUE(bits_equal(got, ref)) << "act=" << act;
  }
}

TEST(CodedGemm, FloatInFusedEncodeUnderPlamMatchesPlamThenEncode) {
  // The fused epilogue composes with the approximate multiply: fused plam
  // codes must equal encoding the unfused plam float result.
  const LPFormat wf(LPConfig{6, 2, 3, 0.5});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  Rng rng(1719);
  Tensor a({7, 31});
  Tensor b({11, 31});
  for (float& v : a.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
  const CodedPair cb = code_tensor(b, wf, 0);
  auto out_lut = build_decode_table(af);
  ASSERT_NE(out_lut, nullptr);
  const ActEncodeSpec enc{af.quant_index()->view(), out_lut,
                          PackedCodes::bits_for(out_lut->size(), 8),
                          kernels::kActRelu};
  const auto coded = matmul_nt_codes_enc(a, *cb.codes, nullptr, enc,
                                         kernels::ApproxMode::kPlam);
  ASSERT_TRUE(coded.has_value());
  Tensor ref =
      matmul_nt_codes(a, *cb.codes, nullptr, kernels::ApproxMode::kPlam);
  const Tensor exact = matmul_nt_codes(a, *cb.codes, nullptr);
  EXPECT_FALSE(bits_equal(ref, exact));  // the approximation really ran
  for (float& v : ref.data()) v = kernels::act_eval(v, kernels::kActRelu);
  quantize_inplace(ref, af);
  Tensor got(coded->shape());
  coded->decode(got.data());
  ASSERT_TRUE(bits_equal(got, ref));
}

TEST(CodedConv, FloatInFusedEncodeMatchesUnfusedFlow) {
  // conv2d_codes_enc: float input, coded weights, fused encode epilogue —
  // same contract as the GEMM variant, across padding/groups/stride.
  const LPFormat wf(LPConfig{4, 1, 2, 0.5});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  auto lut = build_decode_table(af);
  ASSERT_NE(lut, nullptr);
  Rng rng(2311);
  const struct {
    std::int64_t n, c, h, co, k, stride, padding, groups;
  } cases[] = {
      {1, 3, 7, 5, 3, 1, 1, 1},
      {2, 4, 9, 6, 3, 2, 1, 2},
      {1, 2, 5, 4, 1, 1, 0, 1},
  };
  for (const auto& t : cases) {
    Tensor input({t.n, t.c, t.h, t.h});
    Tensor weight({t.co, t.c / t.groups, t.k, t.k});
    Tensor bias({t.co});
    for (float& v : input.data()) v = static_cast<float>(rng.gaussian());
    for (float& v : weight.data()) v = static_cast<float>(rng.gaussian());
    for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());
    const Conv2dSpec spec{t.stride, t.padding, t.groups};
    const CodedPair cw = code_tensor(weight, wf, 0);
    const ActEncodeSpec enc{af.quant_index()->view(), lut,
                            PackedCodes::bits_for(lut->size(), 8),
                            kernels::kActRelu};
    const auto coded = conv2d_codes_enc(input, *cw.codes, &bias, spec, enc);
    ASSERT_TRUE(coded.has_value()) << t.c << "ch groups=" << t.groups;

    Tensor ref = conv2d_codes(input, *cw.codes, &bias, spec);
    for (float& v : ref.data()) v = kernels::act_eval(v, kernels::kActRelu);
    quantize_inplace(ref, af);
    Tensor got(coded->shape());
    coded->decode(got.data());
    ASSERT_TRUE(bits_equal(got, ref)) << t.c << "ch groups=" << t.groups;
  }
}

TEST(CodedGemm, EncodeFailsOnNonFiniteOutput) {
  const LPFormat wf(LPConfig{4, 1, 2, 0.0});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  Tensor a({2, 3});
  Tensor b({2, 3});
  for (float& v : a.data()) v = 1.0F;
  for (float& v : b.data()) v = 1.0F;
  Tensor bias({2});
  bias[0] = std::numeric_limits<float>::infinity();
  bias[1] = 0.0F;
  const CodedPair ca = code_tensor(a, af, 8);
  const CodedPair cb = code_tensor(b, wf, 0);
  auto out_lut = build_decode_table(af);
  const ActEncodeSpec enc{af.quant_index()->view(), out_lut,
                          PackedCodes::bits_for(out_lut->size(), 8),
                          kernels::kActNone};
  EXPECT_FALSE(
      matmul_nt_codes_codes_enc(*ca.codes, *cb.codes, &bias, enc).has_value());
  // encode_acts hits the same escape hatch on a non-finite float tensor.
  Tensor nf({2});
  nf[0] = std::numeric_limits<float>::quiet_NaN();
  nf[1] = 1.0F;
  EXPECT_FALSE(encode_acts(nf, enc).has_value());
}

TEST(CodedGemm, Rank3ActivationOperandFlattensToRows) {
  // [B, T, K] coded activations against [N, K] coded weights — the linear
  // layer's token layout — must equal the flattened rank-2 product.
  const LPFormat wf(LPConfig{8, 2, 4, 0.5});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  Rng rng(33);
  Tensor a({2, 5, 9});
  Tensor b({4, 9});
  for (float& v : a.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
  const CodedPair ca = code_tensor(a, af, 8);
  const CodedPair cb = code_tensor(b, wf, 0);
  const Tensor got = matmul_nt_codes_codes(*ca.codes, *cb.codes, nullptr);
  ASSERT_EQ(got.dim(0), 10);
  ASSERT_EQ(got.dim(1), 4);
  const Tensor ref =
      matmul_nt(ca.dense.reshaped({10, 9}), cb.dense, nullptr);
  ASSERT_TRUE(bits_equal(got, ref));
}

TEST(CodedConv, CodesCodesMatchesFloatWithPaddingAndGroups) {
  const LPFormat wf(LPConfig{4, 1, 2, 0.5});
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  auto in_lut = build_decode_table(af);
  ASSERT_NE(in_lut, nullptr);
  const std::int64_t zc = lut_zero_code(*in_lut);
  ASSERT_GE(zc, 0) << "LP activation table must contain exact +0.0f";

  Rng rng(4711);
  const struct {
    std::int64_t n, c, h, co, k, stride, padding, groups;
  } cases[] = {
      {1, 3, 7, 5, 3, 1, 1, 1},   // odd spatial, padded
      {2, 4, 9, 6, 3, 2, 1, 2},   // strided, grouped
      {2, 6, 8, 6, 3, 1, 1, 6},   // depthwise
      {1, 2, 5, 4, 1, 1, 0, 1},   // 1x1, no padding
  };
  for (const auto& t : cases) {
    Tensor input({t.n, t.c, t.h, t.h});
    Tensor weight({t.co, t.c / t.groups, t.k, t.k});
    Tensor bias({t.co});
    for (float& v : input.data()) v = static_cast<float>(rng.gaussian());
    for (float& v : weight.data()) v = static_cast<float>(rng.gaussian());
    for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());
    const Conv2dSpec spec{t.stride, t.padding, t.groups};
    const CodedPair ci = code_tensor(input, af, 8);
    const CodedPair cw = code_tensor(weight, wf, 0);

    const Tensor ref = conv2d(ci.dense, cw.dense, &bias, spec);
    const Tensor got = conv2d_codes_codes(
        *ci.codes, *cw.codes, &bias, spec, static_cast<std::uint32_t>(zc));
    ASSERT_TRUE(bits_equal(got, ref))
        << t.c << "ch groups=" << t.groups << " pad=" << t.padding;

    // Fused encode epilogue: decode must equal relu+quantize of the float
    // conv output.
    ActEncodeSpec enc{af.quant_index()->view(), in_lut,
                      PackedCodes::bits_for(in_lut->size(), 8),
                      kernels::kActRelu};
    const auto coded = conv2d_codes_codes_enc(*ci.codes, *cw.codes, &bias,
                                              spec,
                                              static_cast<std::uint32_t>(zc),
                                              enc);
    ASSERT_TRUE(coded.has_value());
    Tensor fused_ref = ref;
    for (float& v : fused_ref.data()) {
      v = kernels::act_eval(v, kernels::kActRelu);
    }
    quantize_inplace(fused_ref, af);
    Tensor decoded(coded->shape());
    coded->decode(decoded.data());
    ASSERT_TRUE(bits_equal(decoded, fused_ref));
  }
}

TEST(CodedOps, EncodeActsRoundTripOnOddSizes) {
  const LPFormat af(LPConfig{8, 2, 4, 0.0});
  auto lut = build_decode_table(af);
  ASSERT_NE(lut, nullptr);
  Rng rng(61);
  for (const std::int64_t n : {1LL, 3LL, 255LL, 257LL, 40000LL}) {
    Tensor t({n});
    for (float& v : t.data()) v = static_cast<float>(rng.gaussian());
    const ActEncodeSpec enc{af.quant_index()->view(), lut,
                            PackedCodes::bits_for(lut->size(), 8),
                            kernels::kActNone};
    const auto coded = encode_acts(t, enc);
    ASSERT_TRUE(coded.has_value()) << n;
    Tensor ref = t;
    quantize_inplace(ref, af);
    Tensor got(coded->shape());
    coded->decode(got.data());
    ASSERT_TRUE(bits_equal(got, ref)) << n;
  }
}

// --- cache stats: weight vs activation LUT split ---------------------------

TEST(CodedActivations, CacheStatsSplitWeightAndActLutBytes) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  runtime::InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  session.set_formats(w, a);
  const runtime::CacheStats st = session.stats();
  EXPECT_GT(st.lut_bytes, 0U);
  EXPECT_GT(st.act_lut_bytes, 0U);
  // Both LUT pools are charged inside the physical byte total.
  EXPECT_LE(st.lut_bytes + st.act_lut_bytes, st.bytes);

  // With coded activations off, no activation LUTs are interned.
  runtime::SessionOptions opts;
  opts.coded_activations = false;
  runtime::InferenceSession plain(m, opts);
  plain.set_formats(w, a);
  EXPECT_EQ(plain.stats().act_lut_bytes, 0U);
  EXPECT_GT(plain.stats().lut_bytes, 0U);
}

}  // namespace
}  // namespace lp
