// Statistics helpers and comparison-format tests.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <memory>

#include "core/accuracy_profile.h"
#include "core/quant_index.h"
#include "core/quant_rule.h"
#include "formats/adaptivfloat.h"
#include "formats/flint.h"
#include "formats/lns.h"
#include "formats/minifloat.h"
#include "formats/posit.h"
#include "formats/uniform_int.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace lp {
namespace {

TEST(Stats, MeanVarianceKnownValues) {
  const std::vector<float> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(std::span<const float>(xs)), 2.5);
  EXPECT_DOUBLE_EQ(variance(std::span<const float>(xs)), 1.25);
}

TEST(Stats, KurtosisOfGaussianNearZero) {
  Rng rng(123);
  std::vector<float> xs(20000);
  for (auto& x : xs) x = static_cast<float>(rng.gaussian());
  EXPECT_NEAR(kurtosis3(xs), 0.0, 0.15);
}

TEST(Stats, KurtosisOfLaplacePositive) {
  Rng rng(321);
  std::vector<float> xs(20000);
  for (auto& x : xs) x = static_cast<float>(rng.laplace(1.0));
  EXPECT_NEAR(kurtosis3(xs), 3.0, 0.6);  // Laplace excess kurtosis = 3
}

TEST(Stats, KurtosisConstantIsZero) {
  const std::vector<float> xs(10, 4.0F);
  EXPECT_EQ(kurtosis3(xs), 0.0);
}

TEST(Stats, RmseAndMae) {
  const std::vector<float> a{0, 0, 0, 0};
  const std::vector<float> b{1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(rmse(a, b), 1.0);
  EXPECT_DOUBLE_EQ(mae(a, b), 1.0);
  EXPECT_THROW((void)rmse(a, std::vector<float>{1.0F}), std::invalid_argument);
}

TEST(Stats, KlDivergenceZeroForIdenticalSamples) {
  Rng rng(5);
  std::vector<float> a(4000);
  for (auto& x : a) x = static_cast<float>(rng.gaussian());
  EXPECT_NEAR(kl_divergence_hist(a, a), 0.0, 1e-9);
  // Shifted distribution must diverge more.
  std::vector<float> b = a;
  for (auto& x : b) x += 3.0F;
  EXPECT_GT(kl_divergence_hist(a, b), 0.1);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<float> xs{0, 10, 20, 30, 40};
  EXPECT_FLOAT_EQ(quantile(xs, 0.0), 0.0F);
  EXPECT_FLOAT_EQ(quantile(xs, 1.0), 40.0F);
  EXPECT_FLOAT_EQ(quantile(xs, 0.5), 20.0F);
  EXPECT_FLOAT_EQ(quantile(xs, 0.25), 10.0F);
}

TEST(Stats, CosineSimilarity) {
  const std::vector<float> a{1, 0};
  const std::vector<float> b{0, 1};
  const std::vector<float> c{2, 0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 1.0);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(99);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += c.uniform();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4U);
  EXPECT_TRUE(seen.count(2) == 1 && seen.count(5) == 1);
}

TEST(Posit, StandardPosit8Es0KnownValues) {
  // posit<8,0>: code 0x40 = 1.0, maxpos = 2^6 = 64, minpos = 2^-6.
  EXPECT_DOUBLE_EQ(PositFormat::decode(0x40, 8, 0), 1.0);
  EXPECT_DOUBLE_EQ(PositFormat::decode(0x7F, 8, 0), 64.0);
  EXPECT_DOUBLE_EQ(PositFormat::decode(0x01, 8, 0), std::ldexp(1.0, -6));
  // 0x48 = 0b0100_1000: k=0, f=0.125 -> 1.125... regime "10", tail "01000".
  EXPECT_DOUBLE_EQ(PositFormat::decode(0x48, 8, 0), 1.25);
}

TEST(Posit, NegativesMirrorPositives) {
  const PositFormat p(8, 1);
  const auto vals = p.all_values();
  for (double v : vals) {
    if (v == 0.0) continue;
    EXPECT_NE(std::find(vals.begin(), vals.end(), -v), vals.end());
  }
}

TEST(Posit, Posit16HasTaperedAccuracy) {
  const PositFormat p(10, 1);
  const auto prof = accuracy_profile(p);
  ASSERT_GT(prof.size(), 10U);
  // Accuracy near 1.0 should exceed accuracy near maxpos.
  double acc_near_one = 0.0, acc_near_max = 0.0;
  for (const auto& pt : prof) {
    if (std::fabs(pt.log2_value) < 0.6) acc_near_one = std::max(acc_near_one, pt.decimal_accuracy);
  }
  acc_near_max = prof.back().decimal_accuracy;
  EXPECT_GT(acc_near_one, acc_near_max);
}

TEST(AdaptivFloat, CalibrationCoversMaxValue) {
  std::vector<float> data{0.01F, -0.5F, 0.3F, 2.7F};
  const auto fmt = AdaptivFloatFormat::calibrated(8, 3, data);
  EXPECT_NEAR(fmt.quantize(2.7), 2.7, 0.2);
  // Far beyond the max it saturates rather than overflowing.
  EXPECT_LE(std::fabs(fmt.quantize(1e6)), 16.0);
}

TEST(AdaptivFloat, FlatAccuracyAcrossRange) {
  const AdaptivFloatFormat fmt(8, 4, 7);
  const auto prof = accuracy_profile(fmt);
  ASSERT_GT(prof.size(), 20U);
  // Compare accuracy at small vs mid magnitudes: spread should be modest
  // (< 1 decimal digit) since floats have flat relative accuracy.
  std::vector<double> accs;
  for (const auto& pt : prof) {
    if (pt.value > 1e-3 && pt.value < 1e2) accs.push_back(pt.decimal_accuracy);
  }
  ASSERT_GT(accs.size(), 10U);
  const double mx = *std::max_element(accs.begin(), accs.end());
  const double mn = *std::min_element(accs.begin(), accs.end());
  EXPECT_LT(mx - mn, 1.0);
}

TEST(UniformInt, GridSpacingAndSaturation) {
  const UniformIntFormat fmt(4, 0.5);  // values -3.5..3.5 step 0.5
  EXPECT_DOUBLE_EQ(fmt.quantize(0.6), 0.5);
  EXPECT_DOUBLE_EQ(fmt.quantize(0.76), 1.0);
  EXPECT_DOUBLE_EQ(fmt.quantize(100.0), 3.5);
  EXPECT_DOUBLE_EQ(fmt.quantize(-100.0), -3.5);
}

TEST(UniformInt, CalibrationQuantileClips) {
  std::vector<float> data(100, 0.1F);
  data[0] = 100.0F;  // outlier
  const auto clipped = UniformIntFormat::calibrated(8, data, 0.95);
  const auto full = UniformIntFormat::calibrated(8, data, 1.0);
  EXPECT_LT(clipped.scale(), full.scale());
}

TEST(Lns, ValuesAreLogUniform) {
  const LnsFormat fmt(6, 2, 0.0);
  const auto vals = fmt.all_values();
  // Positive values should have constant ratio 2^(1/4).
  std::vector<double> pos;
  for (double v : vals) {
    if (v > 0) pos.push_back(v);
  }
  ASSERT_GT(pos.size(), 4U);
  const double ratio = pos[1] / pos[0];
  for (std::size_t i = 2; i < pos.size(); ++i) {
    EXPECT_NEAR(pos[i] / pos[i - 1], ratio, 1e-9);
  }
}

TEST(MiniFloat, E4M3HasSubnormals) {
  const auto fmt = MiniFloatFormat::e4m3();
  const auto vals = fmt.all_values();
  std::vector<double> pos;
  for (double v : vals) {
    if (v > 0) pos.push_back(v);
  }
  // Smallest subnormal of E4M3 is 2^-9.
  EXPECT_DOUBLE_EQ(pos.front(), std::ldexp(1.0, -9));
}

TEST(Flint, CalibratedRangeMatchesData) {
  std::vector<float> data{0.2F, -1.5F, 0.01F};
  const auto fmt = FlintFormat::calibrated(4, data);
  EXPECT_NEAR(fmt.quantize(1.5), 1.5, 0.41);
  EXPECT_DOUBLE_EQ(fmt.quantize(0.0), 0.0);
}

TEST(Table, FormatsRowsAndChecksArity) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("a"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,b\n1,2\n");
}

TEST(NumberFormatBatch, BitExactWithScalarAcrossFormats) {
  std::vector<std::unique_ptr<NumberFormat>> fmts;
  fmts.push_back(std::make_unique<PositFormat>(8, 1));
  fmts.push_back(std::make_unique<UniformIntFormat>(8, 0.1));
  fmts.push_back(std::make_unique<UniformIntFormat>(4, 0.5));
  fmts.push_back(std::make_unique<LnsFormat>(6, 2, 0.0));
  fmts.push_back(std::make_unique<MiniFloatFormat>(MiniFloatFormat::e4m3()));
  fmts.push_back(std::make_unique<AdaptivFloatFormat>(8, 4, 7));
  fmts.push_back(std::make_unique<FlintFormat>(4, 1.0));
  Rng rng(555);
  for (const auto& fmt : fmts) {
    std::vector<float> xs;
    const auto vals = fmt->all_values();
    const float inf = std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      xs.push_back(static_cast<float>(vals[i]));
      if (i + 1 < vals.size()) {
        // The midpoint and its float neighbours exercise the tie rule.
        const float m =
            static_cast<float>(vals[i] + (vals[i + 1] - vals[i]) * 0.5);
        xs.push_back(m);
        xs.push_back(std::nextafterf(m, -inf));
        xs.push_back(std::nextafterf(m, inf));
      }
    }
    for (float s : {0.0F, -0.0F, inf, -inf,
                    std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::max(),
                    -std::numeric_limits<float>::max()}) {
      xs.push_back(s);
    }
    for (int i = 0; i < 1000; ++i) {
      xs.push_back(static_cast<float>(rng.gaussian(0.0, 4.0)));
    }
    std::vector<float> batch = xs;
    (void)fmt->quantize_batch(batch);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto ref = static_cast<float>(fmt->quantize(xs[i]));
      if (std::isnan(ref)) {
        EXPECT_TRUE(std::isnan(batch[i])) << fmt->name() << " @ " << xs[i];
      } else {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(batch[i]),
                  std::bit_cast<std::uint32_t>(ref))
            << fmt->name() << " input " << xs[i] << " got " << batch[i]
            << " want " << ref;
      }
    }
  }
}

TEST(NumberFormatBatch, FuzzScalarBatchAndIndexAgreeAcrossFormats) {
  // Round-trip audit of every format family against the shared nearest/tie
  // rule (core/quant_rule.h): the scalar quantize(), the batched
  // quantize_batch()/QuantIndex path, and nearest_indices() must agree
  // bit-for-bit on wide log-magnitude fuzz — including posit es boundaries
  // (es = n-3), AdaptivFloat tables pushed into the float-subnormal range,
  // flint's posit-lattice scaling, and inputs down in the denormals.
  std::vector<std::unique_ptr<NumberFormat>> fmts;
  fmts.push_back(std::make_unique<PositFormat>(8, 0));
  fmts.push_back(std::make_unique<PositFormat>(8, 2));
  fmts.push_back(std::make_unique<PositFormat>(6, 3));   // es == n-3 cap
  fmts.push_back(std::make_unique<PositFormat>(2, 0));   // minimal width
  fmts.push_back(std::make_unique<PositFormat>(16, 2));
  fmts.push_back(std::make_unique<FlintFormat>(8, 1.0));
  fmts.push_back(std::make_unique<FlintFormat>(8, 0.0123));
  fmts.push_back(std::make_unique<AdaptivFloatFormat>(8, 4, 10));
  fmts.push_back(std::make_unique<AdaptivFloatFormat>(8, 4, 160));  // denormal
  fmts.push_back(std::make_unique<AdaptivFloatFormat>(8, 4, -115)); // > FLT_MAX
  fmts.push_back(std::make_unique<LnsFormat>(8, 3, 120.0));
  fmts.push_back(std::make_unique<MiniFloatFormat>(MiniFloatFormat::e5m2()));
  fmts.push_back(std::make_unique<UniformIntFormat>(8, 1e-43));  // denormal grid
  Rng rng(808);
  for (const auto& fmt : fmts) {
    const auto values = fmt->all_values();
    std::vector<float> xs;
    for (int i = 0; i < 4000; ++i) {
      const double mag = std::exp2(rng.uniform(-150.0, 130.0));
      xs.push_back(static_cast<float>(rng.coin(0.5) ? mag : -mag));
    }
    xs.push_back(1e-44F);   // float denormals
    xs.push_back(-1e-44F);
    // Activation-shaped adversaria for the coded-activation emission path:
    // exact tie midpoints between adjacent representable values (the
    // encode epilogue must take the same side the float path takes), a
    // run of exact zeros (ReLU output), and explicit ±inf.
    const std::size_t mid_step = values.size() / 64 + 1;
    for (std::size_t i = 0; i + 1 < values.size(); i += mid_step) {
      xs.push_back(
          static_cast<float>(values[i] + (values[i + 1] - values[i]) * 0.5));
    }
    for (int i = 0; i < 16; ++i) xs.push_back(0.0F);
    xs.push_back(std::numeric_limits<float>::infinity());
    xs.push_back(-std::numeric_limits<float>::infinity());
    std::vector<float> batch = xs;
    (void)fmt->quantize_batch(batch);
    std::vector<std::uint32_t> idx(xs.size());
    const QuantIndex index(values);
    index.nearest_indices(xs, idx);
    // Coded emission must agree with nearest_indices entry-for-entry, and
    // decoding each code through decode_table() must reproduce the batched
    // float bit-for-bit — the alignment contract the end-to-end coded
    // activation datapath rests on.
    std::vector<std::uint32_t> codes(xs.size(), 0xDEADBEEFU);
    ASSERT_TRUE(fmt->quantize_codes_batch(xs, codes)) << fmt->name();
    const std::vector<float> lut = fmt->decode_table();
    ASSERT_EQ(lut.size(), values.size()) << fmt->name();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(codes[i], idx[i]) << fmt->name() << " code at " << xs[i];
      if (codes[i] != QuantIndex::kInvalid) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(lut[codes[i]]),
                  std::bit_cast<std::uint32_t>(batch[i]))
            << fmt->name() << " decode mismatch at " << xs[i];
      }
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double scalar = fmt->quantize(xs[i]);
      if (!std::isfinite(xs[i])) {
        // +-inf (from double magnitudes beyond float range): all three
        // paths must agree on the non-finite convention.
        EXPECT_TRUE(std::isnan(scalar)) << fmt->name();
        EXPECT_TRUE(std::isnan(batch[i])) << fmt->name();
        EXPECT_EQ(idx[i], QuantIndex::kInvalid) << fmt->name();
        continue;
      }
      // Scalar path must follow the shared rule exactly.
      const double rule = values[quant::nearest_index(values, xs[i])];
      ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar),
                std::bit_cast<std::uint64_t>(rule))
          << fmt->name() << " scalar diverges from quant_rule at " << xs[i];
      // Batched path must match the scalar path bit-for-bit.
      ASSERT_EQ(std::bit_cast<std::uint32_t>(batch[i]),
                std::bit_cast<std::uint32_t>(static_cast<float>(scalar)))
          << fmt->name() << " batch diverges at " << xs[i];
      // Index path must select the same table entry.
      ASSERT_LT(idx[i], values.size()) << fmt->name();
      ASSERT_EQ(std::bit_cast<std::uint64_t>(values[idx[i]]),
                std::bit_cast<std::uint64_t>(scalar))
          << fmt->name() << " nearest_indices diverges at " << xs[i];
    }
  }
}

TEST(NumberFormatBatch, TieRoundsTowardSmallerMagnitude) {
  // UniformInt<4, 0.5> has values ... 0.5, 1.0 ...; 0.75 is an exact float
  // midpoint, so the tie must resolve toward the smaller magnitude.
  const UniformIntFormat fmt(4, 0.5);
  std::vector<float> xs{0.75F, -0.75F};
  (void)fmt.quantize_batch(xs);
  EXPECT_EQ(xs[0], 0.5F);
  EXPECT_EQ(xs[1], -0.5F);
}

TEST(NumberFormatBatch, DefaultPathMatchesScalarLoop) {
  // A format without an enumerable table falls back to the base
  // implementation, which must behave exactly like the seed's scalar loop.
  class RoundingFormat final : public NumberFormat {
   public:
    [[nodiscard]] double quantize(double v) const override {
      if (!std::isfinite(v)) return std::numeric_limits<double>::quiet_NaN();
      return std::nearbyint(v);
    }
    [[nodiscard]] std::vector<double> all_values() const override { return {}; }
    [[nodiscard]] std::string name() const override { return "round"; }
    [[nodiscard]] int bits() const override { return 32; }
  };
  const RoundingFormat fmt;
  std::vector<float> xs{0.4F, 1.6F, -2.5F, 7.0F};
  const std::vector<float> orig = xs;
  const double se = fmt.quantize_batch(xs);
  double ref_se = 0.0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    const double q = fmt.quantize(orig[i]);
    EXPECT_EQ(xs[i], static_cast<float>(q));
    const double d = static_cast<double>(orig[i]) - q;
    ref_se += d * d;
  }
  EXPECT_EQ(se, ref_se);
}

TEST(NumberFormatSpan, QuantizeSpanReturnsRmse) {
  const UniformIntFormat fmt(8, 0.1);
  std::vector<float> xs{0.04F, 0.26F, -0.13F};
  const double e = quantize_span(xs, fmt);
  EXPECT_FLOAT_EQ(xs[0], 0.0F);
  EXPECT_FLOAT_EQ(xs[1], 0.3F);
  EXPECT_FLOAT_EQ(xs[2], -0.1F);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 0.05);
}

}  // namespace
}  // namespace lp
