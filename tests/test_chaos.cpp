// Chaos tests: deterministic fault injection against the serving stack.
//
// Three layers of assertion, in increasing scope:
//
//   1. The lp::fault harness itself — plan parsing, arrival/fire
//      counters, SuspendScope, clear() — is deterministic.
//   2. Each injection point drives its library's *real* error path:
//      pool.task fails a chunk the way a throwing chunk body would, the
//      epilogue escape forces the documented unfused re-run, artifact
//      faults produce the same structured errors real corruption does,
//      and a failed snapshot publish consumes no version number.
//   3. The acceptance test: 8 concurrent clients against a Server with
//      faults firing mid-traffic — every future resolves (no hang, no
//      deadlock), and every request the faults did not touch returns
//      logits bit-identical to a fault-free serial run.  Runs under TSan
//      in CI with LP_THREADS=8 and an LP_FAULT plan.
//
// The artifact corruption matrix also lives here (satellite to the fault
// work): every corruption class yields its precise ArtifactErrorCode,
// and cold_start() degrades each of them to a re-quantized start that is
// bit-identical to a clean one.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/artifact.h"
#include "runtime/session.h"
#include "serve/server.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lp {
namespace {

using runtime::ArtifactErrorCode;
using runtime::ArtifactLoadError;
using runtime::ColdStartResult;
using runtime::InferenceSession;

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  return o;
}

Tensor random_batch(int n, int c, int s, std::uint64_t seed) {
  Tensor x({n, c, s, s});
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  return x;
}

std::vector<LPConfig> varied_weight_cfgs(const nn::Model& m, int phase = 0) {
  std::vector<LPConfig> cfgs;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const int n = 4 + static_cast<int>((s + phase) % 3) * 2;  // 4, 6, 8
    cfgs.push_back(LPConfig{n, n >= 6 ? 2 : 1, n / 2, centers[s]});
  }
  return cfgs;
}

std::vector<LPConfig> varied_act_cfgs(const std::vector<LPConfig>& w) {
  std::vector<LPConfig> cfgs;
  for (const LPConfig& c : w) cfgs.push_back(activation_config(c, 0.5));
  return cfgs;
}

std::vector<std::uint32_t> logit_bits(const Tensor& t) {
  std::vector<std::uint32_t> bits;
  bits.reserve(static_cast<std::size_t>(t.numel()));
  for (const float v : t.data()) bits.push_back(std::bit_cast<std::uint32_t>(v));
  return bits;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good()) << path;
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(raw.data()), size);
  return raw;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

/// FNV-1a over the artifact body — mirrors the on-disk spec
/// (runtime/artifact.h) so corruption tests can re-seal a patched body
/// and reach rejections that sit *behind* the checksum.
std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr std::size_t kChecksumOffset = 8;
constexpr std::size_t kVersionOffset = 4;

/// Recompute and patch the header checksum after a body edit.
void reseal(std::vector<std::uint8_t>& bytes) {
  const std::uint64_t sum =
      fnv1a64(bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
  std::memcpy(bytes.data() + kChecksumOffset, &sum, sizeof(sum));
}

/// Byte offset of the first stored decode-LUT float, walking the on-disk
/// layout documented in runtime/artifact.h.
std::size_t first_lut_float_offset(const std::vector<std::uint8_t>& bytes) {
  auto rd32 = [&](std::size_t at) {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  };
  auto rd64 = [&](std::size_t at) {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  };
  std::size_t at = kHeaderBytes;
  const std::uint32_t name_len = rd32(at);
  at += 4 + name_len;
  const std::uint64_t num_slots = rd64(at);
  at += 8;
  const std::uint8_t has_act = bytes[at];
  at += 1;
  at += 20 * num_slots * (1U + has_act);  // LPConfig = 3 x i32 + u64
  const std::uint64_t num_luts = rd64(at);
  EXPECT_GE(num_luts, 1U);
  at += 8;  // num_luts
  at += 8;  // first LUT's size field
  return at;
}

fault::TriggerPlan hits_plan(std::initializer_list<std::uint64_t> hits) {
  fault::TriggerPlan p;
  p.hits = hits;
  return p;
}

fault::TriggerPlan every_plan(std::uint64_t n) {
  fault::TriggerPlan p;
  p.every = n;
  return p;
}

fault::TriggerPlan after_plan(std::uint64_t n) {
  fault::TriggerPlan p;
  p.after = n;
  return p;
}

[[nodiscard]] ArtifactErrorCode load_error(InferenceSession& session,
                                           const std::string& path) {
  try {
    (void)session.load_artifact(path);
  } catch (const ArtifactLoadError& e) {
    return e.code();
  }
  return ArtifactErrorCode::kNone;
}

/// Every chaos test starts and ends disarmed, so gtest ordering and the
/// LP_FAULT env plan cannot leak between tests.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }
};

TEST_F(ChaosTest, PlanStringsFireOnExactArrivals) {
  fault::set_plan_string("pool.task@2+5;snapshot.publish@every:3");
  EXPECT_TRUE(fault::enabled());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fault::should_fail("pool.task"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true, false}));
  EXPECT_EQ(fault::arrivals("pool.task"), 6U);
  EXPECT_EQ(fault::fires("pool.task"), 2U);

  fired.clear();
  for (int i = 0; i < 7; ++i) {
    fired.push_back(fault::should_fail("snapshot.publish"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false}));

  fault::set_plan("artifact.read.checksum", after_plan(2));
  EXPECT_FALSE(fault::should_fail("artifact.read.checksum"));
  EXPECT_FALSE(fault::should_fail("artifact.read.checksum"));
  EXPECT_TRUE(fault::should_fail("artifact.read.checksum"));
  EXPECT_TRUE(fault::should_fail("artifact.read.checksum"));

  EXPECT_THROW(fault::set_plan_string("not.a.point@1"), std::invalid_argument);
  EXPECT_THROW(fault::set_plan_string("pool.task@"), std::invalid_argument);

  fault::clear();
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::arrivals("pool.task"), 0U);
  EXPECT_FALSE(fault::should_fail("pool.task"));  // disarmed: fast path
  EXPECT_EQ(fault::arrivals("pool.task"), 0U);    // ...which does not count
}

TEST_F(ChaosTest, SuspendScopeComputesFaultFreeReferences) {
  fault::set_plan("pool.task", every_plan(1));
  {
    const fault::SuspendScope quiet;
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(fault::should_fail("pool.task"));
  }
  // Suspended evaluations neither fired nor advanced the arrival counter.
  EXPECT_EQ(fault::arrivals("pool.task"), 0U);
  EXPECT_TRUE(fault::should_fail("pool.task"));
  EXPECT_EQ(fault::arrivals("pool.task"), 1U);
}

TEST_F(ChaosTest, PoolTaskFaultPropagatesLikeAThrowingChunk) {
  ThreadPool pool(2);
  fault::set_plan("pool.task", hits_plan({2}));
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.run_chunks(4, [&](std::int64_t) { executed.fetch_add(1); }),
      fault::InjectedFault);
  // The set drained: every chunk was claimed, exactly one arrival fired,
  // and the pool is healthy for the next submission.
  EXPECT_EQ(fault::arrivals("pool.task"), 4U);
  EXPECT_EQ(fault::fires("pool.task"), 1U);
  executed.store(0);
  pool.run_chunks(3, [&](std::int64_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 3);
}

TEST_F(ChaosTest, EpilogueEscapeFallsBackBitIdentical) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  InferenceSession session(m);
  session.set_formats(w, a);
  const Tensor x = random_batch(3, 3, 16, 77);
  const auto ref = logit_bits(session.run(x).logits);

  // Force every fused encode epilogue to report a non-finite escape: each
  // affected edge re-runs unfused — the documented fallback — and the
  // numbers cannot move.
  fault::set_plan("kernel.epilogue.nonfinite", every_plan(1));
  EXPECT_EQ(logit_bits(session.run(x).logits), ref);
  EXPECT_GT(fault::arrivals("kernel.epilogue.nonfinite"), 0U);
  EXPECT_EQ(fault::fires("kernel.epilogue.nonfinite"),
            fault::arrivals("kernel.epilogue.nonfinite"));
}

TEST_F(ChaosTest, PublishFaultConsumesNoVersionAndKeepsServingOldSnapshot) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w1 = varied_weight_cfgs(m, 0);
  const auto a1 = varied_act_cfgs(w1);
  const auto w2 = varied_weight_cfgs(m, 1);
  const auto a2 = varied_act_cfgs(w2);
  const Tensor x = random_batch(2, 3, 16, 55);

  InferenceSession ref2(m);
  ref2.set_formats(w2, a2);
  const auto bits_w2 = logit_bits(ref2.run(x).logits);

  InferenceSession session(m);
  session.set_formats(w1, a1);  // version 1
  const auto bits_w1 = logit_bits(session.run(x).logits);

  fault::set_plan("snapshot.publish", hits_plan({1}));
  EXPECT_THROW(session.set_formats(w2, a2), fault::InjectedFault);
  // The failed publish changed nothing visible: still version 1, still
  // the old assignment's numbers.
  ASSERT_NE(session.servable(), nullptr);
  EXPECT_EQ(session.servable()->version(), 1U);
  EXPECT_EQ(logit_bits(session.run(x).logits), bits_w1);

  // The retry publishes the *next consecutive* version — the fault did
  // not burn a sequence number.
  session.set_formats(w2, a2);
  EXPECT_EQ(session.servable()->version(), 2U);
  EXPECT_EQ(logit_bits(session.run(x).logits), bits_w2);
}

TEST_F(ChaosTest, ArtifactCorruptionMatrixYieldsPreciseCodes) {
  const std::string path = ::testing::TempDir() + "lp_chaos_artifact.bin";
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  InferenceSession writer(m);
  writer.set_formats(w, a);
  writer.save_artifact(path);
  const std::vector<std::uint8_t> good = file_bytes(path);
  const Tensor x = random_batch(2, 3, 16, 91);

  // Fault-free reference: what any healthy cold start must reproduce.
  InferenceSession ref(m);
  ref.set_formats(w, a);
  const auto ref_bits = logit_bits(ref.run(x).logits);

  struct Case {
    const char* name;
    ArtifactErrorCode code;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Case> cases;

  {  // Truncation mid-body.
    std::vector<std::uint8_t> b(good.begin(),
                                good.begin() + static_cast<std::ptrdiff_t>(
                                                   good.size() / 2));
    cases.push_back({"truncated", ArtifactErrorCode::kTruncated, std::move(b)});
  }
  {  // One flipped bit deep in the body.
    std::vector<std::uint8_t> b = good;
    b[b.size() / 2] ^= 0x10;
    cases.push_back({"bitflip", ArtifactErrorCode::kChecksum, std::move(b)});
  }
  {  // Wrong magic.
    std::vector<std::uint8_t> b = good;
    b[0] ^= 0xFF;
    cases.push_back({"magic", ArtifactErrorCode::kBadMagic, std::move(b)});
  }
  {  // Future format version (header is outside the checksum).
    std::vector<std::uint8_t> b = good;
    const std::uint32_t v = 99;
    std::memcpy(b.data() + kVersionOffset, &v, sizeof(v));
    cases.push_back({"version", ArtifactErrorCode::kVersionSkew, std::move(b)});
  }
  {  // Stored decode LUT disagrees with this build's table: flip the sign
     // of the first LUT entry and re-seal the checksum so the rejection
     // comes from the LUT cross-check, not the checksum.
    std::vector<std::uint8_t> b = good;
    b[first_lut_float_offset(b) + 3] ^= 0x80;
    reseal(b);
    cases.push_back({"lut", ArtifactErrorCode::kLutMismatch, std::move(b)});
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    write_file(path, c.bytes);
    InferenceSession fresh(m);
    EXPECT_EQ(load_error(fresh, path), c.code);
    EXPECT_EQ(fresh.servable(), nullptr);  // failed load published nothing

    // cold_start degrades to re-quantization — slow instead of dead —
    // and the result is bit-identical to a clean from-configs start.
    InferenceSession recover(m);
    const ColdStartResult r = recover.cold_start(path, w, a);
    EXPECT_FALSE(r.loaded);
    EXPECT_TRUE(r.requantized);
    EXPECT_EQ(r.error, c.code);
    EXPECT_FALSE(r.error_message.empty());
    EXPECT_EQ(r.version, 1U);
    EXPECT_EQ(logit_bits(recover.run(x).logits), ref_bits);

    // With fallback off, the result reports the failure and nothing is
    // published.
    InferenceSession strict(m);
    runtime::ColdStartOptions no_fallback;
    no_fallback.fallback_requantize = false;
    const ColdStartResult dead = strict.cold_start(path, w, a, no_fallback);
    EXPECT_FALSE(dead.loaded);
    EXPECT_FALSE(dead.requantized);
    EXPECT_EQ(dead.error, c.code);
    EXPECT_EQ(strict.servable(), nullptr);
  }

  {  // Artifact from a different model: kModelMismatch.
    write_file(path, good);
    nn::ZooOptions other = small_opts();
    other.classes = 4;
    const nn::Model m2 = nn::build_tiny_cnn(other);
    InferenceSession wrong(m2);
    EXPECT_EQ(load_error(wrong, path), ArtifactErrorCode::kModelMismatch);
  }

  // A healthy artifact cold-starts without quantizing anything.
  write_file(path, good);
  InferenceSession clean(m);
  const ColdStartResult ok = clean.cold_start(path, w, a);
  EXPECT_TRUE(ok.loaded);
  EXPECT_FALSE(ok.requantized);
  EXPECT_EQ(ok.error, ArtifactErrorCode::kNone);
  EXPECT_EQ(clean.stats().misses, 0U);
  EXPECT_EQ(logit_bits(clean.run(x).logits), ref_bits);
}

TEST_F(ChaosTest, InjectedArtifactFaultsDriveTheRealRejections) {
  const std::string path = ::testing::TempDir() + "lp_chaos_artifact2.bin";
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w = varied_weight_cfgs(m);
  InferenceSession writer(m);
  writer.set_formats(w, {});
  writer.save_artifact(path);

  // The file on disk is pristine; the faults force the load-path checks
  // down their failure arms.
  fault::set_plan("artifact.read.checksum", hits_plan({1}));
  InferenceSession s1(m);
  EXPECT_EQ(load_error(s1, path), ArtifactErrorCode::kChecksum);
  EXPECT_EQ(load_error(s1, path), ArtifactErrorCode::kNone);  // arrival 2: ok

  fault::clear();
  fault::set_plan("artifact.read.truncate", hits_plan({1}));
  InferenceSession s2(m);
  EXPECT_EQ(load_error(s2, path), ArtifactErrorCode::kTruncated);

  // cold_start recovers from an injected fault exactly as from real
  // corruption (the fallback re-quantizes; it does not re-read the file).
  fault::clear();
  fault::set_plan("artifact.read.checksum", hits_plan({1}));
  InferenceSession s3(m);
  const ColdStartResult r = s3.cold_start(path, w, {});
  EXPECT_TRUE(r.requantized);
  EXPECT_EQ(r.error, ArtifactErrorCode::kChecksum);
}

// The acceptance test: 8 concurrent clients, faults firing mid-traffic.
// Every future resolves (the test finishing is the no-deadlock proof),
// failures carry kInternal, and every non-faulted response is
// bit-identical to a fault-free serial run.  CI runs this under TSan
// with LP_THREADS=8 and an LP_FAULT plan (the env plan, when set, takes
// precedence over the built-in one).
TEST_F(ChaosTest, ConcurrentClientsSurviveInjectedFaults) {
  constexpr int kClients = 8;
  constexpr int kIters = 12;
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  InferenceSession session(m);
  session.set_formats(w, a);

  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before client threads spawn
  if (std::getenv("LP_FAULT") != nullptr) {
    fault::load_env();
  } else {
    // pool.task uses exact hits, not every:N — the number of pool chunks
    // per forward scales with LP_THREADS, so a periodic plan would fault
    // every request at high thread counts.  Four fires bounds the damage
    // to at most four failed requests at any pool width; the epilogue
    // plan stays periodic because its escape is recovered internally
    // (unfused re-run) and never fails a request.
    fault::set_plan_string(
        "pool.task@5+17+41+97;kernel.epilogue.nonfinite@every:11");
  }
  ASSERT_TRUE(fault::enabled());

  // Fault-free per-client references, computed with injection suspended
  // so the plan's arrival counters stay untouched until traffic starts.
  std::vector<Tensor> inputs;
  std::vector<std::vector<std::uint32_t>> refs;
  {
    const fault::SuspendScope quiet;
    for (int c = 0; c < kClients; ++c) {
      inputs.push_back(random_batch(1, 3, 16, 4000 + c));
      refs.push_back(logit_bits(session.run(inputs.back()).logits));
    }
  }

  serve::ServerOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::microseconds{200};
  serve::Server server(session.publisher(), opts);

  std::atomic<int> mismatches{0};
  std::atomic<int> ok_count{0};
  std::atomic<int> fault_count{0};
  std::atomic<int> unexpected_status{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int it = 0; it < kIters; ++it) {
        serve::Response resp =
            server.submit(inputs[static_cast<std::size_t>(c)]).get();
        if (resp.ok()) {
          ok_count.fetch_add(1);
          if (logit_bits(resp.logits) != refs[static_cast<std::size_t>(c)]) {
            mismatches.fetch_add(1);
          }
        } else if (resp.status == serve::ServeStatus::kInternal) {
          fault_count.fetch_add(1);
        } else {
          unexpected_status.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(unexpected_status.load(), 0);
  EXPECT_EQ(ok_count.load() + fault_count.load(), kClients * kIters);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.responses, static_cast<std::uint64_t>(kClients * kIters));
  EXPECT_EQ(st.failures, static_cast<std::uint64_t>(fault_count.load()));
  // The harness provably engaged (some point saw traffic), and at least
  // some requests still succeeded through the faults.
  EXPECT_GT(fault::arrivals("pool.task") +
                fault::arrivals("kernel.epilogue.nonfinite"),
            0U);
  EXPECT_GT(ok_count.load(), 0);
}

}  // namespace
}  // namespace lp
