// Cycle-level simulator tests: tiling arithmetic, precision snapping,
// conservation invariants, and the architecture-level orderings the paper's
// Table 3 / Fig. 6 rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "lpq/fitness.h"
#include "nn/zoo.h"
#include "runtime/session.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace lp::sim {
namespace {

nn::LayerWorkload gemm(std::int64_t m, std::int64_t k, std::int64_t n,
                       int slot = 0) {
  nn::LayerWorkload wl;
  wl.name = "gemm";
  wl.m = m;
  wl.k = k;
  wl.n = n;
  wl.weight_slot = slot;
  return wl;
}

TEST(SnapWidth, PicksSmallestSupportedAtLeast) {
  const auto ant = lpa::make_ant();
  EXPECT_EQ(snap_width(ant, 2), 4);
  EXPECT_EQ(snap_width(ant, 4), 4);
  EXPECT_EQ(snap_width(ant, 5), 8);
  EXPECT_EQ(snap_width(ant, 8), 8);
  const auto af = lpa::make_adaptivfloat();
  EXPECT_EQ(snap_width(af, 2), 8);
}

TEST(Simulate, SingleTileCycleCount) {
  // 8x8 weights, N=32 activations on an 8x8 array at 8-bit: one tile,
  // cycles = N + rows + cols = 48.
  const auto lpa_m = lpa::make_lpa();
  const auto r = simulate(lpa_m, {gemm(8, 8, 32)},
                          PrecisionMap::uniform(1, 8, 8));
  EXPECT_EQ(r.total_cycles, 32 + 8 + 8);
  EXPECT_EQ(r.total_macs, 8 * 8 * 32);
}

TEST(Simulate, PackingQuartersTheTilesAtTwoBit) {
  const auto lpa_m = lpa::make_lpa();
  // M = 64 outputs: at 8-bit -> 8 column tiles; at 2-bit (packing 4) -> 2.
  const auto r8 = simulate(lpa_m, {gemm(64, 8, 32)},
                           PrecisionMap::uniform(1, 8, 8));
  const auto r2 = simulate(lpa_m, {gemm(64, 8, 32)},
                           PrecisionMap::uniform(1, 2, 4));
  EXPECT_EQ(r8.total_cycles, 8 * 48);
  EXPECT_EQ(r2.total_cycles, 2 * 48);
}

TEST(Simulate, FusionDoublesAntCyclesAtEightBit) {
  const auto ant = lpa::make_ant();
  const auto r4 = simulate(ant, {gemm(64, 8, 32)}, PrecisionMap::uniform(1, 4, 8));
  const auto r8 = simulate(ant, {gemm(64, 8, 32)}, PrecisionMap::uniform(1, 8, 8));
  EXPECT_EQ(r8.total_cycles, 2 * r4.total_cycles);
}

TEST(Simulate, MacsConservedAcrossAccelerators) {
  const std::vector<nn::LayerWorkload> wl{gemm(30, 50, 17), gemm(64, 64, 64, 1)};
  const auto pm = PrecisionMap::uniform(2, 4, 8);
  const auto a = simulate(lpa::make_lpa(), wl, pm);
  const auto b = simulate(lpa::make_ant(), wl, pm);
  const auto c = simulate(lpa::make_adaptivfloat(), wl, pm);
  EXPECT_EQ(a.total_macs, b.total_macs);
  EXPECT_EQ(a.total_macs, c.total_macs);
  EXPECT_EQ(a.total_macs, 30LL * 50 * 17 + 64LL * 64 * 64);
}

TEST(Simulate, UtilizationNeverExceedsOne) {
  const auto lpa_m = lpa::make_lpa();
  const auto r = simulate(lpa_m, {gemm(13, 7, 5), gemm(128, 256, 64, 1)},
                          PrecisionMap::uniform(2, 4, 8));
  for (const auto& l : r.layers) {
    EXPECT_GT(l.utilization, 0.0);
    EXPECT_LE(l.utilization, 1.0);
  }
}

TEST(Simulate, EnergyGrowsWithPrecision) {
  const auto lpa_m = lpa::make_lpa();
  const std::vector<nn::LayerWorkload> wl{gemm(64, 64, 64)};
  const auto r2 = simulate(lpa_m, wl, PrecisionMap::uniform(1, 2, 4));
  const auto r8 = simulate(lpa_m, wl, PrecisionMap::uniform(1, 8, 8));
  EXPECT_LT(r2.energy_mj, r8.energy_mj);
  EXPECT_LT(r2.time_ms, r8.time_ms);
}

TEST(Simulate, ComputeDensityOrderingMatchesTable3) {
  // Table 3 methodology: each accelerator runs at the precision *its own
  // data type* sustains at iso-accuracy — LP gets away with 2-4 bit
  // weights, ANT's flint needs 4/8, BitFusion's INT needs 4/8,
  // AdaptivFloat is fixed at 8.  LPA should then lead ANT/BitFusion by
  // roughly 2x in TOPS/mm^2 and AdaptivFloat by more.
  nn::ZooOptions o;
  o.input_size = 32;
  o.classes = 16;
  const nn::Model m = nn::build_resnet18(o);
  Tensor probe({1, 3, 32, 32});
  const auto wl = m.trace_workloads(probe);
  const std::size_t slots = m.num_slots();

  // LP: mostly 2-bit with some 4-bit (what LPQ's hardware preset finds).
  PrecisionMap lp_pm = PrecisionMap::uniform(slots, 2, 4);
  for (std::size_t s = 0; s < slots; s += 4) lp_pm.weight_bits[s] = 4;
  // ANT: 4-bit flint with 8-bit for a fifth of the layers (their paper).
  PrecisionMap ant_pm = PrecisionMap::uniform(slots, 4, 8);
  for (std::size_t s = 0; s < slots; s += 5) ant_pm.weight_bits[s] = 8;
  // BitFusion: INT needs 4/8 for accuracy parity.
  const PrecisionMap bf_pm = ant_pm;
  const PrecisionMap af_pm = PrecisionMap::uniform(slots, 8, 8);

  const auto lpa_r = simulate(lpa::make_lpa(), wl, lp_pm);
  const auto ant_r = simulate(lpa::make_ant(), wl, ant_pm);
  const auto bf_r = simulate(lpa::make_bitfusion(), wl, bf_pm);
  const auto af_r = simulate(lpa::make_adaptivfloat(), wl, af_pm);
  EXPECT_GT(lpa_r.tops_per_mm2, 1.3 * ant_r.tops_per_mm2);
  EXPECT_GT(lpa_r.tops_per_mm2, 1.3 * bf_r.tops_per_mm2);
  EXPECT_GT(lpa_r.tops_per_mm2, 3.0 * af_r.tops_per_mm2);
  // Latency: LPA fastest (Fig. 6 shape).
  EXPECT_LT(lpa_r.time_ms, ant_r.time_ms);
  EXPECT_LT(lpa_r.time_ms, bf_r.time_ms);
  EXPECT_LT(lpa_r.time_ms, af_r.time_ms);
}

TEST(Simulate, PositPeDensityFarBelowLpa) {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  Tensor probe({1, 3, 16, 16});
  const auto wl = m.trace_workloads(probe);
  const auto pm = PrecisionMap::uniform(m.num_slots(), 4, 8);
  const auto lpa_r = simulate(lpa::make_lpa(), wl, pm);
  const auto posit_r = simulate(lpa::make_posit_pe(), wl, pm);
  // Same cycles (same packing) but much larger PEs -> much lower density.
  EXPECT_EQ(lpa_r.total_cycles, posit_r.total_cycles);
  EXPECT_GT(lpa_r.tops_per_mm2, 4.0 * posit_r.tops_per_mm2);
}

TEST(Simulate, ActivationCapFollowsAcceleratorWidths) {
  // The seed hard-coded an 8-bit activation clamp; a 16-bit-capable
  // accelerator must be allowed to execute 16-bit activations.
  auto wide = lpa::make_lpa();
  wide.widths = {2, 4, 8, 16};
  const auto r16 = simulate(wide, {gemm(8, 8, 32)},
                            PrecisionMap::uniform(1, 8, 16));
  EXPECT_EQ(r16.layers[0].a_bits, 16);
  // 8-bit-max accelerators still cap at their widest width.
  const auto r8 = simulate(lpa::make_lpa(), {gemm(8, 8, 32)},
                           PrecisionMap::uniform(1, 8, 16));
  EXPECT_EQ(r8.layers[0].a_bits, 8);
  // And 16-bit activations occupy two bytes of buffer traffic: strictly
  // more energy than the same workload at 8-bit activations.
  const auto e8 = simulate(wide, {gemm(8, 8, 32)},
                           PrecisionMap::uniform(1, 8, 8));
  EXPECT_GT(r16.energy_mj, e8.energy_mj);
}

TEST(Simulate, ChecksPrecisionMapSize) {
  const auto lpa_m = lpa::make_lpa();
  EXPECT_THROW((void)simulate(lpa_m, {gemm(8, 8, 8, 3)},
                              PrecisionMap::uniform(1, 8, 8)),
               std::invalid_argument);
}

TEST(Simulate, WorkloadsCarryBatchInN) {
  // The runtime serves batched forwards, so the workload trace must fold
  // the batch into each GEMM's N dimension — and the simulator's
  // cycle/energy accounting must follow those batched dims rather than
  // assuming batch=1.
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  runtime::InferenceSession session(m);
  const std::vector<LPConfig> w(m.num_slots(), LPConfig{4, 1, 2, 0.0});
  const std::vector<LPConfig> a(m.num_slots(), LPConfig{8, 2, 2, 0.0});
  session.set_formats(w, a);

  const auto wl1 = session.current().trace_workloads(Tensor({1, 3, 16, 16}));
  const auto wl4 = session.current().trace_workloads(Tensor({4, 3, 16, 16}));
  ASSERT_EQ(wl1.size(), wl4.size());
  for (std::size_t i = 0; i < wl1.size(); ++i) {
    EXPECT_EQ(wl4[i].m, wl1[i].m) << wl1[i].name;
    EXPECT_EQ(wl4[i].k, wl1[i].k) << wl1[i].name;
    EXPECT_EQ(wl4[i].n, 4 * wl1[i].n) << wl1[i].name;
  }

  const auto pm = PrecisionMap::uniform(m.num_slots(), 4, 8);
  const auto r1 = simulate(lpa::make_lpa(), wl1, pm);
  const auto r4 = simulate(lpa::make_lpa(), wl4, pm);
  EXPECT_EQ(r4.total_macs, 4 * r1.total_macs);
  // Streaming 4x the columns costs more cycles, but at most 4x (fill and
  // drain amortize across the longer stream).
  EXPECT_GT(r4.total_cycles, r1.total_cycles);
  EXPECT_LE(r4.total_cycles, 4 * r1.total_cycles);
  EXPECT_GT(r4.energy_mj, r1.energy_mj);
}

TEST(Simulate, OutputTrafficFollowsActivationWidth) {
  // Outputs are next-layer activations: 16-bit activations must charge two
  // bytes per output value in the DRAM roll-up (the seed charged one byte
  // regardless of a_bits).  Single tile: k = rows so no psum spill.
  auto wide = lpa::make_lpa();
  wide.widths = {2, 4, 8, 16};
  const auto r = simulate(wide, {gemm(8, 8, 32)},
                          PrecisionMap::uniform(1, 8, 16));
  const auto& l = r.layers[0];
  ASSERT_EQ(l.a_bits, 16);
  const double w_bytes = 8 * 8 * 8 / 8.0;        // m*k at 8-bit weights
  const double act_bytes = 8 * 32 * 2.0;         // k*n at two bytes
  const double out_bytes = 8 * 32 * 2.0;         // m*n at two bytes
  EXPECT_DOUBLE_EQ(l.dram_bytes, w_bytes + act_bytes + out_bytes);
  EXPECT_DOUBLE_EQ(l.sram_bytes, w_bytes + act_bytes + out_bytes);
}

TEST(Simulate, ActivationTrafficScalesWithCodeWidth) {
  // Inter-layer activations now move as packed codes, so the simulator
  // charges their buffer traffic at true code width: 4-bit activations
  // must cost exactly half the activation/output bytes of 8-bit ones (the
  // seed byte-ceiled sub-byte widths up to a full byte, erasing the
  // benefit of narrow codes).  Single tile, k = rows, so no psum spill.
  const auto lpa_m = lpa::make_lpa();
  const auto r4 = simulate(lpa_m, {gemm(8, 8, 32)},
                           PrecisionMap::uniform(1, 8, 4));
  const auto r8 = simulate(lpa_m, {gemm(8, 8, 32)},
                           PrecisionMap::uniform(1, 8, 8));
  ASSERT_EQ(r4.layers[0].a_bits, 4);
  ASSERT_EQ(r8.layers[0].a_bits, 8);
  const double w_bytes = 8 * 8 * 8 / 8.0;  // m*k at 8-bit weights
  EXPECT_DOUBLE_EQ(r4.layers[0].dram_bytes, w_bytes + 8 * 32 * 0.5 * 2);
  EXPECT_DOUBLE_EQ(r8.layers[0].dram_bytes, w_bytes + 8 * 32 * 1.0 * 2);
  // The activation+output component halves exactly.
  EXPECT_DOUBLE_EQ(r4.layers[0].dram_bytes - w_bytes,
                   (r8.layers[0].dram_bytes - w_bytes) / 2.0);
  EXPECT_DOUBLE_EQ(r4.layers[0].sram_bytes - w_bytes,
                   (r8.layers[0].sram_bytes - w_bytes) / 2.0);
}

TEST(Simulate, HwCostTermShiftsFitnessRanking) {
  // The LPQ hardware-cost term (FitnessOptions::mu) multiplies fitness by
  // (dram_bytes / uniform-8-bit dram_bytes)^mu.  On a fixed-seed toy
  // setup, pin (a) the ratio strictly orders narrow-code candidates below
  // wide ones, (b) the multiplicative contract, and (c) that a large
  // enough mu flips the ranking toward the candidate that moves fewer
  // bytes — the lever that steers the search toward narrow codes.
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  const nn::Model m = nn::build_tiny_cnn(o);
  Tensor calib({4, 3, 16, 16});
  Rng rng(99);
  for (float& v : calib.data()) v = static_cast<float>(rng.gaussian());
  const lpq::FpReference ref = lpq::compute_fp_reference(m, calib);

  const auto accel = lpa::make_lpa();
  const auto workloads = m.trace_workloads(Tensor({1, 3, 16, 16}));
  const auto centers = lpq::sf_centers(m);
  auto uniform_cand = [&](int n, int es, int rs) {
    lpq::Candidate c;
    for (std::size_t s = 0; s < m.num_slots(); ++s) {
      c.layers.push_back(LPConfig{n, es, rs, centers[s]});
    }
    return c;
  };
  const lpq::Candidate wide = uniform_cand(8, 2, 4);    // 8w/8a codes
  const lpq::Candidate narrow = uniform_cand(3, 0, 1);  // 3w/6a codes

  lpq::FitnessOptions opts;
  opts.kind = lpq::FitnessKind::kMse;
  opts.accel = &accel;
  opts.workloads = &workloads;

  // (a) strictly fewer dram bytes for the narrow candidate; wide == the
  // 8/8 baseline, so its ratio is exactly 1.
  opts.mu = 1.0;
  const double r_wide = lpq::hw_cost_ratio(m, wide, opts);
  const double r_narrow = lpq::hw_cost_ratio(m, narrow, opts);
  EXPECT_DOUBLE_EQ(r_wide, 1.0);
  EXPECT_LT(r_narrow, r_wide);
  EXPECT_GT(r_narrow, 0.0);
  // mu = 0 (or missing accel/workloads) disables the term entirely.
  lpq::FitnessOptions off = opts;
  off.mu = 0.0;
  EXPECT_DOUBLE_EQ(lpq::hw_cost_ratio(m, narrow, off), 1.0);

  // (b) fitness(mu) == fitness(0) * ratio^mu, for both candidates.
  off.mu = 0.0;
  const double f_wide0 = lpq::evaluate_fitness(m, wide, calib, ref, off);
  const double f_narrow0 = lpq::evaluate_fitness(m, narrow, calib, ref, off);
  opts.mu = 2.0;
  EXPECT_DOUBLE_EQ(lpq::evaluate_fitness(m, wide, calib, ref, opts),
                   f_wide0 * std::pow(r_wide, 2.0));
  EXPECT_DOUBLE_EQ(lpq::evaluate_fitness(m, narrow, calib, ref, opts),
                   f_narrow0 * std::pow(r_narrow, 2.0));

  // (c) ranking shift.  At mu = 0 the wide candidate wins (3-bit weights
  // on this model lose far more logit fidelity than the LCR term
  // recovers).  Once mu exceeds the crossover exponent, the narrow
  // candidate's smaller traffic ratio must flip the ordering.
  ASSERT_LT(f_wide0, f_narrow0);
  const double crossover =
      std::log(f_narrow0 / f_wide0) / std::log(r_wide / r_narrow);
  lpq::FitnessOptions shifted = opts;
  shifted.mu = 2.0 * crossover;
  EXPECT_GT(lpq::evaluate_fitness(m, wide, calib, ref, shifted),
            lpq::evaluate_fitness(m, narrow, calib, ref, shifted));
}

TEST(Simulate, ActivationActivationWorkloadsRun) {
  nn::LayerWorkload wl;
  wl.name = "attn.qk";
  wl.m = 16;
  wl.k = 8;
  wl.n = 16;
  wl.weight_slot = -1;  // activation-activation
  const auto r = simulate(lpa::make_lpa(), {wl}, PrecisionMap::uniform(4, 4, 8));
  EXPECT_GT(r.total_cycles, 0);
  EXPECT_EQ(r.layers[0].w_bits, 8);  // runs at activation precision
}

}  // namespace
}  // namespace lp::sim
