// Quantized-inference runtime tests.
//
// The central contract: an InferenceSession snapshot executes bit-identical
// to the uncached Model::forward_quantized path, for any LP_THREADS value
// (pinned in-process below) and any LP_KERNEL value (the CI kernel A/B
// step re-runs this binary under LP_KERNEL=scalar and =avx2).  On top of
// that: weight-code cache reuse and invalidation, byte-budget eviction,
// batched serving equivalence, and cached-vs-uncached LPQ fitness.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/session.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lp::runtime {
namespace {

/// Restores the shared default pool to automatic sizing when a test ends.
struct PoolGuard {
  ~PoolGuard() { set_default_pool_threads(0); }
};

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  return o;
}

Tensor random_batch(int n, int c, int s, std::uint64_t seed) {
  Tensor x({n, c, s, s});
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  return x;
}

/// Deterministic per-slot format assignment with per-layer variety.
std::vector<LPConfig> varied_weight_cfgs(const nn::Model& m) {
  std::vector<LPConfig> cfgs;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const int n = 4 + static_cast<int>(s % 3) * 2;  // 4, 6, 8
    cfgs.push_back(LPConfig{n, n >= 6 ? 2 : 1, n / 2, centers[s]});
  }
  return cfgs;
}

std::vector<LPConfig> varied_act_cfgs(const std::vector<LPConfig>& w) {
  std::vector<LPConfig> cfgs;
  for (const LPConfig& c : w) cfgs.push_back(activation_config(c, 0.5));
  return cfgs;
}

std::vector<std::uint32_t> logit_bits(const Tensor& t) {
  std::vector<std::uint32_t> bits;
  bits.reserve(static_cast<std::size_t>(t.numel()));
  for (const float v : t.data()) bits.push_back(std::bit_cast<std::uint32_t>(v));
  return bits;
}

/// The uncached reference: QuantSpec built from the same configs, weights
/// quantized from scratch inside forward_quantized.
nn::ForwardResult reference_forward(const nn::Model& m, const Tensor& x,
                                    const std::vector<LPConfig>& w,
                                    const std::vector<LPConfig>& a,
                                    bool capture_pooled = false) {
  std::vector<std::unique_ptr<LPFormat>> storage;
  nn::QuantSpec spec;
  spec.resize(m.num_slots());
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    storage.push_back(std::make_unique<LPFormat>(w[s]));
    spec.weight_fmt[s] = storage.back().get();
    storage.push_back(std::make_unique<LPFormat>(a[s]));
    spec.act_fmt[s] = storage.back().get();
  }
  return m.forward_quantized(x, spec, capture_pooled);
}

TEST(InferenceSession, LogitsBitIdenticalToQuantSpecPathAcrossThreadCounts) {
  PoolGuard guard;
  for (const bool vit : {false, true}) {
    const nn::Model m = vit ? nn::build_tiny_vit(small_opts())
                            : nn::build_tiny_cnn(small_opts());
    const Tensor x = random_batch(4, 3, 16, 31);
    const auto w = varied_weight_cfgs(m);
    const auto a = varied_act_cfgs(w);

    std::vector<std::vector<std::uint32_t>> runs;
    for (const int threads : {1, 8}) {
      set_default_pool_threads(threads);
      const auto ref = reference_forward(m, x, w, a, /*capture_pooled=*/true);
      InferenceSession session(m);
      session.set_formats(w, a);
      const auto got = session.run(x, /*capture_pooled=*/true);
      ASSERT_EQ(logit_bits(got.logits), logit_bits(ref.logits))
          << (vit ? "vit" : "cnn") << " threads=" << threads;
      ASSERT_EQ(got.pooled, ref.pooled);
      runs.push_back(logit_bits(got.logits));
    }
    EXPECT_EQ(runs[0], runs[1]);  // threads=1 vs threads=8
  }
}

TEST(InferenceSession, GeneChangeRequantizesOnlyThatLayer) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  const std::size_t slots = m.num_slots();

  session.set_formats(w, a);
  EXPECT_EQ(session.stats().misses, slots);  // cold: every layer quantized

  // Same assignment again: zero new quantizations.
  session.set_formats(w, a);
  EXPECT_EQ(session.stats().misses, slots);

  // Flip one layer's format gene: exactly one re-quantization.
  w[2].n = 2;
  w[2].es = 0;
  w[2].rs = 1;
  session.set_formats(w, a);
  EXPECT_EQ(session.stats().misses, slots + 1);

  // The refreshed snapshot matches a cold session on the mutated assignment.
  const Tensor x = random_batch(3, 3, 16, 77);
  InferenceSession cold(m);
  cold.set_formats(w, a);
  EXPECT_EQ(logit_bits(session.run(x).logits), logit_bits(cold.run(x).logits));
}

TEST(InferenceSession, PopulationSharesQuantizedTensors) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto base = varied_weight_cfgs(m);
  // Population of 8 "children": all share the base genes except one layer.
  std::vector<std::vector<LPConfig>> w(8, base);
  for (std::size_t c = 1; c < w.size(); ++c) {
    w[c][0].sf = base[0].sf + 0.125 * static_cast<double>(c);
  }
  std::vector<std::vector<LPConfig>> a;
  for (const auto& cand : w) a.push_back(varied_act_cfgs(cand));

  const auto prepared = session.prepare_all(w, a);
  ASSERT_EQ(prepared.size(), 8U);
  // Distinct (slot, format) pairs: slots for candidate 0, plus one per
  // remaining candidate (the mutated slot 0 gene).
  EXPECT_EQ(session.stats().misses, m.num_slots() + 7);
  // Every n <= 16 LP format with finite weights serves the packed path:
  // no slot should have fallen back to a float tensor.
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    EXPECT_NE(prepared[0].codes()[s].get(), nullptr) << "slot " << s;
    EXPECT_EQ(prepared[0].weights()[s].get(), nullptr) << "slot " << s;
  }
  // Unchanged layers are served by the *same* packed-code objects, and
  // candidates of one format share one decode LUT instance.
  for (std::size_t c = 1; c < prepared.size(); ++c) {
    for (std::size_t s = 1; s < m.num_slots(); ++s) {
      EXPECT_EQ(prepared[c].codes()[s].get(), prepared[0].codes()[s].get());
    }
    EXPECT_NE(prepared[c].codes()[0].get(), prepared[0].codes()[0].get());
    // The mutated slot-0 gene differs only in sf, so it is a *different*
    // format with its own LUT; unchanged slots share payloads (and
    // therefore LUTs) outright, which the pointer equality above pins.
  }
}

TEST(InferenceSession, EvictionRespectsByteBudgetAcrossGenerations) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  std::size_t float_set_bytes = 0;
  for (const auto* slot : m.slot_list()) {
    float_set_bytes +=
        static_cast<std::size_t>(slot->weight.numel()) * sizeof(float);
  }

  auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);

  // Probe one packed weight-set's physical footprint (codes + LUTs):
  // packed storage is what the budget now measures, and the n = 4/6/8
  // formats in play must compress the code arrays at least 4x against the
  // float tensors they replace.
  std::size_t packed_set_bytes = 0;
  {
    InferenceSession probe(m);
    probe.set_formats(w, a);
    const CacheStats st = probe.stats();
    packed_set_bytes = st.bytes;
    EXPECT_EQ(st.logical_bytes, float_set_bytes);
    EXPECT_LE((st.bytes - st.lut_bytes - st.act_lut_bytes) * 4,
              st.logical_bytes);
    EXPECT_GT(st.lut_bytes, 0U);
    EXPECT_EQ(st.packed_entries, st.entries);
  }

  // Budget of one packed weight-set: a second, disjoint assignment must
  // evict the first once its generation has passed.
  SessionOptions opts;
  opts.weight_cache_bytes = packed_set_bytes;
  InferenceSession session(m, opts);
  session.set_formats(w, a);
  const CacheStats warm = session.stats();
  EXPECT_EQ(warm.evictions, 0U);
  EXPECT_LE(warm.bytes, packed_set_bytes);

  // A fully disjoint assignment: within its own generation everything may
  // stay alive (current-tick entries are never evicted) but afterwards the
  // cache must be back under budget with the old entries — and their
  // now-unreferenced decode LUTs — gone.
  for (auto& cfg : w) cfg.sf += 1.0;
  session.set_formats(w, a);
  const CacheStats after = session.stats();
  EXPECT_GT(after.evictions, 0U);
  EXPECT_LE(after.bytes, packed_set_bytes);
  // The evicted payloads live on inside the snapshot that references them.
  const Tensor x = random_batch(2, 3, 16, 5);
  EXPECT_GT(session.run(x).logits.numel(), 0);
}

TEST(InferenceSession, BatchedRunMatchesPerSampleRuns) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  session.set_formats(w, a);

  std::vector<Tensor> singles;
  for (int i = 0; i < 5; ++i) singles.push_back(random_batch(1, 3, 16, 100 + i));
  const Tensor stacked_logits = session.run_batched(singles);
  ASSERT_EQ(stacked_logits.dim(0), 5);

  // One fused batched pass must reproduce each per-sample run bit-for-bit:
  // every op is row-/sample-independent, so batching only amortizes the
  // per-layer table lookups and quantize_batch calls.
  for (std::size_t i = 0; i < singles.size(); ++i) {
    const Tensor one = session.run(singles[i]).logits;
    for (std::int64_t j = 0; j < one.numel(); ++j) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(
                    stacked_logits[static_cast<std::int64_t>(i) * one.numel() + j]),
                std::bit_cast<std::uint32_t>(one[j]))
          << "sample " << i << " logit " << j;
    }
  }
}

TEST(StackBatches, ConcatenatesAndChecksShapes) {
  const Tensor a({2, 3});
  const Tensor b({1, 3});
  const Tensor stacked = stack_batches(std::vector<Tensor>{a, b});
  EXPECT_EQ(stacked.dim(0), 3);
  EXPECT_EQ(stacked.dim(1), 3);
  const Tensor bad({1, 4});
  EXPECT_THROW((void)stack_batches(std::vector<Tensor>{a, bad}),
               std::invalid_argument);
  EXPECT_THROW((void)stack_batches(std::span<const Tensor>{}),
               std::invalid_argument);
}

TEST(StackBatches, PromotesSingleSamplesAmongBatches) {
  // A rank-(r-1) input among rank-r batches is one sample: one batch row.
  Tensor batch({2, 3, 4});
  Tensor sample({3, 4});
  for (std::int64_t i = 0; i < sample.numel(); ++i) {
    sample[i] = static_cast<float>(i);
  }
  const Tensor stacked =
      stack_batches(std::vector<Tensor>{batch, sample, batch});
  ASSERT_EQ(stacked.dim(0), 5);
  ASSERT_EQ(stacked.dim(1), 3);
  ASSERT_EQ(stacked.dim(2), 4);
  for (std::int64_t i = 0; i < sample.numel(); ++i) {
    EXPECT_EQ(stacked[2 * 12 + i], sample[i]);  // row 2 is the sample
  }
  // Sample dims must still match the batch tail.
  const Tensor bad({4, 4});
  EXPECT_THROW((void)stack_batches(std::vector<Tensor>{batch, bad}),
               std::invalid_argument);
}

TEST(StackBatches, SingleInputPassesThroughVerbatim) {
  Tensor only({3, 2, 2});
  for (std::int64_t i = 0; i < only.numel(); ++i) {
    only[i] = static_cast<float>(i) * 0.5F;
  }
  const Tensor stacked = stack_batches(std::vector<Tensor>{only});
  ASSERT_EQ(stacked.shape(), only.shape());
  for (std::int64_t i = 0; i < only.numel(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(stacked[i]),
              std::bit_cast<std::uint32_t>(only[i]));
  }
}

TEST(StackBatches, RejectsRankGapsWithClearError) {
  // Only sample (rank r-1) and batch (rank r) may mix; a two-level rank
  // gap is a caller bug and must fail loudly, not silently mis-stack.
  const Tensor batch({2, 3, 4});
  const Tensor flat({4});
  try {
    (void)stack_batches(std::vector<Tensor>{batch, flat});
    FAIL() << "rank gap accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos);
  }
}

TEST(StackBatches, RowOrderFollowsInputOrderBitExactly) {
  // The serving layer splits fused logits back to requests by row ranges,
  // so the stacking order must be exactly the input order for any
  // sample/mini-batch mix — and permuting the inputs must permute rows
  // accordingly, bit-for-bit.
  std::vector<Tensor> inputs;
  std::uint64_t seed = 1;
  for (const std::int64_t rows : {2, 1, 3}) {
    Tensor t({rows, 5});
    Rng rng(seed++);
    for (float& v : t.data()) v = static_cast<float>(rng.gaussian());
    inputs.push_back(std::move(t));
  }
  const Tensor fwd = stack_batches(inputs);
  ASSERT_EQ(fwd.dim(0), 6);
  const std::vector<Tensor> reversed{inputs[2], inputs[1], inputs[0]};
  const Tensor rev = stack_batches(reversed);
  // Rows of each input appear contiguously at its offset in either order.
  auto rows_match = [&](const Tensor& stacked, const Tensor& in,
                        std::int64_t row0) {
    for (std::int64_t i = 0; i < in.numel(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(stacked[row0 * 5 + i]),
                std::bit_cast<std::uint32_t>(in[i]));
    }
  };
  rows_match(fwd, inputs[0], 0);
  rows_match(fwd, inputs[1], 2);
  rows_match(fwd, inputs[2], 3);
  rows_match(rev, inputs[2], 0);
  rows_match(rev, inputs[1], 3);
  rows_match(rev, inputs[0], 4);
}

TEST(InferenceSession, FormatCacheBoundedAcrossGenerations) {
  // sf is continuous, so a long search interns a fresh format for nearly
  // every new gene; the entry cap must sweep old generations out while
  // keeping the current one intact.
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  SessionOptions opts;
  opts.format_cache_entries = 1;  // force a sweep every generation
  InferenceSession session(m, opts);

  auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  session.set_formats(w, a);
  const std::size_t one_generation = session.format_count();
  ASSERT_GT(one_generation, 0U);

  for (int gen = 0; gen < 3; ++gen) {
    for (auto& cfg : w) cfg.sf += 0.5;  // all-new formats every generation
    session.set_formats(w, a);
    // Old generations evicted; only the current one (plus the shared act
    // formats it reuses) survives the cap.
    EXPECT_LE(session.format_count(), one_generation);
  }
}

TEST(CachedFitness, BitIdenticalToUncachedEvaluateFitness) {
  // The GA acceptance contract: fitness through prepare_all + cached
  // snapshots equals the uncached evaluate_fitness (fresh tables, fresh
  // weight quantization) bit-for-bit, for a whole population.
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const Tensor cal = random_batch(6, 3, 16, 8);
  const auto ref = lpq::compute_fp_reference(m, cal);
  lpq::FitnessOptions opts;

  lpq::SearchSpace space;
  Rng rng(4242);
  const auto centers = lpq::sf_centers(m);
  std::vector<lpq::Candidate> population;
  for (int c = 0; c < 8; ++c) {
    lpq::Candidate cand;
    for (std::size_t s = 0; s < m.num_slots(); ++s) {
      cand.layers.push_back(space.sample(rng, centers[s]));
    }
    population.push_back(std::move(cand));
  }

  InferenceSession session(m);
  std::vector<std::vector<LPConfig>> w;
  std::vector<std::vector<LPConfig>> a;
  for (const auto& cand : population) {
    w.push_back(cand.layers);
    a.push_back(lpq::act_configs(m, cand, opts.act_sf, ref.act_scale_centers));
  }
  const auto prepared = session.prepare_all(w, a);
  for (std::size_t c = 0; c < population.size(); ++c) {
    const double uncached =
        lpq::evaluate_fitness(m, population[c], cal, ref, opts);
    const double cached = lpq::evaluate_fitness_prepared(
        prepared[c], m, population[c], cal, ref, opts);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cached),
              std::bit_cast<std::uint64_t>(uncached))
        << "candidate " << c;
  }
}

TEST(LpqEngineRuntime, SearchReusesWeightCodesAcrossGenerations) {
  // An end-to-end search must hit the weight-code cache heavily: children
  // copy most genes from the best parent, so per-layer lookups should be
  // dominated by hits after the initial population.
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  lpq::LpqParams p;
  p.population = 6;
  p.passes = 2;
  p.cycles = 1;
  p.block_size = 3;
  p.diversity_children = 2;
  p.seed = 99;
  lpq::LpqEngine eng(m, random_batch(6, 3, 16, 20), p);
  (void)eng.run();
  const CacheStats st = eng.session().stats();
  EXPECT_GT(st.hits, st.misses);
  EXPECT_GT(st.hits, 0U);
}

}  // namespace
}  // namespace lp::runtime
