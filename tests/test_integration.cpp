// Cross-module integration tests: the LP codec against the LPA datapath on
// real model weights, LPQ specs driving the simulator, and end-to-end
// conservation properties that individual module tests cannot see.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "bench/workloads.h"
#include "core/lp_format.h"
#include "data/dataset.h"
#include "lpa/systolic.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace lp {
namespace {

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 21;
  return o;
}

TEST(Integration, DatapathGemmMatchesModelLayerQuantization) {
  // Quantize a real fc layer with the LP codec, run the GEMM through the
  // bit-level PE datapath, and compare against the quantized float GEMM.
  nn::Model m = nn::build_tiny_cnn(small_opts());
  const Tensor& w = m.slot_list().back()->weight;  // fc [classes, C]
  Rng rng(3);
  Tensor x({w.dim(1), 5});
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());

  const lpq::SearchSpace sp;
  const LPConfig wcfg = lpq::rmse_optimal_config(w.data(), 8, sp);
  const LPConfig acfg{8, 2, 4, 0.0};
  const Tensor hw = lpa::lpa_gemm(w, x, wcfg, acfg);
  const Tensor ref = lpa::lpa_gemm_reference(w, x, wcfg, acfg);
  const double scale = stddev(ref.data());
  EXPECT_LT(rmse(hw.data(), ref.data()), scale * 0.02 + 1e-6);
}

TEST(Integration, LpqSpecDrivesSimulator) {
  // An LPQ hardware-preset result must produce a valid precision map whose
  // simulation conserves MACs against the traced workloads.
  nn::Model m = nn::build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_calibration = 8;
  dopts.n_eval = 16;
  const auto ds = data::make_dataset(m, 3, 16, dopts);
  auto params = lpq::LpqParams{};
  params.population = 5;
  params.passes = 1;
  params.cycles = 1;
  params.space.power_of_two_n = true;
  lpq::LpqEngine eng(m, ds.calibration, params);
  const auto result = eng.run();

  sim::PrecisionMap pm;
  for (const auto& cfg : result.best.layers) {
    pm.weight_bits.push_back(cfg.n);
    pm.act_bits.push_back(activation_config(cfg, 0.0).n);
  }
  Tensor probe({1, 3, 16, 16});
  const auto wl = m.trace_workloads(probe);
  const auto r = sim::simulate(lpa::make_lpa(), wl, pm);
  std::int64_t macs = 0;
  for (const auto& w : wl) macs += w.macs();
  EXPECT_EQ(r.total_macs, macs);
  EXPECT_GT(r.gops, 0.0);
  EXPECT_GT(r.gops_per_w, 0.0);
}

TEST(Integration, ImagenetWorkloadsMatchAnalyticMacs) {
  // ResNet50 at 224x224 is ~4.1 GMACs; ViT-B/16 is ~17.5 GMACs.
  const auto rn = lp::bench::resnet50_imagenet_workloads();
  std::int64_t rn_macs = 0;
  for (const auto& w : rn) rn_macs += w.macs();
  EXPECT_NEAR(static_cast<double>(rn_macs), 4.1e9, 0.4e9);

  const auto vit = lp::bench::vit_b_imagenet_workloads();
  std::int64_t vit_macs = 0;
  for (const auto& w : vit) vit_macs += w.macs();
  EXPECT_NEAR(static_cast<double>(vit_macs), 17.5e9, 2.0e9);

  // Slot ids must be dense and unique.
  std::vector<int> slots;
  for (const auto& w : rn) {
    if (w.weight_slot >= 0) slots.push_back(w.weight_slot);
  }
  std::sort(slots.begin(), slots.end());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i));
  }
  EXPECT_EQ(slots.size(), lp::bench::workload_slot_count(rn));
}

TEST(Integration, RmseOptimalConfigBeatsNaiveDefaults) {
  nn::Model m = nn::build_resnet18(small_opts());
  const lpq::SearchSpace sp;
  int wins = 0;
  int total = 0;
  for (const auto* slot : m.slot_list()) {
    const auto w = slot->weight.data();
    const LPConfig tuned = lpq::rmse_optimal_config(w, 6, sp);
    const LPConfig naive =
        sp.clamp(LPConfig{6, 1, 3, -std::log2(mean_abs(w))});
    const LPFormat tf(tuned), nf(naive);
    if (quantization_rmse(w, tf) <= quantization_rmse(w, nf) + 1e-12) ++wins;
    ++total;
  }
  EXPECT_EQ(wins, total);  // the grid search includes the naive point
}

TEST(Integration, HardwarePresetSpecsUseOnlyPow2Widths) {
  nn::Model m = nn::build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_calibration = 6;
  dopts.n_eval = 8;
  const auto ds = data::make_dataset(m, 3, 16, dopts);
  auto params = lpq::LpqParams{};
  params.population = 4;
  params.passes = 1;
  params.cycles = 1;
  params.diversity_children = 2;
  params.space.power_of_two_n = true;
  lpq::LpqEngine eng(m, ds.calibration, params);
  const auto result = eng.run();
  const auto spec = eng.make_spec(result.best);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const auto* wf = dynamic_cast<const LPFormat*>(spec.spec.weight_fmt[s]);
    ASSERT_NE(wf, nullptr);
    const int n = wf->config().n;
    EXPECT_TRUE(n == 2 || n == 4 || n == 8);
    // LPA must accept every width the hardware preset emits.
    EXPECT_NO_THROW((void)lpa::make_lpa().packing(n));
  }
}

TEST(Integration, QuantizedForwardUsesExactlyCodebookValues) {
  // Every weight after quantization must be a representable LP value.
  nn::Model m = nn::build_tiny_cnn(small_opts());
  nn::QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat fmt(LPConfig{5, 1, 3, 2.0});
  for (auto& f : spec.weight_fmt) f = &fmt;
  const auto quantized = nn::quantize_weights(m, spec);
  // Stored weights are float32; compare against the float-rounded codebook.
  std::vector<float> values;
  for (double v : fmt.all_values()) values.push_back(static_cast<float>(v));
  std::sort(values.begin(), values.end());
  for (const auto& t : quantized) {
    ASSERT_FALSE(t.empty());
    for (float v : t.data()) {
      EXPECT_TRUE(std::binary_search(values.begin(), values.end(), v)) << v;
    }
  }
}

}  // namespace
}  // namespace lp
