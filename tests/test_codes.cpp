// Packed weight-code datapath tests.
//
// The central contract: LUT-decoding GEMM (gemm_codes_rows with a coded A
// operand, gemm_codes_nt_rows with a coded B^T operand) is bit-identical
// to decode-then-GEMM for every kernel table, every code width (4-bit
// packed through 16-bit), and every shape — including decode tables with
// denormal and ±inf entries, structural zeros under infinities, unaligned
// element offsets (grouped-conv slices), and non-multiple-of-8 sizes.  On
// top of that: PackedCodes round-trips bit-exactly against quantize_batch
// (tie midpoints included), non-finite weights force the float fallback,
// and the ops/runtime layers stay bit-identical across LP_THREADS values.
// CI re-runs this binary under LP_KERNEL=scalar and =avx2.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "core/lp_format.h"
#include "core/packed_codes.h"
#include "kernels/kernels.h"
#include "nn/zoo.h"
#include "runtime/session.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace lp;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kDenorm = 1e-42F;  // subnormal
constexpr float kHuge = 3.0e38F;   // just below FLT_MAX

struct PoolGuard {
  ~PoolGuard() { set_default_pool_threads(0); }
};

bool bitwise_equal(const float* a, const float* b, std::int64_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(float)) == 0;
}

std::vector<std::uint32_t> bits_of(std::span<const float> xs) {
  std::vector<std::uint32_t> out;
  out.reserve(xs.size());
  for (const float v : xs) out.push_back(std::bit_cast<std::uint32_t>(v));
  return out;
}

/// Pack raw indices into a code stream of the given width, with
/// `elem_offset` junk elements prepended so views at unaligned (odd, for
/// 4-bit) offsets are exercised.
std::vector<std::uint8_t> pack_raw(const std::vector<std::uint32_t>& idx,
                                   int bits, std::int64_t elem_offset) {
  const std::size_t total = idx.size() + static_cast<std::size_t>(elem_offset);
  std::vector<std::uint8_t> data(
      bits == 4 ? (total + 1) / 2 : bits == 8 ? total : total * 2, 0);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::size_t e = i + static_cast<std::size_t>(elem_offset);
    switch (bits) {
      case 4:
        data[e / 2] |= static_cast<std::uint8_t>((idx[i] & 0xFU)
                                                 << ((e % 2) * 4));
        break;
      case 8:
        data[e] = static_cast<std::uint8_t>(idx[i]);
        break;
      default:
        data[e * 2] = static_cast<std::uint8_t>(idx[i] & 0xFFU);
        data[e * 2 + 1] = static_cast<std::uint8_t>(idx[i] >> 8);
        break;
    }
  }
  return data;
}

/// Adversarial decode table of `size` entries for a given code width:
/// zero first (so code 0 is the structural zero), then denormals, ±huge,
/// optional ±inf, filled out with random magnitudes.
std::vector<float> adversarial_lut(std::size_t size, bool with_inf,
                                   std::uint64_t seed) {
  std::vector<float> lut(size);
  lut[0] = 0.0F;
  Rng rng(seed);
  for (std::size_t i = 1; i < size; ++i) {
    const double mag = std::pow(10.0, rng.uniform(-42.0, 38.0));
    lut[i] = static_cast<float>(rng.gaussian() * mag);
  }
  if (size > 3) lut[1] = kDenorm;
  if (size > 4) lut[2] = -kDenorm;
  if (size > 6) lut[3] = kHuge;
  if (size > 7) lut[4] = -kHuge;
  if (with_inf && size > 9) {
    lut[5] = kInf;
    lut[6] = -kInf;
  }
  return lut;
}

struct GemmShape {
  std::int64_t m, k, n;
};

// Deliberately not multiples of the 8-wide vector step (and one 1x1x1).
const GemmShape kShapes[] = {{1, 1, 1},  {2, 3, 5},   {3, 7, 9},
                             {5, 16, 8}, {4, 17, 33}, {7, 64, 31},
                             {8, 129, 40}};

class CodesKernelTest : public ::testing::Test {
 protected:
  std::vector<const kernels::KernelTable*> tables_ =
      kernels::available_kernels();
};

TEST_F(CodesKernelTest, TablesCarryCodeKernels) {
  for (const auto* t : tables_) {
    EXPECT_NE(t->gemm_codes_rows, nullptr) << t->name;
    EXPECT_NE(t->gemm_codes_nt_rows, nullptr) << t->name;
  }
}

/// gemm_codes_rows (coded A, the conv layout) against decode-then-
/// gemm_rows on the scalar reference, every table, every code width,
/// bias on/off, unaligned offsets, and infs in float B guarded by
/// structural-zero codes in A.
TEST_F(CodesKernelTest, CodedABitIdenticalToDecodeThenGemm) {
  for (const int bits : {4, 8, 16}) {
    const std::size_t lut_size = bits == 4 ? 16 : bits == 8 ? 200 : 1000;
    const std::vector<float> lut = adversarial_lut(lut_size, true, 17);
    for (const GemmShape& s : kShapes) {
      for (const std::int64_t offset : {std::int64_t{0}, std::int64_t{3}}) {
        const std::size_t an = static_cast<std::size_t>(s.m * s.k);
        Rng rng(91 + static_cast<std::uint64_t>(bits) + an);
        std::vector<std::uint32_t> idx(an);
        for (auto& v : idx) {
          v = static_cast<std::uint32_t>(
              rng.uniform(0.0, static_cast<double>(lut_size) - 0.5));
        }
        // Structural zeros: column 0 of A is the zero code, and B's first
        // k-row carries infinities — a kernel that multiplies instead of
        // skipping turns these into NaN.
        for (std::int64_t i = 0; i < s.m; ++i) {
          idx[static_cast<std::size_t>(i * s.k)] = 0;
        }
        const std::vector<std::uint8_t> stream = pack_raw(idx, bits, offset);
        const kernels::PackedCodesView view{
            stream.data(), offset, bits, lut.data(),
            static_cast<std::uint32_t>(lut_size)};

        std::vector<float> a_dec(an);
        for (std::size_t i = 0; i < an; ++i) a_dec[i] = lut[idx[i]];
        std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
        std::vector<float> bias(static_cast<std::size_t>(s.n));
        for (auto& v : b) v = static_cast<float>(rng.gaussian());
        for (auto& v : bias) v = static_cast<float>(rng.gaussian());
        if (s.k >= 2) {
          for (std::int64_t j = 0; j < s.n; j += 2) {
            b[static_cast<std::size_t>(j)] = (j % 4 == 0) ? kInf : -kInf;
          }
        }

        const std::size_t cn = static_cast<std::size_t>(s.m * s.n);
        std::vector<float> c_ref(cn);
        std::vector<float> c_got(cn);
        for (const float* bp : {static_cast<const float*>(nullptr),
                                static_cast<const float*>(bias.data())}) {
          kernels::scalar_kernels().gemm_rows(a_dec.data(), b.data(), bp,
                                              c_ref.data(), 0, s.m, s.k, s.n);
          for (const auto* t : tables_) {
            t->gemm_codes_rows(view, b.data(), bp, c_got.data(), 0, s.m, s.k,
                               s.n);
            EXPECT_TRUE(bitwise_equal(c_ref.data(), c_got.data(), s.m * s.n))
                << t->name << " bits=" << bits << " " << s.m << "x" << s.k
                << "x" << s.n << " offset=" << offset
                << (bp != nullptr ? " +bias" : "");
          }
        }
      }
    }
  }
}

/// gemm_codes_nt_rows (coded B^T, the linear layout) against
/// decode-then-gemm_nt_rows, with ±inf decode-table entries guarded by
/// structural zeros in float A.
TEST_F(CodesKernelTest, CodedBtBitIdenticalToDecodeThenGemm) {
  for (const int bits : {4, 8, 16}) {
    const std::size_t lut_size = bits == 4 ? 16 : bits == 8 ? 254 : 4000;
    const std::vector<float> lut = adversarial_lut(lut_size, true, 23);
    for (const GemmShape& s : kShapes) {
      const std::size_t bn = static_cast<std::size_t>(s.n * s.k);
      Rng rng(7 + static_cast<std::uint64_t>(bits) + bn);
      std::vector<std::uint32_t> idx(bn);
      for (auto& v : idx) {
        v = static_cast<std::uint32_t>(
            rng.uniform(0.0, static_cast<double>(lut_size) - 0.5));
      }
      const std::vector<std::uint8_t> stream = pack_raw(idx, bits, 0);
      const kernels::PackedCodesView view{
          stream.data(), 0, bits, lut.data(),
          static_cast<std::uint32_t>(lut_size)};

      std::vector<float> b_dec(bn);
      for (std::size_t i = 0; i < bn; ++i) b_dec[i] = lut[idx[i]];
      std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
      std::vector<float> bias(static_cast<std::size_t>(s.n));
      for (auto& v : a) v = static_cast<float>(rng.gaussian());
      for (auto& v : bias) v = static_cast<float>(rng.gaussian());
      // a[i, 0] = 0 shields whatever ±inf codes landed in B's k-position 0
      // behind the zero-skip, exactly like the float kernels' contract.
      for (std::int64_t i = 0; i < s.m; ++i) {
        a[static_cast<std::size_t>(i * s.k)] = 0.0F;
      }

      const std::size_t cn = static_cast<std::size_t>(s.m * s.n);
      std::vector<float> c_ref(cn);
      std::vector<float> c_got(cn);
      for (const float* bp : {static_cast<const float*>(nullptr),
                              static_cast<const float*>(bias.data())}) {
        kernels::scalar_kernels().gemm_nt_rows(a.data(), b_dec.data(), bp,
                                               c_ref.data(), 0, s.m, s.k, s.n);
        for (const auto* t : tables_) {
          t->gemm_codes_nt_rows(a.data(), view, bp, c_got.data(), nullptr, 0,
                                s.m, s.k, s.n);
          EXPECT_TRUE(bitwise_equal(c_ref.data(), c_got.data(), s.m * s.n))
              << t->name << " bits=" << bits << " " << s.m << "x" << s.k << "x"
              << s.n << (bp != nullptr ? " +bias" : "");
        }
      }
    }
  }
}

TEST_F(CodesKernelTest, SplitRowRangesMatchFullRange) {
  const GemmShape s{9, 33, 17};
  const std::size_t lut_size = 16;
  const std::vector<float> lut = adversarial_lut(lut_size, false, 3);
  Rng rng(5);
  std::vector<std::uint32_t> a_idx(static_cast<std::size_t>(s.m * s.k));
  std::vector<std::uint32_t> b_idx(static_cast<std::size_t>(s.n * s.k));
  for (auto& v : a_idx) v = static_cast<std::uint32_t>(rng.uniform(0.0, 15.4));
  for (auto& v : b_idx) v = static_cast<std::uint32_t>(rng.uniform(0.0, 15.4));
  const auto a_stream = pack_raw(a_idx, 4, 0);
  const auto b_stream = pack_raw(b_idx, 4, 0);
  const kernels::PackedCodesView av{a_stream.data(), 0, 4, lut.data(), 16};
  const kernels::PackedCodesView bv{b_stream.data(), 0, 4, lut.data(), 16};
  std::vector<float> x(static_cast<std::size_t>(s.m * s.k));
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  std::vector<float> b_float(static_cast<std::size_t>(s.k * s.n));
  for (auto& v : b_float) v = static_cast<float>(rng.gaussian());

  std::vector<float> c_full(static_cast<std::size_t>(s.m * s.n));
  std::vector<float> c_split(c_full.size());
  const std::int64_t cuts[] = {0, 1, 2, 5, 6, s.m};
  for (const auto* t : tables_) {
    t->gemm_codes_rows(av, b_float.data(), nullptr, c_full.data(), 0, s.m, s.k,
                       s.n);
    for (std::size_t ci = 0; ci + 1 < std::size(cuts); ++ci) {
      t->gemm_codes_rows(av, b_float.data(), nullptr, c_split.data(), cuts[ci],
                         cuts[ci + 1], s.k, s.n);
    }
    EXPECT_TRUE(bitwise_equal(c_full.data(), c_split.data(), s.m * s.n))
        << t->name << " codes_rows";

    t->gemm_codes_nt_rows(x.data(), bv, nullptr, c_full.data(), nullptr, 0,
                          s.m, s.k, s.n);
    for (std::size_t ci = 0; ci + 1 < std::size(cuts); ++ci) {
      t->gemm_codes_nt_rows(x.data(), bv, nullptr, c_split.data(), nullptr,
                            cuts[ci], cuts[ci + 1], s.k, s.n);
    }
    EXPECT_TRUE(bitwise_equal(c_full.data(), c_split.data(), s.m * s.n))
        << t->name << " codes_nt_rows";
  }
}

// --- PackedCodes round-trip ------------------------------------------------

/// Buffer with tie midpoints, exact table values, denormals and random
/// magnitudes — every decision the nearest-value rule makes must agree
/// between the code path (nearest_indices) and the float path
/// (quantize_batch), including the ties-toward-zero midpoint rule.
std::vector<float> tie_heavy_buffer(const std::vector<double>& vals,
                                    std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0: {
        const auto vi = static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(vals.size()) - 0.5));
        xs[i] = static_cast<float>(vals[vi]);
        break;
      }
      case 1: {
        const auto vi = static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(vals.size()) - 1.5));
        xs[i] = static_cast<float>(0.5 * (vals[vi] + vals[vi + 1]));
        break;
      }
      case 2:
        xs[i] = static_cast<float>(rng.gaussian() * 1e-40);
        break;
      default:
        xs[i] = static_cast<float>(
            rng.gaussian() * std::pow(10.0, rng.uniform(-6.0, 6.0)));
        break;
    }
  }
  return xs;
}

TEST(PackedCodesRoundTrip, DecodeMatchesQuantizeBatchAllWidths) {
  // n = 2..8 pack (4- or 8-bit codes); n = 9..16 store unpacked 16-bit.
  struct Case {
    int n, es, rs;
    double sf;
    int want_bits;
  };
  const Case cases[] = {{2, 0, 1, 0.5, 4},  {3, 0, 2, 1.0, 4},
                        {4, 1, 2, 2.0, 4},  {6, 2, 3, 0.0, 8},
                        {8, 1, 4, 3.0, 8},  {9, 2, 4, 0.25, 16},
                        {12, 2, 5, 0.5, 16}, {16, 3, 7, 1.5, 16}};
  for (const Case& c : cases) {
    const LPFormat fmt(LPConfig{c.n, c.es, c.rs, c.sf});
    const auto lut = build_decode_table(fmt);
    ASSERT_NE(lut, nullptr) << "n=" << c.n;
    // 1001 elements: odd count exercises the 4-bit nibble tail.
    std::vector<float> data = tie_heavy_buffer(fmt.all_values(), 1001,
                                               40 + static_cast<std::uint64_t>(c.n));
    const auto packed = PackedCodes::pack(
        data, {static_cast<std::int64_t>(data.size())}, fmt, lut);
    ASSERT_TRUE(packed.has_value()) << "n=" << c.n;
    EXPECT_EQ(packed->code_bits(), c.want_bits) << "n=" << c.n;
    EXPECT_LE(packed->payload_bytes() * 8,
              static_cast<std::size_t>(c.want_bits) * data.size() + 8);

    std::vector<float> quantized = data;
    (void)fmt.quantize_batch(quantized);
    std::vector<float> decoded(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      decoded[i] = packed->decode_at(static_cast<std::int64_t>(i));
    }
    EXPECT_EQ(bits_of(quantized), bits_of(decoded)) << "n=" << c.n;
  }
}

TEST(PackedCodesRoundTrip, NonFinitePackRejected) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  const auto lut = build_decode_table(fmt);
  std::vector<float> data(64, 0.25F);
  data[17] = kInf;
  EXPECT_FALSE(PackedCodes::pack(data, {64}, fmt, lut).has_value());
  data[17] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(PackedCodes::pack(data, {64}, fmt, lut).has_value());
}

// --- ops layer -------------------------------------------------------------

TEST(CodesOps, MatmulNtCodesBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const LPFormat fmt(LPConfig{4, 1, 2, 2.0});
  const auto lut = build_decode_table(fmt);
  Tensor w({33, 47});  // not multiples of the vector width
  Rng rng(11);
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  const auto packed = PackedCodes::pack(w.data(), w.shape(), fmt, lut);
  ASSERT_TRUE(packed.has_value());
  Tensor wq = w;
  (void)fmt.quantize_batch(wq.data());
  Tensor x({21, 47});
  Tensor bias({33});
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());

  std::vector<std::vector<std::uint32_t>> runs;
  for (const int threads : {1, 8}) {
    set_default_pool_threads(threads);
    const Tensor ref = matmul_nt(x, wq, &bias);
    const Tensor got = matmul_nt_codes(x, *packed, &bias);
    ASSERT_EQ(bits_of(got.data()), bits_of(ref.data())) << "threads=" << threads;
    runs.push_back(bits_of(got.data()));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(CodesOps, GroupedConvCodesBitIdentical) {
  PoolGuard guard;
  // groups=2 with an odd per-group slice (cg_out * k = 3 * 9 = 27): the
  // second group's 4-bit codes start mid-byte, exercising the unaligned
  // element-offset path.
  const LPFormat fmt(LPConfig{4, 1, 2, 2.0});
  const auto lut = build_decode_table(fmt);
  Tensor w({6, 1, 3, 3});
  Tensor bias({6});
  Rng rng(13);
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  for (float& v : bias.data()) v = static_cast<float>(rng.gaussian());
  const auto packed = PackedCodes::pack(w.data(), w.shape(), fmt, lut);
  ASSERT_TRUE(packed.has_value());
  ASSERT_EQ(packed->code_bits(), 4);
  Tensor wq = w;
  (void)fmt.quantize_batch(wq.data());

  Tensor x({2, 2, 9, 9});
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  Conv2dSpec spec;
  spec.stride = 2;
  spec.padding = 1;
  spec.groups = 2;
  for (const int threads : {1, 8}) {
    set_default_pool_threads(threads);
    const Tensor ref = conv2d(x, wq, &bias, spec);
    const Tensor got = conv2d_codes(x, *packed, &bias, spec);
    ASSERT_EQ(bits_of(got.data()), bits_of(ref.data())) << "threads=" << threads;
  }
}

// --- runtime fallback ------------------------------------------------------

TEST(CodesRuntime, NonFiniteWeightsFallBackToFloatPayload) {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  nn::Model m = nn::build_tiny_cnn(o);
  // Poison one slot: its weights quantize to NaN on the float path, which
  // no code index can represent — the cache must fall back to a float
  // tensor for that slot and stay packed everywhere else.
  m.slot_list()[1]->weight[0] = kInf;

  runtime::InferenceSession session(m);
  std::vector<LPConfig> w(m.num_slots(), LPConfig{6, 1, 3, 0.5});
  const auto prepared =
      session.prepare(w, std::span<const LPConfig>());
  EXPECT_EQ(prepared.codes()[1].get(), nullptr);
  EXPECT_NE(prepared.weights()[1].get(), nullptr);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    if (s == 1) continue;
    EXPECT_NE(prepared.codes()[s].get(), nullptr) << "slot " << s;
  }
  const runtime::CacheStats st = session.stats();
  EXPECT_EQ(st.packed_entries, st.entries - 1);
  // The fallback float tensor is charged at full float32 size.
  EXPECT_GT(st.bytes, st.lut_bytes);
}

}  // namespace
