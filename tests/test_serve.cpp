// Serving-core tests: dynamic batching, concurrent clients, hot-swap,
// and the serialized model artifact.
//
// The load-bearing contract: a response produced by the dynamically
// batched server is bit-identical to a serial session.run() of the same
// input against the same published model version — batch composition is
// a pure performance decision.  The concurrent test below pins that
// under 8 client threads across a mid-serve set_formats() hot-swap, and
// is part of the CI TSan leg (LP_THREADS=8), so the shared-snapshot and
// sharded-cache machinery is exercised under the race detector.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/artifact.h"
#include "runtime/session.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lp::serve {
namespace {

using runtime::InferenceSession;

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  return o;
}

Tensor random_batch(int n, int c, int s, std::uint64_t seed) {
  Tensor x({n, c, s, s});
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  return x;
}

/// Deterministic per-slot assignment with per-layer variety; `phase`
/// rotates the widths so two calls yield two distinct assignments.
std::vector<LPConfig> varied_weight_cfgs(const nn::Model& m, int phase = 0) {
  std::vector<LPConfig> cfgs;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const int n = 4 + static_cast<int>((s + phase) % 3) * 2;  // 4, 6, 8
    cfgs.push_back(LPConfig{n, n >= 6 ? 2 : 1, n / 2, centers[s]});
  }
  return cfgs;
}

std::vector<LPConfig> varied_act_cfgs(const std::vector<LPConfig>& w) {
  std::vector<LPConfig> cfgs;
  for (const LPConfig& c : w) cfgs.push_back(activation_config(c, 0.5));
  return cfgs;
}

std::vector<std::uint32_t> logit_bits(const Tensor& t) {
  std::vector<std::uint32_t> bits;
  bits.reserve(static_cast<std::size_t>(t.numel()));
  for (const float v : t.data()) bits.push_back(std::bit_cast<std::uint32_t>(v));
  return bits;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good()) << path;
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(raw.data()), size);
  return raw;
}

TEST(RequestQueue, CoalescesBacklogWithoutWaiting) {
  RequestQueue q;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i) futs.push_back(q.push(Tensor({1, 3})));
  // Everything already queued comes out in one pop, zero linger needed.
  const auto batch = q.pop_batch(8, std::chrono::microseconds{0});
  EXPECT_EQ(batch.size(), 5U);
  EXPECT_EQ(q.depth(), 0U);
}

TEST(RequestQueue, DeadlineFlushesPartialBatch) {
  RequestQueue q;
  auto f0 = q.push(Tensor({1, 3}));
  auto f1 = q.push(Tensor({1, 3}));
  // max_batch 8 but only 2 queued: the pop lingers for the deadline, then
  // dispatches the partial batch instead of stalling.
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = q.pop_batch(8, std::chrono::milliseconds{5});
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(batch.size(), 2U);
  EXPECT_GE(waited, std::chrono::milliseconds{4});
}

TEST(RequestQueue, CloseDrainsThenSignalsShutdown) {
  RequestQueue q;
  auto f0 = q.push(Tensor({1, 3}));
  auto f1 = q.push(Tensor({1, 3}));
  auto f2 = q.push(Tensor({1, 3}));
  q.close();
  // A post-close push resolves immediately with kShutdown — failure is a
  // value, never a hung future or a throw.
  Response late = q.push(Tensor({1, 3})).get();
  EXPECT_EQ(late.status, ServeStatus::kShutdown);
  EXPECT_FALSE(late.error.empty());
  // Queued work survives close() — shutdown drains, not drops.
  EXPECT_EQ(q.pop_batch(2, std::chrono::microseconds{0}).size(), 2U);
  EXPECT_EQ(q.pop_batch(8, std::chrono::microseconds{0}).size(), 1U);
  // Drained + closed = the worker exit signal.
  EXPECT_TRUE(q.pop_batch(8, std::chrono::microseconds{0}).empty());
}

TEST(RequestQueue, RejectsRankOneInputs) {
  RequestQueue q;
  // A uniform-rank list is interpreted as batches by stack_batches, so a
  // bare rank-1 sample would be misread as C rows; the queue rejects it
  // at the door with the [1, ...] shaping rule.
  const Response resp = q.push(Tensor({3})).get();
  EXPECT_EQ(resp.status, ServeStatus::kInvalidRequest);
  EXPECT_EQ(q.depth(), 0U);
}

TEST(RequestQueue, DepthBoundShedsWithOverloaded) {
  QueueOptions qo;
  qo.max_depth = 3;
  RequestQueue q(qo);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(q.push(Tensor({1, 3})));
  // The 4th and 5th pushes shed immediately: O(1) rejection, no compute.
  for (int i = 0; i < 2; ++i) {
    const Response resp = q.push(Tensor({1, 3})).get();
    EXPECT_EQ(resp.status, ServeStatus::kOverloaded);
  }
  EXPECT_EQ(q.depth(), 3U);
  const QueueCounters c = q.counters();
  EXPECT_EQ(c.accepted, 3U);
  EXPECT_EQ(c.shed, 2U);
  // Draining frees capacity: admission works again.
  (void)q.pop_batch(8, std::chrono::microseconds{0});
  futs.push_back(q.push(Tensor({1, 3})));
  EXPECT_EQ(q.counters().accepted, 4U);
}

TEST(RequestQueue, EstimatedWaitWatermarkShedsUnderBacklog) {
  QueueOptions qo;
  qo.max_estimated_wait = std::chrono::microseconds{50};
  RequestQueue q(qo);
  auto f0 = q.push(Tensor({1, 3}));
  auto f1 = q.push(Tensor({1, 3}));
  // Let both requests age well past the watermark before the pop records
  // their waits into the EWMA.
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_EQ(q.pop_batch(8, std::chrono::microseconds{0}).size(), 2U);
  EXPECT_GT(q.estimated_wait().count(), 50);
  // First push into the empty queue is always admitted (someone has to
  // bring the wait back down); the next one sheds on the stale estimate.
  auto f2 = q.push(Tensor({1, 3}));
  const Response shed = q.push(Tensor({1, 3})).get();
  EXPECT_EQ(shed.status, ServeStatus::kOverloaded);
  EXPECT_EQ(q.counters().shed, 1U);
  // The wait histogram saw both recorded waits.
  EXPECT_GT(q.wait_quantile(0.99).count(), q.wait_quantile(0.0).count() - 1);
}

TEST(RequestQueue, ExpiredDeadlinesFailFastAtPop) {
  RequestQueue q;
  auto doomed = q.push(Tensor({1, 3}), std::chrono::microseconds{100});
  auto alive = q.push(Tensor({1, 3}));
  std::this_thread::sleep_for(std::chrono::milliseconds{2});
  // The expired request is failed inside pop_batch and never occupies a
  // batch slot; the live one comes out alone.
  const auto batch = q.pop_batch(8, std::chrono::microseconds{0});
  EXPECT_EQ(batch.size(), 1U);
  const Response dead = doomed.get();
  EXPECT_EQ(dead.status, ServeStatus::kDeadlineExceeded);
  EXPECT_GE(dead.queue_wait.count(), 100);
  EXPECT_EQ(q.counters().expired, 1U);
}

TEST(RequestQueue, CancelFailsPendingWithShutdown) {
  RequestQueue q;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(q.push(Tensor({1, 3})));
  q.cancel();
  for (auto& f : futs) {
    EXPECT_EQ(f.get().status, ServeStatus::kShutdown);
  }
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.depth(), 0U);
  EXPECT_EQ(q.counters().cancelled, 4U);
  // Cancelled + closed = immediate worker exit signal.
  EXPECT_TRUE(q.pop_batch(8, std::chrono::microseconds{0}).empty());
}

TEST(OverloadController, TripsAfterStreakAndRestoresWithHysteresis) {
  OverloadPolicy policy;
  policy.backlog_high = 8;
  policy.backlog_low = 2;
  policy.trip_after = 3;
  policy.restore_after = 2;
  policy.max_batch_scale = 4.0;
  policy.linger_scale = 2.0;
  OverloadController ctl(4, std::chrono::microseconds{100}, policy);

  // Two pressure ticks then a clear tick: streak resets, no trip.
  (void)ctl.observe(10);
  (void)ctl.observe(12);
  (void)ctl.observe(0);
  EXPECT_FALSE(ctl.degraded());
  // Three consecutive: trips, knobs widen.
  (void)ctl.observe(9);
  (void)ctl.observe(9);
  const auto k = ctl.observe(9);
  EXPECT_TRUE(k.degraded);
  EXPECT_EQ(k.max_batch, 16U);
  EXPECT_EQ(k.batch_deadline.count(), 200);
  EXPECT_EQ(ctl.degrade_events(), 1U);
  // Hysteresis band (between low and high) holds the degraded state and
  // resets the clear streak.
  (void)ctl.observe(1);
  (void)ctl.observe(5);
  (void)ctl.observe(1);
  EXPECT_TRUE(ctl.degraded());
  // Two consecutive clears restore the base knobs.
  const auto k2 = ctl.observe(0);
  EXPECT_FALSE(k2.degraded);
  EXPECT_EQ(k2.max_batch, 4U);
  EXPECT_EQ(k2.batch_deadline.count(), 100);
  EXPECT_EQ(ctl.restore_events(), 1U);
}

TEST(Server, CoalescesConcurrentRequestsIntoFusedBatches) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  session.set_formats(w, a);

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::milliseconds{250};
  Server server(session.publisher(), opts);

  std::vector<Tensor> inputs;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(random_batch(1, 3, 16, 500 + i));
    futs.push_back(server.submit(inputs.back()));
  }
  for (int i = 0; i < 4; ++i) {
    Response resp = futs[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.model_version, 1U);
    EXPECT_EQ(resp.logits.dim(0), 1);
    // Bit-identical to a serial run of the same sample — batching is
    // invisible in the numbers.
    EXPECT_EQ(logit_bits(resp.logits),
              logit_bits(session.run(inputs[static_cast<std::size_t>(i)]).logits))
        << "request " << i;
    EXPECT_GE(resp.batch_rows, 1);
    EXPECT_LE(resp.batch_rows, 4);
  }
  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 4U);
  EXPECT_EQ(st.responses, 4U);
  EXPECT_EQ(st.batched_rows, 4U);
  // All four were queued before the worker's linger deadline expired, so
  // they ride few fused batches (usually exactly one).
  EXPECT_LE(st.batches, 4U);
  EXPECT_GE(st.max_batch_rows, 1U);
}

// The acceptance test: N >= 8 concurrent client threads, every response
// bit-identical to a serial per-sample run of the same input against the
// version that served it, across a mid-serve hot-swap.  Runs under TSan
// in CI with LP_THREADS=8.
TEST(Server, ConcurrentClientsBitIdenticalAcrossHotSwap) {
  constexpr int kClients = 8;
  constexpr int kItersPerPhase = 3;
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w1 = varied_weight_cfgs(m, /*phase=*/0);
  const auto a1 = varied_act_cfgs(w1);
  const auto w2 = varied_weight_cfgs(m, /*phase=*/1);
  const auto a2 = varied_act_cfgs(w2);

  // Per-client serial references for both assignments, computed against
  // the session itself before serving starts (version 1 = w1, 2 = w2,
  // 3 = w1 again).
  std::vector<Tensor> inputs;
  std::vector<std::vector<std::uint32_t>> ref1;
  std::vector<std::vector<std::uint32_t>> ref2;
  for (int c = 0; c < kClients; ++c) {
    inputs.push_back(random_batch(1, 3, 16, 900 + c));
  }
  session.set_formats(w2, a2);
  for (const Tensor& x : inputs) ref2.push_back(logit_bits(session.run(x).logits));
  session.set_formats(w1, a1);
  for (const Tensor& x : inputs) ref1.push_back(logit_bits(session.run(x).logits));
  // Published versions from here: 2 (w1, current), 3 (w2), 4 (w1).
  auto ref_for = [&](std::uint64_t version,
                     int client) -> const std::vector<std::uint32_t>& {
    return version == 3 ? ref2[static_cast<std::size_t>(client)]
                        : ref1[static_cast<std::size_t>(client)];
  };

  ServerOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::microseconds{200};
  Server server(session.publisher(), opts);

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> version_seen_mask{0};
  auto client_phase = [&](std::uint64_t min_version, std::uint64_t max_version) {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int it = 0; it < kItersPerPhase; ++it) {
          Response resp =
              server.submit(inputs[static_cast<std::size_t>(c)]).get();
          if (!resp.ok() || resp.model_version < min_version ||
              resp.model_version > max_version) {
            failures.fetch_add(1);
            continue;
          }
          version_seen_mask.fetch_or(1ULL << resp.model_version);
          if (logit_bits(resp.logits) != ref_for(resp.model_version, c)) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  };

  // Phase A: everything served by version 2 (w1).
  client_phase(2, 2);
  // Phase B: hot-swap to w2 while clients are mid-flight; responses come
  // from version 2 or 3 depending on which snapshot their batch acquired,
  // and must match the serial reference for whichever served them.
  std::thread swapper([&] { session.set_formats(w2, a2); });
  client_phase(2, 3);
  swapper.join();
  // Phase C: everything now on version 3 (w2).
  client_phase(3, 3);
  // Swap back mid-flight the other way (version 4 = w1 again).
  std::thread swapper2([&] { session.set_formats(w1, a1); });
  client_phase(3, 4);
  swapper2.join();
  server.shutdown();

  EXPECT_EQ(failures.load(), 0);
  // Both assignments provably served traffic.
  EXPECT_TRUE(version_seen_mask.load() & (1ULL << 2));
  EXPECT_TRUE(version_seen_mask.load() & (1ULL << 3));
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(4 * kClients * kItersPerPhase));
  EXPECT_EQ(st.responses, st.requests);
  EXPECT_GE(st.max_batch_rows, 1U);
}

TEST(Server, FailsFuturesInsteadOfHangingWhenNoModelPublished) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);  // no set_formats: nothing published
  Server server(session.publisher(), ServerOptions{});
  const Response resp = server.submit(random_batch(1, 3, 16, 42)).get();
  EXPECT_EQ(resp.status, ServeStatus::kInternal);
  EXPECT_NE(resp.error.find("no model published"), std::string::npos);
  server.shutdown();
  EXPECT_EQ(server.stats().responses, 1U);
  EXPECT_EQ(server.stats().failures, 1U);
}

TEST(Server, BadRequestFailsOnlyItsOwnFuture) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  session.set_formats(w, {});

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::milliseconds{250};
  Server server(session.publisher(), opts);

  // Three requests land in one pop: two valid, one with a shape the model
  // cannot take.  Stackable-shape grouping puts the bad one in its own
  // group, so only its future fails.
  const Tensor good0 = random_batch(1, 3, 16, 81);
  const Tensor good1 = random_batch(1, 3, 16, 82);
  auto f0 = server.submit(good0);
  auto fbad = server.submit(Tensor({1, 5}));
  auto f1 = server.submit(good1);

  Response r0 = f0.get();
  Response rbad = fbad.get();
  Response r1 = f1.get();
  ASSERT_TRUE(r0.ok()) << r0.error;
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_EQ(rbad.status, ServeStatus::kInvalidRequest);
  // The innocents are still bit-identical to serial runs — isolation does
  // not perturb the numbers.
  EXPECT_EQ(logit_bits(r0.logits), logit_bits(session.run(good0).logits));
  EXPECT_EQ(logit_bits(r1.logits), logit_bits(session.run(good1).logits));
  server.shutdown();
  EXPECT_EQ(server.stats().failures, 1U);
  EXPECT_EQ(server.stats().responses, 3U);
}

TEST(Server, CancelFailsBacklogButFinishesInFlight) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  session.set_formats(varied_weight_cfgs(m), {});

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;  // one request per forward: a backlog must form
  opts.batch_deadline = std::chrono::microseconds{0};
  Server server(session.publisher(), opts);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(server.submit(random_batch(1, 3, 16, 300 + i)));
  }
  server.cancel();
  // Every future resolves — served before the cancel, or kShutdown.
  std::uint64_t served = 0;
  std::uint64_t cancelled = 0;
  for (auto& f : futs) {
    const Response resp = f.get();
    if (resp.ok()) {
      ++served;
    } else {
      EXPECT_EQ(resp.status, ServeStatus::kShutdown);
      ++cancelled;
    }
  }
  EXPECT_EQ(served + cancelled, 32U);
  EXPECT_EQ(server.health().cancelled, cancelled);
  // Post-cancel submits resolve kShutdown instead of hanging.
  EXPECT_EQ(server.submit(random_batch(1, 3, 16, 999)).get().status,
            ServeStatus::kShutdown);
}

TEST(Server, DegradesBatchingUnderBacklogAndReportsHealth) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  session.set_formats(w, {});

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;  // base knob: batch-per-request
  opts.batch_deadline = std::chrono::microseconds{0};
  // Any observed backlog trips degradation immediately and nothing
  // restores it (the restore transition is pinned by the controller unit
  // test) — so the assertion below is deterministic: with 40 requests
  // pushed faster than forwards complete, some pop observes depth >= 1.
  opts.overload.backlog_low = 0;
  opts.overload.backlog_high = 1;
  opts.overload.trip_after = 1;
  opts.overload.restore_after = 1 << 20;
  opts.overload.max_batch_scale = 8.0;
  Server server(session.publisher(), opts);

  std::vector<Tensor> inputs;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 40; ++i) {
    inputs.push_back(random_batch(1, 3, 16, 2000 + i));
  }
  for (const Tensor& x : inputs) futs.push_back(server.submit(x));
  bool any_degraded = false;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Response resp = futs[i].get();
    ASSERT_TRUE(resp.ok()) << resp.error;
    any_degraded = any_degraded || resp.degraded;
    // Degraded batching stays invisible in the numbers.
    EXPECT_EQ(logit_bits(resp.logits),
              logit_bits(session.run(inputs[i]).logits));
  }
  server.shutdown();
  const ServerHealth h = server.health();
  EXPECT_TRUE(any_degraded);
  EXPECT_GE(h.degrade_events, 1U);
  EXPECT_TRUE(h.degraded);  // restore_after is unreachable in this test
  EXPECT_EQ(h.accepted, 40U);
  EXPECT_EQ(h.shed, 0U);
  // The widened max_batch (1 * 8) actually coalesced: some fused batch
  // carried more rows than the base knob allows.
  EXPECT_GT(server.stats().max_batch_rows, 1U);
  EXPECT_GT(h.wait_p99.count(), 0);
  EXPECT_GE(h.wait_p99.count(), h.wait_p50.count());
}

TEST(Server, ShutdownDrainsQueuedRequests) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  session.set_formats(w, {});

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 2;
  opts.batch_deadline = std::chrono::microseconds{0};
  Server server(session.publisher(), opts);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(server.submit(random_batch(1, 3, 16, 700 + i)));
  }
  server.shutdown();  // must serve all six, then join
  for (auto& f : futs) EXPECT_EQ(f.get().logits.dim(0), 1);
  EXPECT_EQ(server.stats().responses, 6U);
}

TEST(Artifact, RoundTripIsBitIdenticalAndColdStartSkipsQuantization) {
  const std::string path = ::testing::TempDir() + "lp_artifact.bin";
  const std::string path2 = ::testing::TempDir() + "lp_artifact2.bin";
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  const Tensor x = random_batch(3, 3, 16, 1234);

  InferenceSession hot(m);
  hot.set_formats(w, a);
  const auto ref_bits = logit_bits(hot.run(x).logits);
  hot.save_artifact(path);
  EXPECT_EQ(hot.stats().misses, m.num_slots());  // quantized once, hot

  // Cold start: a fresh session seeds its caches from the artifact and
  // publishes — zero quantization work.
  InferenceSession cold(m);
  EXPECT_EQ(cold.load_artifact(path), 1U);
  EXPECT_EQ(cold.stats().misses, 0U);
  EXPECT_EQ(logit_bits(cold.run(x).logits), ref_bits);
  EXPECT_EQ(cold.servable()->version(), 1U);

  // Re-serializing the loaded snapshot reproduces the file byte-for-byte
  // — the round trip loses nothing.
  cold.save_artifact(path2);
  EXPECT_EQ(file_bytes(path), file_bytes(path2));

  // And the cold session serves: batched requests against the loaded
  // snapshot match the hot session bit-for-bit.
  Server server(cold.publisher(), ServerOptions{});
  const Tensor one = random_batch(1, 3, 16, 4321);
  EXPECT_EQ(logit_bits(server.submit(one).get().logits),
            logit_bits(hot.run(one).logits));
}

TEST(Artifact, LoadRejectsCorruptionTruncationAndWrongModel) {
  const std::string path = ::testing::TempDir() + "lp_artifact_corrupt.bin";
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  session.set_formats(varied_weight_cfgs(m), {});
  session.save_artifact(path);
  const std::vector<std::uint8_t> good = file_bytes(path);

  auto write_file = [&](const std::vector<std::uint8_t>& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  };

  // Flip one byte deep in the body: checksum must catch it.
  std::vector<std::uint8_t> corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  write_file(corrupt);
  InferenceSession fresh(m);
  EXPECT_THROW((void)fresh.load_artifact(path), std::invalid_argument);

  // Truncation.
  write_file(std::vector<std::uint8_t>(good.begin(),
                                       good.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               good.size() / 2)));
  EXPECT_THROW((void)fresh.load_artifact(path), std::invalid_argument);

  // Bad magic.
  corrupt = good;
  corrupt[0] ^= 0xFF;
  write_file(corrupt);
  EXPECT_THROW((void)fresh.load_artifact(path), std::invalid_argument);

  // A model with different slot shapes must refuse the artifact.
  write_file(good);
  nn::ZooOptions other = small_opts();
  other.classes = 4;
  const nn::Model m2 = nn::build_tiny_cnn(other);
  InferenceSession wrong(m2);
  EXPECT_THROW((void)wrong.load_artifact(path), std::invalid_argument);

  // Nothing was published by any failed load.
  EXPECT_EQ(fresh.servable(), nullptr);
  EXPECT_EQ(wrong.servable(), nullptr);
}

// TSan-covered: cache stats and servable reads racing a prepare pass.
// The sharded locks + atomic counters make this well-defined; before
// them, stats() during a prepare was a data race.
TEST(Server, StatsAndServingSafeDuringConcurrentPrepare) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w1 = varied_weight_cfgs(m, 0);
  const auto a1 = varied_act_cfgs(w1);
  const auto w2 = varied_weight_cfgs(m, 2);
  const auto a2 = varied_act_cfgs(w2);
  session.set_formats(w1, a1);

  Server server(session.publisher(), ServerOptions{});
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int i = 0; i < 6; ++i) {
      session.set_formats(i % 2 ? w1 : w2, i % 2 ? a1 : a2);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    std::uint64_t sink = 0;
    do {
      const runtime::CacheStats st = session.stats();
      sink += st.hits + st.misses + st.bytes;
      if (const auto sp = session.servable()) sink += sp->version();
    } while (!stop.load());
    EXPECT_GT(sink, 0U);  // at least one snapshot was read
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const Tensor x = random_batch(1, 3, 16, 60 + c);
      while (!stop.load()) {
        (void)server.submit(x).get();
      }
    });
  }
  swapper.join();
  reader.join();
  for (std::thread& t : clients) t.join();
  server.shutdown();
  EXPECT_GE(session.stats().hits, 1U);
}

}  // namespace
}  // namespace lp::serve
