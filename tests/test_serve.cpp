// Serving-core tests: dynamic batching, concurrent clients, hot-swap,
// and the serialized model artifact.
//
// The load-bearing contract: a response produced by the dynamically
// batched server is bit-identical to a serial session.run() of the same
// input against the same published model version — batch composition is
// a pure performance decision.  The concurrent test below pins that
// under 8 client threads across a mid-serve set_formats() hot-swap, and
// is part of the CI TSan leg (LP_THREADS=8), so the shared-snapshot and
// sharded-cache machinery is exercised under the race detector.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/artifact.h"
#include "runtime/session.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lp::serve {
namespace {

using runtime::InferenceSession;

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  return o;
}

Tensor random_batch(int n, int c, int s, std::uint64_t seed) {
  Tensor x({n, c, s, s});
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  return x;
}

/// Deterministic per-slot assignment with per-layer variety; `phase`
/// rotates the widths so two calls yield two distinct assignments.
std::vector<LPConfig> varied_weight_cfgs(const nn::Model& m, int phase = 0) {
  std::vector<LPConfig> cfgs;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const int n = 4 + static_cast<int>((s + phase) % 3) * 2;  // 4, 6, 8
    cfgs.push_back(LPConfig{n, n >= 6 ? 2 : 1, n / 2, centers[s]});
  }
  return cfgs;
}

std::vector<LPConfig> varied_act_cfgs(const std::vector<LPConfig>& w) {
  std::vector<LPConfig> cfgs;
  for (const LPConfig& c : w) cfgs.push_back(activation_config(c, 0.5));
  return cfgs;
}

std::vector<std::uint32_t> logit_bits(const Tensor& t) {
  std::vector<std::uint32_t> bits;
  bits.reserve(static_cast<std::size_t>(t.numel()));
  for (const float v : t.data()) bits.push_back(std::bit_cast<std::uint32_t>(v));
  return bits;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good()) << path;
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(raw.data()), size);
  return raw;
}

TEST(RequestQueue, CoalescesBacklogWithoutWaiting) {
  RequestQueue q;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i) futs.push_back(q.push(Tensor({1, 3})));
  // Everything already queued comes out in one pop, zero linger needed.
  const auto batch = q.pop_batch(8, std::chrono::microseconds{0});
  EXPECT_EQ(batch.size(), 5U);
  EXPECT_EQ(q.depth(), 0U);
}

TEST(RequestQueue, DeadlineFlushesPartialBatch) {
  RequestQueue q;
  auto f0 = q.push(Tensor({1, 3}));
  auto f1 = q.push(Tensor({1, 3}));
  // max_batch 8 but only 2 queued: the pop lingers for the deadline, then
  // dispatches the partial batch instead of stalling.
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = q.pop_batch(8, std::chrono::milliseconds{5});
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(batch.size(), 2U);
  EXPECT_GE(waited, std::chrono::milliseconds{4});
}

TEST(RequestQueue, CloseDrainsThenSignalsShutdown) {
  RequestQueue q;
  auto f0 = q.push(Tensor({1, 3}));
  auto f1 = q.push(Tensor({1, 3}));
  auto f2 = q.push(Tensor({1, 3}));
  q.close();
  EXPECT_THROW((void)q.push(Tensor({1, 3})), std::invalid_argument);
  // Queued work survives close() — shutdown drains, not drops.
  EXPECT_EQ(q.pop_batch(2, std::chrono::microseconds{0}).size(), 2U);
  EXPECT_EQ(q.pop_batch(8, std::chrono::microseconds{0}).size(), 1U);
  // Drained + closed = the worker exit signal.
  EXPECT_TRUE(q.pop_batch(8, std::chrono::microseconds{0}).empty());
}

TEST(RequestQueue, RejectsRankOneInputs) {
  RequestQueue q;
  // A uniform-rank list is interpreted as batches by stack_batches, so a
  // bare rank-1 sample would be misread as C rows; the queue rejects it
  // at the door with the [1, ...] shaping rule.
  EXPECT_THROW((void)q.push(Tensor({3})), std::invalid_argument);
}

TEST(Server, CoalescesConcurrentRequestsIntoFusedBatches) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  session.set_formats(w, a);

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::milliseconds{250};
  Server server(session.publisher(), opts);

  std::vector<Tensor> inputs;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(random_batch(1, 3, 16, 500 + i));
    futs.push_back(server.submit(inputs.back()));
  }
  for (int i = 0; i < 4; ++i) {
    Response resp = futs[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(resp.model_version, 1U);
    EXPECT_EQ(resp.logits.dim(0), 1);
    // Bit-identical to a serial run of the same sample — batching is
    // invisible in the numbers.
    EXPECT_EQ(logit_bits(resp.logits),
              logit_bits(session.run(inputs[static_cast<std::size_t>(i)]).logits))
        << "request " << i;
    EXPECT_GE(resp.batch_rows, 1);
    EXPECT_LE(resp.batch_rows, 4);
  }
  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 4U);
  EXPECT_EQ(st.responses, 4U);
  EXPECT_EQ(st.batched_rows, 4U);
  // All four were queued before the worker's linger deadline expired, so
  // they ride few fused batches (usually exactly one).
  EXPECT_LE(st.batches, 4U);
  EXPECT_GE(st.max_batch_rows, 1U);
}

// The acceptance test: N >= 8 concurrent client threads, every response
// bit-identical to a serial per-sample run of the same input against the
// version that served it, across a mid-serve hot-swap.  Runs under TSan
// in CI with LP_THREADS=8.
TEST(Server, ConcurrentClientsBitIdenticalAcrossHotSwap) {
  constexpr int kClients = 8;
  constexpr int kItersPerPhase = 3;
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w1 = varied_weight_cfgs(m, /*phase=*/0);
  const auto a1 = varied_act_cfgs(w1);
  const auto w2 = varied_weight_cfgs(m, /*phase=*/1);
  const auto a2 = varied_act_cfgs(w2);

  // Per-client serial references for both assignments, computed against
  // the session itself before serving starts (version 1 = w1, 2 = w2,
  // 3 = w1 again).
  std::vector<Tensor> inputs;
  std::vector<std::vector<std::uint32_t>> ref1;
  std::vector<std::vector<std::uint32_t>> ref2;
  for (int c = 0; c < kClients; ++c) {
    inputs.push_back(random_batch(1, 3, 16, 900 + c));
  }
  session.set_formats(w2, a2);
  for (const Tensor& x : inputs) ref2.push_back(logit_bits(session.run(x).logits));
  session.set_formats(w1, a1);
  for (const Tensor& x : inputs) ref1.push_back(logit_bits(session.run(x).logits));
  // Published versions from here: 2 (w1, current), 3 (w2), 4 (w1).
  auto ref_for = [&](std::uint64_t version,
                     int client) -> const std::vector<std::uint32_t>& {
    return version == 3 ? ref2[static_cast<std::size_t>(client)]
                        : ref1[static_cast<std::size_t>(client)];
  };

  ServerOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  opts.batch_deadline = std::chrono::microseconds{200};
  Server server(session.publisher(), opts);

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> version_seen_mask{0};
  auto client_phase = [&](std::uint64_t min_version, std::uint64_t max_version) {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int it = 0; it < kItersPerPhase; ++it) {
          Response resp =
              server.submit(inputs[static_cast<std::size_t>(c)]).get();
          if (resp.model_version < min_version ||
              resp.model_version > max_version) {
            failures.fetch_add(1);
            continue;
          }
          version_seen_mask.fetch_or(1ULL << resp.model_version);
          if (logit_bits(resp.logits) != ref_for(resp.model_version, c)) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  };

  // Phase A: everything served by version 2 (w1).
  client_phase(2, 2);
  // Phase B: hot-swap to w2 while clients are mid-flight; responses come
  // from version 2 or 3 depending on which snapshot their batch acquired,
  // and must match the serial reference for whichever served them.
  std::thread swapper([&] { session.set_formats(w2, a2); });
  client_phase(2, 3);
  swapper.join();
  // Phase C: everything now on version 3 (w2).
  client_phase(3, 3);
  // Swap back mid-flight the other way (version 4 = w1 again).
  std::thread swapper2([&] { session.set_formats(w1, a1); });
  client_phase(3, 4);
  swapper2.join();
  server.shutdown();

  EXPECT_EQ(failures.load(), 0);
  // Both assignments provably served traffic.
  EXPECT_TRUE(version_seen_mask.load() & (1ULL << 2));
  EXPECT_TRUE(version_seen_mask.load() & (1ULL << 3));
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(4 * kClients * kItersPerPhase));
  EXPECT_EQ(st.responses, st.requests);
  EXPECT_GE(st.max_batch_rows, 1U);
}

TEST(Server, FailsFuturesInsteadOfHangingWhenNoModelPublished) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);  // no set_formats: nothing published
  Server server(session.publisher(), ServerOptions{});
  auto fut = server.submit(random_batch(1, 3, 16, 42));
  EXPECT_THROW((void)fut.get(), std::invalid_argument);
  server.shutdown();
  EXPECT_EQ(server.stats().responses, 1U);
}

TEST(Server, ShutdownDrainsQueuedRequests) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w = varied_weight_cfgs(m);
  session.set_formats(w, {});

  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 2;
  opts.batch_deadline = std::chrono::microseconds{0};
  Server server(session.publisher(), opts);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(server.submit(random_batch(1, 3, 16, 700 + i)));
  }
  server.shutdown();  // must serve all six, then join
  for (auto& f : futs) EXPECT_EQ(f.get().logits.dim(0), 1);
  EXPECT_EQ(server.stats().responses, 6U);
}

TEST(Artifact, RoundTripIsBitIdenticalAndColdStartSkipsQuantization) {
  const std::string path = ::testing::TempDir() + "lp_artifact.bin";
  const std::string path2 = ::testing::TempDir() + "lp_artifact2.bin";
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto w = varied_weight_cfgs(m);
  const auto a = varied_act_cfgs(w);
  const Tensor x = random_batch(3, 3, 16, 1234);

  InferenceSession hot(m);
  hot.set_formats(w, a);
  const auto ref_bits = logit_bits(hot.run(x).logits);
  hot.save_artifact(path);
  EXPECT_EQ(hot.stats().misses, m.num_slots());  // quantized once, hot

  // Cold start: a fresh session seeds its caches from the artifact and
  // publishes — zero quantization work.
  InferenceSession cold(m);
  EXPECT_EQ(cold.load_artifact(path), 1U);
  EXPECT_EQ(cold.stats().misses, 0U);
  EXPECT_EQ(logit_bits(cold.run(x).logits), ref_bits);
  EXPECT_EQ(cold.servable()->version(), 1U);

  // Re-serializing the loaded snapshot reproduces the file byte-for-byte
  // — the round trip loses nothing.
  cold.save_artifact(path2);
  EXPECT_EQ(file_bytes(path), file_bytes(path2));

  // And the cold session serves: batched requests against the loaded
  // snapshot match the hot session bit-for-bit.
  Server server(cold.publisher(), ServerOptions{});
  const Tensor one = random_batch(1, 3, 16, 4321);
  EXPECT_EQ(logit_bits(server.submit(one).get().logits),
            logit_bits(hot.run(one).logits));
}

TEST(Artifact, LoadRejectsCorruptionTruncationAndWrongModel) {
  const std::string path = ::testing::TempDir() + "lp_artifact_corrupt.bin";
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  session.set_formats(varied_weight_cfgs(m), {});
  session.save_artifact(path);
  const std::vector<std::uint8_t> good = file_bytes(path);

  auto write_file = [&](const std::vector<std::uint8_t>& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  };

  // Flip one byte deep in the body: checksum must catch it.
  std::vector<std::uint8_t> corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  write_file(corrupt);
  InferenceSession fresh(m);
  EXPECT_THROW((void)fresh.load_artifact(path), std::invalid_argument);

  // Truncation.
  write_file(std::vector<std::uint8_t>(good.begin(),
                                       good.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               good.size() / 2)));
  EXPECT_THROW((void)fresh.load_artifact(path), std::invalid_argument);

  // Bad magic.
  corrupt = good;
  corrupt[0] ^= 0xFF;
  write_file(corrupt);
  EXPECT_THROW((void)fresh.load_artifact(path), std::invalid_argument);

  // A model with different slot shapes must refuse the artifact.
  write_file(good);
  nn::ZooOptions other = small_opts();
  other.classes = 4;
  const nn::Model m2 = nn::build_tiny_cnn(other);
  InferenceSession wrong(m2);
  EXPECT_THROW((void)wrong.load_artifact(path), std::invalid_argument);

  // Nothing was published by any failed load.
  EXPECT_EQ(fresh.servable(), nullptr);
  EXPECT_EQ(wrong.servable(), nullptr);
}

// TSan-covered: cache stats and servable reads racing a prepare pass.
// The sharded locks + atomic counters make this well-defined; before
// them, stats() during a prepare was a data race.
TEST(Server, StatsAndServingSafeDuringConcurrentPrepare) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  InferenceSession session(m);
  const auto w1 = varied_weight_cfgs(m, 0);
  const auto a1 = varied_act_cfgs(w1);
  const auto w2 = varied_weight_cfgs(m, 2);
  const auto a2 = varied_act_cfgs(w2);
  session.set_formats(w1, a1);

  Server server(session.publisher(), ServerOptions{});
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int i = 0; i < 6; ++i) {
      session.set_formats(i % 2 ? w1 : w2, i % 2 ? a1 : a2);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    std::uint64_t sink = 0;
    do {
      const runtime::CacheStats st = session.stats();
      sink += st.hits + st.misses + st.bytes;
      if (const auto sp = session.servable()) sink += sp->version();
    } while (!stop.load());
    EXPECT_GT(sink, 0U);  // at least one snapshot was read
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const Tensor x = random_batch(1, 3, 16, 60 + c);
      while (!stop.load()) {
        (void)server.submit(x).get();
      }
    });
  }
  swapper.join();
  reader.join();
  for (std::thread& t : clients) t.join();
  server.shutdown();
  EXPECT_GE(session.stats().hits, 1U);
}

}  // namespace
}  // namespace lp::serve
