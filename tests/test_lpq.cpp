// LPQ framework tests: search-space constraints, regeneration semantics,
// fitness behaviour, engine invariants and end-to-end improvement.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "util/stats.h"

namespace lp::lpq {
namespace {

nn::ZooOptions small_opts() {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 17;
  return o;
}

Tensor random_batch(int n, int c, int s, std::uint64_t seed) {
  Tensor x({n, c, s, s});
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  return x;
}

TEST(SearchSpace, ClampEnforcesPaperConstraints) {
  SearchSpace sp;
  const LPConfig c = sp.clamp(LPConfig{20, 9, 15, 0.0});
  EXPECT_EQ(c.n, 8);
  EXPECT_LE(c.es, 5);
  EXPECT_LE(c.rs, 7);
  EXPECT_TRUE(c.valid());

  const LPConfig tiny = sp.clamp(LPConfig{1, 3, 0, 0.0});
  EXPECT_EQ(tiny.n, 2);
  EXPECT_EQ(tiny.es, 0);
  EXPECT_EQ(tiny.rs, 1);
  EXPECT_TRUE(tiny.valid());
}

TEST(SearchSpace, PowerOfTwoPresetSnapsWidths) {
  SearchSpace sp;
  sp.power_of_two_n = true;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const LPConfig c = sp.sample(rng, 0.0);
    EXPECT_TRUE(c.n == 2 || c.n == 4 || c.n == 8) << c.n;
    EXPECT_TRUE(c.valid());
  }
}

TEST(SearchSpace, SampleAlwaysValidAcrossSeeds) {
  SearchSpace sp;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const LPConfig c = sp.sample(rng, rng.uniform(-8.0, 8.0));
    EXPECT_TRUE(c.valid()) << c.to_string();
  }
}

TEST(Regeneration, StaysInValidSpaceAndNearParents) {
  SearchSpace sp;
  Rng rng(5);
  const LPConfig p1 = sp.clamp(LPConfig{4, 1, 3, 1.0});
  const LPConfig p2 = sp.clamp(LPConfig{8, 2, 5, 3.0});
  for (int i = 0; i < 300; ++i) {
    const LPConfig c = regenerate_layer(p1, p2, sp, rng);
    EXPECT_TRUE(c.valid());
    EXPECT_GE(c.n, 3);  // min(p1,p2)-1
    EXPECT_LE(c.n, 8);  // max+1 clamped
    // Eq. 5: sf is the parent mean plus bounded noise.
    EXPECT_NEAR(c.sf, 2.0, sp.sf_radius + 1e-9);
  }
}

TEST(SfCenters, MatchLayerMagnitudes) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto centers = sf_centers(m);
  ASSERT_EQ(centers.size(), m.num_slots());
  // Center should be -log2(mean|w|) of each slot.
  for (std::size_t s = 0; s < centers.size(); ++s) {
    const double ma = mean_abs(m.slot_list()[s]->weight.data());
    EXPECT_NEAR(centers[s], -std::log2(ma), 1e-9);
  }
}

TEST(QuantSpecBuilder, ActivationRuleFollowsPaper) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  Candidate cand;
  SearchSpace sp;
  Rng rng(9);
  const auto centers = sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    cand.layers.push_back(sp.clamp(LPConfig{4, 1, 2, centers[s]}));
  }
  const auto ref_scales = m.measure_act_scales(
      random_batch(4, 3, 16, 77));
  std::vector<double> act_centers;
  for (float v : ref_scales) act_centers.push_back(-std::log2(v));
  const auto owned = build_quant_spec(m, cand, ActSfMode::kCalibrated, act_centers);
  ASSERT_EQ(owned.spec.weight_fmt.size(), m.num_slots());
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    const auto* wf = dynamic_cast<const LPFormat*>(owned.spec.weight_fmt[s]);
    const auto* af = dynamic_cast<const LPFormat*>(owned.spec.act_fmt[s]);
    ASSERT_NE(wf, nullptr);
    ASSERT_NE(af, nullptr);
    EXPECT_EQ(af->config().n, std::min(8, wf->config().n * 2));
    EXPECT_EQ(af->config().es, std::min(5, wf->config().es * 2));
    EXPECT_EQ(af->config().rs, wf->config().rs);
  }
}

TEST(QuantSpecBuilder, ChainedSfAccumulates) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  Candidate cand;
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    cand.layers.push_back(LPConfig{8, 2, 5, 0.5});
  }
  const std::vector<double> centers(m.num_slots(), 0.0);
  const auto owned = build_quant_spec(m, cand, ActSfMode::kChained, centers);
  const auto* af0 = dynamic_cast<const LPFormat*>(owned.spec.act_fmt[0]);
  const auto* af2 = dynamic_cast<const LPFormat*>(owned.spec.act_fmt[2]);
  ASSERT_NE(af0, nullptr);
  ASSERT_NE(af2, nullptr);
  EXPECT_DOUBLE_EQ(af0->config().sf, 0.5);
  EXPECT_DOUBLE_EQ(af2->config().sf, 1.5);
}

TEST(Fitness, CompressionRatioScalesWithBits) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const auto ref = compute_fp_reference(m, random_batch(4, 3, 16, 5));
  Candidate wide, narrow;
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    wide.layers.push_back(LPConfig{8, 2, 5, 0.0});
    narrow.layers.push_back(LPConfig{2, 0, 1, 0.0});
  }
  EXPECT_DOUBLE_EQ(compression_ratio(m, wide, ref), 8.0 / 32.0);
  EXPECT_DOUBLE_EQ(compression_ratio(m, narrow, ref), 2.0 / 32.0);
}

TEST(Fitness, IdenticalModelHasLowerLossThanCoarse) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const Tensor cal = random_batch(8, 3, 16, 6);
  const auto ref = compute_fp_reference(m, cal);
  FitnessOptions opts;

  const auto centers = sf_centers(m);
  Candidate fine, coarse;
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    fine.layers.push_back(LPConfig{8, 2, 5, centers[s]});
    coarse.layers.push_back(LPConfig{2, 0, 1, centers[s]});
  }
  const auto fine_spec = build_quant_spec(m, fine, opts.act_sf, ref.act_scale_centers);
  const auto coarse_spec =
      build_quant_spec(m, coarse, opts.act_sf, ref.act_scale_centers);
  const auto fine_run = m.forward_quantized(cal, fine_spec.spec, true);
  const auto coarse_run = m.forward_quantized(cal, coarse_spec.spec, true);
  EXPECT_LT(representation_loss(fine_run, ref, opts),
            representation_loss(coarse_run, ref, opts));
}

TEST(Fitness, AllKindsAreFiniteAndNonNegativeish) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  const Tensor cal = random_batch(6, 3, 16, 8);
  const auto ref = compute_fp_reference(m, cal);
  const auto centers = sf_centers(m);
  Candidate cand;
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    cand.layers.push_back(LPConfig{4, 1, 3, centers[s]});
  }
  for (auto kind : {FitnessKind::kGlobalLocalContrastive,
                    FitnessKind::kGlobalContrastive, FitnessKind::kMse,
                    FitnessKind::kKlDivergence}) {
    FitnessOptions opts;
    opts.kind = kind;
    const double f = evaluate_fitness(m, cand, cal, ref, opts);
    EXPECT_TRUE(std::isfinite(f)) << static_cast<int>(kind);
  }
}

TEST(Engine, BlocksBySizeCoverAllSlots) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  LpqParams p;
  p.block_size = 2;
  p.population = 4;
  LpqEngine eng(m, random_batch(4, 3, 16, 3), p);
  std::set<std::size_t> covered;
  for (const auto& blk : eng.blocks()) {
    for (auto s : blk) covered.insert(s);
  }
  EXPECT_EQ(covered.size(), m.num_slots());
}

TEST(Engine, BlocksByIdGroupAttention) {
  nn::ZooOptions o = small_opts();
  const nn::Model m = nn::build_tiny_vit(o);
  LpqParams p;
  p.block_mode = LpqParams::BlockMode::kByBlockId;
  p.population = 4;
  LpqEngine eng(m, random_batch(4, 3, 16, 4), p);
  // tiny_vit: patch embed (block 0), 2 transformer blocks (6 slots each),
  // head (block 3) -> 4 groups.
  EXPECT_EQ(eng.blocks().size(), 4U);
  EXPECT_EQ(eng.blocks()[1].size(), 6U);  // wq wk wv wo mlp1 mlp2
}

TEST(Engine, RunImprovesFitnessAndRespectsBudget) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  LpqParams p;
  p.population = 6;
  p.passes = 2;
  p.cycles = 1;
  p.block_size = 3;
  p.diversity_children = 2;
  p.seed = 99;
  LpqEngine eng(m, random_batch(8, 3, 16, 10), p);
  int callbacks = 0;
  const auto result = eng.run(
      [&](const IterationStat& st, const Candidate&) {
        ++callbacks;
        EXPECT_EQ(st.iteration, callbacks);
      });
  const int expected_updates =
      2 * 1 * static_cast<int>(eng.blocks().size());
  EXPECT_EQ(callbacks, expected_updates);
  ASSERT_FALSE(result.history.empty());
  // Best fitness must be monotonically non-increasing over iterations.
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i].best_fitness,
              result.history[i - 1].best_fitness + 1e-12);
  }
  EXPECT_TRUE(result.best.evaluated);
  EXPECT_EQ(result.best.layers.size(), m.num_slots());
  for (const auto& cfg : result.best.layers) EXPECT_TRUE(cfg.valid());
}

TEST(Engine, DeterministicForFixedSeed) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  auto run_once = [&]() {
    LpqParams p;
    p.population = 5;
    p.passes = 1;
    p.cycles = 1;
    p.diversity_children = 2;
    p.seed = 1234;
    p.threads = 1;
    LpqEngine eng(m, random_batch(6, 3, 16, 20), p);
    return eng.run();
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.best.fitness, r2.best.fitness);
  for (std::size_t s = 0; s < r1.best.layers.size(); ++s) {
    EXPECT_EQ(r1.best.layers[s].n, r2.best.layers[s].n);
    EXPECT_EQ(r1.best.layers[s].sf, r2.best.layers[s].sf);
  }
}

TEST(Engine, HardwarePresetProducesPow2Widths) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  LpqParams p;
  p.population = 5;
  p.passes = 1;
  p.cycles = 1;
  p.space.power_of_two_n = true;
  p.seed = 4;
  LpqEngine eng(m, random_batch(6, 3, 16, 30), p);
  const auto result = eng.run();
  for (const auto& cfg : result.best.layers) {
    EXPECT_TRUE(cfg.n == 2 || cfg.n == 4 || cfg.n == 8);
  }
}

TEST(Stats, CandidateStatsConsistent) {
  const nn::Model m = nn::build_tiny_cnn(small_opts());
  Candidate cand;
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    cand.layers.push_back(LPConfig{4, 1, 3, 0.0});
  }
  const auto st = candidate_stats(m, cand);
  EXPECT_DOUBLE_EQ(st.avg_weight_bits, 4.0);
  EXPECT_DOUBLE_EQ(st.avg_act_bits, 8.0);  // min(8, 2*4)
  EXPECT_NEAR(st.compression, 8.0, 1e-9);
}

TEST(EndToEnd, LpqQuantizedModelTracksFpAccuracy) {
  nn::Model m = nn::build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_calibration = 16;
  dopts.n_eval = 96;
  dopts.noise = 0.15;
  const auto ds = data::make_dataset(m, 3, 16, dopts);
  const double fp_acc = data::evaluate_fp(m, ds);

  LpqParams p;
  p.population = 8;
  p.passes = 2;
  p.cycles = 1;
  p.block_size = 3;
  p.diversity_children = 3;
  p.seed = 7;
  LpqEngine eng(m, ds.calibration, p);
  const auto result = eng.run();
  const auto spec = eng.make_spec(result.best);
  const double q_acc = data::evaluate_quantized(m, spec.spec, ds);
  // tiny_cnn has only 16 feature channels, so its margins are inherently
  // fragile and lambda's compression pressure legitimately trades some
  // fidelity.  The LPQ result must stay far from collapse (chance is
  // 1/8 = 12.5%) and beat a uniform 4-bit assignment of the same type.
  EXPECT_GT(q_acc, std::max(0.45, fp_acc - 0.5));

  Candidate uniform4;
  const auto centers = sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    uniform4.layers.push_back(LPConfig{4, 1, 2, centers[s]});
  }
  const auto spec4 = eng.make_spec(uniform4);
  const double acc4 = data::evaluate_quantized(m, spec4.spec, ds);
  EXPECT_GE(q_acc, acc4);

  const auto st = candidate_stats(m, result.best);
  EXPECT_LT(st.avg_weight_bits, 8.5);
  EXPECT_GT(st.compression, 3.5);
}

}  // namespace
}  // namespace lp::lpq
