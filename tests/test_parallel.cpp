// Thread-pool subsystem tests plus the determinism contract: every
// parallel hot path (forward pass, batched quantization, full LPQ search)
// must be bit-identical between threads=1 and threads=8, because chunk
// boundaries and reduction order never depend on the pool size.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/lp_format.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lp {
namespace {

/// Restores the shared default pool to automatic sizing when a test ends.
struct PoolGuard {
  ~PoolGuard() { set_default_pool_threads(0); }
};

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr std::int64_t kChunks = 1000;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](std::int64_t c) {
    hits[static_cast<std::size_t>(c)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::int64_t sum = 0;
  pool.run_chunks(100, [&](std::int64_t c) { sum += c; });  // no data race
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPool, PropagatesChunkExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(64,
                               [&](std::int64_t c) {
                                 if (c == 17) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
}

TEST(ThreadPool, NestedRunChunksDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> inner(16 * 16);
  pool.run_chunks(16, [&](std::int64_t outer) {
    pool.run_chunks(16, [&](std::int64_t i) {
      inner[static_cast<std::size_t>(outer * 16 + i)].fetch_add(1);
    });
  });
  for (const auto& h : inner) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeWithFixedChunks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(107);
  std::atomic<std::int64_t> max_chunk{-1};
  parallel_for(pool, 0, 107, 10,
               [&](std::int64_t b, std::int64_t e, std::int64_t c) {
                 EXPECT_EQ(b, c * 10);
                 EXPECT_LE(e - b, 10);
                 for (std::int64_t i = b; i < e; ++i) {
                   hits[static_cast<std::size_t>(i)].fetch_add(1);
                 }
                 std::int64_t seen = max_chunk.load();
                 while (c > seen && !max_chunk.compare_exchange_weak(seen, c)) {
                 }
               });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(max_chunk.load(), 10);  // ceil(107/10) = 11 chunks
}

TEST(ThreadPool, ConcurrentExternalSubmittersEachCompleteExactlyOnce) {
  // The serving layer's pattern: many non-pool threads issuing run_chunks
  // against the shared pool at once.  Every submitter's chunks must run
  // exactly once, with no cross-talk between the private task sets.
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr std::int64_t kChunks = 64;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kChunks);
  }
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 4; ++round) {
        pool.run_chunks(kChunks, [&, s](std::int64_t c) {
          hits[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)]
              .fetch_add(1);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const auto& per_submitter : hits) {
    for (const auto& h : per_submitter) EXPECT_EQ(h.load(), 4);
  }
}

TEST(ThreadPool, SubmissionFromPoolTaskDoesNotDeadlock) {
  // A chunk body that itself submits work — the reentrancy contract's
  // first clause.  Distinct from NestedRunChunksDoesNotDeadlock above in
  // that the outer fan-out saturates the pool first, so inner submissions
  // necessarily run while every worker is busy.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_chunks(8, [&](std::int64_t) {
    pool.run_chunks(8, [&](std::int64_t) {
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPool, DeepNestingFallsBackToSerialInline) {
  // Once one thread's run_chunks stack reaches kMaxNestingDepth, further
  // calls on that thread run their chunks serially inline — same chunk
  // set and order, bounded stack and no further fan-out.  Single-chunk
  // calls execute inline on the caller, so they build same-thread depth
  // deterministically; the multi-chunk call at the bottom must then stay
  // on the submitting thread instead of fanning out.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> descend = [&](int depth) {
    if (depth >= ThreadPool::kMaxNestingDepth) {
      const std::thread::id self = std::this_thread::get_id();
      pool.run_chunks(8, [&, self](std::int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        leaves.fetch_add(1);
      });
      return;
    }
    pool.run_chunks(1, [&](std::int64_t) { descend(depth + 1); });
  };
  descend(0);
  EXPECT_EQ(leaves.load(), 8);
}

TEST(ThreadPool, ResolveThreadsHonorsRequestAndFloor) {
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_GE(ThreadPool::resolve_threads(-3), 1);
}

TEST(ThreadPool, BalancedGrainSplitsFourChunksPerThread) {
  EXPECT_EQ(balanced_grain(1024, 4), 64);
  EXPECT_EQ(balanced_grain(3, 8), 1);
  EXPECT_EQ(balanced_grain(1, 1), 1);
}

std::vector<std::uint32_t> tensor_bits(const Tensor& t) {
  std::vector<std::uint32_t> bits;
  bits.reserve(static_cast<std::size_t>(t.numel()));
  for (const float v : t.data()) bits.push_back(std::bit_cast<std::uint32_t>(v));
  return bits;
}

TEST(PoolDeterminism, ForwardLogitsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  nn::ZooOptions o;
  o.input_size = 32;
  o.classes = 16;
  const nn::Model cnn = nn::build_tiny_cnn(o);
  const nn::Model vit = nn::build_tiny_vit(o);
  Tensor x({4, 3, 32, 32});
  Rng rng(7);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());

  set_default_pool_threads(1);
  const auto cnn1 = tensor_bits(cnn.forward(x).logits);
  const auto vit1 = tensor_bits(vit.forward(x).logits);
  set_default_pool_threads(8);
  const auto cnn8 = tensor_bits(cnn.forward(x).logits);
  const auto vit8 = tensor_bits(vit.forward(x).logits);
  EXPECT_EQ(cnn1, cnn8);
  EXPECT_EQ(vit1, vit8);
}

TEST(PoolDeterminism, QuantizeBatchBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const LPFormat fmt(LPConfig{6, 1, 3, 0.5});
  Rng rng(11);
  // Several reduction chunks plus a ragged tail.
  std::vector<float> data(5 * (1U << 15) + 1234);
  for (float& v : data) v = static_cast<float>(rng.gaussian(0.0, 2.0));

  std::vector<float> serial = data;
  set_default_pool_threads(1);
  const double se1 = fmt.quantize_batch(serial);
  std::vector<float> pooled = data;
  set_default_pool_threads(8);
  const double se8 = fmt.quantize_batch(pooled);

  EXPECT_EQ(std::bit_cast<std::uint64_t>(se1), std::bit_cast<std::uint64_t>(se8));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(serial[i]),
              std::bit_cast<std::uint32_t>(pooled[i]))
        << "element " << i;
  }
}

lpq::LpqResult run_small_lpq(int threads) {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  Tensor calib({2, 3, 16, 16});
  Rng rng(5);
  for (float& v : calib.data()) v = static_cast<float>(rng.gaussian());
  lpq::LpqParams params;
  params.population = 6;
  params.passes = 1;
  params.cycles = 1;
  params.block_size = 4;
  params.diversity_children = 2;
  params.threads = threads;
  lpq::LpqEngine engine(m, calib, params);
  return engine.run();
}

TEST(PoolDeterminism, LpqBestBitIdenticalAcrossThreadCounts) {
  const lpq::LpqResult r1 = run_small_lpq(1);
  const lpq::LpqResult r8 = run_small_lpq(8);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r1.best.fitness),
            std::bit_cast<std::uint64_t>(r8.best.fitness));
  ASSERT_EQ(r1.best.layers.size(), r8.best.layers.size());
  for (std::size_t l = 0; l < r1.best.layers.size(); ++l) {
    EXPECT_EQ(r1.best.layers[l].n, r8.best.layers[l].n) << "layer " << l;
    EXPECT_EQ(r1.best.layers[l].es, r8.best.layers[l].es) << "layer " << l;
    EXPECT_EQ(r1.best.layers[l].rs, r8.best.layers[l].rs) << "layer " << l;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r1.best.layers[l].sf),
              std::bit_cast<std::uint64_t>(r8.best.layers[l].sf))
        << "layer " << l;
  }
  ASSERT_EQ(r1.history.size(), r8.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r1.history[i].best_fitness),
              std::bit_cast<std::uint64_t>(r8.history[i].best_fitness));
  }
}

}  // namespace
}  // namespace lp
