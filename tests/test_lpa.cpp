// LPA bit-level datapath tests: multi-precision primitives, decoder
// bit-exactness against the reference codec, converters, MUL/ACC stages,
// encoder round trips, and the functional systolic GEMM against a
// double-precision reference.
#include <gtest/gtest.h>

#include <cmath>

#include "lpa/accel_model.h"
#include "lpa/bitops.h"
#include "lpa/converters.h"
#include "lpa/datapath.h"
#include "lpa/systolic.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lp::lpa {
namespace {

TEST(BitOps, ExtractInsertRoundTrip) {
  for (Mode m : {Mode::kA, Mode::kB, Mode::kC}) {
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
      const auto x = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
      std::uint8_t rebuilt = 0;
      for (int l = 0; l < lanes(m); ++l) {
        rebuilt = insert_lane(rebuilt, m, l, extract_lane(x, m, l));
      }
      EXPECT_EQ(rebuilt, x) << mode_name(m);
    }
  }
}

TEST(BitOps, TwosComplementMultiMatchesPerLane) {
  for (Mode m : {Mode::kA, Mode::kB, Mode::kC}) {
    const int w = weight_bits(m);
    const std::uint8_t mask = static_cast<std::uint8_t>((1U << w) - 1U);
    for (int x = 0; x < 256; ++x) {
      const auto neg = twos_complement_multi(static_cast<std::uint8_t>(x), m);
      for (int l = 0; l < lanes(m); ++l) {
        const std::uint8_t sub = extract_lane(static_cast<std::uint8_t>(x), m, l);
        const std::uint8_t expect =
            static_cast<std::uint8_t>((~sub + 1U) & mask);
        EXPECT_EQ(extract_lane(neg, m, l), expect);
      }
    }
  }
}

TEST(BitOps, LeadingZerosMulti) {
  // MODE-B: 0b0001'1000 -> lane0 "0001" has 3 leading zeros, lane1 "1000" 0.
  const auto lz = leading_zeros_multi(0b00011000U, Mode::kB);
  EXPECT_EQ(lz[0], 3);
  EXPECT_EQ(lz[1], 0);
  const auto lzc = leading_zeros_multi(0x00U, Mode::kC);
  EXPECT_EQ(lzc[0], 8);
  const auto lza = leading_zeros_multi(0b01000001U, Mode::kA);
  EXPECT_EQ(lza[0], 1);  // "01"
  EXPECT_EQ(lza[1], 2);  // "00"
  EXPECT_EQ(lza[2], 2);  // "00"
  EXPECT_EQ(lza[3], 1);  // "01"
}

TEST(Converters, RoundTripWithinOneLsb) {
  for (int i = 0; i < 256; ++i) {
    const auto lf = log_to_linear(static_cast<std::uint8_t>(i));
    const auto back = linear_to_log(lf);
    EXPECT_NEAR(back, i, 1.0) << "lnf=" << i;
  }
}

TEST(Converters, MonotoneAndExactAtEndpoints) {
  EXPECT_EQ(log_to_linear(0), 0);
  EXPECT_EQ(linear_to_log(0), 0);
  int prev = -1;
  for (int i = 0; i < 256; ++i) {
    const int v = log_to_linear(static_cast<std::uint8_t>(i));
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Converters, MatchRealFunctionWithinHalfLsb) {
  for (int i = 0; i < 256; ++i) {
    const double expect = (std::exp2(i / 256.0) - 1.0) * 256.0;
    EXPECT_NEAR(log_to_linear(static_cast<std::uint8_t>(i)), expect, 0.5 + 1e-9);
  }
}

TEST(Decoder, MatchesReferenceCodecAcrossAllCodes) {
  for (const LPConfig cfg : {LPConfig{8, 2, 5, 0.0}, LPConfig{8, 1, 3, 1.25},
                             LPConfig{4, 1, 2, -0.5}, LPConfig{2, 0, 1, 0.0}}) {
    const DecoderConfig dc = DecoderConfig::from(cfg);
    for (std::uint32_t c = 0; c < cfg.code_count(); ++c) {
      const DecodedLane lane = decode_lane(c, dc);
      const LPFields f = decode_fields(c, cfg);
      if (f.is_zero || f.is_nar) {
        EXPECT_TRUE(lane.zero);
        continue;
      }
      EXPECT_EQ(lane.sign, f.sign);
      // Fixed-point fields must reproduce the real-valued scale exactly
      // (up to the Q.8 quantization of sf).
      const double scale_q =
          static_cast<double>(lane.regime_q + lane.ulfx_q) / kFracOne;
      const double sf_rounded = std::round(cfg.sf * kFracOne) / kFracOne;
      const double expect = std::ldexp(static_cast<double>(f.k), cfg.es) +
                            f.ulfx - sf_rounded;
      EXPECT_NEAR(scale_q, expect, 1e-12) << cfg.to_string() << " code " << c;
    }
  }
}

TEST(Decoder, WeightWordSplitsLanes) {
  const LPConfig cfg{2, 0, 1, 0.0};
  const DecoderConfig dc = DecoderConfig::from(cfg);
  // Word 0b01_00_11_01: lanes are codes 1, 0, 3, 1.
  const auto lanes4 = decode_weight_word(0b01001101U, Mode::kA, dc);
  EXPECT_FALSE(lanes4[0].zero);
  EXPECT_TRUE(lanes4[1].zero);
  EXPECT_FALSE(lanes4[2].zero);
  EXPECT_EQ(lanes4[2].sign, 1);  // code 0b11 = -1
  EXPECT_FALSE(lanes4[3].zero);
  EXPECT_EQ(lanes4[3].sign, 0);
}

TEST(Decoder, RejectsMismatchedMode) {
  const DecoderConfig dc = DecoderConfig::from(LPConfig{4, 1, 2, 0.0});
  EXPECT_THROW((void)decode_weight_word(0, Mode::kC, dc), std::invalid_argument);
}

TEST(MulStage, ProductsAddScales) {
  const LPConfig cfg{8, 2, 5, 0.0};
  const DecoderConfig dc = DecoderConfig::from(cfg);
  Rng rng(3);
  const CodeTable table(cfg);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-8.0, 8.0);
    const double b = rng.uniform(-8.0, 8.0);
    const auto ca = table.quantize_code(a);
    const auto cb = table.quantize_code(b);
    if (ca == 0 || cb == 0) continue;
    const Product p = multiply(decode_lane(ca, dc), decode_lane(cb, dc));
    ASSERT_FALSE(p.zero);
    const double va = decode_value(ca, cfg);
    const double vb = decode_value(cb, cfg);
    const double expect_scale = std::log2(std::fabs(va * vb));
    EXPECT_NEAR(static_cast<double>(p.scale_q) / kFracOne, expect_scale, 1e-9);
    EXPECT_EQ(p.sign, (va * vb) < 0 ? 1 : 0);
  }
}

TEST(AccStage, SingleProductMatchesValue) {
  const LPConfig cfg{8, 2, 5, 0.0};
  const DecoderConfig dc = DecoderConfig::from(cfg);
  const CodeTable table(cfg);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-4.0, 4.0);
    const double b = rng.uniform(-4.0, 4.0);
    const auto ca = table.quantize_code(a);
    const auto cb = table.quantize_code(b);
    if (ca == 0 || cb == 0) continue;
    PartialSum s;
    accumulate(s, multiply(decode_lane(ca, dc), decode_lane(cb, dc)));
    const double expect = decode_value(ca, cfg) * decode_value(cb, cfg);
    // 8-bit log->linear conversion bounds the relative error by ~2^-9.
    EXPECT_NEAR(s.to_double(), expect, std::fabs(expect) * 4e-3 + 1e-12);
  }
}

TEST(AccStage, SumsWithMixedSignsAndMagnitudes) {
  PartialSum s;
  const LPConfig cfg{8, 2, 5, 0.0};
  const DecoderConfig dc = DecoderConfig::from(cfg);
  const CodeTable table(cfg);
  Rng rng(5);
  double expect = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double a = rng.gaussian() * std::exp2(rng.uniform_int(-3, 3));
    const double b = rng.gaussian();
    const auto ca = table.quantize_code(a);
    const auto cb = table.quantize_code(b);
    if (ca == 0 || cb == 0) continue;
    accumulate(s, multiply(decode_lane(ca, dc), decode_lane(cb, dc)));
    expect += decode_value(ca, cfg) * decode_value(cb, cfg);
  }
  EXPECT_NEAR(s.to_double(), expect, std::max(1e-6, std::fabs(expect)) * 0.02);
}

TEST(Encoder, RoundTripsRepresentableValues) {
  const LPConfig cfg{8, 2, 5, 0.0};
  const DecoderConfig dc = DecoderConfig::from(cfg);
  const CodeTable table(cfg);
  // Encode values that are exactly representable: the encoder must return
  // a code within one ulp of the optimum (8-bit converter rounding).
  for (double v : table.values()) {
    if (v == 0.0) continue;
    // Build a normalized partial sum: v = fr * 2^e with fr in [0.5, 1);
    // mantissa = fr * 2^24 (Q.16 with 8 guard bits), exponent = e - 8.
    int e = 0;
    const double fr = std::frexp(v, &e);
    PartialSum s;
    s.mantissa = std::llround(fr * std::exp2(kAccFracBits + 8));
    s.exponent = e - 8;
    const std::uint32_t code = encode_psum(s, dc);
    const double got = decode_value(code, cfg);
    EXPECT_NEAR(got, v, std::fabs(v) * 6e-3) << "value " << v;
  }
}

TEST(Encoder, ZeroAndSaturation) {
  const LPConfig cfg{8, 1, 4, 0.0};
  const DecoderConfig dc = DecoderConfig::from(cfg);
  PartialSum zero;
  EXPECT_EQ(encode_psum(zero, dc), 0U);
  PartialSum huge;
  huge.mantissa = 1;
  huge.exponent = 1000;
  const CodeTable table(cfg);
  EXPECT_EQ(decode_value(encode_psum(huge, dc), cfg), table.max_value());
  PartialSum tiny;
  tiny.mantissa = 1;
  tiny.exponent = -1000;
  EXPECT_EQ(decode_value(encode_psum(tiny, dc), cfg), table.min_positive());
}

TEST(SystolicGemm, MatchesReferenceWithinConverterTolerance) {
  Rng rng(6);
  Tensor w({12, 20});
  Tensor x({20, 9});
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  const LPConfig wcfg{8, 1, 4, 1.0};
  const LPConfig acfg{8, 2, 4, 0.0};
  GemmStats stats;
  const Tensor got = lpa_gemm(w, x, wcfg, acfg, &stats);
  const Tensor ref = lpa_gemm_reference(w, x, wcfg, acfg);
  EXPECT_EQ(stats.total_macs, 12 * 20 * 9);
  double ref_scale = 0.0;
  for (float v : ref.data()) ref_scale = std::max(ref_scale, std::fabs((double)v));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got[i], ref[i], ref_scale * 0.02 + 1e-5) << "index " << i;
  }
}

TEST(SystolicGemm, LowPrecisionModesStillTrack) {
  Rng rng(7);
  Tensor w({8, 16});
  Tensor x({16, 4});
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.3));
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  const LPConfig wcfg{4, 1, 2, 1.74};
  const LPConfig acfg{8, 2, 2, 0.0};
  const Tensor got = lpa_gemm(w, x, wcfg, acfg);
  const Tensor ref = lpa_gemm_reference(w, x, wcfg, acfg);
  const double err = rmse(got.data(), ref.data());
  const double scale = stddev(ref.data());
  EXPECT_LT(err, scale * 0.05 + 1e-6);
}

TEST(AccelModel, Table3AreasReproduce) {
  // Compute-area totals from the paper's Table 3 (um^2).
  EXPECT_NEAR(make_lpa().compute_area_um2(), 12078.72, 1.0);
  EXPECT_NEAR(make_ant().compute_area_um2(), 5102.28, 1.0);
  EXPECT_NEAR(make_bitfusion().compute_area_um2(), 5093.75, 1.0);
  EXPECT_NEAR(make_adaptivfloat().compute_area_um2(), 23357.14, 2.0);
  // Total area = 4.2 mm^2 buffer + compute.
  EXPECT_NEAR(make_lpa().total_area_mm2(), 4.212, 0.001);
  EXPECT_NEAR(make_ant().total_area_mm2(), 4.205, 0.001);
}

TEST(AccelModel, PackingAndFusionRules) {
  const auto lpa = make_lpa();
  EXPECT_EQ(lpa.packing(2), 4);
  EXPECT_EQ(lpa.packing(4), 2);
  EXPECT_EQ(lpa.packing(8), 1);
  EXPECT_EQ(lpa.fusion(8), 1);
  const auto ant = make_ant();
  EXPECT_EQ(ant.fusion(4), 1);
  EXPECT_EQ(ant.fusion(8), 2);
  EXPECT_EQ(ant.packing(4), 1);
  const auto bf = make_bitfusion();
  EXPECT_EQ(bf.fusion(2), 1);
  EXPECT_EQ(bf.fusion(4), 2);
  EXPECT_EQ(bf.fusion(8), 4);
  EXPECT_THROW((void)make_adaptivfloat().packing(4), std::invalid_argument);
}

TEST(AccelModel, PeakThroughputOrdering) {
  // At 2-bit, LPA's packed array beats everyone; at 8-bit it matches the
  // 8x8 baseline while fused designs halve/quarter.
  const auto lpa = make_lpa();
  const auto ant = make_ant();
  const auto bf = make_bitfusion();
  const auto af = make_adaptivfloat();
  EXPECT_GT(lpa.peak_gops(2), 3.9 * ant.peak_gops(4));
  EXPECT_EQ(lpa.peak_gops(8), af.peak_gops(8));
  EXPECT_GT(lpa.peak_gops(8), ant.peak_gops(8) * 1.9);
  EXPECT_GT(lpa.peak_gops(8), bf.peak_gops(8) * 3.9);
}

TEST(AccelModel, DeepScaleAreaScaling) {
  EXPECT_NEAR(scale_area_um2(100.0, 28.0, 28.0), 100.0, 1e-12);
  EXPECT_NEAR(scale_area_um2(100.0, 45.0, 28.0), 100.0 * (28.0 / 45.0) * (28.0 / 45.0),
              1e-9);
}

}  // namespace
}  // namespace lp::lpa
