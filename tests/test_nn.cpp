// DNN substrate tests: graph execution, quantized forward semantics,
// capture, workload tracing, zoo construction and scale calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lp_format.h"
#include "data/dataset.h"
#include "formats/uniform_int.h"
#include "nn/nodes.h"
#include "nn/zoo.h"
#include "util/stats.h"

namespace lp::nn {
namespace {

ZooOptions small_opts() {
  ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  o.seed = 7;
  return o;
}

TEST(Model, TinyCnnForwardShapes) {
  const Model m = build_tiny_cnn(small_opts());
  Tensor x({2, 3, 16, 16});
  Rng rng(1);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const auto out = m.forward(x);
  EXPECT_EQ(out.logits.shape(), (std::vector<std::int64_t>{2, 8}));
  for (float v : out.logits.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Model, CaptureProducesOneRowPerWeightedNode) {
  const Model m = build_tiny_cnn(small_opts());
  Tensor x({3, 3, 16, 16});
  Rng rng(2);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const auto out = m.forward(x, /*capture_pooled=*/true);
  EXPECT_EQ(static_cast<int>(out.pooled.size()), m.weighted_node_count());
  for (const auto& row : out.pooled) EXPECT_EQ(row.size(), 3U);
}

TEST(Model, QuantSpecSizeIsChecked) {
  const Model m = build_tiny_cnn(small_opts());
  QuantSpec spec;
  spec.resize(2);  // wrong: model has more slots
  Tensor x({1, 3, 16, 16});
  EXPECT_THROW((void)m.forward_quantized(x, spec), std::invalid_argument);
}

TEST(Model, NullQuantSpecMatchesFpForward) {
  const Model m = build_tiny_cnn(small_opts());
  QuantSpec spec;
  spec.resize(m.num_slots());
  Tensor x({2, 3, 16, 16});
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const auto fp = m.forward(x);
  const auto q = m.forward_quantized(x, spec);
  for (std::int64_t i = 0; i < fp.logits.numel(); ++i) {
    EXPECT_FLOAT_EQ(fp.logits[i], q.logits[i]);
  }
}

TEST(Model, WeightQuantizationChangesOutput) {
  const Model m = build_tiny_cnn(small_opts());
  QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat fmt(LPConfig{3, 0, 2, 0.0});  // very coarse
  for (auto& f : spec.weight_fmt) f = &fmt;
  Tensor x({2, 3, 16, 16});
  Rng rng(4);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const auto fp = m.forward(x);
  const auto q = m.forward_quantized(x, spec);
  double diff = 0.0;
  for (std::int64_t i = 0; i < fp.logits.numel(); ++i) {
    diff += std::fabs(fp.logits[i] - q.logits[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Model, QuantizedForwardDoesNotMutateFpWeights) {
  Model m = build_tiny_cnn(small_opts());
  const Tensor before = m.slot_list()[0]->weight;
  QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat fmt(LPConfig{4, 1, 2, 0.0});
  for (auto& f : spec.weight_fmt) f = &fmt;
  Tensor x({1, 3, 16, 16});
  (void)m.forward_quantized(x, spec);
  const Tensor& after = m.slot_list()[0]->weight;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(Model, TraceWorkloadsCoverAllSlots) {
  const Model m = build_tiny_cnn(small_opts());
  Tensor x({1, 3, 16, 16});
  const auto wl = m.trace_workloads(x);
  std::set<int> slots_seen;
  for (const auto& w : wl) {
    if (w.weight_slot >= 0) slots_seen.insert(w.weight_slot);
    EXPECT_GT(w.macs(), 0);
  }
  EXPECT_EQ(slots_seen.size(), m.num_slots());
}

TEST(Model, WorkloadMacsMatchAnalyticConv) {
  // stem: 3->8 channels, 3x3, 16x16 output: MACs = 8*27*256.
  const Model m = build_tiny_cnn(small_opts());
  Tensor x({1, 3, 16, 16});
  const auto wl = m.trace_workloads(x);
  EXPECT_EQ(wl[0].name, "stem");
  EXPECT_EQ(wl[0].macs(), 8LL * 27 * 256);
}

TEST(Zoo, AllModelsBuildAndRun) {
  for (const char* name :
       {"resnet18", "mobilenetv2", "tiny_cnn", "tiny_vit"}) {
    ZooOptions o = small_opts();
    o.input_size = 16;
    const Model m = build_model(name, o);
    EXPECT_GT(m.num_slots(), 2U) << name;
    Tensor x({1, 3, 16, 16});
    Rng rng(5);
    for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
    const auto out = m.forward(x);
    EXPECT_EQ(out.logits.dim(1), o.classes) << name;
    for (float v : out.logits.data()) EXPECT_TRUE(std::isfinite(v)) << name;
  }
}

TEST(Zoo, VitModelsBuildAndRun) {
  ZooOptions o;
  o.input_size = 16;  // 4x4 patches -> 16 tokens
  o.classes = 8;
  for (const char* name : {"vit_b", "deit_s", "swin_t"}) {
    const Model m = build_model(name, o);
    Tensor x({1, 3, 16, 16});
    Rng rng(6);
    for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
    const auto out = m.forward(x);
    EXPECT_EQ(out.logits.dim(1), o.classes) << name;
    for (float v : out.logits.data()) EXPECT_TRUE(std::isfinite(v)) << name;
  }
}

TEST(Zoo, UnknownModelThrows) {
  EXPECT_THROW((void)build_model("alexnet", {}), std::invalid_argument);
}

TEST(Zoo, ActivationsStayBoundedThroughDepth) {
  // The scale-calibration pass must keep ResNet50 activations finite and
  // in a sane range despite heterogeneous layer gains.
  ZooOptions o = small_opts();
  const Model m = build_resnet50(o);
  Tensor x({2, 3, 16, 16});
  Rng rng(8);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const auto out = m.forward(x);
  const double sd = stddev(out.logits.data());
  EXPECT_TRUE(std::isfinite(sd));
  EXPECT_LT(sd, 1e4);
}

TEST(Zoo, WeightDistributionsAreHeterogeneous) {
  // Different layers should have visibly different scales (Fig. 1(a)).
  const Model m = build_resnet18(small_opts());
  std::vector<double> stds;
  for (const auto* s : m.slot_list()) {
    stds.push_back(stddev(s->weight.data()));
  }
  const double mx = *std::max_element(stds.begin(), stds.end());
  const double mn = *std::min_element(stds.begin(), stds.end());
  EXPECT_GT(mx / mn, 3.0);  // at least ~half a decade of spread
}

TEST(Zoo, DeterministicForFixedSeed) {
  const Model a = build_tiny_cnn(small_opts());
  const Model b = build_tiny_cnn(small_opts());
  const auto& wa = a.slot_list()[1]->weight;
  const auto& wb = b.slot_list()[1]->weight;
  for (std::int64_t i = 0; i < wa.numel(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

TEST(KurtosisPool, MatchesDirectComputation) {
  Tensor t({2, 8});
  Rng rng(11);
  for (float& v : t.data()) v = static_cast<float>(rng.gaussian());
  const auto pooled = kurtosis_pool(t);
  EXPECT_EQ(pooled.size(), 2U);
  const std::span<const float> row0(t.raw(), 8);
  EXPECT_NEAR(pooled[0], kurtosis3(row0), 1e-5);
}

TEST(Dataset, LabelsComeFromCleanPrototypes) {
  Model m = build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_calibration = 8;
  dopts.n_eval = 32;
  dopts.noise = 0.05;  // tiny noise: FP accuracy should be near 1
  const auto ds = data::make_dataset(m, 3, 16, dopts);
  EXPECT_EQ(ds.eval_labels.size(), 32U);
  const double acc = data::evaluate_fp(m, ds);
  EXPECT_GT(acc, 0.9);
}

TEST(Dataset, LabelCorruptionHitsTargetAccuracy) {
  Model m = build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_calibration = 8;
  dopts.n_eval = 256;
  dopts.target_fp_accuracy = 0.75;
  const auto ds = data::make_dataset(m, 3, 16, dopts);
  const double acc = data::evaluate_fp(m, ds);
  EXPECT_NEAR(acc, 0.75, 0.08);
}

TEST(Dataset, CorruptionPreservesAccuracyDeltas) {
  // The same quantization must cost about the same accuracy with and
  // without label corruption — deltas are corruption-invariant.
  Model m = build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_eval = 512;
  dopts.noise = 0.1;
  const auto clean = data::make_dataset(m, 3, 16, dopts);
  dopts.target_fp_accuracy = 0.7;
  const auto corrupted = data::make_dataset(m, 3, 16, dopts);

  QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat coarse(LPConfig{3, 0, 2, 4.0});
  for (auto& f : spec.weight_fmt) f = &coarse;

  const double fp_clean = data::evaluate_fp(m, clean);
  const double d_clean = fp_clean - data::evaluate_quantized(m, spec, clean);
  const double d_corr = data::evaluate_fp(m, corrupted) -
                        data::evaluate_quantized(m, spec, corrupted);
  // Corrupting a fraction f of labels scales both accuracies by (1-f),
  // so the corrupted delta is (1-f) times the clean delta.
  const double flip = (fp_clean - 0.7) / fp_clean;
  EXPECT_NEAR(d_corr, d_clean * (1.0 - flip), 0.12);
}

TEST(Dataset, CoarserWeightsReduceAccuracy) {
  Model m = build_tiny_cnn(small_opts());
  data::DatasetOptions dopts;
  dopts.classes = 8;
  dopts.n_eval = 192;
  dopts.noise = 0.3;
  const auto ds = data::make_dataset(m, 3, 16, dopts);

  auto acc_at_bits = [&](int bits) {
    QuantSpec spec;
    spec.resize(m.num_slots());
    const UniformIntFormat fmt(bits, 0.05);
    for (auto& f : spec.weight_fmt) f = &fmt;
    return data::evaluate_quantized(m, spec, ds);
  };
  const double acc8 = acc_at_bits(8);
  const double acc2 = acc_at_bits(2);
  EXPECT_GE(acc8, acc2);
}

}  // namespace
}  // namespace lp::nn
