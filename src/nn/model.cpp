#include "nn/model.h"

#include <algorithm>

#include "nn/nodes.h"
#include "tensor/ops.h"
#include "util/stats.h"

namespace lp::nn {

Model::Model(std::string name) : name_(std::move(name)) {
  nodes_.push_back(std::make_unique<InputNode>());
}

int Model::add(std::unique_ptr<Node> node) {
  LP_CHECK_MSG(!finalized_, "cannot add nodes after finalize()");
  LP_CHECK(node != nullptr);
  const int idx = static_cast<int>(nodes_.size());
  for (int in : node->inputs()) {
    LP_CHECK_MSG(in >= 0 && in < idx, "node input " << in << " out of range");
  }
  nodes_.push_back(std::move(node));
  return idx;
}

void Model::finalize() {
  LP_CHECK(!finalized_);
  LP_CHECK_MSG(nodes_.size() >= 2, "model needs at least one compute node");
  slots_.clear();
  weighted_nodes_ = 0;
  for (auto& n : nodes_) {
    const auto node_slots = n->slots();
    if (!node_slots.empty()) {
      n->set_first_slot(static_cast<int>(slots_.size()));
      for (auto& s : node_slots) slots_.push_back(&s);
      ++weighted_nodes_;
    }
  }
  last_use_.assign(nodes_.size(), static_cast<int>(nodes_.size()) - 1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (int in : nodes_[i]->inputs()) {
      last_use_[static_cast<std::size_t>(in)] = static_cast<int>(i);
    }
  }
  finalized_ = true;
}

ForwardResult Model::run(const Tensor& input, RunCtx ctx,
                         bool capture_pooled) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK(!input.empty());
  ForwardResult result;
  if (capture_pooled) {
    result.pooled.reserve(static_cast<std::size_t>(weighted_nodes_));
    ctx.pooled_capture = &result.pooled;
  }
  std::vector<NodeValue> outputs(nodes_.size());
  outputs[0] = NodeValue(input);
  std::vector<const NodeValue*> in_ptrs;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = *nodes_[i];
    in_ptrs.clear();
    for (int in : n.inputs()) in_ptrs.push_back(&outputs[static_cast<std::size_t>(in)]);
    outputs[i] = n.run(in_ptrs, ctx);
    // Drop values whose last consumer has executed (liveness).
    for (int in : n.inputs()) {
      if (last_use_[static_cast<std::size_t>(in)] == static_cast<int>(i) && in != 0) {
        outputs[static_cast<std::size_t>(in)] = NodeValue();
      }
    }
  }
  // A coded final edge decodes here — the exact floats the float path's
  // quantized logits hold.
  result.logits = std::move(outputs.back()).into_dense();
  return result;
}

ForwardResult Model::forward(const Tensor& input, bool capture_pooled) const {
  return run(input, RunCtx{}, capture_pooled);
}

ForwardResult Model::forward_quantized(const Tensor& input, const QuantSpec& spec,
                                       bool capture_pooled) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK_MSG(spec.weight_fmt.size() == slots_.size() &&
                   spec.act_fmt.size() == slots_.size(),
               "QuantSpec sized " << spec.weight_fmt.size() << " but model has "
                                  << slots_.size() << " slots");
  const std::vector<Tensor> quantized = quantize_weights(*this, spec);
  RunCtx ctx;
  ctx.weight_override = &quantized;
  ctx.quant = &spec;
  return run(input, ctx, capture_pooled);
}

ForwardResult Model::forward_with_weights(const Tensor& input,
                                          const std::vector<Tensor>& weights,
                                          const QuantSpec& act_spec,
                                          bool capture_pooled) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK(weights.size() == slots_.size());
  LP_CHECK(act_spec.act_fmt.size() == slots_.size());
  RunCtx ctx;
  ctx.weight_override = &weights;
  ctx.quant = &act_spec;
  return run(input, ctx, capture_pooled);
}

ForwardResult Model::forward_with_weights(const Tensor& input,
                                          std::span<const Tensor* const> weights,
                                          const QuantSpec& act_spec,
                                          bool capture_pooled) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK(weights.size() == slots_.size());
  LP_CHECK(act_spec.act_fmt.size() == slots_.size());
  RunCtx ctx;
  ctx.weight_ptr_override = weights;
  ctx.quant = &act_spec;
  return run(input, ctx, capture_pooled);
}

ForwardResult Model::forward_with_weights(
    const Tensor& input, std::span<const Tensor* const> weights,
    std::span<const PackedCodes* const> codes, const QuantSpec& act_spec,
    bool capture_pooled) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK(weights.size() == slots_.size());
  LP_CHECK(codes.size() == slots_.size());
  LP_CHECK(act_spec.act_fmt.size() == slots_.size());
  RunCtx ctx;
  ctx.weight_ptr_override = weights;
  ctx.weight_code_override = codes;
  ctx.quant = &act_spec;
  return run(input, ctx, capture_pooled);
}

ForwardResult Model::forward_with_weights(
    const Tensor& input, std::span<const Tensor* const> weights,
    std::span<const PackedCodes* const> codes, const QuantSpec& act_spec,
    std::span<const ActCoding> act_coding, ActTraffic* act_traffic,
    bool capture_pooled, const ExecOpts& opts) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK(weights.size() == slots_.size());
  LP_CHECK(codes.size() == slots_.size());
  LP_CHECK(act_spec.act_fmt.size() == slots_.size());
  LP_CHECK(act_coding.empty() || act_coding.size() == slots_.size());
  RunCtx ctx;
  ctx.weight_ptr_override = weights;
  ctx.weight_code_override = codes;
  ctx.quant = &act_spec;
  ctx.act_coding = act_coding;
  ctx.act_traffic = act_traffic;
  ctx.approx = opts.approx;
  ctx.fuse = opts.fuse;
  return run(input, ctx, capture_pooled);
}

std::vector<LayerWorkload> Model::trace_workloads(const Tensor& input) const {
  std::vector<LayerWorkload> workloads;
  RunCtx ctx;
  ctx.workloads = &workloads;
  (void)run(input, ctx, /*capture_pooled=*/false);
  return workloads;
}

std::vector<float> Model::measure_act_scales(const Tensor& input) const {
  std::vector<float> scales;
  RunCtx ctx;
  ctx.act_scale_capture = &scales;
  (void)run(input, ctx, /*capture_pooled=*/false);
  return scales;
}

std::vector<float> Model::measure_act_maxes(const Tensor& input) const {
  std::vector<float> maxes;
  RunCtx ctx;
  ctx.act_max_capture = &maxes;
  (void)run(input, ctx, /*capture_pooled=*/false);
  return maxes;
}

Tensor Model::forward_node_output(const Tensor& input, std::size_t node_idx) const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  LP_CHECK(node_idx < nodes_.size());
  if (node_idx == 0) return input;
  std::vector<NodeValue> outputs(nodes_.size());
  outputs[0] = NodeValue(input);
  std::vector<const NodeValue*> in_ptrs;
  const RunCtx ctx;
  for (std::size_t i = 1; i <= node_idx; ++i) {
    const Node& n = *nodes_[i];
    in_ptrs.clear();
    for (int in : n.inputs()) in_ptrs.push_back(&outputs[static_cast<std::size_t>(in)]);
    outputs[i] = n.run(in_ptrs, ctx);
    for (int in : n.inputs()) {
      const auto uin = static_cast<std::size_t>(in);
      if (last_use_[uin] == static_cast<int>(i) && in != 0 && uin != node_idx) {
        outputs[uin] = NodeValue();
      }
    }
  }
  return std::move(outputs[node_idx]).into_dense();
}

void Model::normalize_layer_scales(const Tensor& input,
                                   std::span<const float> targets) {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  std::vector<NodeValue> outputs(nodes_.size());
  outputs[0] = NodeValue(input);
  std::vector<const NodeValue*> in_ptrs;
  const RunCtx ctx;
  int weighted_idx = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    Node& n = *nodes_[i];
    in_ptrs.clear();
    for (int in : n.inputs()) in_ptrs.push_back(&outputs[static_cast<std::size_t>(in)]);
    Tensor out = n.run(in_ptrs, ctx).into_dense();
    const auto node_slots = n.slots();
    if (!node_slots.empty()) {
      if (node_slots.size() == 1) {
        const float target =
            targets.empty() ? 1.0F
                            : targets[static_cast<std::size_t>(weighted_idx)];
        const double sd = stddev(out.data());
        if (sd > 1e-12) {
          const auto gain = static_cast<float>(target / sd);
          for (float& w : node_slots[0].weight.data()) w *= gain;
          if (!node_slots[0].bias.empty()) {
            for (float& b : node_slots[0].bias.data()) b *= gain;
          }
          scale_inplace(out, gain);
        }
      }
      ++weighted_idx;
    }
    outputs[i] = NodeValue(std::move(out));
    for (int in : n.inputs()) {
      if (last_use_[static_cast<std::size_t>(in)] == static_cast<int>(i) && in != 0) {
        outputs[static_cast<std::size_t>(in)] = NodeValue();
      }
    }
  }
}

std::vector<int> Model::slot_node_map() const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  std::vector<int> map(slots_.size(), 0);
  int weighted_idx = 0;
  for (const auto& n : nodes_) {
    const auto node_slots = n->slots_const();
    if (node_slots.empty()) continue;
    for (std::size_t k = 0; k < node_slots.size(); ++k) {
      map[static_cast<std::size_t>(n->first_slot()) + k] = weighted_idx;
    }
    ++weighted_idx;
  }
  return map;
}

std::int64_t Model::weight_param_count() const {
  LP_CHECK_MSG(finalized_, "call finalize() first");
  std::int64_t total = 0;
  for (const auto* s : slots_) total += s->weight.numel();
  return total;
}

std::int64_t Model::slot_param_count(std::size_t s) const {
  LP_CHECK(s < slots_.size());
  return slots_[s]->weight.numel();
}

std::vector<Tensor> quantize_weights(const Model& model, const QuantSpec& spec) {
  const auto& slots = model.slot_list();
  LP_CHECK(spec.weight_fmt.size() == slots.size());
  std::vector<Tensor> out(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const NumberFormat* fmt = spec.weight_fmt[i];
    if (fmt == nullptr) continue;
    Tensor copy = slots[i]->weight;
    quantize_inplace(copy, *fmt);
    out[i] = std::move(copy);
  }
  return out;
}

}  // namespace lp::nn
