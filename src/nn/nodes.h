// Concrete graph nodes: CNN primitives (conv/pool/add), transformer
// primitives (layernorm, attention, windowed attention, patch embed/merge,
// token ops) and the shared linear layer.  See node.h for the execution
// contract.
#pragma once

#include <array>

#include "nn/node.h"
#include "tensor/ops.h"

namespace lp::nn {

/// Placeholder for the graph input; the executor substitutes the batch.
class InputNode final : public Node {
 public:
  InputNode() : Node({}, "input") {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const>,
                           const RunCtx&) const override;
};

/// Convolution (+ optional fused activation).  One weight slot.
class Conv2dNode final : public Node {
 public:
  Conv2dNode(int input, std::string name, Tensor weight, Tensor bias,
             Conv2dSpec spec, Act act, int block_id);

  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx& ctx) const override;
  [[nodiscard]] std::span<WeightSlot> slots() override { return {&slot_, 1}; }

 private:
  WeightSlot slot_;
  Conv2dSpec spec_;
  Act act_;
};

/// Fully connected layer on the last dimension of a rank-2 or rank-3 input.
/// Weight layout [out, in].  One weight slot.
class LinearNode final : public Node {
 public:
  LinearNode(int input, std::string name, Tensor weight, Tensor bias, Act act,
             int block_id);

  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx& ctx) const override;
  [[nodiscard]] std::span<WeightSlot> slots() override { return {&slot_, 1}; }

 private:
  WeightSlot slot_;
  Act act_;
};

/// Multi-head self-attention over [B, T, D].  Four weight slots
/// (q, k, v, o).  `window` > 0 partitions the (h x w) token grid into
/// non-overlapping windows of that size (Swin-style, non-shifted).
class AttentionNode final : public Node {
 public:
  AttentionNode(int input, std::string name, int dim, int heads,
                std::array<Tensor, 4> weights, std::array<Tensor, 4> biases,
                int block_id, int window = 0, int grid_h = 0, int grid_w = 0);

  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx& ctx) const override;
  [[nodiscard]] std::span<WeightSlot> slots() override { return slots_; }

 private:
  [[nodiscard]] Tensor attend(const Tensor& tokens, const RunCtx& ctx) const;

  std::array<WeightSlot, 4> slots_;
  int dim_;
  int heads_;
  int window_;
  int grid_h_;
  int grid_w_;
};

class MaxPoolNode final : public Node {
 public:
  MaxPoolNode(int input, std::string name, int kernel, int stride, int padding)
      : Node({input}, std::move(name)), kernel_(kernel), stride_(stride),
        padding_(padding) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;

 private:
  int kernel_;
  int stride_;
  int padding_;
};

/// Global average pool [B,C,H,W] -> [B,C].
class GlobalAvgPoolNode final : public Node {
 public:
  GlobalAvgPoolNode(int input, std::string name) : Node({input}, std::move(name)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;
};

/// Residual sum of two nodes (+ optional ReLU).
class AddNode final : public Node {
 public:
  AddNode(int a, int b, std::string name, Act act)
      : Node({a, b}, std::move(name)), act_(act) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;

 private:
  Act act_;
};

/// LayerNorm over the last dim; gamma/beta are non-quantized parameters.
class LayerNormNode final : public Node {
 public:
  LayerNormNode(int input, std::string name, Tensor gamma, Tensor beta)
      : Node({input}, std::move(name)), gamma_(std::move(gamma)),
        beta_(std::move(beta)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// NCHW feature map to token sequence: [B,C,H,W] -> [B,H*W,C].
class ToTokensNode final : public Node {
 public:
  ToTokensNode(int input, std::string name) : Node({input}, std::move(name)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;
};

/// Prepend a learnable CLS token and add positional embeddings.
/// Parameters are non-quantized.
class ClsPosNode final : public Node {
 public:
  ClsPosNode(int input, std::string name, Tensor cls, Tensor pos)
      : Node({input}, std::move(name)), cls_(std::move(cls)), pos_(std::move(pos)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;

 private:
  Tensor cls_;  ///< [D]
  Tensor pos_;  ///< [T+1, D]
};

/// Add positional embeddings only (Swin path, no CLS token).
class PosEmbedNode final : public Node {
 public:
  PosEmbedNode(int input, std::string name, Tensor pos)
      : Node({input}, std::move(name)), pos_(std::move(pos)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;

 private:
  Tensor pos_;  ///< [T, D]
};

/// Select the CLS token: [B,T,D] -> [B,D].
class ClsSelectNode final : public Node {
 public:
  ClsSelectNode(int input, std::string name) : Node({input}, std::move(name)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;
};

/// Mean over tokens: [B,T,D] -> [B,D].
class TokenMeanNode final : public Node {
 public:
  TokenMeanNode(int input, std::string name) : Node({input}, std::move(name)) {}
  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx&) const override;
};

/// Swin patch merging: [B, H*W, D] -> [B, H/2*W/2, 2D] via 2x2 neighbour
/// concat + linear(4D -> 2D).  One weight slot.
class PatchMergeNode final : public Node {
 public:
  PatchMergeNode(int input, std::string name, int grid_h, int grid_w,
                 Tensor weight, Tensor bias, int block_id);

  [[nodiscard]] NodeValue run(std::span<const NodeValue* const> x,
                           const RunCtx& ctx) const override;
  [[nodiscard]] std::span<WeightSlot> slots() override { return {&slot_, 1}; }

 private:
  WeightSlot slot_;
  int grid_h_;
  int grid_w_;
};

/// Shared helpers (exposed for tests).
void apply_act(Tensor& t, Act act);
void quantize_activations(Tensor& t, const NumberFormat* fmt);
/// Per-sample Kurtosis-3 pooling over all non-batch dims: [B, ...] -> [B].
[[nodiscard]] std::vector<float> kurtosis_pool(const Tensor& t);

}  // namespace lp::nn
