// Model — a topologically ordered node graph with a quantization-aware
// executor.  This is the substrate LPQ quantizes and the accelerator
// simulator schedules.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/node.h"

namespace lp::nn {

/// Execution options for the coded-datapath forward variants: multiply
/// semantics (exact vs the opt-in PLAM log-domain approximation) and
/// whether float-in coded-out layers fuse GEMM→bias→act→encode into one
/// kernel pass (fuse=false reproduces the unfused activation flow).
struct ExecOpts {
  kernels::ApproxMode approx = kernels::ApproxMode::kExact;
  bool fuse = true;
};

/// Result of a forward pass.
struct ForwardResult {
  Tensor logits;  ///< output of the final node, [B, classes]
  /// Kurtosis-3 pooled per-sample representation of every weighted node's
  /// output, in topological order: pooled[node][sample].  Only filled when
  /// requested.
  std::vector<std::vector<float>> pooled;
};

class Model {
 public:
  /// Creates a model whose node 0 is the input placeholder.
  explicit Model(std::string name);

  /// Append a node; returns its index (usable as a later node's input).
  int add(std::unique_ptr<Node> node);

  /// Must be called after the last add(); computes liveness and freezes
  /// the slot table.
  void finalize();

  /// Full-precision forward.
  [[nodiscard]] ForwardResult forward(const Tensor& input,
                                      bool capture_pooled = false) const;

  /// Quantized forward: weights quantized per spec before the run (the FP
  /// weights are untouched), activations quantized in the dataflow.
  [[nodiscard]] ForwardResult forward_quantized(const Tensor& input,
                                                const QuantSpec& spec,
                                                bool capture_pooled = false) const;

  /// Forward with explicit pre-quantized weight copies (e.g. per-channel
  /// quantization, which QuantSpec's per-tensor formats cannot express).
  /// Empty tensors in `weights` fall back to the FP weights; `act_spec`
  /// supplies activation formats only (its weight formats are ignored).
  [[nodiscard]] ForwardResult forward_with_weights(
      const Tensor& input, const std::vector<Tensor>& weights,
      const QuantSpec& act_spec, bool capture_pooled = false) const;

  /// Zero-copy variant: per-slot borrowed weight pointers (null entries
  /// fall back to the FP weights).  This is the entry point the runtime
  /// layer uses so one cached quantized tensor can serve many runs without
  /// per-run copies.  The pointed-to tensors must outlive the call.
  [[nodiscard]] ForwardResult forward_with_weights(
      const Tensor& input, std::span<const Tensor* const> weights,
      const QuantSpec& act_spec, bool capture_pooled = false) const;

  /// Packed-code variant: slots with a non-null `codes` entry run the
  /// LUT-decoding GEMM datapath (bit-identical to decoding first); null
  /// code entries fall back to `weights`, then to the FP weights.  This
  /// is what the runtime layer calls once its weight-code cache holds
  /// packed payloads.  Pointed-to objects must outlive the call.
  [[nodiscard]] ForwardResult forward_with_weights(
      const Tensor& input, std::span<const Tensor* const> weights,
      std::span<const PackedCodes* const> codes, const QuantSpec& act_spec,
      bool capture_pooled = false) const;

  /// Coded-activation variant: slots with a populated `act_coding` entry
  /// emit their output activations as packed codes, which downstream
  /// weighted nodes consume coded (other consumers decode lazily) — the
  /// logits are bit-identical to the packed-code variant above.
  /// `act_coding` must be empty or slot-sized; `act_traffic` (optional)
  /// accumulates the activation bytes each weighted node produced.
  /// Requesting pooled capture forces every edge back to float.  `opts`
  /// selects multiply semantics and float-in fusion (see ExecOpts).
  [[nodiscard]] ForwardResult forward_with_weights(
      const Tensor& input, std::span<const Tensor* const> weights,
      std::span<const PackedCodes* const> codes, const QuantSpec& act_spec,
      std::span<const ActCoding> act_coding, ActTraffic* act_traffic,
      bool capture_pooled = false, const ExecOpts& opts = {}) const;

  /// Record the GEMM workload list for one example input (batch included
  /// in the N dimensions).
  [[nodiscard]] std::vector<LayerWorkload> trace_workloads(
      const Tensor& input) const;

  /// Mean |activation| of every weighted node's output on `input` —
  /// the calibration statistic for activation scale factors.
  [[nodiscard]] std::vector<float> measure_act_scales(const Tensor& input) const;

  /// Max |activation| of every weighted node's output on `input` — the
  /// clipping statistic INT-style quantizers calibrate against.
  [[nodiscard]] std::vector<float> measure_act_maxes(const Tensor& input) const;

  /// Output of one intermediate node for `input` (e.g. the classifier's
  /// input features).  Runs a full FP forward.
  [[nodiscard]] Tensor forward_node_output(const Tensor& input,
                                           std::size_t node_idx) const;

  /// Rescale the weights of every single-slot weighted node so its output
  /// standard deviation on `input` matches the corresponding target.  This
  /// emulates a trained, BN-folded network: weight scales stay
  /// heterogeneous while activations remain bounded through depth.
  /// Multi-slot nodes (attention) are skipped — LayerNorm already bounds
  /// those paths.  `targets` is indexed by weighted-node order; pass an
  /// empty span for all-ones targets.
  void normalize_layer_scales(const Tensor& input,
                              std::span<const float> targets);

  /// All weight slots in topological order.  Pointers remain valid for the
  /// model's lifetime.
  [[nodiscard]] const std::vector<WeightSlot*>& slot_list() const {
    LP_CHECK_MSG(finalized_, "call finalize() first");
    return slots_;
  }

  /// Map each weight slot to its weighted-node index (the row order of
  /// captured activation statistics).
  [[nodiscard]] std::vector<int> slot_node_map() const;
  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }

  /// Parameter count over weight slots (weights only, the quantized part).
  [[nodiscard]] std::int64_t weight_param_count() const;
  /// Parameter count of one slot.
  [[nodiscard]] std::int64_t slot_param_count(std::size_t s) const;

  /// Number of weighted nodes (rows of ForwardResult::pooled).
  [[nodiscard]] int weighted_node_count() const { return weighted_nodes_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(std::size_t i) const { return *nodes_[i]; }

 private:
  [[nodiscard]] ForwardResult run(const Tensor& input, RunCtx ctx,
                                  bool capture_pooled) const;

  std::string name_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<WeightSlot*> slots_;
  std::vector<int> last_use_;  ///< liveness: last consumer of each node
  int weighted_nodes_ = 0;
  bool finalized_ = false;
};

/// Build per-slot quantized weight copies for a spec (null formats copy
/// nothing; the executor falls back to FP weights for those slots).
[[nodiscard]] std::vector<Tensor> quantize_weights(const Model& model,
                                                   const QuantSpec& spec);

}  // namespace lp::nn
