// Model zoo: architecture-faithful, width/resolution-scaled versions of the
// six networks in the paper's evaluation (ResNet18/50, MobileNetV2, ViT-B,
// DeiT-S, Swin-T) plus two tiny models for fast tests.
//
// The architectures keep the layer types, depths, block structure and
// relative widths of the originals; absolute widths and input resolution
// are scaled so that LPQ's population-based search runs on a CPU in
// seconds-to-minutes (see DESIGN.md section 2).  Weights are synthesized by
// nn::init_weights and scale-calibrated so activations stay bounded.
#pragma once

#include <cstdint>

#include "nn/init.h"
#include "nn/model.h"

namespace lp::nn {

struct ZooOptions {
  int input_size = 32;      ///< square input H = W
  int in_channels = 3;
  int classes = 64;
  double width_mult = 1.0;  ///< extra multiplier on the preset widths
  std::uint64_t seed = 42;  ///< weight synthesis seed
  InitOptions init;         ///< synthetic weight distribution knobs
};

/// CIFAR-style ResNet18 (basic blocks, stages [2,2,2,2]).
[[nodiscard]] Model build_resnet18(const ZooOptions& opts = {});
/// CIFAR-style ResNet50 (bottleneck blocks, stages [3,4,6,3]).
[[nodiscard]] Model build_resnet50(const ZooOptions& opts = {});
/// MobileNetV2 (inverted residual blocks with depthwise convs, ReLU6).
[[nodiscard]] Model build_mobilenet_v2(const ZooOptions& opts = {});
/// ViT-Base-style encoder: 12 pre-norm blocks, CLS token.
[[nodiscard]] Model build_vit_b(const ZooOptions& opts = {});
/// DeiT-Small-style encoder: 12 narrower pre-norm blocks.
[[nodiscard]] Model build_deit_s(const ZooOptions& opts = {});
/// Swin-Tiny-style hierarchical encoder: window attention, patch merging,
/// depths [2,2,6,2].  Windows are non-shifted (documented simplification).
[[nodiscard]] Model build_swin_t(const ZooOptions& opts = {});

/// Small 4-conv residual CNN for unit tests.
[[nodiscard]] Model build_tiny_cnn(const ZooOptions& opts = {});
/// 2-block ViT for unit tests.
[[nodiscard]] Model build_tiny_vit(const ZooOptions& opts = {});

/// Build a zoo model by name ("resnet18", "resnet50", "mobilenetv2",
/// "vit_b", "deit_s", "swin_t", "tiny_cnn", "tiny_vit").
[[nodiscard]] Model build_model(const std::string& name,
                                const ZooOptions& opts = {});

/// Synthesize weights, then calibrate per-layer activation scales on a
/// small random batch so the network behaves like a trained, BN-folded
/// model.  Called by every build_* function; exposed for custom models.
void synthesize_weights(Model& model, const ZooOptions& opts);

}  // namespace lp::nn
