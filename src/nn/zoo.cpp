#include "nn/zoo.h"

#include <cmath>
#include <stdexcept>

#include "nn/nodes.h"

namespace lp::nn {
namespace {

/// "s<stage>.b<block>" built by append: the chained operator+ form trips a
/// GCC 12 -Wrestrict false positive (PR 105329) at -O2 under -Werror.
std::string block_name(int s, int blk) {
  std::string nm("s");
  nm += std::to_string(s);
  nm += ".b";
  nm += std::to_string(blk);
  return nm;
}

/// Rounds a scaled width to at least 4 channels (8 for token dims keeps
/// head splits valid).
int scaled(double base, double mult, int min_ch = 4) {
  const int v = static_cast<int>(std::lround(base * mult));
  return v < min_ch ? min_ch : v;
}

Tensor make_weight(std::int64_t out, std::int64_t in, std::int64_t kh = 0,
                   std::int64_t kw = 0) {
  if (kh > 0) return Tensor({out, in, kh, kw});
  return Tensor({out, in});
}

Tensor make_bias(std::int64_t n) { return Tensor({n}); }

/// Builder helpers shared by the CNN architectures.
class CnnBuilder {
 public:
  CnnBuilder(Model& m, int block0) : model_(m), block_(block0) {}

  int conv(int input, const std::string& name, int cin, int cout, int k,
           int stride, int pad, Act act, int groups = 1) {
    return model_.add(std::make_unique<Conv2dNode>(
        input, name, make_weight(cout, cin / groups, k, k), make_bias(cout),
        Conv2dSpec{stride, pad, groups}, act, block_));
  }

  int add(int a, int b, const std::string& name, Act act) {
    return model_.add(std::make_unique<AddNode>(a, b, name, act));
  }

  void next_block() { ++block_; }
  [[nodiscard]] int block() const { return block_; }

 private:
  Model& model_;
  int block_;
};

/// Transformer encoder block (pre-norm): LN -> MHSA -> add; LN -> MLP -> add.
/// Returns the output node index.  `window/grid` parameterize Swin blocks.
int transformer_block(Model& m, int input, const std::string& name, int dim,
                      int heads, int mlp_ratio, int block_id, int window = 0,
                      int grid_h = 0, int grid_w = 0) {
  Tensor g1({dim}), b1({dim}), g2({dim}), b2({dim});
  g1.fill(1.0F);
  g2.fill(1.0F);
  const int ln1 = m.add(std::make_unique<LayerNormNode>(input, name + ".ln1",
                                                        std::move(g1), std::move(b1)));
  std::array<Tensor, 4> wts = {make_weight(dim, dim), make_weight(dim, dim),
                               make_weight(dim, dim), make_weight(dim, dim)};
  std::array<Tensor, 4> bss = {make_bias(dim), make_bias(dim), make_bias(dim),
                               make_bias(dim)};
  const int attn = m.add(std::make_unique<AttentionNode>(
      ln1, name + ".attn", dim, heads, std::move(wts), std::move(bss), block_id,
      window, grid_h, grid_w));
  const int res1 = m.add(std::make_unique<AddNode>(input, attn, name + ".add1",
                                                   Act::kNone));
  const int ln2 = m.add(std::make_unique<LayerNormNode>(res1, name + ".ln2",
                                                        std::move(g2), std::move(b2)));
  const int hidden = dim * mlp_ratio;
  const int fc1 = m.add(std::make_unique<LinearNode>(
      ln2, name + ".mlp1", make_weight(hidden, dim), make_bias(hidden),
      Act::kGelu, block_id));
  const int fc2 = m.add(std::make_unique<LinearNode>(
      fc1, name + ".mlp2", make_weight(dim, hidden), make_bias(dim), Act::kNone,
      block_id));
  return m.add(std::make_unique<AddNode>(res1, fc2, name + ".add2", Act::kNone));
}

Model finalize_with_weights(Model&& model, const ZooOptions& opts) {
  model.finalize();
  synthesize_weights(model, opts);
  return std::move(model);
}

}  // namespace

void synthesize_weights(Model& model, const ZooOptions& opts) {
  Rng rng(opts.seed ^ 0xabcdef12345ULL);
  init_weights(model, rng, opts.init);
  // Per-layer activation-scale targets within one decade, emulating the
  // residual heterogeneity of trained BN-folded nets.
  std::vector<float> targets(static_cast<std::size_t>(model.weighted_node_count()));
  for (auto& t : targets) {
    t = static_cast<float>(std::pow(10.0, rng.uniform(-0.4, 0.4)));
  }
  Tensor probe({4, opts.in_channels, opts.input_size, opts.input_size});
  for (float& v : probe.data()) v = static_cast<float>(rng.gaussian());
  model.normalize_layer_scales(probe, targets);

  // Balance the classifier head: random heads produce large
  // input-independent per-class offsets (channel means reaching the head
  // through GAP), which would make argmax insensitive to the input.  A
  // trained head has roughly balanced priors; emulate that by folding the
  // probe-batch mean logit into the final bias.
  WeightSlot* head = model.slot_list().back();
  LP_CHECK_MSG(!head->bias.empty(), "zoo models need a biased classifier head");
  Tensor probe2({8, opts.in_channels, opts.input_size, opts.input_size});
  for (float& v : probe2.data()) v = static_cast<float>(rng.gaussian());
  const Tensor logits = model.forward(probe2).logits;
  const std::int64_t classes = logits.dim(1);
  for (std::int64_t c = 0; c < classes; ++c) {
    double mu = 0.0;
    for (std::int64_t b = 0; b < logits.dim(0); ++b) mu += logits.at2(b, c);
    head->bias[c] -= static_cast<float>(mu / static_cast<double>(logits.dim(0)));
  }
}

Model build_resnet18(const ZooOptions& opts) {
  const double wm = 0.25 * opts.width_mult;
  const int w1 = scaled(64, wm), w2 = scaled(128, wm), w3 = scaled(256, wm),
            w4 = scaled(512, wm);
  Model m("resnet18");
  CnnBuilder b(m, 0);
  int x = b.conv(0, "stem", opts.in_channels, w1, 3, 1, 1, Act::kRelu);
  const int stage_width[4] = {w1, w2, w3, w4};
  int cin = w1;
  for (int s = 0; s < 4; ++s) {
    const int cout = stage_width[s];
    for (int blk = 0; blk < 2; ++blk) {
      const int stride = (s > 0 && blk == 0) ? 2 : 1;
      const std::string nm = block_name(s, blk);
      const int c1 = b.conv(x, nm + ".conv1", cin, cout, 3, stride, 1, Act::kRelu);
      const int c2 = b.conv(c1, nm + ".conv2", cout, cout, 3, 1, 1, Act::kNone);
      int shortcut = x;
      if (stride != 1 || cin != cout) {
        shortcut = b.conv(x, nm + ".down", cin, cout, 1, stride, 0, Act::kNone);
      }
      x = b.add(c2, shortcut, nm + ".add", Act::kRelu);
      cin = cout;
      b.next_block();
    }
  }
  const int gap = m.add(std::make_unique<GlobalAvgPoolNode>(x, "gap"));
  m.add(std::make_unique<LinearNode>(gap, "fc", make_weight(opts.classes, cin),
                                     make_bias(opts.classes), Act::kNone,
                                     b.block()));
  return finalize_with_weights(std::move(m), opts);
}

Model build_resnet50(const ZooOptions& opts) {
  const double wm = 0.125 * opts.width_mult;
  const int base[4] = {scaled(64, wm), scaled(128, wm), scaled(256, wm),
                       scaled(512, wm)};
  const int depths[4] = {3, 4, 6, 3};
  constexpr int kExpansion = 4;
  Model m("resnet50");
  CnnBuilder b(m, 0);
  int x = b.conv(0, "stem", opts.in_channels, base[0], 3, 1, 1, Act::kRelu);
  int cin = base[0];
  for (int s = 0; s < 4; ++s) {
    const int mid = base[s];
    const int cout = mid * kExpansion;
    for (int blk = 0; blk < depths[s]; ++blk) {
      const int stride = (s > 0 && blk == 0) ? 2 : 1;
      const std::string nm = block_name(s, blk);
      const int c1 = b.conv(x, nm + ".conv1", cin, mid, 1, 1, 0, Act::kRelu);
      const int c2 = b.conv(c1, nm + ".conv2", mid, mid, 3, stride, 1, Act::kRelu);
      const int c3 = b.conv(c2, nm + ".conv3", mid, cout, 1, 1, 0, Act::kNone);
      int shortcut = x;
      if (stride != 1 || cin != cout) {
        shortcut = b.conv(x, nm + ".down", cin, cout, 1, stride, 0, Act::kNone);
      }
      x = b.add(c3, shortcut, nm + ".add", Act::kRelu);
      cin = cout;
      b.next_block();
    }
  }
  const int gap = m.add(std::make_unique<GlobalAvgPoolNode>(x, "gap"));
  m.add(std::make_unique<LinearNode>(gap, "fc", make_weight(opts.classes, cin),
                                     make_bias(opts.classes), Act::kNone,
                                     b.block()));
  return finalize_with_weights(std::move(m), opts);
}

Model build_mobilenet_v2(const ZooOptions& opts) {
  const double wm = 0.5 * opts.width_mult;
  // (expansion t, channels c, repeats n, stride s) per the MobileNetV2
  // paper, with CIFAR-style strides for 32x32 inputs.
  struct Setting { int t, c, n, s; };
  const Setting settings[] = {{1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 3, 2},
                              {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2},
                              {6, 320, 1, 1}};
  Model m("mobilenetv2");
  CnnBuilder b(m, 0);
  int cin = scaled(32, wm);
  int x = b.conv(0, "stem", opts.in_channels, cin, 3, 1, 1, Act::kRelu6);
  int idx = 0;
  for (const auto& st : settings) {
    const int cout = scaled(st.c, wm);
    for (int rep = 0; rep < st.n; ++rep) {
      const int stride = (rep == 0) ? st.s : 1;
      const std::string nm = "ir" + std::to_string(idx++);
      const int hidden = cin * st.t;
      int y = x;
      if (st.t != 1) {
        y = b.conv(y, nm + ".expand", cin, hidden, 1, 1, 0, Act::kRelu6);
      }
      y = b.conv(y, nm + ".dw", hidden, hidden, 3, stride, 1, Act::kRelu6,
                 /*groups=*/hidden);
      y = b.conv(y, nm + ".project", hidden, cout, 1, 1, 0, Act::kNone);
      if (stride == 1 && cin == cout) {
        y = b.add(y, x, nm + ".add", Act::kNone);
      }
      x = y;
      cin = cout;
      b.next_block();
    }
  }
  const int head_ch = scaled(1280, wm, 32);
  x = b.conv(x, "head", cin, head_ch, 1, 1, 0, Act::kRelu6);
  const int gap = m.add(std::make_unique<GlobalAvgPoolNode>(x, "gap"));
  m.add(std::make_unique<LinearNode>(gap, "fc",
                                     make_weight(opts.classes, head_ch),
                                     make_bias(opts.classes), Act::kNone,
                                     b.block()));
  return finalize_with_weights(std::move(m), opts);
}

namespace {

/// Shared ViT/DeiT builder (they differ only in width/heads).
Model build_vit_like(const std::string& name, int dim, int heads, int depth,
                     int patch, const ZooOptions& opts) {
  LP_CHECK(opts.input_size % patch == 0);
  const int grid = opts.input_size / patch;
  const int tokens = grid * grid;
  Model m(name);
  // Patch embedding: conv k=s=patch, then to tokens.  Block 0.
  const int embed = m.add(std::make_unique<Conv2dNode>(
      0, "patch_embed", make_weight(dim, opts.in_channels, patch, patch),
      make_bias(dim), Conv2dSpec{patch, 0, 1}, Act::kNone, 0));
  const int tok = m.add(std::make_unique<ToTokensNode>(embed, "to_tokens"));
  Tensor cls({dim});
  Tensor pos({tokens + 1, dim});
  Rng perng(opts.seed ^ 0x9e1fULL);
  for (float& v : cls.data()) v = static_cast<float>(perng.gaussian(0.0, 0.02));
  for (float& v : pos.data()) v = static_cast<float>(perng.gaussian(0.0, 0.02));
  int x = m.add(std::make_unique<ClsPosNode>(tok, "cls_pos", std::move(cls),
                                             std::move(pos)));
  for (int blk = 0; blk < depth; ++blk) {
    x = transformer_block(m, x, "blk" + std::to_string(blk), dim, heads,
                          /*mlp_ratio=*/4, blk + 1);
  }
  Tensor gf({dim}), bf({dim});
  gf.fill(1.0F);
  const int lnf = m.add(std::make_unique<LayerNormNode>(x, "ln_f", std::move(gf),
                                                        std::move(bf)));
  const int head = m.add(std::make_unique<ClsSelectNode>(lnf, "cls_select"));
  m.add(std::make_unique<LinearNode>(head, "fc", make_weight(opts.classes, dim),
                                     make_bias(opts.classes), Act::kNone,
                                     depth + 1));
  return finalize_with_weights(std::move(m), opts);
}

}  // namespace

Model build_vit_b(const ZooOptions& opts) {
  // ViT-B/16 at 1/8 width: dim 768 -> 96, 12 heads -> 3 (head_dim 32).
  const int dim = scaled(96, opts.width_mult, 8);
  return build_vit_like("vit_b", dim, /*heads=*/std::max(1, dim / 32),
                        /*depth=*/12, /*patch=*/4, opts);
}

Model build_deit_s(const ZooOptions& opts) {
  // DeiT-S at reduced width: dim 384 -> 64, 6 heads -> 2 (head_dim 32).
  const int dim = scaled(64, opts.width_mult, 8);
  return build_vit_like("deit_s", dim, /*heads=*/std::max(1, dim / 32),
                        /*depth=*/12, /*patch=*/4, opts);
}

Model build_swin_t(const ZooOptions& opts) {
  // Swin-T at 1/3 width: dims [96,192,384,768] -> [32,64,128,256],
  // depths [2,2,6,2], patch 2, window 4 (non-shifted).
  const int dims[4] = {scaled(32, opts.width_mult, 8),
                       scaled(64, opts.width_mult, 8),
                       scaled(128, opts.width_mult, 8),
                       scaled(256, opts.width_mult, 8)};
  const int depths[4] = {2, 2, 6, 2};
  const int patch = 2;
  LP_CHECK(opts.input_size % patch == 0);
  int grid = opts.input_size / patch;

  Model m("swin_t");
  const int embed = m.add(std::make_unique<Conv2dNode>(
      0, "patch_embed", make_weight(dims[0], opts.in_channels, patch, patch),
      make_bias(dims[0]), Conv2dSpec{patch, 0, 1}, Act::kNone, 0));
  const int tok = m.add(std::make_unique<ToTokensNode>(embed, "to_tokens"));
  Tensor pos({static_cast<std::int64_t>(grid) * grid, dims[0]});
  Rng perng(opts.seed ^ 0x51a7ULL);
  for (float& v : pos.data()) v = static_cast<float>(perng.gaussian(0.0, 0.02));
  int x = m.add(std::make_unique<PosEmbedNode>(tok, "pos", std::move(pos)));

  int block_id = 1;
  for (int s = 0; s < 4; ++s) {
    const int dim = dims[s];
    const int window = grid < 4 ? grid : 4;
    const int heads = std::max(1, dim / 32);
    for (int blk = 0; blk < depths[s]; ++blk) {
      x = transformer_block(m, x,
                            "st" + std::to_string(s) + ".blk" + std::to_string(blk),
                            dim, heads, /*mlp_ratio=*/4, block_id++, window,
                            grid, grid);
    }
    if (s < 3) {
      // Patch merging halves the grid and doubles the channel dim.
      x = m.add(std::make_unique<PatchMergeNode>(
          x, "st" + std::to_string(s) + ".merge", grid, grid,
          make_weight(dims[s + 1], 4 * dim), make_bias(dims[s + 1]), block_id));
      grid /= 2;
    }
  }
  Tensor gf({dims[3]}), bf({dims[3]});
  gf.fill(1.0F);
  const int lnf = m.add(std::make_unique<LayerNormNode>(x, "ln_f", std::move(gf),
                                                        std::move(bf)));
  const int pool = m.add(std::make_unique<TokenMeanNode>(lnf, "token_mean"));
  m.add(std::make_unique<LinearNode>(pool, "fc",
                                     make_weight(opts.classes, dims[3]),
                                     make_bias(opts.classes), Act::kNone,
                                     block_id));
  return finalize_with_weights(std::move(m), opts);
}

Model build_tiny_cnn(const ZooOptions& opts) {
  Model m("tiny_cnn");
  CnnBuilder b(m, 0);
  const int c1 = scaled(8, opts.width_mult);
  const int c2 = scaled(16, opts.width_mult);
  int x = b.conv(0, "stem", opts.in_channels, c1, 3, 1, 1, Act::kRelu);
  b.next_block();
  x = b.conv(x, "conv1", c1, c2, 3, 2, 1, Act::kRelu);
  const int r1 = b.conv(x, "res.conv1", c2, c2, 3, 1, 1, Act::kRelu);
  const int r2 = b.conv(r1, "res.conv2", c2, c2, 3, 1, 1, Act::kNone);
  x = b.add(r2, x, "res.add", Act::kRelu);
  b.next_block();
  const int gap = m.add(std::make_unique<GlobalAvgPoolNode>(x, "gap"));
  m.add(std::make_unique<LinearNode>(gap, "fc", make_weight(opts.classes, c2),
                                     make_bias(opts.classes), Act::kNone,
                                     b.block()));
  return finalize_with_weights(std::move(m), opts);
}

Model build_tiny_vit(const ZooOptions& opts) {
  return build_vit_like("tiny_vit", /*dim=*/16, /*heads=*/2, /*depth=*/2,
                        /*patch=*/8, opts);
}

Model build_model(const std::string& name, const ZooOptions& opts) {
  if (name == "resnet18") return build_resnet18(opts);
  if (name == "resnet50") return build_resnet50(opts);
  if (name == "mobilenetv2") return build_mobilenet_v2(opts);
  if (name == "vit_b") return build_vit_b(opts);
  if (name == "deit_s") return build_deit_s(opts);
  if (name == "swin_t") return build_swin_t(opts);
  if (name == "tiny_cnn") return build_tiny_cnn(opts);
  if (name == "tiny_vit") return build_tiny_vit(opts);
  // Direct throw (not LP_CHECK) so -O0 builds see the function never
  // falls off the end.
  throw std::invalid_argument("unknown model '" + name + "'");
}

}  // namespace lp::nn
