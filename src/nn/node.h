// Graph node interface for the DNN substrate.
//
// A Model is a topologically ordered list of nodes; each node consumes the
// outputs of earlier nodes and produces one tensor.  Nodes that own weights
// (conv, linear, attention projections, patch embed/merge) expose them as
// WeightSlots — the unit of quantization LPQ searches over.  Execution is
// parameterized by RunCtx, which optionally
//   * substitutes quantized weight copies per slot,
//   * quantizes the activations a slot produces,
//   * captures Kurtosis-3-pooled intermediate representations, and
//   * records the GEMM workloads for the accelerator simulator.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/number_format.h"
#include "core/packed_codes.h"
#include "tensor/tensor.h"

namespace lp::nn {

/// One quantizable weight tensor.  Biases stay full precision (the paper
/// quantizes weights and activations only).
struct WeightSlot {
  std::string name;
  Tensor weight;
  Tensor bias;        ///< may be empty
  int block_id = 0;   ///< LPQ block grouping (attention block for ViTs)
};

/// A GEMM an accelerator must execute: out[M,N] += W[M,K] * X[K,N].
/// `weight_slot` is -1 for activation-activation matmuls (attention scores)
/// whose both operands use activation precision.
struct LayerWorkload {
  std::string name;
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;
  int weight_slot = -1;
  [[nodiscard]] std::int64_t macs() const { return m * k * n; }
};

/// Per-slot quantization assignment for a run.  Entries may be null
/// (keep full precision).  Lifetime of the formats must cover the run.
struct QuantSpec {
  std::vector<const NumberFormat*> weight_fmt;
  std::vector<const NumberFormat*> act_fmt;

  void resize(std::size_t slots) {
    weight_fmt.assign(slots, nullptr);
    act_fmt.assign(slots, nullptr);
  }
};

/// A value flowing along a graph edge: a dense float tensor, a packed
/// activation-code stream, or both (the codes plus their lazily decoded
/// dense cache).  Decoding a coded value yields exactly the quantized
/// float activations the float path stores — the alignment contract
/// between the encode epilogue's index search and quantize_batch — so
/// consumers that need floats see the float path's tensor bit for bit.
class NodeValue {
 public:
  NodeValue() = default;
  /*implicit*/ NodeValue(Tensor t) : dense_(std::move(t)), has_dense_(true) {}
  /*implicit*/ NodeValue(PackedCodes c) : codes_(std::move(c)) {}

  [[nodiscard]] bool empty() const { return !has_dense_ && !codes_; }
  [[nodiscard]] const std::vector<std::int64_t>& shape() const {
    return codes_ ? codes_->shape() : dense_.shape();
  }
  /// Packed codes, or null when this value is dense-only.
  [[nodiscard]] const PackedCodes* codes() const {
    return codes_ ? &*codes_ : nullptr;
  }
  /// Dense float view; decodes the codes once and caches the result.
  /// Node execution is serial, so the lazy cache needs no synchronization.
  [[nodiscard]] const Tensor& dense() const;
  /// Move the dense tensor out (decoding first if necessary).
  [[nodiscard]] Tensor into_dense() &&;

 private:
  mutable Tensor dense_;
  mutable bool has_dense_ = false;
  std::optional<PackedCodes> codes_;
};

/// Coded-activation output spec for one weight slot: the slot's weighted
/// node applies its nonlinearity and nearest-index encodes the result
/// through `qidx` into `bits`-wide codes decoding through `lut` — in the
/// GEMM epilogue when both operands are coded, or from the finished float
/// block otherwise.  `qidx` and `lut` must belong to the same format
/// (lut[i] == the float quantizing through qidx stores for index i), and
/// both must outlive the run.
struct ActCoding {
  const QuantIndex* qidx = nullptr;
  std::shared_ptr<const DecodeTable> lut;
  int bits = 8;  ///< 8 or 16 (byte-aligned activation streams)
};

/// Activation-traffic accounting for one forward pass: bytes of
/// inter-layer activation each weighted node produced, in whichever
/// representation it produced them.  Node execution is serial, so plain
/// fields suffice.
struct ActTraffic {
  std::int64_t float_bytes = 0;  ///< activations produced as float32
  std::int64_t coded_bytes = 0;  ///< activations produced as packed codes
};

/// Execution context threaded through every node.
struct RunCtx {
  /// Quantized weight copies, indexed by slot; empty = use FP weights.
  const std::vector<Tensor>* weight_override = nullptr;
  /// Borrowed per-slot weight pointers (null entries = FP weights).  The
  /// zero-copy variant of weight_override used by the runtime layer, whose
  /// weight-code cache shares one quantized tensor across many runs.
  /// Checked before weight_override.
  std::span<const Tensor* const> weight_ptr_override;
  /// Borrowed per-slot packed weight codes (null entries fall through to
  /// the float overrides above).  When a slot has codes, weighted nodes
  /// run the LUT-decoding GEMM kernels instead of expanding the weights
  /// to float32 — bit-identical output, 4-8x fewer weight bytes streamed.
  /// Checked before both float overrides.
  std::span<const PackedCodes* const> weight_code_override;
  /// Activation formats per slot; null entries = no activation quant.
  const QuantSpec* quant = nullptr;
  /// When non-null, weighted nodes append per-sample Kurtosis-3 pooled
  /// representations of their output (one row per weighted node).
  std::vector<std::vector<float>>* pooled_capture = nullptr;
  /// When non-null, weighted nodes append the mean |activation| of their
  /// output (one value per weighted node) — used to calibrate activation
  /// scale factors, mirroring the PPU's runtime scale computation.
  std::vector<float>* act_scale_capture = nullptr;
  /// When non-null, weighted nodes append the max |activation| of their
  /// output — the clipping statistic INT/float-style quantizers calibrate
  /// against.
  std::vector<float>* act_max_capture = nullptr;
  /// When non-null, nodes append their GEMM workloads.
  std::vector<LayerWorkload>* workloads = nullptr;
  /// Per-slot coded-activation specs (empty, or a null-qidx entry, = the
  /// slot's output stays float).  When a slot has one and no value-capture
  /// hook is active, its weighted node emits packed codes instead of a
  /// float tensor — bit-identical under decode to the quantized float
  /// activations.
  std::span<const ActCoding> act_coding;
  /// When non-null, weighted nodes account the activation bytes they
  /// produced (coded or float).
  ActTraffic* act_traffic = nullptr;
  /// Multiply semantics for the coded-B^T GEMMs (linear / attention /
  /// patch-merge): kExact is the bit-identical IEEE path, kPlam the
  /// opt-in log-domain approximate multiply.  Convolution always runs
  /// exact (its GroupGemm layout has no approximate kernel).
  kernels::ApproxMode approx = kernels::ApproxMode::kExact;
  /// When true, weighted nodes with coded weights and a coded output
  /// spec fuse GEMM→bias→act→encode in one kernel pass even when their
  /// *input* arrives as floats (the both-coded fusion is always on).
  /// Off reproduces the pre-fusion activation flow: finish the float
  /// block, then encode through encode_acts.
  bool fuse = true;

  /// Resolve the weight tensor for a slot.
  [[nodiscard]] const Tensor& weight(int slot, const Tensor& fp) const {
    if (slot >= 0 && static_cast<std::size_t>(slot) < weight_ptr_override.size() &&
        weight_ptr_override[static_cast<std::size_t>(slot)] != nullptr) {
      return *weight_ptr_override[static_cast<std::size_t>(slot)];
    }
    if (weight_override != nullptr && slot >= 0 &&
        static_cast<std::size_t>(slot) < weight_override->size() &&
        !(*weight_override)[static_cast<std::size_t>(slot)].empty()) {
      return (*weight_override)[static_cast<std::size_t>(slot)];
    }
    return fp;
  }

  /// Packed codes for a slot, or null (no codes — use weight()).  When
  /// non-null the slot's weight() entry resolves to the FP weights, whose
  /// shape the codes share, so shape-only uses (workload tracing) stay on
  /// the tensor while the compute runs on the codes.
  [[nodiscard]] const PackedCodes* weight_codes(int slot) const {
    if (slot >= 0 &&
        static_cast<std::size_t>(slot) < weight_code_override.size()) {
      return weight_code_override[static_cast<std::size_t>(slot)];
    }
    return nullptr;
  }

  [[nodiscard]] const NumberFormat* act_format(int slot) const {
    if (quant == nullptr || slot < 0 ||
        static_cast<std::size_t>(slot) >= quant->act_fmt.size()) {
      return nullptr;
    }
    return quant->act_fmt[static_cast<std::size_t>(slot)];
  }

  /// Coded-activation spec for a slot, or null (float output).
  [[nodiscard]] const ActCoding* act_coding_for(int slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= act_coding.size()) {
      return nullptr;
    }
    const ActCoding& c = act_coding[static_cast<std::size_t>(slot)];
    return (c.qidx != nullptr && c.lut != nullptr) ? &c : nullptr;
  }

  /// True when any value-capture hook needs the float activations; coded
  /// emission is disabled for the run's weighted nodes in that case.
  [[nodiscard]] bool capturing() const {
    return pooled_capture != nullptr || act_scale_capture != nullptr ||
           act_max_capture != nullptr;
  }
};

class Node {
 public:
  explicit Node(std::vector<int> inputs, std::string name)
      : inputs_(std::move(inputs)), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Produce this node's output from its input values.  Inputs may arrive
  /// coded (see NodeValue); nodes that cannot consume codes call dense(),
  /// which decodes to exactly the float path's tensor.
  [[nodiscard]] virtual NodeValue run(std::span<const NodeValue* const> x,
                                      const RunCtx& ctx) const = 0;

  /// Mutable access to this node's weight slots (empty for stateless nodes).
  [[nodiscard]] virtual std::span<WeightSlot> slots() { return {}; }

  /// Read-only slot view (derived classes only override the mutable form).
  [[nodiscard]] std::span<const WeightSlot> slots_const() const {
    return const_cast<Node*>(this)->slots();
  }

  /// True if this node's output is an intermediate representation for the
  /// LPQ contrastive objective (i.e. it owns weights).
  [[nodiscard]] bool weighted() const { return !slots_const().empty(); }

  [[nodiscard]] const std::vector<int>& inputs() const { return inputs_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Global slot index of this node's first slot (set by Model::add).
  void set_first_slot(int s) { first_slot_ = s; }
  [[nodiscard]] int first_slot() const { return first_slot_; }

 private:
  std::vector<int> inputs_;
  std::string name_;
  int first_slot_ = -1;
};

/// Post-activation nonlinearity selector shared by conv/linear nodes.
enum class Act { kNone, kRelu, kRelu6, kGelu };

}  // namespace lp::nn
