#include "nn/nodes.h"

#include <algorithm>
#include <cmath>

#include "core/packed_codes.h"
#include "util/stats.h"

namespace lp::nn {
namespace {

/// Copy a column block [c0, c1) of a [R, D] matrix into a fresh [R, c1-c0].
Tensor copy_cols(const Tensor& m, std::int64_t c0, std::int64_t c1) {
  const std::int64_t r = m.dim(0);
  const std::int64_t d = m.dim(1);
  LP_DCHECK(c0 >= 0 && c1 <= d && c0 < c1);
  Tensor out({r, c1 - c0});
  for (std::int64_t i = 0; i < r; ++i) {
    std::copy_n(m.raw() + i * d + c0, c1 - c0, out.raw() + i * (c1 - c0));
  }
  return out;
}

/// Capture hook shared by weighted nodes.
void capture_pooled(const RunCtx& ctx, const Tensor& out) {
  if (ctx.pooled_capture != nullptr) ctx.pooled_capture->push_back(kurtosis_pool(out));
  if (ctx.act_scale_capture != nullptr) {
    ctx.act_scale_capture->push_back(static_cast<float>(mean_abs(out.data())));
  }
  if (ctx.act_max_capture != nullptr) {
    float mx = 0.0F;
    for (float v : out.data()) mx = std::max(mx, std::fabs(v));
    ctx.act_max_capture->push_back(mx);
  }
}

/// nn::Act as the kernel layer's epilogue selector.
int act_kernel(Act act) {
  switch (act) {
    case Act::kNone: return kernels::kActNone;
    case Act::kRelu: return kernels::kActRelu;
    case Act::kRelu6: return kernels::kActRelu6;
    case Act::kGelu: return kernels::kActGelu;
  }
  return kernels::kActNone;
}

/// The coded-output spec for a slot, or null when this run's hooks force
/// the float path (value captures read float activations).
const ActCoding* out_coding(const RunCtx& ctx, int slot) {
  return ctx.capturing() ? nullptr : ctx.act_coding_for(slot);
}

void count_coded(const RunCtx& ctx, const PackedCodes& out) {
  if (ctx.act_traffic != nullptr) {
    ctx.act_traffic->coded_bytes +=
        static_cast<std::int64_t>(out.payload_bytes());
  }
}

void count_float(const RunCtx& ctx, const Tensor& out) {
  if (ctx.act_traffic != nullptr) {
    ctx.act_traffic->float_bytes +=
        out.numel() * static_cast<std::int64_t>(sizeof(float));
  }
}

/// Post-GEMM tail for a weighted node holding a float result with the
/// nonlinearity already applied: on a coded edge, encode it (the decoded
/// stream equals the quantized floats); on encode failure (non-finite
/// elements) or a float edge, quantize in place — the two tails produce
/// value-identical activations.
NodeValue finish_act(const RunCtx& ctx, int slot, const ActCoding* coding,
                     Tensor out) {
  if (coding != nullptr) {
    auto enc = encode_acts(out, {coding->qidx->view(), coding->lut,
                                 coding->bits, kernels::kActNone});
    if (enc.has_value()) {
      count_coded(ctx, *enc);
      return NodeValue(std::move(*enc));
    }
  }
  quantize_activations(out, ctx.act_format(slot));
  capture_pooled(ctx, out);
  count_float(ctx, out);
  return NodeValue(std::move(out));
}

}  // namespace

const Tensor& NodeValue::dense() const {
  if (!has_dense_) {
    LP_CHECK_MSG(codes_.has_value(), "dense() on an empty NodeValue");
    Tensor t(codes_->shape());
    codes_->decode(t.data());
    dense_ = std::move(t);
    has_dense_ = true;
  }
  return dense_;
}

Tensor NodeValue::into_dense() && {
  (void)dense();
  has_dense_ = false;
  return std::move(dense_);
}

void apply_act(Tensor& t, Act act) {
  switch (act) {
    case Act::kNone: return;
    case Act::kRelu: relu_inplace(t); return;
    case Act::kRelu6: relu6_inplace(t); return;
    case Act::kGelu: gelu_inplace(t); return;
  }
}

void quantize_activations(Tensor& t, const NumberFormat* fmt) {
  if (fmt == nullptr) return;
  quantize_inplace(t, *fmt);
}

std::vector<float> kurtosis_pool(const Tensor& t) {
  LP_CHECK(t.rank() >= 1 && t.numel() > 0);
  const std::int64_t b = t.dim(0);
  const std::int64_t per = t.numel() / b;
  std::vector<float> out(static_cast<std::size_t>(b));
  for (std::int64_t i = 0; i < b; ++i) {
    const std::span<const float> row(t.raw() + i * per,
                                     static_cast<std::size_t>(per));
    out[static_cast<std::size_t>(i)] = static_cast<float>(kurtosis3(row));
  }
  return out;
}

NodeValue InputNode::run(std::span<const NodeValue* const>,
                         const RunCtx&) const {
  LP_ASSERT_MSG(false, "InputNode::run must not be called; the executor "
                       "substitutes the batch directly");
}

Conv2dNode::Conv2dNode(int input, std::string name, Tensor weight, Tensor bias,
                       Conv2dSpec spec, Act act, int block_id)
    : Node({input}, std::move(name)), spec_(spec), act_(act) {
  LP_CHECK(weight.rank() == 4);
  slot_.name = this->name() + ".w";
  slot_.weight = std::move(weight);
  slot_.bias = std::move(bias);
  slot_.block_id = block_id;
}

NodeValue Conv2dNode::run(std::span<const NodeValue* const> x,
                          const RunCtx& ctx) const {
  const int s = first_slot();
  const Tensor& w = ctx.weight(s, slot_.weight);
  const NodeValue& in = *x[0];
  if (ctx.workloads != nullptr) {
    const auto& ish = in.shape();
    const std::int64_t ho =
        conv_out_dim(ish[2], w.dim(2), spec_.stride, spec_.padding);
    const std::int64_t wo =
        conv_out_dim(ish[3], w.dim(3), spec_.stride, spec_.padding);
    ctx.workloads->push_back({name(), w.dim(0),
                              w.dim(1) * w.dim(2) * w.dim(3),
                              ish[0] * ho * wo, s});
  }
  const Tensor* bias = slot_.bias.empty() ? nullptr : &slot_.bias;
  const PackedCodes* codes = ctx.weight_codes(s);
  const ActCoding* coding = out_coding(ctx, s);
  const PackedCodes* icodes = in.codes();
  // Coded patches need a code that decodes to the float im2col's exact
  // padding zero; a LUT without one drops the edge to the dense input.
  const std::int64_t zc =
      icodes != nullptr ? lut_zero_code(*icodes->lut()) : -1;

  // Fully coded: coded weights x coded patches with the fused
  // bias+act+encode scatter — the output never materializes as floats.
  if (codes != nullptr && icodes != nullptr && zc >= 0 && coding != nullptr) {
    auto out = conv2d_codes_codes_enc(
        *icodes, *codes, bias, spec_, static_cast<std::uint32_t>(zc),
        {coding->qidx->view(), coding->lut, coding->bits, act_kernel(act_)});
    if (out.has_value()) {
      count_coded(ctx, *out);
      return NodeValue(std::move(*out));
    }
  }
  // Float input (or a LUT without a padding zero), coded weights, coded
  // output: fuse bias+act+encode into the conv scatter so the output
  // skips the float round-trip even though the input arrived dense.
  if (codes != nullptr && !(icodes != nullptr && zc >= 0) &&
      coding != nullptr && ctx.fuse) {
    auto out = conv2d_codes_enc(
        in.dense(), *codes, bias, spec_,
        {coding->qidx->view(), coding->lut, coding->bits, act_kernel(act_)});
    if (out.has_value()) {
      count_coded(ctx, *out);
      return NodeValue(std::move(*out));
    }
  }
  Tensor out;
  if (codes != nullptr && icodes != nullptr && zc >= 0) {
    out = conv2d_codes_codes(*icodes, *codes, bias, spec_,
                             static_cast<std::uint32_t>(zc));
  } else if (codes != nullptr) {
    out = conv2d_codes(in.dense(), *codes, bias, spec_);
  } else {
    out = conv2d(in.dense(), w, bias, spec_);
  }
  apply_act(out, act_);
  return finish_act(ctx, s, coding, std::move(out));
}

LinearNode::LinearNode(int input, std::string name, Tensor weight, Tensor bias,
                       Act act, int block_id)
    : Node({input}, std::move(name)), act_(act) {
  LP_CHECK(weight.rank() == 2);
  slot_.name = this->name() + ".w";
  slot_.weight = std::move(weight);
  slot_.bias = std::move(bias);
  slot_.block_id = block_id;
}

NodeValue LinearNode::run(std::span<const NodeValue* const> x,
                          const RunCtx& ctx) const {
  const int s = first_slot();
  const Tensor& w = ctx.weight(s, slot_.weight);
  const NodeValue& in = *x[0];
  const auto& ish = in.shape();
  LP_CHECK(ish.size() == 2 || ish.size() == 3);
  const std::int64_t rows = ish.size() == 3 ? ish[0] * ish[1] : ish[0];
  if (ctx.workloads != nullptr) {
    ctx.workloads->push_back({name(), w.dim(0), w.dim(1), rows, s});
  }
  const Tensor* bias = slot_.bias.empty() ? nullptr : &slot_.bias;
  const PackedCodes* codes = ctx.weight_codes(s);
  const ActCoding* coding = out_coding(ctx, s);
  const PackedCodes* icodes = in.codes();

  // Fully coded: both operands decode inside the kernel and the output is
  // encoded in the epilogue — codes in, codes out.
  if (codes != nullptr && icodes != nullptr && coding != nullptr) {
    auto out = matmul_nt_codes_codes_enc(
        *icodes, *codes, bias,
        {coding->qidx->view(), coding->lut, coding->bits, act_kernel(act_)},
        ctx.approx);
    if (out.has_value()) {
      if (ish.size() == 3) out->reshape({ish[0], ish[1], w.dim(0)});
      count_coded(ctx, *out);
      return NodeValue(std::move(*out));
    }
  }
  // Float input, coded weights, coded output: fuse GEMM→bias→act→encode
  // in one kernel pass — the layer's activations never exist as a float
  // tensor even though its input arrived dense.
  if (codes != nullptr && icodes == nullptr && coding != nullptr && ctx.fuse) {
    const Tensor& d = in.dense();
    const Tensor in2 = (ish.size() == 3) ? d.reshaped({rows, ish[2]}) : d;
    auto out = matmul_nt_codes_enc(
        in2, *codes, bias,
        {coding->qidx->view(), coding->lut, coding->bits, act_kernel(act_)},
        ctx.approx);
    if (out.has_value()) {
      if (ish.size() == 3) out->reshape({ish[0], ish[1], w.dim(0)});
      count_coded(ctx, *out);
      return NodeValue(std::move(*out));
    }
  }
  Tensor out;
  if (codes != nullptr && icodes != nullptr) {
    out = matmul_nt_codes_codes(*icodes, *codes, bias, ctx.approx);
  } else {
    const Tensor& d = in.dense();
    const Tensor in2 =
        (ish.size() == 3) ? d.reshaped({rows, ish[2]}) : d;
    out = codes != nullptr ? matmul_nt_codes(in2, *codes, bias, ctx.approx)
                           : matmul_nt(in2, w, bias);
  }
  if (ish.size() == 3) out = out.reshaped({ish[0], ish[1], w.dim(0)});
  apply_act(out, act_);
  return finish_act(ctx, s, coding, std::move(out));
}

AttentionNode::AttentionNode(int input, std::string name, int dim, int heads,
                             std::array<Tensor, 4> weights,
                             std::array<Tensor, 4> biases, int block_id,
                             int window, int grid_h, int grid_w)
    : Node({input}, std::move(name)), dim_(dim), heads_(heads), window_(window),
      grid_h_(grid_h), grid_w_(grid_w) {
  LP_CHECK(dim > 0 && heads > 0 && dim % heads == 0);
  static constexpr const char* kProj[4] = {".wq", ".wk", ".wv", ".wo"};
  for (int i = 0; i < 4; ++i) {
    LP_CHECK(weights[static_cast<std::size_t>(i)].rank() == 2);
    auto& sl = slots_[static_cast<std::size_t>(i)];
    sl.name = this->name() + kProj[i];
    sl.weight = std::move(weights[static_cast<std::size_t>(i)]);
    sl.bias = std::move(biases[static_cast<std::size_t>(i)]);
    sl.block_id = block_id;
  }
  if (window_ > 0) {
    LP_CHECK(grid_h_ % window_ == 0 && grid_w_ % window_ == 0);
  }
}

Tensor AttentionNode::attend(const Tensor& tokens, const RunCtx& ctx) const {
  // tokens: [B, T, D] (possibly window-partitioned batches).
  const std::int64_t b = tokens.dim(0);
  const std::int64_t t = tokens.dim(1);
  const std::int64_t d = tokens.dim(2);
  const std::int64_t dh = d / heads_;
  const int s0 = first_slot();

  const Tensor flat = tokens.reshaped({b * t, d});
  std::array<Tensor, 3> qkv;
  for (int i = 0; i < 3; ++i) {
    const auto& sl = slots_[static_cast<std::size_t>(i)];
    const Tensor& w = ctx.weight(s0 + i, sl.weight);
    if (ctx.workloads != nullptr) {
      ctx.workloads->push_back({name() + '.' + "qkv"[i], w.dim(0), w.dim(1),
                                b * t, s0 + i});
    }
    const Tensor* bias = sl.bias.empty() ? nullptr : &sl.bias;
    const PackedCodes* codes = ctx.weight_codes(s0 + i);
    qkv[static_cast<std::size_t>(i)] =
        codes != nullptr ? matmul_nt_codes(flat, *codes, bias, ctx.approx)
                         : matmul_nt(flat, w, bias);
    quantize_activations(qkv[static_cast<std::size_t>(i)],
                         ctx.act_format(s0 + i));
  }
  if (ctx.workloads != nullptr) {
    // Activation-activation matmuls: scores and attention-times-values.
    ctx.workloads->push_back({name() + ".qk", t, dh, t * b * heads_, -1});
    ctx.workloads->push_back({name() + ".av", t, t, dh * b * heads_, -1});
  }

  const float inv_sqrt_dh = 1.0F / std::sqrt(static_cast<float>(dh));
  Tensor concat({b * t, d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (int h = 0; h < heads_; ++h) {
      const std::int64_t c0 = h * dh;
      // Slice this sample's token rows, then this head's columns.
      auto head_slice = [&](const Tensor& m) {
        Tensor rows({t, d});
        std::copy_n(m.raw() + bi * t * d, t * d, rows.raw());
        return copy_cols(rows, c0, c0 + dh);
      };
      const Tensor qh = head_slice(qkv[0]);
      const Tensor kh = head_slice(qkv[1]);
      const Tensor vh = head_slice(qkv[2]);
      Tensor scores = matmul_nt(qh, kh);
      scale_inplace(scores, inv_sqrt_dh);
      scores = softmax_lastdim(scores);
      const Tensor ctx_out = matmul(scores, vh);  // [t, dh]
      for (std::int64_t ti = 0; ti < t; ++ti) {
        std::copy_n(ctx_out.raw() + ti * dh, dh,
                    concat.raw() + (bi * t + ti) * d + c0);
      }
    }
  }
  // The v-projection's activation format also covers the softmax(QK)V
  // output (the PPU requantizes partial results on-chip).
  quantize_activations(concat, ctx.act_format(s0 + 2));

  const auto& so = slots_[3];
  const Tensor& wo = ctx.weight(s0 + 3, so.weight);
  if (ctx.workloads != nullptr) {
    ctx.workloads->push_back({name() + ".o", wo.dim(0), wo.dim(1), b * t, s0 + 3});
  }
  const Tensor* obias = so.bias.empty() ? nullptr : &so.bias;
  const PackedCodes* ocodes = ctx.weight_codes(s0 + 3);
  Tensor out = ocodes != nullptr
                   ? matmul_nt_codes(concat, *ocodes, obias, ctx.approx)
                   : matmul_nt(concat, wo, obias);
  quantize_activations(out, ctx.act_format(s0 + 3));
  return out.reshaped({b, t, d});
}

NodeValue AttentionNode::run(std::span<const NodeValue* const> x,
                             const RunCtx& ctx) const {
  // Attention consumes floats (its head slicing and softmax stay dense);
  // a coded input decodes to the float path's exact tensor.
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 3);
  LP_CHECK_MSG(in.dim(2) == dim_, "attention dim mismatch");
  Tensor out;
  if (window_ <= 0) {
    out = attend(in, ctx);
  } else {
    // Partition the (grid_h x grid_w) token grid into window x window tiles,
    // treat each tile as an independent attention batch, then un-partition.
    const std::int64_t b = in.dim(0);
    const std::int64_t t = in.dim(1);
    LP_CHECK(t == static_cast<std::int64_t>(grid_h_) * grid_w_);
    const std::int64_t nh = grid_h_ / window_;
    const std::int64_t nw = grid_w_ / window_;
    const std::int64_t wt = static_cast<std::int64_t>(window_) * window_;
    Tensor part({b * nh * nw, wt, dim_});
    for (std::int64_t bi = 0; bi < b; ++bi) {
      for (std::int64_t wy = 0; wy < nh; ++wy) {
        for (std::int64_t wx = 0; wx < nw; ++wx) {
          const std::int64_t wb = (bi * nh + wy) * nw + wx;
          for (std::int64_t iy = 0; iy < window_; ++iy) {
            for (std::int64_t ix = 0; ix < window_; ++ix) {
              const std::int64_t tok = (wy * window_ + iy) * grid_w_ +
                                       wx * window_ + ix;
              std::copy_n(in.raw() + (bi * t + tok) * dim_, dim_,
                          part.raw() + (wb * wt + iy * window_ + ix) * dim_);
            }
          }
        }
      }
    }
    const Tensor attended = attend(part, ctx);
    out = Tensor({b, t, static_cast<std::int64_t>(dim_)});
    for (std::int64_t bi = 0; bi < b; ++bi) {
      for (std::int64_t wy = 0; wy < nh; ++wy) {
        for (std::int64_t wx = 0; wx < nw; ++wx) {
          const std::int64_t wb = (bi * nh + wy) * nw + wx;
          for (std::int64_t iy = 0; iy < window_; ++iy) {
            for (std::int64_t ix = 0; ix < window_; ++ix) {
              const std::int64_t tok = (wy * window_ + iy) * grid_w_ +
                                       wx * window_ + ix;
              std::copy_n(attended.raw() + (wb * wt + iy * window_ + ix) * dim_,
                          dim_, out.raw() + (bi * t + tok) * dim_);
            }
          }
        }
      }
    }
  }
  capture_pooled(ctx, out);
  count_float(ctx, out);
  return NodeValue(std::move(out));
}

NodeValue MaxPoolNode::run(std::span<const NodeValue* const> x,
                           const RunCtx&) const {
  return max_pool2d(x[0]->dense(), kernel_, stride_, padding_);
}

NodeValue GlobalAvgPoolNode::run(std::span<const NodeValue* const> x,
                                 const RunCtx&) const {
  return global_avg_pool(x[0]->dense());
}

NodeValue AddNode::run(std::span<const NodeValue* const> x,
                       const RunCtx&) const {
  Tensor out = add(x[0]->dense(), x[1]->dense());
  apply_act(out, act_);
  return out;
}

NodeValue LayerNormNode::run(std::span<const NodeValue* const> x,
                             const RunCtx&) const {
  return layernorm_lastdim(x[0]->dense(), gamma_, beta_);
}

NodeValue ToTokensNode::run(std::span<const NodeValue* const> x,
                            const RunCtx&) const {
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 4);
  const std::int64_t b = in.dim(0);
  const std::int64_t c = in.dim(1);
  const std::int64_t hw = in.dim(2) * in.dim(3);
  Tensor out({b, hw, c});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* src = in.raw() + (bi * c + ci) * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        out.raw()[(bi * hw + p) * c + ci] = src[p];
      }
    }
  }
  return out;
}

NodeValue ClsPosNode::run(std::span<const NodeValue* const> x,
                          const RunCtx&) const {
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 3);
  const std::int64_t b = in.dim(0);
  const std::int64_t t = in.dim(1);
  const std::int64_t d = in.dim(2);
  LP_CHECK(cls_.rank() == 1 && cls_.dim(0) == d);
  LP_CHECK(pos_.rank() == 2 && pos_.dim(0) == t + 1 && pos_.dim(1) == d);
  Tensor out({b, t + 1, d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    float* dst = out.raw() + bi * (t + 1) * d;
    for (std::int64_t j = 0; j < d; ++j) dst[j] = cls_[j] + pos_.at2(0, j);
    for (std::int64_t ti = 0; ti < t; ++ti) {
      const float* src = in.raw() + (bi * t + ti) * d;
      float* drow = dst + (ti + 1) * d;
      const float* prow = pos_.raw() + (ti + 1) * d;
      for (std::int64_t j = 0; j < d; ++j) drow[j] = src[j] + prow[j];
    }
  }
  return out;
}

NodeValue PosEmbedNode::run(std::span<const NodeValue* const> x,
                            const RunCtx&) const {
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 3);
  const std::int64_t b = in.dim(0);
  const std::int64_t t = in.dim(1);
  const std::int64_t d = in.dim(2);
  LP_CHECK(pos_.rank() == 2 && pos_.dim(0) == t && pos_.dim(1) == d);
  Tensor out = in;
  for (std::int64_t bi = 0; bi < b; ++bi) {
    float* dst = out.raw() + bi * t * d;
    for (std::int64_t i = 0; i < t * d; ++i) dst[i] += pos_.raw()[i];
  }
  return out;
}

NodeValue ClsSelectNode::run(std::span<const NodeValue* const> x,
                             const RunCtx&) const {
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 3);
  const std::int64_t b = in.dim(0);
  const std::int64_t t = in.dim(1);
  const std::int64_t d = in.dim(2);
  Tensor out({b, d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    std::copy_n(in.raw() + bi * t * d, d, out.raw() + bi * d);
  }
  return out;
}

NodeValue TokenMeanNode::run(std::span<const NodeValue* const> x,
                             const RunCtx&) const {
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 3);
  const std::int64_t b = in.dim(0);
  const std::int64_t t = in.dim(1);
  const std::int64_t d = in.dim(2);
  LP_CHECK(t > 0);
  Tensor out({b, d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    float* dst = out.raw() + bi * d;
    for (std::int64_t ti = 0; ti < t; ++ti) {
      const float* src = in.raw() + (bi * t + ti) * d;
      for (std::int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    const float inv = 1.0F / static_cast<float>(t);
    for (std::int64_t j = 0; j < d; ++j) dst[j] *= inv;
  }
  return out;
}

PatchMergeNode::PatchMergeNode(int input, std::string name, int grid_h,
                               int grid_w, Tensor weight, Tensor bias,
                               int block_id)
    : Node({input}, std::move(name)), grid_h_(grid_h), grid_w_(grid_w) {
  LP_CHECK(grid_h % 2 == 0 && grid_w % 2 == 0);
  LP_CHECK(weight.rank() == 2);
  slot_.name = this->name() + ".w";
  slot_.weight = std::move(weight);
  slot_.bias = std::move(bias);
  slot_.block_id = block_id;
}

NodeValue PatchMergeNode::run(std::span<const NodeValue* const> x,
                              const RunCtx& ctx) const {
  // The 2x2 gather works on floats; a coded input decodes first.
  const Tensor& in = x[0]->dense();
  LP_CHECK(in.rank() == 3);
  const std::int64_t b = in.dim(0);
  const std::int64_t t = in.dim(1);
  const std::int64_t d = in.dim(2);
  LP_CHECK(t == static_cast<std::int64_t>(grid_h_) * grid_w_);
  const std::int64_t oh = grid_h_ / 2;
  const std::int64_t ow = grid_w_ / 2;
  // Gather 2x2 neighbourhoods into [b*oh*ow, 4d].
  Tensor gathered({b * oh * ow, 4 * d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float* dst = gathered.raw() + ((bi * oh + oy) * ow + ox) * 4 * d;
        int quad = 0;
        for (std::int64_t dy = 0; dy < 2; ++dy) {
          for (std::int64_t dx = 0; dx < 2; ++dx, ++quad) {
            const std::int64_t tok = (oy * 2 + dy) * grid_w_ + ox * 2 + dx;
            std::copy_n(in.raw() + (bi * t + tok) * d, d, dst + quad * d);
          }
        }
      }
    }
  }
  const int s = first_slot();
  const Tensor& w = ctx.weight(s, slot_.weight);
  if (ctx.workloads != nullptr) {
    ctx.workloads->push_back({name(), w.dim(0), w.dim(1), gathered.dim(0), s});
  }
  const Tensor* bias = slot_.bias.empty() ? nullptr : &slot_.bias;
  const PackedCodes* codes = ctx.weight_codes(s);
  const ActCoding* coding = out_coding(ctx, s);
  // Coded weights + coded output: fuse GEMM→bias→encode (patch merge has
  // no nonlinearity) so the merged tokens leave only as codes.
  if (codes != nullptr && coding != nullptr && ctx.fuse) {
    auto enc = matmul_nt_codes_enc(gathered, *codes, bias,
                                   {coding->qidx->view(), coding->lut,
                                    coding->bits, kernels::kActNone},
                                   ctx.approx);
    if (enc.has_value()) {
      enc->reshape({b, oh * ow, w.dim(0)});
      count_coded(ctx, *enc);
      return NodeValue(std::move(*enc));
    }
  }
  Tensor out = codes != nullptr
                   ? matmul_nt_codes(gathered, *codes, bias, ctx.approx)
                   : matmul_nt(gathered, w, bias);
  if (coding != nullptr) {
    auto enc = encode_acts(out, {coding->qidx->view(), coding->lut,
                                 coding->bits, kernels::kActNone});
    if (enc.has_value()) {
      enc->reshape({b, oh * ow, w.dim(0)});
      count_coded(ctx, *enc);
      return NodeValue(std::move(*enc));
    }
  }
  quantize_activations(out, ctx.act_format(s));
  Tensor shaped = out.reshaped({b, oh * ow, w.dim(0)});
  capture_pooled(ctx, shaped);
  count_float(ctx, shaped);
  return NodeValue(std::move(shaped));
}

}  // namespace lp::nn
