// Distribution-matched synthetic weight initialization.
//
// The paper's Fig. 1(a) motivates LP with the heterogeneity of *trained*
// DNN weights: per-layer scales spanning orders of magnitude, heavy tails,
// and per-channel spread.  Since pretrained ImageNet checkpoints are not
// available offline, the zoo synthesizes weights that reproduce those
// distributional properties (see DESIGN.md section 2):
//
//   w = channel_gain * layer_gain * (He-scaled Gaussian, with a small
//       Laplace-mixture tail component)
//
//   layer_gain   ~ 10^U(-spread, +spread)      (inter-layer scale variance)
//   channel_gain ~ 2^U(-ch_spread, +ch_spread) (intra-layer spread)
//   tail: with probability tail_fraction a draw is replaced by
//         Laplace(3 sigma) (kurtosis > 0, like trained conv layers)
#pragma once

#include "nn/model.h"
#include "util/rng.h"

namespace lp::nn {

struct InitOptions {
  double layer_scale_spread = 0.5;   ///< decades of per-layer gain variation
  double channel_scale_spread = 0.8; ///< log2 per-output-channel variation
  double tail_fraction = 0.05;       ///< Laplace mixture weight
  double tail_scale = 2.5;           ///< Laplace b relative to sigma
};

/// Initialize every weight slot of a finalized model.  Deterministic for a
/// given rng state.  Biases get small Gaussian values.
void init_weights(Model& model, Rng& rng, const InitOptions& opts = {});

/// He-style fan-in of a weight tensor ([out,in] or [out,in,kh,kw]).
[[nodiscard]] std::int64_t fan_in(const Tensor& weight);

}  // namespace lp::nn
