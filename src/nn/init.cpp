#include "nn/init.h"

#include <cmath>

namespace lp::nn {

std::int64_t fan_in(const Tensor& weight) {
  LP_CHECK(weight.rank() == 2 || weight.rank() == 4);
  std::int64_t f = weight.dim(1);
  if (weight.rank() == 4) f *= weight.dim(2) * weight.dim(3);
  return f;
}

void init_weights(Model& model, Rng& rng, const InitOptions& opts) {
  for (WeightSlot* slot : model.slot_list()) {
    Tensor& w = slot->weight;
    const double sigma = std::sqrt(2.0 / static_cast<double>(fan_in(w)));
    const double layer_gain = std::pow(
        10.0, rng.uniform(-opts.layer_scale_spread, opts.layer_scale_spread));
    const std::int64_t out_ch = w.dim(0);
    const std::int64_t per_ch = w.numel() / out_ch;
    for (std::int64_t oc = 0; oc < out_ch; ++oc) {
      const double ch_gain = std::exp2(
          rng.uniform(-opts.channel_scale_spread, opts.channel_scale_spread));
      float* dst = w.raw() + oc * per_ch;
      for (std::int64_t i = 0; i < per_ch; ++i) {
        double v;
        if (rng.coin(opts.tail_fraction)) {
          v = rng.laplace(opts.tail_scale * sigma);
        } else {
          v = rng.gaussian(0.0, sigma);
        }
        dst[i] = static_cast<float>(v * layer_gain * ch_gain);
      }
    }
    if (!slot->bias.empty()) {
      for (float& b : slot->bias.data()) {
        b = static_cast<float>(rng.gaussian(0.0, 0.02));
      }
    }
  }
}

}  // namespace lp::nn
