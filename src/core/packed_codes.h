// Packed weight-code storage — the software analogue of keeping n<=8-bit
// LP codes in accelerator SRAM and decoding them inside the datapath
// (paper Section 5; PDPU and Deep Positron make the same move).
//
// A PackedCodes holds one quantized weight tensor as dense decode-table
// *indices* (4/8/16 bits each, bit-packed for 4) plus a shared pointer to
// the format's decode LUT.  Expanding index i through the LUT yields the
// exact float the float-path quantized tensor stores at that element —
// the alignment contract between NumberFormat::quantize_codes_batch and
// NumberFormat::decode_table() — so the LUT-decoding GEMM kernels
// (src/kernels) are bit-identical to decode-then-GEMM by construction.
//
// The payload is 4-8x smaller than the float tensor it replaces, which is
// the whole point: the runtime's byte-budgeted weight cache holds 4-8x
// more (slot, format) pairs, and the GEMM B-stream reads 4-8x fewer
// bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "kernels/kernels.h"

namespace lp {

class NumberFormat;

/// Dense decode LUT: entry i is the float value of code index i.  Shared
/// (one instance per format) across every PackedCodes of that format.
using DecodeTable = std::vector<float>;

class PackedCodes {
 public:
  /// Largest decode table the packed path serves (16-bit codes); wider
  /// formats stay on the float fallback.
  static constexpr std::size_t kMaxLutSize = 1U << 16;

  /// Quantize `data` (logical shape `shape`) into packed codes.  Returns
  /// nullopt — callers fall back to the float path — when the format has
  /// no batched code path, the LUT is missing/too large, or any element
  /// is non-finite (the float path quantizes those to NaN, which no code
  /// can represent).  Runs chunk-parallel on the default pool; all chunk
  /// writes are disjoint, so the result is identical for any pool size.
  /// `min_bits` floors the code width: activation streams pass 8 so codes
  /// stay byte-aligned and parallel writers never share a byte (weights
  /// keep the default 0 = narrowest width that fits the LUT).
  [[nodiscard]] static std::optional<PackedCodes> pack(
      std::span<const float> data, std::vector<std::int64_t> shape,
      const NumberFormat& fmt, std::shared_ptr<const DecodeTable> lut,
      int min_bits = 0);

  /// Code width (4, 8, or 16) pack() would choose for a LUT of that size,
  /// floored at `min_bits`.  Callers sizing kernel-written code streams
  /// (the fused encode epilogue) use this plus stream_bytes().
  [[nodiscard]] static int bits_for(std::size_t lut_size, int min_bits = 0) {
    const int natural = lut_size <= 16 ? 4 : lut_size <= 256 ? 8 : 16;
    return natural < min_bits ? min_bits : natural;
  }

  /// Bytes a code stream of `numel` elements at `bits` wide occupies.
  [[nodiscard]] static std::size_t stream_bytes(std::int64_t numel, int bits) {
    const std::size_t n = static_cast<std::size_t>(numel);
    return bits == 4 ? (n + 1) / 2 : bits == 8 ? n : n * 2;
  }

  /// Wrap a kernel-written code stream (the fused encode epilogue writes
  /// codes directly, no float detour) as a PackedCodes.  `data` must hold
  /// exactly stream_bytes(numel(shape), bits) bytes of valid indices into
  /// `lut`; nothing is validated beyond the sizes.
  [[nodiscard]] static PackedCodes from_codes(
      std::vector<std::uint8_t> data, std::vector<std::int64_t> shape,
      int bits, std::shared_ptr<const DecodeTable> lut);

  [[nodiscard]] const std::vector<std::int64_t>& shape() const {
    return shape_;
  }

  /// Reinterpret the logical shape (element count must match) — the coded
  /// analogue of Tensor::reshape for nn's [B,T,D] <-> [B*T,D] round-trips.
  void reshape(std::vector<std::int64_t> shape);
  [[nodiscard]] std::int64_t dim(std::size_t i) const { return shape_[i]; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::int64_t numel() const { return numel_; }

  /// Bits per stored code: 4, 8, or 16.
  [[nodiscard]] int code_bits() const { return bits_; }
  /// Bytes of the packed code array (excludes the shared LUT).
  [[nodiscard]] std::size_t payload_bytes() const { return data_.size(); }
  /// The packed code bytes themselves — what the serialized model artifact
  /// stores verbatim (and hands back to from_codes on load).
  [[nodiscard]] std::span<const std::uint8_t> raw_bytes() const {
    return data_;
  }
  /// Bytes of the float tensor this replaces (the decoded equivalent).
  [[nodiscard]] std::size_t logical_bytes() const {
    return static_cast<std::size_t>(numel_) * sizeof(float);
  }
  [[nodiscard]] const std::shared_ptr<const DecodeTable>& lut() const {
    return lut_;
  }

  /// Kernel-layer view starting at logical element `elem_offset` (grouped
  /// convolutions slice per-group weight blocks).  Valid while this
  /// object is alive.
  [[nodiscard]] kernels::PackedCodesView view(
      std::int64_t elem_offset = 0) const {
    return {data_.data(), elem_offset, bits_, lut_->data(),
            static_cast<std::uint32_t>(lut_->size())};
  }

  /// Decoded value of element i — the float the float path would store.
  [[nodiscard]] float decode_at(std::int64_t i) const {
    return kernels::packed_decode_at(view(), i);
  }

  /// Decode every element into `out` (size numel()) — the exact float
  /// tensor the float path produces for this data.  Chunk-parallel with
  /// disjoint writes; identical for any pool size.
  void decode(std::span<float> out) const;

 private:
  PackedCodes() = default;

  std::vector<std::int64_t> shape_;
  std::int64_t numel_ = 0;
  int bits_ = 8;
  std::vector<std::uint8_t> data_;
  std::shared_ptr<const DecodeTable> lut_;
};

/// Build the shared decode LUT for a format, or null when the format
/// cannot serve the packed path (no batched code emission, or a value
/// table beyond PackedCodes::kMaxLutSize).
[[nodiscard]] std::shared_ptr<const DecodeTable> build_decode_table(
    const NumberFormat& fmt);

/// Index of the exact +0.0f entry in a decode LUT, or a negative value
/// when the table has none.  The coded im2col path pads with this code so
/// padded patches decode to the same 0.0f the float im2col writes.
[[nodiscard]] std::int64_t lut_zero_code(const DecodeTable& lut);

}  // namespace lp
