#include "core/lp_config.h"

#include <iomanip>
#include <sstream>

namespace lp {

std::string LPConfig::to_string() const {
  std::ostringstream os;
  os << "<n=" << n << ", es=" << es << ", rs=" << rs << ", sf="
     << std::setprecision(4) << sf << '>';
  return os.str();
}

}  // namespace lp
