// The nearest-value quantization rule, shared by every path that resolves
// "which table value does v round to": the scalar quantizers
// (EnumeratedFormat::quantize, CodeTable::nearest_index), the QuantIndex
// boundary-key builder, and the SIMD kernel layer's key computation
// (src/kernels).  Keeping the rule in one set of inline helpers means the
// batched/SIMD paths cannot drift from the scalar one — they either call
// these helpers or are pinned bit-identical to them by tests/test_kernels.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

namespace lp::quant {

/// Map a finite float's bit pattern to a uint32 that orders like the value:
/// negatives flip entirely, positives set the sign bit.
constexpr std::uint32_t ordered_key(std::uint32_t bits) {
  return (bits & 0x80000000U) != 0 ? ~bits : bits | 0x80000000U;
}

/// Inverse of ordered_key.
inline float float_from_key(std::uint32_t key) {
  const std::uint32_t bits =
      (key & 0x80000000U) != 0 ? key ^ 0x80000000U : ~key;
  return std::bit_cast<float>(bits);
}

/// True iff the float with these bits is finite (not inf/NaN).
constexpr bool is_finite_bits(std::uint32_t bits) {
  return (bits & 0x7F800000U) != 0x7F800000U;
}

/// The nearest-value rule between adjacent table values lo < hi: true iff v
/// quantizes to hi rather than lo (ties go toward the smaller magnitude).
/// Monotone in v: the computed dlo is non-decreasing and dhi non-increasing,
/// so once the rule picks hi it picks hi for every larger value — the
/// property the QuantIndex boundary search depends on.
inline bool picks_upper(double v, double lo, double hi) {
  const double dlo = v - lo;
  const double dhi = hi - v;
  if (dlo < dhi) return false;
  if (dhi < dlo) return true;
  return std::fabs(lo) > std::fabs(hi);
}

/// Index of the nearest value to v in a sorted table (saturating at the
/// extremes), under exactly the picks_upper tie rule.  `values` must be
/// sorted ascending, distinct and non-empty; v must be finite.
inline std::size_t nearest_index(std::span<const double> values, double v) {
  const auto it = std::lower_bound(values.begin(), values.end(), v);
  if (it == values.begin()) return 0;
  if (it == values.end()) return values.size() - 1;
  const auto hi = static_cast<std::size_t>(it - values.begin());
  return picks_upper(v, values[hi - 1], values[hi]) ? hi : hi - 1;
}

}  // namespace lp::quant
