#include "core/number_format.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/quant_rule.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace lp {

namespace {

double quantize_scalar_chunk(const NumberFormat& fmt, std::span<float> xs) {
  double se = 0.0;
  for (float& x : xs) {
    const double q = fmt.quantize(x);
    const double d = static_cast<double>(x) - q;
    se += d * d;
    x = static_cast<float>(q);
  }
  return se;
}

}  // namespace

double NumberFormat::quantize_batch(std::span<float> xs) const {
  // Same chunking discipline as QuantIndex::quantize (via chunked_sum):
  // fixed chunk boundaries, partial errors combined in chunk order, so the
  // result is bit-identical for any pool size and buffers of at most one
  // chunk match the seed's sequential loop exactly.
  return chunked_sum(default_pool(), xs.size(), QuantIndex::kQuantChunk,
                     [&](std::size_t begin, std::size_t end) {
                       return quantize_scalar_chunk(
                           *this, xs.subspan(begin, end - begin));
                     });
}

std::vector<float> NumberFormat::decode_table() const {
  const std::vector<double> values = all_values();
  std::vector<float> table;
  table.reserve(values.size());
  for (const double v : values) table.push_back(static_cast<float>(v));
  return table;
}

bool NumberFormat::quantize_codes_batch(std::span<const float>,
                                        std::span<std::uint32_t>) const {
  return false;  // no enumerated index path; callers use the float path
}

void EnumeratedFormat::set_values(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  LP_CHECK_MSG(!values.empty(), "format has no representable values");
  values_ = std::move(values);
  index_ = QuantIndex(values_);
}

double EnumeratedFormat::quantize(double v) const {
  if (!std::isfinite(v)) return std::numeric_limits<double>::quiet_NaN();
  return values_[quant::nearest_index(values_, v)];
}

double quantize_span(std::span<float> xs, const NumberFormat& fmt) {
  const double se = fmt.quantize_batch(xs);
  return xs.empty() ? 0.0 : std::sqrt(se / static_cast<double>(xs.size()));
}

double quantization_rmse(std::span<const float> xs, const NumberFormat& fmt) {
  std::vector<float> copy(xs.begin(), xs.end());
  const double se = fmt.quantize_batch(copy);
  return xs.empty() ? 0.0 : std::sqrt(se / static_cast<double>(xs.size()));
}

}  // namespace lp
