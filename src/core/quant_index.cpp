#include "core/quant_index.h"

#include "core/quant_rule.h"
#include "kernels/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace lp {

static_assert(QuantIndex::kInvalid == kernels::kInvalidIndex,
              "QuantIndex and the kernel layer must agree on the sentinel");

namespace {

constexpr std::uint32_t kMinFiniteKey = quant::ordered_key(0xFF7FFFFFU);  // -FLT_MAX
constexpr std::uint32_t kMaxFiniteKey = quant::ordered_key(0x7F7FFFFFU);  // +FLT_MAX

}  // namespace

QuantIndex::QuantIndex(std::span<const double> values)
    : values_(values.begin(), values.end()) {
  LP_CHECK_MSG(!values_.empty(), "quant index over empty value table");
  values_f_.reserve(values_.size());
  for (const double v : values_) values_f_.push_back(static_cast<float>(v));

  // For each adjacent pair, binary-search the smallest finite float (in
  // order-preserving key space) that the scalar rule sends to the upper
  // value; everything below the key quantizes to the lower index.  Seeding
  // from the previous boundary keeps the keys monotone and the build cheap.
  keys_.reserve(values_.size() - 1);
  std::uint32_t prev = kMinFiniteKey;
  for (std::size_t i = 0; i + 1 < values_.size(); ++i) {
    std::uint32_t lo = prev;
    std::uint32_t hi = kMaxFiniteKey + 1;  // exclusive: "no finite float"
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (quant::picks_upper(quant::float_from_key(mid), values_[i],
                             values_[i + 1])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    keys_.push_back(lo);
    prev = lo;
  }

  bucket_lo_.assign((1U << kBucketBits) + 1U, 0);
  constexpr int shift = 32 - kBucketBits;
  std::size_t k = 0;
  for (std::uint32_t b = 0; b < (1U << kBucketBits); ++b) {
    while (k < keys_.size() && (keys_[k] >> shift) < b) ++k;
    bucket_lo_[b] = static_cast<std::uint32_t>(k);
  }
  bucket_lo_.back() = static_cast<std::uint32_t>(keys_.size());
}

double QuantIndex::quantize(std::span<float> xs) const {
  // Fixed kQuantChunk boundaries and a chunk-ordered reduction (see
  // chunked_sum) keep the returned error independent of the pool size:
  // threads=N is bit-identical to threads=1, and buffers that fit one chunk
  // match the scalar loop exactly.  The per-chunk work runs on the
  // dispatched kernel (scalar reference or AVX2), all variants
  // bit-identical.
  const kernels::KernelTable& kt = kernels::dispatch();
  const kernels::QuantIndexView v = view();
  return chunked_sum(default_pool(), xs.size(), kQuantChunk,
                     [&](std::size_t begin, std::size_t end) {
                       return kt.quantize_chunk(v, xs.data() + begin,
                                                end - begin);
                     });
}

void QuantIndex::nearest_indices(std::span<const float> xs,
                                 std::span<std::uint32_t> out) const {
  LP_CHECK(xs.size() == out.size());
  kernels::dispatch().nearest_indices(view(), xs.data(), out.data(),
                                      xs.size());
}

}  // namespace lp
