#include "core/quant_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/thread_pool.h"

namespace lp {
namespace {

/// Map a finite float's bit pattern to a uint32 that orders like the value:
/// negatives flip entirely, positives set the sign bit.
constexpr std::uint32_t ordered_key(std::uint32_t bits) {
  return (bits & 0x80000000U) != 0 ? ~bits : bits | 0x80000000U;
}

constexpr std::uint32_t kMinFiniteKey = ordered_key(0xFF7FFFFFU);  // -FLT_MAX
constexpr std::uint32_t kMaxFiniteKey = ordered_key(0x7F7FFFFFU);  // +FLT_MAX

float float_from_key(std::uint32_t key) {
  const std::uint32_t bits =
      (key & 0x80000000U) != 0 ? key ^ 0x80000000U : ~key;
  return std::bit_cast<float>(bits);
}

constexpr bool is_finite_bits(std::uint32_t bits) {
  return (bits & 0x7F800000U) != 0x7F800000U;
}

/// Exactly the scalar nearest-value rule between adjacent table values:
/// true iff x quantizes to hi rather than lo.  Monotone in x: the computed
/// dlo is non-decreasing and dhi non-increasing, so once the rule picks hi
/// it picks hi for every larger float.
bool picks_upper(float x, double lo, double hi) {
  const double v = x;
  const double dlo = v - lo;
  const double dhi = hi - v;
  if (dlo < dhi) return false;
  if (dhi < dlo) return true;
  return std::fabs(lo) > std::fabs(hi);
}

}  // namespace

QuantIndex::QuantIndex(std::span<const double> values)
    : values_(values.begin(), values.end()) {
  LP_CHECK_MSG(!values_.empty(), "quant index over empty value table");
  values_f_.reserve(values_.size());
  for (const double v : values_) values_f_.push_back(static_cast<float>(v));

  // For each adjacent pair, binary-search the smallest finite float (in
  // order-preserving key space) that the scalar rule sends to the upper
  // value; everything below the key quantizes to the lower index.  Seeding
  // from the previous boundary keeps the keys monotone and the build cheap.
  keys_.reserve(values_.size() - 1);
  std::uint32_t prev = kMinFiniteKey;
  for (std::size_t i = 0; i + 1 < values_.size(); ++i) {
    std::uint32_t lo = prev;
    std::uint32_t hi = kMaxFiniteKey + 1;  // exclusive: "no finite float"
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (picks_upper(float_from_key(mid), values_[i], values_[i + 1])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    keys_.push_back(lo);
    prev = lo;
  }

  bucket_lo_.assign((1U << kBucketBits) + 1U, 0);
  constexpr int shift = 32 - kBucketBits;
  std::size_t k = 0;
  for (std::uint32_t b = 0; b < (1U << kBucketBits); ++b) {
    while (k < keys_.size() && (keys_[k] >> shift) < b) ++k;
    bucket_lo_[b] = static_cast<std::uint32_t>(k);
  }
  bucket_lo_.back() = static_cast<std::uint32_t>(keys_.size());
}

std::size_t QuantIndex::lookup(std::uint32_t key) const {
  const std::uint32_t b = key >> (32 - kBucketBits);
  const std::uint32_t* first = keys_.data() + bucket_lo_[b];
  const std::uint32_t* last = keys_.data() + bucket_lo_[b + 1];
  // Buckets hold a handful of keys for the paper's narrow formats; a
  // linear scan beats binary-search branches there.  Wide (12+ bit)
  // formats can have dense buckets, so fall back above a small span.
  if (last - first > 16) {
    return static_cast<std::size_t>(std::upper_bound(first, last, key) -
                                    keys_.data());
  }
  while (first < last && *first <= key) ++first;
  return static_cast<std::size_t>(first - keys_.data());
}

double QuantIndex::quantize_chunk(std::span<float> xs) const {
  double se = 0.0;
  for (float& x : xs) {
    const auto bits = std::bit_cast<std::uint32_t>(x);
    if (!is_finite_bits(bits)) {
      // Mirror the scalar loop: q = NaN poisons the error accumulator.
      const double d = static_cast<double>(x) -
                       std::numeric_limits<double>::quiet_NaN();
      se += d * d;
      x = std::numeric_limits<float>::quiet_NaN();
      continue;
    }
    const std::size_t idx = lookup(ordered_key(bits));
    const double d = static_cast<double>(x) - values_[idx];
    se += d * d;
    x = values_f_[idx];
  }
  return se;
}

double QuantIndex::quantize(std::span<float> xs) const {
  // Fixed kQuantChunk boundaries and a chunk-ordered reduction (see
  // chunked_sum) keep the returned error independent of the pool size:
  // threads=N is bit-identical to threads=1, and buffers that fit one chunk
  // match the scalar loop exactly.
  return chunked_sum(default_pool(), xs.size(), kQuantChunk,
                     [&](std::size_t begin, std::size_t end) {
                       return quantize_chunk(xs.subspan(begin, end - begin));
                     });
}

void QuantIndex::nearest_indices(std::span<const float> xs,
                                 std::span<std::uint32_t> out) const {
  LP_CHECK(xs.size() == out.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(xs[i]);
    out[i] = is_finite_bits(bits)
                 ? static_cast<std::uint32_t>(lookup(ordered_key(bits)))
                 : kInvalid;
  }
}

}  // namespace lp
