#include "core/accuracy_profile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lp {

std::vector<AccuracyPoint> accuracy_profile(const NumberFormat& fmt) {
  const std::vector<double> all = fmt.all_values();
  std::vector<double> pos;
  for (double v : all) {
    if (v > 0.0 && std::isfinite(v)) pos.push_back(v);
  }
  std::vector<AccuracyPoint> out;
  if (pos.size() < 3) return out;
  out.reserve(pos.size() - 2);
  for (std::size_t i = 1; i + 1 < pos.size(); ++i) {
    const double gap = std::max(pos[i] - pos[i - 1], pos[i + 1] - pos[i]);
    const double rel = gap / (2.0 * pos[i]);
    AccuracyPoint p;
    p.value = pos[i];
    p.log2_value = std::log2(pos[i]);
    p.decimal_accuracy = (rel > 0.0) ? -std::log10(rel) : 16.0;
    out.push_back(p);
  }
  return out;
}

double decimal_accuracy_at(const NumberFormat& fmt, double x) {
  LP_CHECK(x > 0.0);
  static constexpr double kOffsets[] = {-0.45, -0.30, -0.15, 0.0,
                                        0.15,  0.30,  0.45};
  double worst_rel = 0.0;
  for (double u : kOffsets) {
    const double v = x * std::exp2(u * 0.5);
    const double q = fmt.quantize(v);
    const double rel = std::fabs(q - v) / v;
    worst_rel = std::max(worst_rel, rel);
  }
  if (worst_rel <= 0.0) return 16.0;  // exactly representable neighbourhood
  return -std::log10(worst_rel);
}

std::vector<AccuracyPoint> sample_profile(const std::vector<AccuracyPoint>& profile,
                                          double lo, double hi, int bins) {
  LP_CHECK(bins >= 2);
  LP_CHECK(lo > 0.0 && hi > lo);
  std::vector<AccuracyPoint> out;
  if (profile.empty()) return out;
  out.reserve(static_cast<std::size_t>(bins));
  const double l0 = std::log2(lo);
  const double l1 = std::log2(hi);
  for (int i = 0; i < bins; ++i) {
    const double lx = l0 + (l1 - l0) * i / (bins - 1);
    // Nearest profile point on the log axis.
    const auto it = std::lower_bound(
        profile.begin(), profile.end(), lx,
        [](const AccuracyPoint& p, double key) { return p.log2_value < key; });
    const AccuracyPoint* best;
    if (it == profile.begin()) {
      best = &*it;
    } else if (it == profile.end()) {
      best = &profile.back();
    } else {
      const AccuracyPoint* hi_p = &*it;
      const AccuracyPoint* lo_p = &*(it - 1);
      best = (lx - lo_p->log2_value) <= (hi_p->log2_value - lx) ? lo_p : hi_p;
    }
    AccuracyPoint p = *best;
    p.log2_value = lx;  // report at the sample position
    out.push_back(p);
  }
  return out;
}

}  // namespace lp
