// Precomputed nearest-value quantization index over a sorted value table.
//
// The scalar paths (EnumeratedFormat::quantize, CodeTable::nearest_index)
// binary-search a double table — for an n-bit format that is ~n double
// compares, a virtual call, and a tie branch per element (they share one
// rule: quant::nearest_index in core/quant_rule.h).  This index hoists all
// of that out of the loop: each decision boundary is resolved once, at
// build time, to the exact float where the scalar rule flips from the
// lower to the upper table value, stored as an order-preserving uint32
// key.  Batched lookups are then a bucket jump plus a short integer
// search, remain bit-exact with the scalar rule by construction, and are
// served by the dispatched kernel layer (src/kernels: scalar reference or
// AVX2 branchless search, selected at runtime via cpuid / LP_KERNEL).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kernels.h"

namespace lp {

class QuantIndex {
 public:
  QuantIndex() = default;

  /// `values` must be sorted ascending, distinct, finite, and non-empty.
  explicit QuantIndex(std::span<const double> values);

  /// Quantize xs in place; non-finite inputs become quiet NaN.  Returns the
  /// sum of squared error against the double-precision table values (NaN if
  /// any input was non-finite, matching quantize_span's behaviour).  Large
  /// buffers run chunk-parallel on the default pool: the error is
  /// accumulated per fixed-size chunk (kQuantChunk elements, boundaries
  /// independent of the pool size) and partials are combined in chunk
  /// order, so the result is bit-identical for any thread count; buffers of
  /// at most one chunk accumulate in element order exactly as the scalar
  /// loop does.  Within a chunk the dispatched kernel runs (LP_KERNEL);
  /// every kernel variant is bit-identical (see tests/test_kernels.cpp).
  double quantize(std::span<float> xs) const;

  /// Fixed reduction-chunk size for quantize() (elements).
  static constexpr std::size_t kQuantChunk = 1U << 15;

  /// Sentinel index reported for non-finite inputs by nearest_indices().
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFU;

  /// out[i] = index of the nearest value to xs[i], or kInvalid when xs[i]
  /// is not finite.  Spans must have equal length.
  void nearest_indices(std::span<const float> xs,
                       std::span<std::uint32_t> out) const;

  /// Raw-pointer view for the kernel layer.  Valid only while this index
  /// is alive and non-empty.
  [[nodiscard]] kernels::QuantIndexView view() const {
    return {keys_.data(),     keys_.size(),    bucket_lo_.data(),
            kBucketBits,      values_f_.data(), values_.data()};
  }

  [[nodiscard]] bool empty() const { return values_f_.empty(); }
  [[nodiscard]] std::size_t size() const { return values_f_.size(); }

 private:
  static constexpr int kBucketBits = 12;

  std::vector<std::uint32_t> keys_;       ///< boundary keys, ascending
  std::vector<float> values_f_;           ///< table values cast to float
  std::vector<double> values_;            ///< double table (error accounting)
  std::vector<std::uint32_t> bucket_lo_;  ///< (1<<kBucketBits)+1 lower bounds
};

}  // namespace lp
