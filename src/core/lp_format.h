// LP as a NumberFormat — the adapter used by the quantization framework
// and the format-comparison benches.
#pragma once

#include <string>

#include "core/lp_codec.h"
#include "core/number_format.h"

namespace lp {

class LPFormat final : public NumberFormat {
 public:
  explicit LPFormat(const LPConfig& cfg) : table_(cfg) {}

  [[nodiscard]] double quantize(double v) const override {
    return table_.quantize(v);
  }

  double quantize_batch(std::span<float> xs) const override {
    return table_.quantize_batch(xs);
  }

  [[nodiscard]] std::vector<double> all_values() const override {
    return table_.values();
  }

  bool quantize_codes_batch(std::span<const float> xs,
                            std::span<std::uint32_t> out) const override {
    table_.nearest_value_indices(xs, out);
    return true;
  }

  [[nodiscard]] const QuantIndex* quant_index() const override {
    return &table_.index();
  }

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int bits() const override { return table_.config().n; }

  [[nodiscard]] const LPConfig& config() const { return table_.config(); }
  [[nodiscard]] const CodeTable& table() const { return table_; }

 private:
  CodeTable table_;
};

}  // namespace lp
