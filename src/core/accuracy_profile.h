// Relative-accuracy profile of a number format (paper Fig. 1(b)).
//
// For each positive representable value v_i, the worst relative error of
// rounding any real in its rounding interval is approximately
// max(v_i - v_{i-1}, v_{i+1} - v_i) / (2 v_i); the "decimal accuracy" is
// -log10 of that bound (Gustafson's decimal-digits-of-accuracy measure).
// LP's tapered regime makes the profile peak near 2^(-sf) and decay
// gracefully, whereas float-family formats are flat across their range.
#pragma once

#include <vector>

#include "core/number_format.h"

namespace lp {

struct AccuracyPoint {
  double value = 0.0;           ///< representable magnitude
  double log2_value = 0.0;      ///< its position on the log2 axis
  double decimal_accuracy = 0.0;///< -log10(worst relative rounding error)
};

/// Positive-magnitude accuracy profile of a format, sorted by value.
/// Formats with fewer than three positive values yield an empty profile.
[[nodiscard]] std::vector<AccuracyPoint> accuracy_profile(const NumberFormat& fmt);

/// Sample the profile at `bins` log-spaced magnitudes in [lo, hi]
/// (nearest-point lookup); handy for plotting aligned series.
/// Note: lookups beyond the format's covered range return the edge point;
/// use decimal_accuracy_at for saturation-aware sampling.
[[nodiscard]] std::vector<AccuracyPoint> sample_profile(
    const std::vector<AccuracyPoint>& profile, double lo, double hi, int bins);

/// Worst-case decimal accuracy of quantizing magnitudes near `x` (probes a
/// small log-neighbourhood, measures |quantize(v) - v| / v).  Unlike the
/// profile, this reflects saturation: magnitudes outside the representable
/// range score near (or below) zero digits.
[[nodiscard]] double decimal_accuracy_at(const NumberFormat& fmt, double x);

}  // namespace lp
