// Bit-level codec for the Logarithmic Posit data type.
//
// decode_fields/decode_value implement the reference semantics of an LP bit
// pattern; CodeTable enumerates every representable value of a config and
// provides nearest-value quantization (the ground truth LPQ uses).
// encode_log_rounded mirrors what the LPA hardware encoder does (rounding
// in the log domain); it can differ from nearest-value rounding by one code
// near code boundaries, which the tests quantify.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/lp_config.h"
#include "core/quant_index.h"

namespace lp {

/// All fields of a decoded LP bit pattern.  `tail_bits` is the raw
/// exponent+fraction payload B of width `tail_len`; the unified
/// log-fraction-and-exponent is ulfx = B * 2^(es - tail_len).
struct LPFields {
  bool is_zero = false;
  bool is_nar = false;
  int sign = 0;           ///< 0 positive, 1 negative
  int run = 0;            ///< regime run length m
  int k = 0;              ///< regime value
  int regime_consumed = 0;///< bits consumed by regime incl. terminator
  std::uint32_t tail_bits = 0;
  int tail_len = 0;
  double ulfx = 0.0;      ///< e + log2(1.f) in [0, 2^es)
  double scale = 0.0;     ///< total exponent 2^es*k + ulfx - sf
};

/// Decode an n-bit LP code (low n bits of `code`) into its fields.
[[nodiscard]] LPFields decode_fields(std::uint32_t code, const LPConfig& cfg);

/// Decode an LP code to its real value (0.0 for the zero code, quiet NaN
/// for NaR).
[[nodiscard]] double decode_value(std::uint32_t code, const LPConfig& cfg);

/// The NaR bit pattern (1 followed by zeros).
[[nodiscard]] constexpr std::uint32_t nar_code(const LPConfig& cfg) {
  return 1U << (cfg.n - 1);
}

/// Encode by rounding in the log domain, as the hardware encoder does:
/// round ulfx to the fraction granularity of the landing regime, carrying
/// into k on overflow, saturating at the config's extremes.  v == 0 maps to
/// the zero code; non-finite v maps to NaR.
[[nodiscard]] std::uint32_t encode_log_rounded(double v, const LPConfig& cfg);

/// Enumerated, sorted table of every representable value of one config.
/// Build cost is O(2^n log 2^n); lookup is O(log 2^n).
class CodeTable {
 public:
  explicit CodeTable(const LPConfig& cfg);

  /// Nearest representable value (ties toward smaller magnitude);
  /// out-of-range inputs saturate, non-finite inputs return NaN.
  [[nodiscard]] double quantize(double v) const;

  /// Code of the nearest representable value.
  [[nodiscard]] std::uint32_t quantize_code(double v) const;

  /// Batched quantize: xs in place, non-finite -> quiet NaN.  Bit-exact
  /// with per-element quantize(); returns the sum of squared error against
  /// the double-precision table values.
  double quantize_batch(std::span<float> xs) const { return index_.quantize(xs); }

  /// Batched quantize_code: out[i] = code of the value nearest xs[i]
  /// (NaR for non-finite inputs).  Spans must have equal length.
  void encode_batch(std::span<const float> xs,
                    std::span<std::uint32_t> out) const;

  /// out[i] = index into values() of the value nearest xs[i]
  /// (QuantIndex::kInvalid for non-finite inputs) — the dense code
  /// indices the packed-weight path stores, as opposed to the hardware
  /// bit patterns encode_batch emits.  Spans must have equal length.
  void nearest_value_indices(std::span<const float> xs,
                             std::span<std::uint32_t> out) const {
    index_.nearest_indices(xs, out);
  }

  /// Batched decode_value: out[i] = value of code codes[i] (NaN for NaR),
  /// served from a per-code LUT built at construction.  Codes are masked
  /// to the low n bits.  Spans must have equal length.
  void decode_batch(std::span<const std::uint32_t> codes,
                    std::span<float> out) const;

  /// Sorted representable values (excludes NaR, includes 0).
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  /// Codes aligned with values().
  [[nodiscard]] const std::vector<std::uint32_t>& codes() const { return codes_; }

  [[nodiscard]] const LPConfig& config() const { return cfg_; }
  [[nodiscard]] double max_value() const { return values_.back(); }
  [[nodiscard]] double min_positive() const;

  /// The nearest-value index behind quantize_batch /
  /// nearest_value_indices.  Valid only while this table is alive.
  [[nodiscard]] const QuantIndex& index() const { return index_; }

 private:
  [[nodiscard]] std::size_t nearest_index(double v) const;

  LPConfig cfg_;
  std::vector<double> values_;
  std::vector<std::uint32_t> codes_;
  std::vector<float> decode_f_;  ///< value of every code, NaN at NaR
  QuantIndex index_;
};

}  // namespace lp
