// LPConfig — the four parameterized bit fields of a Logarithmic Posit
// (paper Section 3):
//
//   x<n, es, rs, sf> = (-1)^sign * 2^(2^es * k - sf) * 2^ulfx
//
//   n  — total width in bits (mixed precision, 2..16 here; paper uses 2..8)
//   es — exponent field size; each increment doubles the dynamic range
//   rs — regime-size cap; controls the degree of tapering (shape)
//   sf — continuous scale-factor bias; shifts the region of maximum
//        accuracy away from magnitude 1 (standard posits fix sf = 0)
//
// Encoding layout after the sign bit: a run of m identical bits
// (1 <= m <= min(rs, n-1)), terminated by the opposite bit when the run is
// shorter than both the cap and the remaining width; then es exponent bits
// (MSB-aligned, absent low bits read as 0); remaining bits are the
// log-domain fraction f' = log2(1.f).  k = -m for a run of 0s, m-1 for 1s.
#pragma once

#include <cstdint>
#include <string>

#include "util/check.h"

namespace lp {

struct LPConfig {
  int n = 8;       ///< total bits, including sign
  int es = 2;      ///< exponent field size
  int rs = 7;      ///< regime run-length cap
  double sf = 0.0; ///< scale-factor bias (continuous)

  /// Throws std::invalid_argument unless the config is representable.
  void validate() const {
    LP_CHECK_MSG(n >= 2 && n <= 16, "LP width n=" << n << " out of [2,16]");
    LP_CHECK_MSG(es >= 0 && es <= 5, "LP es=" << es << " out of [0,5]");
    LP_CHECK_MSG(es <= (n >= 3 ? n - 3 : 0),
                 "LP es=" << es << " too large for n=" << n);
    LP_CHECK_MSG(rs >= 1 && rs <= n - 1,
                 "LP rs=" << rs << " out of [1, n-1] for n=" << n);
  }

  [[nodiscard]] bool valid() const noexcept {
    return n >= 2 && n <= 16 && es >= 0 && es <= 5 &&
           es <= (n >= 3 ? n - 3 : 0) && rs >= 1 && rs <= n - 1;
  }

  /// Largest regime run length this config can encode.
  [[nodiscard]] int max_run() const { return rs < n - 1 ? rs : n - 1; }

  /// Regime value range: k in [min_k(), max_k()].
  [[nodiscard]] int min_k() const { return -max_run(); }
  [[nodiscard]] int max_k() const { return max_run() - 1; }

  /// Number of distinct bit patterns (including 0 and NaR).
  [[nodiscard]] std::uint32_t code_count() const { return 1U << n; }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const LPConfig& a, const LPConfig& b) {
    return a.n == b.n && a.es == b.es && a.rs == b.rs && a.sf == b.sf;
  }
};

/// Standard posit<n, es> expressed as an LPConfig: regime may run the full
/// word and there is no scale bias.  (The *values* differ from a true posit
/// because LP stores the fraction in the log domain; see formats/posit.h
/// for the genuine posit used in comparisons.)
[[nodiscard]] inline LPConfig lp_like_standard_posit(int n, int es) {
  LPConfig c;
  c.n = n;
  c.es = es;
  c.rs = n - 1;
  c.sf = 0.0;
  c.validate();
  return c;
}

/// Paper Section 4 ("Quantization for Activation"): derive the activation
/// config of a layer from its weight config and the previous layer's
/// activation scale factor.
[[nodiscard]] inline LPConfig activation_config(const LPConfig& w,
                                                double prev_act_sf) {
  LPConfig a;
  a.n = w.n * 2 < 8 ? w.n * 2 : 8;
  a.es = w.es * 2 < 5 ? w.es * 2 : 5;
  if (a.es > a.n - 3) a.es = a.n >= 3 ? a.n - 3 : 0;
  a.rs = w.rs <= a.n - 1 ? w.rs : a.n - 1;
  a.sf = prev_act_sf + w.sf;
  a.validate();
  return a;
}

}  // namespace lp
