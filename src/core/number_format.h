// NumberFormat — the common interface every data type in the comparison
// study implements (LP, standard posit, AdaptivFloat, uniform INT, LNS,
// IEEE-style minifloat, ANT's flint).  Fig. 1(b) and Fig. 5(b) sweep this
// interface; LPQ's competitors reuse it through the same quantizer.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/quant_index.h"

namespace lp {

class NumberFormat {
 public:
  virtual ~NumberFormat() = default;

  /// Nearest representable value to v (saturating at the extremes).
  [[nodiscard]] virtual double quantize(double v) const = 0;

  /// Quantize every element in place (non-finite inputs become quiet NaN)
  /// and return the sum of squared error against the double-precision
  /// quantized values.  The base implementation is the scalar per-element
  /// loop; formats with enumerable value tables override it with a batched
  /// index walk (see QuantIndex) that is bit-exact with quantize().  Both
  /// paths run chunk-parallel on the default pool for large buffers, with
  /// fixed chunk boundaries and a chunk-ordered error reduction, so the
  /// result is bit-identical for any thread count.
  virtual double quantize_batch(std::span<float> xs) const;

  /// Every finite representable value, sorted ascending.  Used by the
  /// accuracy-profile benches; may be large for wide formats.
  [[nodiscard]] virtual std::vector<double> all_values() const = 0;

  /// Dense decode LUT for the packed-code weight path: entry i is the
  /// float cast of all_values()[i] — exactly the float quantize_batch
  /// stores for an input that lands on that value (at most 2^bits()
  /// entries).  quantize_codes_batch emits indices into this table.
  [[nodiscard]] virtual std::vector<float> decode_table() const;

  /// Batched code emission: out[i] = decode-table index of the value
  /// nearest xs[i], or kernels::kInvalidIndex for non-finite inputs.
  /// Spans must have equal length.  Returns false — without touching
  /// `out` — when the format has no enumerated index path; callers fall
  /// back to the float quantize_batch path.  An empty call probes
  /// support.
  virtual bool quantize_codes_batch(std::span<const float> xs,
                                    std::span<std::uint32_t> out) const;

  /// The nearest-value index behind quantize_codes_batch, or nullptr when
  /// the format has no enumerated index path.  The fused encode epilogue
  /// (kernels::ActEncode) searches this index directly, so a non-null
  /// return is the gate for the coded-activation datapath.  Valid only
  /// while the format is alive.
  [[nodiscard]] virtual const QuantIndex* quant_index() const {
    return nullptr;
  }

  /// Human-readable name, e.g. "LP<4,1,2,sf=0.31>".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Storage width in bits.
  [[nodiscard]] virtual int bits() const = 0;
};

/// Convenience base for formats defined by an explicit finite value set:
/// keeps the sorted table and implements nearest-value quantization with
/// ties toward zero.
class EnumeratedFormat : public NumberFormat {
 public:
  [[nodiscard]] double quantize(double v) const final;
  double quantize_batch(std::span<float> xs) const final {
    return index_.quantize(xs);
  }
  [[nodiscard]] std::vector<double> all_values() const final { return values_; }
  bool quantize_codes_batch(std::span<const float> xs,
                            std::span<std::uint32_t> out) const final {
    index_.nearest_indices(xs, out);
    return true;
  }
  [[nodiscard]] const QuantIndex* quant_index() const final {
    return &index_;
  }

 protected:
  /// Derived constructors call this with the (unsorted, possibly
  /// duplicated) representable values.
  void set_values(std::vector<double> values);

 private:
  std::vector<double> values_;
  QuantIndex index_;
};

/// Quantize every element of a buffer in place; returns the RMSE between
/// the original and quantized contents.
double quantize_span(std::span<float> xs, const NumberFormat& fmt);

/// RMSE of quantizing (without mutating) a buffer.
[[nodiscard]] double quantization_rmse(std::span<const float> xs,
                                       const NumberFormat& fmt);

}  // namespace lp
