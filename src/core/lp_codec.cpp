#include "core/lp_codec.h"

#include <algorithm>
#include <cmath>

#include "core/quant_rule.h"

namespace lp {

LPFields decode_fields(std::uint32_t code, const LPConfig& cfg) {
  cfg.validate();
  const std::uint32_t mask = (cfg.n >= 32) ? 0xFFFFFFFFU : ((1U << cfg.n) - 1U);
  code &= mask;

  LPFields f;
  if (code == 0) {
    f.is_zero = true;
    return f;
  }
  if (code == nar_code(cfg)) {
    f.is_nar = true;
    return f;
  }

  f.sign = static_cast<int>((code >> (cfg.n - 1)) & 1U);
  std::uint32_t mag = code;
  if (f.sign != 0) mag = (~code + 1U) & mask;  // two's complement magnitude

  const int body = cfg.n - 1;  // bits after the sign
  // Scan the regime: run of identical bits, capped at min(rs, body).
  const int cap = cfg.max_run();
  const int first = static_cast<int>((mag >> (body - 1)) & 1U);
  int m = 1;
  while (m < cap && m < body &&
         static_cast<int>((mag >> (body - 1 - m)) & 1U) == first) {
    ++m;
  }
  f.run = m;
  f.k = (first == 1) ? m - 1 : -m;
  // A terminator bit follows iff the run stopped before both the cap and
  // the end of the word.
  f.regime_consumed = (m < cap && m < body) ? m + 1 : m;

  f.tail_len = body - f.regime_consumed;
  f.tail_bits = (f.tail_len > 0)
                    ? (mag & ((1U << f.tail_len) - 1U))
                    : 0U;
  // ulfx = B * 2^(es - tail_len): es-bit exponent MSB-aligned, remaining
  // bits are the log-domain fraction.
  f.ulfx = std::ldexp(static_cast<double>(f.tail_bits), cfg.es - f.tail_len);
  f.scale = std::ldexp(static_cast<double>(f.k), cfg.es) + f.ulfx - cfg.sf;
  return f;
}

double decode_value(std::uint32_t code, const LPConfig& cfg) {
  const LPFields f = decode_fields(code, cfg);
  if (f.is_zero) return 0.0;
  if (f.is_nar) return std::numeric_limits<double>::quiet_NaN();
  const double mag = std::exp2(f.scale);
  return f.sign != 0 ? -mag : mag;
}

std::uint32_t encode_log_rounded(double v, const LPConfig& cfg) {
  cfg.validate();
  if (v == 0.0) return 0U;
  if (!std::isfinite(v)) return nar_code(cfg);

  const std::uint32_t mask = (1U << cfg.n) - 1U;
  const int body = cfg.n - 1;
  const bool neg = v < 0.0;
  // Target total exponent (before regime/ulfx split).
  const double t = std::log2(std::fabs(v)) + cfg.sf;
  const double step = std::exp2(cfg.es);  // exponent span per regime step

  int k = static_cast<int>(std::floor(t / step));
  double ulfx = t - static_cast<double>(k) * step;  // in [0, step)

  const int kmin = cfg.min_k();
  const int kmax = cfg.max_k();

  auto tail_len_for = [&](int kk) {
    const int m = (kk >= 0) ? kk + 1 : -kk;
    const int cap = cfg.max_run();
    const int consumed = (m < cap && m < body) ? m + 1 : m;
    return body - consumed;
  };

  // Saturate out-of-range exponents at the largest/smallest magnitude.
  if (k < kmin || (k == kmin && ulfx == 0.0 && t < kmin * step)) {
    // below minimum positive: round to min positive (posit convention:
    // no underflow to zero for nonzero input)
    k = kmin;
    ulfx = 0.0;
  }
  if (k > kmax) {
    k = kmax;
    ulfx = step;  // will clamp to the largest tail below
  }

  // Round ulfx at the granularity available in this regime.
  std::uint32_t tail = 0;
  for (;;) {
    const int tl = tail_len_for(k);
    // B = round(ulfx * 2^(tl - es)); max B is 2^tl - 1.
    const double scaled = std::ldexp(ulfx, tl - cfg.es);
    double rounded = std::nearbyint(scaled);
    if (rounded < 0.0) rounded = 0.0;
    const double limit = std::ldexp(1.0, tl);  // 2^tl
    if (rounded >= limit) {
      if (k < kmax) {
        ++k;          // carry into the next regime
        ulfx = 0.0;
        continue;
      }
      rounded = limit - 1.0;  // saturate at max magnitude
    }
    tail = static_cast<std::uint32_t>(rounded);
    break;
  }

  // Assemble: regime run + optional terminator + tail.
  const int m = (k >= 0) ? k + 1 : -k;
  const int cap = cfg.max_run();
  const int first = (k >= 0) ? 1 : 0;
  const bool has_term = (m < cap && m < body);
  const int consumed = has_term ? m + 1 : m;
  const int tl = body - consumed;

  std::uint32_t mag = 0;
  if (first == 1) mag = ((1U << m) - 1U);  // run of ones
  // run of zeros contributes nothing
  if (has_term) {
    mag = (mag << 1) | static_cast<std::uint32_t>(first == 1 ? 0 : 1);
  }
  mag = (mag << tl) | (tail & ((tl > 0) ? ((1U << tl) - 1U) : 0U));
  LP_DCHECK(mag < (1U << body) || body == 0);
  // mag == 0 would collide with the zero code; the smallest magnitude has
  // at least the regime pattern, which is nonzero for first==1 or has a
  // terminator for first==0 unless the run fills the body.  A full-body
  // run of zeros *is* pattern 0 — bump it to the smallest nonzero code.
  if (mag == 0) mag = 1;

  std::uint32_t code = mag;
  if (neg) code = (~code + 1U) & mask;
  return code & mask;
}

CodeTable::CodeTable(const LPConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  const std::uint32_t count = cfg_.code_count();
  std::vector<std::pair<double, std::uint32_t>> entries;
  entries.reserve(count - 1);
  decode_f_.resize(count, std::numeric_limits<float>::quiet_NaN());
  for (std::uint32_t c = 0; c < count; ++c) {
    if (c == nar_code(cfg_)) continue;
    const double v = decode_value(c, cfg_);
    decode_f_[c] = static_cast<float>(v);
    entries.emplace_back(v, c);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  values_.reserve(entries.size());
  codes_.reserve(entries.size());
  for (const auto& [v, c] : entries) {
    values_.push_back(v);
    codes_.push_back(c);
  }
  index_ = QuantIndex(values_);
}

void CodeTable::encode_batch(std::span<const float> xs,
                             std::span<std::uint32_t> out) const {
  index_.nearest_indices(xs, out);
  for (std::uint32_t& idx : out) {
    idx = (idx == QuantIndex::kInvalid) ? nar_code(cfg_) : codes_[idx];
  }
}

void CodeTable::decode_batch(std::span<const std::uint32_t> codes,
                             std::span<float> out) const {
  LP_CHECK(codes.size() == out.size());
  const std::uint32_t mask = cfg_.code_count() - 1U;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = decode_f_[codes[i] & mask];
  }
}

double CodeTable::min_positive() const {
  const auto it = std::upper_bound(values_.begin(), values_.end(), 0.0);
  LP_ASSERT(it != values_.end());
  return *it;
}

std::size_t CodeTable::nearest_index(double v) const {
  // Shared nearest-value rule (ties toward zero) — the same helper the
  // QuantIndex boundary builder resolves against, so the batched and SIMD
  // paths cannot drift from this one.
  return quant::nearest_index(values_, v);
}

double CodeTable::quantize(double v) const {
  if (!std::isfinite(v)) return std::numeric_limits<double>::quiet_NaN();
  if (v == 0.0) return 0.0;
  return values_[nearest_index(v)];
}

std::uint32_t CodeTable::quantize_code(double v) const {
  if (!std::isfinite(v)) return nar_code(cfg_);
  if (v == 0.0) return 0U;
  return codes_[nearest_index(v)];
}

}  // namespace lp
