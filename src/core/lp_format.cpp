#include "core/lp_format.h"

#include <iomanip>
#include <sstream>

namespace lp {

std::string LPFormat::name() const {
  const LPConfig& c = table_.config();
  std::ostringstream os;
  os << "LP<" << c.n << ',' << c.es << ',' << c.rs << ",sf=" << std::setprecision(3)
     << c.sf << '>';
  return os.str();
}

}  // namespace lp
