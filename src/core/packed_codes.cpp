#include "core/packed_codes.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/number_format.h"
#include "core/quant_index.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace lp {

std::shared_ptr<const DecodeTable> build_decode_table(const NumberFormat& fmt) {
  if (!fmt.quantize_codes_batch({}, {})) return nullptr;  // no code path
  std::vector<float> table = fmt.decode_table();
  if (table.empty() || table.size() > PackedCodes::kMaxLutSize) return nullptr;
  return std::make_shared<const DecodeTable>(std::move(table));
}

std::int64_t lut_zero_code(const DecodeTable& lut) {
  for (std::size_t i = 0; i < lut.size(); ++i) {
    // Exact +0.0f only: -0.0f decodes to a different bit pattern than the
    // 0.0f the float im2col pads with.
    if (lut[i] == 0.0F && !std::signbit(lut[i])) {
      return static_cast<std::int64_t>(i);
    }
  }
  return -1;
}

PackedCodes PackedCodes::from_codes(std::vector<std::uint8_t> data,
                                    std::vector<std::int64_t> shape, int bits,
                                    std::shared_ptr<const DecodeTable> lut) {
  std::int64_t numel = 1;
  for (const std::int64_t d : shape) numel *= d;
  LP_CHECK_MSG(data.size() == stream_bytes(numel, bits),
               "code-stream size mismatch: " << data.size() << " bytes for "
                                             << numel << " elements at "
                                             << bits << " bits");
  LP_CHECK(lut != nullptr && !lut->empty());
  PackedCodes out;
  out.shape_ = std::move(shape);
  out.numel_ = numel;
  out.bits_ = bits;
  out.data_ = std::move(data);
  out.lut_ = std::move(lut);
  return out;
}

void PackedCodes::reshape(std::vector<std::int64_t> shape) {
  std::int64_t numel = 1;
  for (const std::int64_t d : shape) numel *= d;
  LP_CHECK_MSG(numel == numel_, "packed-code reshape numel mismatch: "
                                    << numel << " vs " << numel_);
  shape_ = std::move(shape);
}

void PackedCodes::decode(std::span<float> out) const {
  LP_CHECK(static_cast<std::int64_t>(out.size()) == numel_);
  const kernels::PackedCodesView v = view();
  float* dst = out.data();
  parallel_for(default_pool(), 0, numel_, 1 << 15,
               [&](std::int64_t e0, std::int64_t e1, std::int64_t) {
                 for (std::int64_t e = e0; e < e1; ++e) {
                   dst[e] = kernels::packed_decode_at(v, e);
                 }
               });
}

std::optional<PackedCodes> PackedCodes::pack(
    std::span<const float> data, std::vector<std::int64_t> shape,
    const NumberFormat& fmt, std::shared_ptr<const DecodeTable> lut,
    int min_bits) {
  if (lut == nullptr || lut->empty() || lut->size() > kMaxLutSize) {
    return std::nullopt;
  }
  if (!fmt.quantize_codes_batch({}, {})) return std::nullopt;
  std::int64_t numel = 1;
  for (const std::int64_t d : shape) numel *= d;
  LP_CHECK_MSG(numel == static_cast<std::int64_t>(data.size()),
               "packed-code shape/data mismatch: " << numel << " vs "
                                                   << data.size());

  // Nearest-value indices, chunk-parallel (fixed boundaries, disjoint
  // writes — identical for any pool size).  A non-finite element makes the
  // tensor unpackable: the float path quantizes it to NaN, which no code
  // index can represent.
  const std::size_t n = data.size();
  std::vector<std::uint32_t> idx(n);
  std::atomic<bool> packable{true};
  const std::uint32_t lut_size = static_cast<std::uint32_t>(lut->size());
  constexpr std::size_t kChunk = QuantIndex::kQuantChunk;
  ThreadPool& pool = default_pool();
  const std::int64_t chunks =
      static_cast<std::int64_t>((n + kChunk - 1) / kChunk);
  pool.run_chunks(chunks, [&](std::int64_t c) {
    const std::size_t begin = static_cast<std::size_t>(c) * kChunk;
    const std::size_t len = std::min(kChunk, n - begin);
    const std::span<std::uint32_t> out(idx.data() + begin, len);
    (void)fmt.quantize_codes_batch(data.subspan(begin, len), out);
    for (const std::uint32_t v : out) {
      if (v >= lut_size) {
        packable.store(false, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (!packable.load(std::memory_order_relaxed)) return std::nullopt;

  PackedCodes out;
  out.shape_ = std::move(shape);
  out.numel_ = numel;
  out.bits_ = bits_for(lut_size, min_bits);
  out.lut_ = std::move(lut);
  const std::size_t bytes = stream_bytes(numel, out.bits_);
  out.data_.assign(bytes, 0);
  std::uint8_t* dst = out.data_.data();
  // Pack over disjoint byte ranges (a 4-bit byte covers elements 2b and
  // 2b+1, so byte-granular chunks never share an element).
  parallel_for(pool, 0, static_cast<std::int64_t>(bytes), 1 << 16,
               [&](std::int64_t b0, std::int64_t b1, std::int64_t) {
                 switch (out.bits_) {
                   case 4:
                     for (std::int64_t b = b0; b < b1; ++b) {
                       const std::size_t e = static_cast<std::size_t>(b) * 2;
                       std::uint32_t byte = idx[e] & 0xFU;
                       if (e + 1 < n) byte |= (idx[e + 1] & 0xFU) << 4;
                       dst[b] = static_cast<std::uint8_t>(byte);
                     }
                     break;
                   case 8:
                     for (std::int64_t b = b0; b < b1; ++b) {
                       dst[b] = static_cast<std::uint8_t>(
                           idx[static_cast<std::size_t>(b)]);
                     }
                     break;
                   default:
                     for (std::int64_t b = b0; b < b1; ++b) {
                       const std::size_t e = static_cast<std::size_t>(b) / 2;
                       dst[b] = static_cast<std::uint8_t>(
                           (b & 1) != 0 ? idx[e] >> 8 : idx[e] & 0xFFU);
                     }
                     break;
                 }
               });
  return out;
}

}  // namespace lp
