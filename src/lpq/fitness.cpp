#include "lpq/fitness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/stats.h"

namespace lp::lpq {
namespace {

void l2_normalize(std::vector<float>& r) {
  double nrm = 0.0;
  for (float v : r) nrm += static_cast<double>(v) * v;
  nrm = std::sqrt(nrm);
  if (nrm > 1e-12) {
    for (float& v : r) v = static_cast<float>(v / nrm);
  }
}

/// Global-local per-sample representation: the concatenation of the
/// (separately L2-normalized) Kurtosis-3 layer profile — the *local* part —
/// and the final logits — the *global* part — renormalized to unit length.
/// Without the global part the kurtosis profiles of different samples are
/// nearly collinear and the contrastive loss cannot tell candidates apart.
std::vector<std::vector<float>> sample_vectors(
    const std::vector<std::vector<float>>& pooled, const Tensor& logits) {
  LP_CHECK(!pooled.empty());
  LP_CHECK(logits.rank() == 2);
  const std::size_t layers = pooled.size();
  const std::size_t batch = pooled[0].size();
  LP_CHECK(static_cast<std::size_t>(logits.dim(0)) == batch);
  const std::size_t classes = static_cast<std::size_t>(logits.dim(1));

  std::vector<std::vector<float>> rows(batch);
  for (std::size_t p = 0; p < batch; ++p) {
    std::vector<float> local(layers);
    for (std::size_t l = 0; l < layers; ++l) {
      LP_CHECK(pooled[l].size() == batch);
      local[l] = pooled[l][p];
    }
    l2_normalize(local);
    std::vector<float> global(classes);
    for (std::size_t j = 0; j < classes; ++j) {
      global[j] = logits[static_cast<std::int64_t>(p * classes + j)];
    }
    l2_normalize(global);
    std::vector<float> row;
    row.reserve(layers + classes);
    row.insert(row.end(), local.begin(), local.end());
    row.insert(row.end(), global.begin(), global.end());
    l2_normalize(row);
    rows[p] = std::move(row);
  }
  return rows;
}

/// Paper Eq. 6, averaged over calibration samples:
/// LCO = mean_p log(1 + exp(-<q_p, f_p>/tau) * sum_{p'!=p} exp(<q_p, f_p'>/tau))
double contrastive_loss(const std::vector<std::vector<float>>& q_rows,
                        const std::vector<std::vector<float>>& f_rows,
                        double tau) {
  LP_CHECK(q_rows.size() == f_rows.size());
  LP_CHECK(tau > 0.0);
  const std::size_t batch = q_rows.size();
  if (batch < 2) return 0.0;
  double total = 0.0;
  for (std::size_t p = 0; p < batch; ++p) {
    const double pos = dot(q_rows[p], f_rows[p]);
    // log-sum-exp over negatives for stability.
    double max_neg = -1e30;
    std::vector<double> negs;
    negs.reserve(batch - 1);
    for (std::size_t j = 0; j < batch; ++j) {
      if (j == p) continue;
      const double v = dot(q_rows[p], f_rows[j]) / tau;
      negs.push_back(v);
      max_neg = std::max(max_neg, v);
    }
    double sum = 0.0;
    for (double v : negs) sum += std::exp(v - max_neg);
    // log(1 + e^{-pos/tau} * e^{max_neg} * sum) computed stably:
    const double log_term = -pos / tau + max_neg + std::log(sum);
    total += (log_term > 30.0) ? log_term : std::log1p(std::exp(log_term));
  }
  return total / static_cast<double>(batch);
}

/// Per-sample vectors over classes from logits (L2-normalized rows).
std::vector<std::vector<float>> logit_vectors(const Tensor& logits) {
  LP_CHECK(logits.rank() == 2);
  const std::size_t b = static_cast<std::size_t>(logits.dim(0));
  const std::size_t d = static_cast<std::size_t>(logits.dim(1));
  std::vector<std::vector<float>> rows(b, std::vector<float>(d));
  for (std::size_t p = 0; p < b; ++p) {
    double nrm = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const float v = logits[static_cast<std::int64_t>(p * d + j)];
      rows[p][j] = v;
      nrm += static_cast<double>(v) * v;
    }
    nrm = std::sqrt(nrm);
    if (nrm > 1e-12) {
      for (float& v : rows[p]) v = static_cast<float>(v / nrm);
    }
  }
  return rows;
}

double mse_loss(const Tensor& q, const Tensor& f) {
  const double r = rmse(q.data(), f.data());
  return r * r;
}

/// Mean over samples of KL(softmax_fp || softmax_q).
double kl_loss(const Tensor& q_logits, const Tensor& f_logits) {
  LP_CHECK(q_logits.shape() == f_logits.shape());
  const Tensor pq = softmax_lastdim(q_logits);
  const Tensor pf = softmax_lastdim(f_logits);
  const std::int64_t b = pq.dim(0);
  const std::int64_t d = pq.dim(1);
  double total = 0.0;
  for (std::int64_t p = 0; p < b; ++p) {
    for (std::int64_t j = 0; j < d; ++j) {
      const double fp = std::max(static_cast<double>(pf[p * d + j]), 1e-12);
      const double qp = std::max(static_cast<double>(pq[p * d + j]), 1e-12);
      total += fp * std::log(fp / qp);
    }
  }
  return total / static_cast<double>(b);
}

}  // namespace

std::vector<LPConfig> act_configs(const nn::Model& model, const Candidate& cand,
                                  ActSfMode mode,
                                  const std::vector<double>& act_scale_centers) {
  LP_CHECK(cand.layers.size() == model.num_slots());
  // Map each slot to its weighted-node index (for act scale centers).
  const std::vector<int> slot_node = model.slot_node_map();

  std::vector<LPConfig> out;
  out.reserve(cand.layers.size());
  double chained_sf = 0.0;
  for (std::size_t s = 0; s < cand.layers.size(); ++s) {
    const LPConfig& w = cand.layers[s];
    double act_sf;
    if (mode == ActSfMode::kChained) {
      chained_sf += w.sf;
      act_sf = chained_sf;
    } else {
      LP_CHECK(slot_node[s] < static_cast<int>(act_scale_centers.size()));
      act_sf = act_scale_centers[static_cast<std::size_t>(slot_node[s])];
    }
    LPConfig a = activation_config(w, 0.0);
    a.sf = act_sf;
    out.push_back(a);
  }
  return out;
}

OwnedQuantSpec build_quant_spec(const nn::Model& model, const Candidate& cand,
                                ActSfMode mode,
                                const std::vector<double>& act_scale_centers) {
  const std::vector<LPConfig> acts =
      act_configs(model, cand, mode, act_scale_centers);
  OwnedQuantSpec out;
  out.spec.resize(model.num_slots());
  for (std::size_t s = 0; s < cand.layers.size(); ++s) {
    out.storage.push_back(std::make_unique<LPFormat>(cand.layers[s]));
    out.spec.weight_fmt[s] = out.storage.back().get();
    out.storage.push_back(std::make_unique<LPFormat>(acts[s]));
    out.spec.act_fmt[s] = out.storage.back().get();
  }
  return out;
}

FpReference compute_fp_reference(const nn::Model& model,
                                 const Tensor& calibration) {
  FpReference ref;
  const auto fwd = model.forward(calibration, /*capture_pooled=*/true);
  ref.logits = fwd.logits;
  ref.pooled = fwd.pooled;
  const auto scales = model.measure_act_scales(calibration);
  ref.act_scale_centers.reserve(scales.size());
  for (float s : scales) {
    ref.act_scale_centers.push_back(s > 0.0F ? -std::log2(static_cast<double>(s))
                                             : 0.0);
  }
  ref.fp_weight_bits = model.weight_param_count() * 32;
  return ref;
}

double representation_loss(const nn::ForwardResult& quantized,
                           const FpReference& ref, const FitnessOptions& opts) {
  switch (opts.kind) {
    case FitnessKind::kGlobalLocalContrastive: {
      const auto q = sample_vectors(quantized.pooled, quantized.logits);
      const auto f = sample_vectors(ref.pooled, ref.logits);
      return contrastive_loss(q, f, opts.tau);
    }
    case FitnessKind::kGlobalContrastive: {
      const auto q = logit_vectors(quantized.logits);
      const auto f = logit_vectors(ref.logits);
      return contrastive_loss(q, f, opts.tau);
    }
    case FitnessKind::kMse:
      return mse_loss(quantized.logits, ref.logits);
    case FitnessKind::kKlDivergence:
      return kl_loss(quantized.logits, ref.logits);
  }
  // Direct throw (not LP_ASSERT) so -O0 builds see the function never
  // falls off the end.
  throw std::logic_error("unreachable fitness kind");
}

double hw_cost_ratio(const nn::Model& model, const Candidate& cand,
                     const FitnessOptions& opts) {
  if (opts.accel == nullptr || opts.workloads == nullptr ||
      opts.workloads->empty() || opts.mu <= 0.0) {
    return 1.0;
  }
  const std::size_t n = model.num_slots();
  LP_CHECK(cand.layers.size() == n);
  sim::PrecisionMap pm;
  pm.weight_bits.resize(n);
  pm.act_bits.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    pm.weight_bits[s] = cand.layers[s].n;
    // The width the slot's activation codes take (sf does not affect it).
    pm.act_bits[s] = activation_config(cand.layers[s], 0.0).n;
  }
  auto dram_total = [](const sim::SimResult& r) {
    double total = 0.0;
    for (const auto& ls : r.layers) total += ls.dram_bytes;
    return total;
  };
  const double cand_bytes =
      dram_total(sim::simulate(*opts.accel, *opts.workloads, pm));
  const double base_bytes = dram_total(sim::simulate(
      *opts.accel, *opts.workloads, sim::PrecisionMap::uniform(n, 8, 8)));
  LP_CHECK(base_bytes > 0.0);
  return cand_bytes / base_bytes;
}

double compression_ratio(const nn::Model& model, const Candidate& cand,
                         const FpReference& ref) {
  LP_CHECK(ref.fp_weight_bits > 0);
  return static_cast<double>(total_weight_bits(model, cand)) /
         static_cast<double>(ref.fp_weight_bits);
}

double evaluate_fitness(const nn::Model& model, const Candidate& cand,
                        const Tensor& calibration, const FpReference& ref,
                        const FitnessOptions& opts) {
  const OwnedQuantSpec owned =
      build_quant_spec(model, cand, opts.act_sf, ref.act_scale_centers);
  const bool need_pooled = opts.kind == FitnessKind::kGlobalLocalContrastive;
  const auto fwd = model.forward_quantized(calibration, owned.spec, need_pooled);
  const double loss = representation_loss(fwd, ref, opts);
  const double lcr = compression_ratio(model, cand, ref);
  // Lower is better for both terms.  The loss can be ~0 at high precision;
  // add a floor so LCR still differentiates candidates there.
  return (loss + 1e-6) * std::pow(lcr, opts.lambda) *
         std::pow(hw_cost_ratio(model, cand, opts), opts.mu);
}

double evaluate_fitness_prepared(const runtime::QuantizedModel& prepared,
                                 const nn::Model& model, const Candidate& cand,
                                 const Tensor& calibration,
                                 const FpReference& ref,
                                 const FitnessOptions& opts) {
  const bool need_pooled = opts.kind == FitnessKind::kGlobalLocalContrastive;
  const auto fwd = prepared.run(calibration, need_pooled);
  const double loss = representation_loss(fwd, ref, opts);
  const double lcr = compression_ratio(model, cand, ref);
  // Same objective as evaluate_fitness (see comment there).
  return (loss + 1e-6) * std::pow(lcr, opts.lambda) *
         std::pow(hw_cost_ratio(model, cand, opts), opts.mu);
}

}  // namespace lp::lpq
