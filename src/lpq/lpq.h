// LPQ — the genetic-algorithm post-training-quantization framework
// (paper Section 4, Fig. 2):
//
//   Step 1  Candidate initialization: K random per-layer <n,es,rs,sf>
//           vectors, fitness pre-computed.
//   Step 2  Re-generation: the two fittest candidates parent a child;
//           only the current *block* of layers is regenerated (Eqs. 2-5),
//           the rest copies the best parent.
//   Step 3  Diversity-promoting selection: the child is crossed with
//           several fresh random parents to produce diverse children.
//   Step 4  Evaluation & population update: the child and the best
//           diverse child join the population (truncated back to K).
//
// The search makes P passes over all blocks, iterating each block C times,
// so the population is updated P * C * num_blocks times.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "lpq/candidate.h"
#include "lpq/fitness.h"
#include "runtime/session.h"
#include "util/thread_pool.h"

namespace lp::lpq {

struct LpqParams {
  int population = 20;        ///< K
  int passes = 10;            ///< P
  int cycles = 4;             ///< C
  int block_size = 4;         ///< B (layers per block, kBySize mode)
  /// kBySize chunks slots into blocks of block_size (CNNs); kByBlockId
  /// groups by WeightSlot::block_id (one attention block for ViTs).
  enum class BlockMode { kBySize, kByBlockId } block_mode = BlockMode::kBySize;
  int diversity_children = 5; ///< random parents in Step 3
  /// Seed the initial population with uniform 8/6/4-bit anchor candidates
  /// (sf at each layer's magnitude center).  Purely an initialization aid:
  /// it guarantees small search budgets start from sane parents instead of
  /// relying on random draws to land near them.
  bool seed_anchors = true;
  SearchSpace space;
  FitnessOptions fitness;
  std::uint64_t seed = 2024;
  /// Candidate-evaluation parallelism: 0 = evaluate on the shared default
  /// pool (sized by the LP_THREADS env var / hardware_concurrency); > 0 =
  /// use a dedicated pool of this size for the candidate loop.  Tensor ops
  /// nested inside each evaluation always use the shared default pool, so
  /// to make a whole search serial set LP_THREADS=1 (or
  /// set_default_pool_threads(1)) as well.  The result is bit-identical for
  /// every combination.
  int threads = 0;
};

struct IterationStat {
  int iteration = 0;
  double best_fitness = 0.0;
  double best_avg_weight_bits = 0.0;
};

struct LpqResult {
  Candidate best;
  std::vector<IterationStat> history;
};

class LpqEngine {
 public:
  /// The model must outlive the engine.  `calibration` is the unlabeled
  /// calibration batch ([N, C, H, W]).
  LpqEngine(const nn::Model& model, Tensor calibration, LpqParams params);

  /// Invoked after every population update with the running best.
  using Callback = std::function<void(const IterationStat&, const Candidate&)>;

  /// Run the full search.
  [[nodiscard]] LpqResult run(const Callback& callback = {});

  /// Quantization spec for a candidate (activation configs included).
  [[nodiscard]] OwnedQuantSpec make_spec(const Candidate& cand) const;

  [[nodiscard]] const FpReference& reference() const { return ref_; }
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& blocks() const {
    return blocks_;
  }

  /// The runtime session backing fitness evaluation.  Its weight-code
  /// cache is what lets a generation skip re-quantizing layers whose
  /// format genes did not change; stats() exposes the hit/miss counters.
  [[nodiscard]] const runtime::InferenceSession& session() const {
    return session_;
  }

 private:
  [[nodiscard]] Candidate random_candidate(Rng& rng) const;
  void evaluate_batch(std::vector<Candidate*>& todo);
  void sort_population();

  const nn::Model& model_;
  Tensor calibration_;
  LpqParams params_;
  FpReference ref_;
  std::vector<double> sf_centers_;
  std::vector<std::vector<std::size_t>> blocks_;
  std::vector<Candidate> population_;
  /// The engine's only RNG.  Every draw — initialization, Step 2
  /// re-generation, Step 3 diversity children — happens on the caller's
  /// thread in population/block/cycle order; the parallel phase
  /// (evaluate_batch) draws nothing.  That draw-order discipline is what
  /// makes a search deterministic for a fixed seed regardless of
  /// LP_THREADS (pinned by tests/test_parallel.cpp).
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;  ///< only when params.threads > 0
  runtime::InferenceSession session_; ///< format + weight-code caches
};

/// Headline statistics of a quantization candidate.
struct QuantStats {
  double avg_weight_bits = 0.0;  ///< parameter-weighted
  double avg_act_bits = 0.0;     ///< mean over layers
  double size_mb = 0.0;          ///< quantized weight storage
  double fp_size_mb = 0.0;
  double compression = 0.0;      ///< fp_size / size
};

[[nodiscard]] QuantStats candidate_stats(const nn::Model& model,
                                         const Candidate& cand);

}  // namespace lp::lpq
