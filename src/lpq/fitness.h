// LPQ fitness functions (paper Section 4.1).
//
// The paper's objective is LF = LCO * LCR^lambda where LCO is a
// global-local contrastive loss over Kurtosis-3-pooled intermediate
// representations (Eq. 6) and LCR penalizes total weight bits.  The three
// alternative objectives (MSE, KL divergence, global-only contrastive) are
// implemented for the Fig. 5(a) convergence comparison.
#pragma once

#include <memory>
#include <vector>

#include "core/lp_format.h"
#include "lpq/candidate.h"
#include "nn/model.h"
#include "runtime/quantized_model.h"
#include "sim/simulator.h"

namespace lp::lpq {

enum class FitnessKind {
  kGlobalLocalContrastive,  ///< paper default (Eq. 6 over all layers)
  kGlobalContrastive,       ///< Evol-Q style: final output only
  kMse,                     ///< MSE between quantized and FP logits
  kKlDivergence,            ///< KL(softmax_fp || softmax_q), per sample
};

/// How activation scale factors are derived (see DESIGN.md):
/// kCalibrated measures -log2(mean|act|) on calibration data (what the
/// PPU computes at runtime); kChained follows the paper's static rule
/// sf_act^l = sf_act^{l-1} + sf_w^l.
enum class ActSfMode { kCalibrated, kChained };

/// A QuantSpec plus the format objects it points into.
struct OwnedQuantSpec {
  nn::QuantSpec spec;
  std::vector<std::unique_ptr<NumberFormat>> storage;
};

/// Build weight+activation formats for a candidate.  `act_scale_centers`
/// holds -log2(mean|act|) per weighted node (from
/// Model::measure_act_scales), used when mode == kCalibrated.
[[nodiscard]] OwnedQuantSpec build_quant_spec(
    const nn::Model& model, const Candidate& cand, ActSfMode mode,
    const std::vector<double>& act_scale_centers);

/// Per-slot activation configs for a candidate — the config list
/// build_quant_spec instantiates, exposed separately so the runtime
/// session can intern formats instead of rebuilding them per evaluation.
[[nodiscard]] std::vector<LPConfig> act_configs(
    const nn::Model& model, const Candidate& cand, ActSfMode mode,
    const std::vector<double>& act_scale_centers);

/// FP reference statistics computed once per LPQ run.
struct FpReference {
  Tensor logits;                              ///< [B, classes]
  std::vector<std::vector<float>> pooled;     ///< [node][sample]
  std::vector<double> act_scale_centers;      ///< per weighted node
  std::int64_t fp_weight_bits = 0;            ///< 32 * params
};

[[nodiscard]] FpReference compute_fp_reference(const nn::Model& model,
                                               const Tensor& calibration);

struct FitnessOptions {
  FitnessKind kind = FitnessKind::kGlobalLocalContrastive;
  ActSfMode act_sf = ActSfMode::kCalibrated;
  double lambda = 0.4;  ///< compression exponent in LF = L * LCR^lambda
  double tau = 0.1;     ///< contrastive temperature
  /// Optional hardware-cost term.  When `accel` and `workloads` are both
  /// set and mu > 0, the fitness is additionally multiplied by
  /// (dram_bytes(cand) / dram_bytes(uniform 8w/8a))^mu, where dram bytes
  /// come from sim::simulate at the candidate's per-slot weight widths and
  /// the activation widths its chained activation formats take.  Because
  /// the simulator charges activation traffic at true code width, this
  /// steers the search toward narrow activation codes, not just narrow
  /// weights.  Both pointers must outlive evaluation.
  const lpa::AcceleratorModel* accel = nullptr;
  const std::vector<nn::LayerWorkload>* workloads = nullptr;
  double mu = 0.0;  ///< hw-cost exponent; 0 disables the term
};

/// DRAM-traffic ratio of `cand` vs the uniform 8-bit baseline on the
/// options' accelerator/workloads (1.0 when the hw-cost term is disabled).
[[nodiscard]] double hw_cost_ratio(const nn::Model& model,
                                   const Candidate& cand,
                                   const FitnessOptions& opts);

/// Representation loss L (before the compression term) between a quantized
/// run and the FP reference.
[[nodiscard]] double representation_loss(
    const nn::ForwardResult& quantized, const FpReference& ref,
    const FitnessOptions& opts);

/// Compression ratio LCR in (0, 1]: candidate weight bits / FP weight bits.
[[nodiscard]] double compression_ratio(const nn::Model& model,
                                       const Candidate& cand,
                                       const FpReference& ref);

/// Full fitness LF = L * LCR^lambda (lower is better).  Runs the quantized
/// forward on `calibration`.  This is the uncached reference path: it
/// rebuilds both format tables and re-quantizes every layer's weights per
/// call.  The engine evaluates through evaluate_fitness_prepared instead,
/// which is bit-identical (tests/test_runtime.cpp pins it).
[[nodiscard]] double evaluate_fitness(const nn::Model& model,
                                      const Candidate& cand,
                                      const Tensor& calibration,
                                      const FpReference& ref,
                                      const FitnessOptions& opts);

/// Fitness of a candidate whose formats/weights were pre-quantized into a
/// runtime snapshot (see runtime::InferenceSession::prepare_all).  `cand`
/// supplies the layer widths for the compression term; `prepared` must be
/// the snapshot of exactly this candidate.
[[nodiscard]] double evaluate_fitness_prepared(
    const runtime::QuantizedModel& prepared, const nn::Model& model,
    const Candidate& cand, const Tensor& calibration, const FpReference& ref,
    const FitnessOptions& opts);

}  // namespace lp::lpq
