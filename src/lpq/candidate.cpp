#include "lpq/candidate.h"

#include <algorithm>
#include <cmath>

#include "core/lp_format.h"
#include "util/stats.h"

namespace lp::lpq {
namespace {

/// Snap to the nearest of {2, 4, 8}.
int snap_pow2(int n) {
  if (n <= 2) return 2;
  if (n <= 5) return 4;
  return 8;
}

}  // namespace

LPConfig SearchSpace::clamp(LPConfig c) const {
  c.n = std::clamp(c.n, n_min, n_max);
  if (power_of_two_n) c.n = snap_pow2(c.n);
  const int es_cap = c.n >= 3 ? c.n - 3 : 0;
  c.es = std::clamp(c.es, 0, es_cap);
  const int rs_lo = std::min(2, c.n - 1);
  c.rs = posit_like ? c.n - 1 : std::clamp(c.rs, rs_lo, c.n - 1);
  LP_ASSERT(c.valid());
  return c;
}

LPConfig SearchSpace::sample(Rng& rng, double sf_center) const {
  LPConfig c;
  c.n = rng.uniform_int(n_min, n_max);
  if (power_of_two_n) c.n = snap_pow2(c.n);
  const int es_cap = c.n >= 3 ? c.n - 3 : 0;
  c.es = rng.uniform_int(0, es_cap);
  const int rs_lo = std::min(2, c.n - 1);
  c.rs = rng.uniform_int(rs_lo, c.n - 1);
  c.sf = sf_center + rng.uniform(sf_init_lo, sf_init_hi);
  return clamp(c);
}

std::vector<double> sf_centers(const nn::Model& model) {
  std::vector<double> centers;
  centers.reserve(model.num_slots());
  for (const auto* slot : model.slot_list()) {
    const double m = mean_abs(slot->weight.data());
    centers.push_back(m > 0.0 ? -std::log2(m) : 0.0);
  }
  return centers;
}

LPConfig regenerate_layer(const LPConfig& p1, const LPConfig& p2,
                          const SearchSpace& space, Rng& rng) {
  LPConfig c;
  c.n = rng.uniform_int(std::min(p1.n, p2.n) - 1, std::max(p1.n, p2.n) + 1);
  c.es = rng.uniform_int(std::min(p1.es, p2.es) - 1, std::max(p1.es, p2.es) + 1);
  const int rs_hi =
      static_cast<int>(std::ceil(0.5 * (p1.rs + p2.rs))) + 1;
  c.rs = rng.uniform_int(0, rs_hi);
  c.sf = 0.5 * (p1.sf + p2.sf) + rng.uniform(-space.sf_radius, space.sf_radius);
  return space.clamp(c);
}

LPConfig rmse_optimal_config(std::span<const float> weights, int n,
                             const SearchSpace& space) {
  const double ma = mean_abs(weights);
  const double center = ma > 0.0 ? -std::log2(ma) : 0.0;
  LPConfig best = space.clamp(LPConfig{n, 1, std::max(1, n / 2), center});
  double best_err = 1e300;
  const int es_hi = n >= 3 ? std::min(2, n - 3) : 0;
  for (int es = 0; es <= es_hi; ++es) {
    for (const int rs : {2, n / 2, n - 1}) {
      for (const double dsf : {-2.0, -1.5, -1.0, -0.5, 0.0}) {
        const LPConfig cfg =
            space.clamp(LPConfig{n, es, std::max(1, rs), center + dsf});
        const LPFormat fmt(cfg);
        const double err = quantization_rmse(weights, fmt);
        if (err < best_err) {
          best_err = err;
          best = cfg;
        }
      }
    }
  }
  return best;
}

double avg_weight_bits(const nn::Model& model, const Candidate& cand) {
  LP_CHECK(cand.layers.size() == model.num_slots());
  double bits = 0.0;
  double params = 0.0;
  for (std::size_t s = 0; s < cand.layers.size(); ++s) {
    const auto p = static_cast<double>(model.slot_param_count(s));
    bits += p * cand.layers[s].n;
    params += p;
  }
  return params > 0.0 ? bits / params : 0.0;
}

std::int64_t total_weight_bits(const nn::Model& model, const Candidate& cand) {
  LP_CHECK(cand.layers.size() == model.num_slots());
  std::int64_t bits = 0;
  for (std::size_t s = 0; s < cand.layers.size(); ++s) {
    bits += model.slot_param_count(s) * cand.layers[s].n;
  }
  return bits;
}

}  // namespace lp::lpq
