#include "lpq/lpq.h"

#include <algorithm>

namespace lp::lpq {
namespace {

std::vector<std::vector<std::size_t>> make_blocks(const nn::Model& model,
                                                  const LpqParams& params) {
  std::vector<std::vector<std::size_t>> blocks;
  const std::size_t n = model.num_slots();
  if (params.block_mode == LpqParams::BlockMode::kByBlockId) {
    // Group consecutive slots sharing a block_id (attention blocks).
    int current_id = -1;
    for (std::size_t s = 0; s < n; ++s) {
      const int id = model.slot_list()[s]->block_id;
      if (blocks.empty() || id != current_id) {
        blocks.emplace_back();
        current_id = id;
      }
      blocks.back().push_back(s);
    }
  } else {
    LP_CHECK(params.block_size >= 1);
    for (std::size_t s = 0; s < n; s += static_cast<std::size_t>(params.block_size)) {
      std::vector<std::size_t> blk;
      for (std::size_t j = s;
           j < std::min(n, s + static_cast<std::size_t>(params.block_size)); ++j) {
        blk.push_back(j);
      }
      blocks.push_back(std::move(blk));
    }
  }
  LP_ASSERT(!blocks.empty());
  return blocks;
}

}  // namespace

LpqEngine::LpqEngine(const nn::Model& model, Tensor calibration, LpqParams params)
    : model_(model), calibration_(std::move(calibration)), params_(params),
      ref_(compute_fp_reference(model, calibration_)),
      sf_centers_(sf_centers(model)), blocks_(make_blocks(model, params)),
      rng_(params.seed),
      pool_(params.threads > 0 ? std::make_unique<ThreadPool>(params.threads)
                               : nullptr),
      session_(model) {
  LP_CHECK_MSG(params_.population >= 4, "population must be at least 4");
  LP_CHECK_MSG(calibration_.dim(0) >= 2,
               "contrastive fitness needs at least 2 calibration samples");
}

Candidate LpqEngine::random_candidate(Rng& rng) const {
  Candidate c;
  c.layers.reserve(model_.num_slots());
  for (std::size_t s = 0; s < model_.num_slots(); ++s) {
    c.layers.push_back(params_.space.sample(rng, sf_centers_[s]));
  }
  return c;
}

OwnedQuantSpec LpqEngine::make_spec(const Candidate& cand) const {
  return build_quant_spec(model_, cand, params_.fitness.act_sf,
                          ref_.act_scale_centers);
}

void LpqEngine::evaluate_batch(std::vector<Candidate*>& todo) {
  // Drop already-evaluated candidates (fitness caching, paper Step 1).
  std::vector<Candidate*> work;
  for (auto* c : todo) {
    if (!c->evaluated) work.push_back(c);
  }
  if (work.empty()) return;

  // Snapshot every candidate through the runtime session first: one serial
  // prepare pass quantizes only the (layer, format) pairs the weight-code
  // cache has never seen — children share most genes with the best parent,
  // so across a generation almost every layer is a cache hit.  The
  // snapshots are bit-identical to the uncached forward_quantized path.
  std::vector<std::vector<LPConfig>> weight_cfgs;
  std::vector<std::vector<LPConfig>> act_cfgs;
  weight_cfgs.reserve(work.size());
  act_cfgs.reserve(work.size());
  for (const Candidate* c : work) {
    weight_cfgs.push_back(c->layers);
    act_cfgs.push_back(act_configs(model_, *c, params_.fitness.act_sf,
                                   ref_.act_scale_centers));
  }
  const std::vector<runtime::QuantizedModel> prepared =
      session_.prepare_all(weight_cfgs, act_cfgs);

  // Each candidate writes only its own slot, so chunk claiming order cannot
  // affect results: threads=N is bit-identical to threads=1.  No RNG draws
  // happen here (see rng_ in lpq.h).
  ThreadPool& pool = pool_ ? *pool_ : default_pool();
  pool.run_chunks(static_cast<std::int64_t>(work.size()), [&](std::int64_t i) {
    Candidate* c = work[static_cast<std::size_t>(i)];
    c->fitness = evaluate_fitness_prepared(
        prepared[static_cast<std::size_t>(i)], model_, *c, calibration_, ref_,
        params_.fitness);
    c->evaluated = true;
  });
}

void LpqEngine::sort_population() {
  // stable_sort, not sort: candidates with exactly equal fitness (e.g.
  // duplicate children) keep their insertion order, which is itself
  // deterministic.  std::sort leaves tied order implementation-defined, so
  // parent selection and the truncation boundary could differ between
  // standard libraries (gcc vs clang CI legs) for the same seed.
  std::stable_sort(population_.begin(), population_.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.fitness < b.fitness;
                   });
}

LpqResult LpqEngine::run(const Callback& callback) {
  LpqResult result;

  // Step 1: candidate initialization.
  population_.clear();
  population_.reserve(static_cast<std::size_t>(params_.population));
  if (params_.seed_anchors) {
    for (const int n : {8, 6, 4}) {
      if (static_cast<int>(population_.size()) + 3 > params_.population) break;
      Candidate anchor;
      anchor.layers.reserve(model_.num_slots());
      for (std::size_t s = 0; s < model_.num_slots(); ++s) {
        anchor.layers.push_back(rmse_optimal_config(
            model_.slot_list()[s]->weight.data(), n, params_.space));
      }
      population_.push_back(std::move(anchor));
    }
  }
  while (static_cast<int>(population_.size()) < params_.population) {
    population_.push_back(random_candidate(rng_));
  }
  {
    std::vector<Candidate*> todo;
    for (auto& c : population_) todo.push_back(&c);
    evaluate_batch(todo);
  }
  sort_population();

  int iteration = 0;
  for (int pass = 0; pass < params_.passes; ++pass) {
    for (const auto& block : blocks_) {
      for (int cycle = 0; cycle < params_.cycles; ++cycle) {
        // Step 2: re-generation from the two fittest candidates.
        const Candidate& p1 = population_[0];
        const Candidate& p2 = population_[1];
        Candidate child;
        child.layers = p1.layers;  // non-block layers copy the best parent
        for (std::size_t l : block) {
          child.layers[l] =
              regenerate_layer(p1.layers[l], p2.layers[l], params_.space, rng_);
        }

        // Step 3: diversity-promoting children from fresh random parents.
        std::vector<Candidate> diverse;
        diverse.reserve(static_cast<std::size_t>(params_.diversity_children));
        for (int d = 0; d < params_.diversity_children; ++d) {
          const Candidate rp = random_candidate(rng_);
          Candidate dc;
          dc.layers = child.layers;
          for (std::size_t l : block) {
            dc.layers[l] =
                regenerate_layer(child.layers[l], rp.layers[l], params_.space,
                                 rng_);
          }
          diverse.push_back(std::move(dc));
        }

        // Step 4: evaluate all generated children, update the population.
        std::vector<Candidate*> todo{&child};
        for (auto& dc : diverse) todo.push_back(&dc);
        evaluate_batch(todo);

        population_.push_back(std::move(child));
        if (!diverse.empty()) {
          auto best_diverse = std::min_element(
              diverse.begin(), diverse.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.fitness < b.fitness;
              });
          population_.push_back(std::move(*best_diverse));
        }
        sort_population();
        population_.resize(static_cast<std::size_t>(params_.population));

        ++iteration;
        IterationStat stat;
        stat.iteration = iteration;
        stat.best_fitness = population_[0].fitness;
        stat.best_avg_weight_bits = avg_weight_bits(model_, population_[0]);
        result.history.push_back(stat);
        if (callback) callback(stat, population_[0]);
      }
    }
  }

  result.best = population_[0];
  return result;
}

QuantStats candidate_stats(const nn::Model& model, const Candidate& cand) {
  QuantStats st;
  st.avg_weight_bits = avg_weight_bits(model, cand);
  double act_bits = 0.0;
  for (const auto& w : cand.layers) {
    act_bits += activation_config(w, 0.0).n;
  }
  st.avg_act_bits = cand.layers.empty()
                        ? 0.0
                        : act_bits / static_cast<double>(cand.layers.size());
  const auto params = static_cast<double>(model.weight_param_count());
  st.size_mb = static_cast<double>(total_weight_bits(model, cand)) / 8.0 / 1e6;
  st.fp_size_mb = params * 4.0 / 1e6;
  st.compression = st.size_mb > 0.0 ? st.fp_size_mb / st.size_mb : 0.0;
  return st;
}

}  // namespace lp::lpq
