// LPQ candidate encoding (paper Section 4, Step 1): a quantization
// solution is a vector of per-layer LP parameter tuples
// Delta[l] = <n_l, es_l, rs_l, sf_l>, one per weight slot.
#pragma once

#include <vector>

#include "core/lp_config.h"
#include "nn/model.h"
#include "util/rng.h"

namespace lp::lpq {

/// Search-space constraints (paper: n in [2,8], es in [0,n-3],
/// rs in [2,n-1], sf in a ball around the layer's magnitude center).
struct SearchSpace {
  int n_min = 2;
  int n_max = 8;
  /// Hardware preset: restrict n to {2,4,8} so LPA's MODE-A/B/C bit
  /// packing applies (paper Section 5.1).
  bool power_of_two_n = false;
  /// Mutation radius for sf (Eq. 5's eta), in log2 units.  The paper's
  /// printed radius (1e-3) contains a typo (its own Eq. 5 uses +1e3 as the
  /// upper bound); 0.25 gives meaningful exploration.
  double sf_radius = 0.25;
  /// Initial-sampling window for sf relative to the layer center
  /// -log2(mean|w|).  Asymmetric: the RMSE-optimal peak position sits
  /// between the mean magnitude and the largest weights (lower sf), so
  /// initialization skews that way.
  double sf_init_lo = -2.5;
  double sf_init_hi = 0.5;
  /// Standard-posit ablation (Table 4, "Posit-2/4/8"): fixed tapering,
  /// i.e. the regime may always run the full word (rs forced to n-1).
  bool posit_like = false;

  /// Clamp a config into the space (n first, dependent fields after).
  [[nodiscard]] LPConfig clamp(LPConfig c) const;

  /// Uniformly sample a config; `sf_center` is the layer's magnitude
  /// center -log2(mean |w|).
  [[nodiscard]] LPConfig sample(Rng& rng, double sf_center) const;
};

struct Candidate {
  std::vector<LPConfig> layers;
  double fitness = 0.0;
  bool evaluated = false;
};

/// Per-layer sf centers: -log2(mean |w_l|) so the tapered region sits on
/// the layer's typical magnitude.
[[nodiscard]] std::vector<double> sf_centers(const nn::Model& model);

/// Paper Eqs. (2)-(5): regenerate one layer's parameters from two parents.
/// min/max +-1 for range-like fields (n, es), mean-based for shape (rs)
/// and position (sf).
[[nodiscard]] LPConfig regenerate_layer(const LPConfig& p1, const LPConfig& p2,
                                        const SearchSpace& space, Rng& rng);

/// RMSE-optimal LP parameters for one weight tensor at width `n`: a small
/// grid search over es, rs and the scale-factor offset.  Used to seed the
/// GA population with strong per-layer starting points (PTQ frameworks
/// conventionally initialize from the MSE-optimal quantizer).
[[nodiscard]] LPConfig rmse_optimal_config(std::span<const float> weights,
                                           int n, const SearchSpace& space);

/// Parameter-weighted average weight bit-width of a candidate.
[[nodiscard]] double avg_weight_bits(const nn::Model& model,
                                     const Candidate& cand);

/// Total weight storage in bits under the candidate's precisions.
[[nodiscard]] std::int64_t total_weight_bits(const nn::Model& model,
                                             const Candidate& cand);

}  // namespace lp::lpq
