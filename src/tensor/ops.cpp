#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "core/number_format.h"
#include "core/packed_codes.h"
#include "kernels/kernels.h"
#include "kernels/kernels_internal.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace lp {

void quantize_inplace(Tensor& t, const NumberFormat& fmt) {
  (void)fmt.quantize_batch(t.data());
}
namespace {

/// Work (in flops / elements) below which a parallel region is not worth
/// the scheduling round-trip.
constexpr std::int64_t kGemmSerialBelow = 1 << 16;
constexpr std::int64_t kRowsSerialBelow = 1 << 14;

/// Shared serial/parallel dispatch for row loops: run body(begin, end, chunk)
/// over [0, count) — inline when the estimated work is under `serial_below`,
/// else row-blocked on the default pool.  Only for loops whose per-row
/// results are independent of the split (every caller here), so the
/// pool-size-dependent grain cannot affect results.
void for_row_blocks(
    std::int64_t work, std::int64_t serial_below, std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body) {
  if (work < serial_below || count <= 1) {
    body(0, count, 0);
    return;
  }
  ThreadPool& pool = default_pool();
  parallel_for(pool, 0, count, balanced_grain(count, pool.thread_count()), body);
}

/// Parallel GEMM over M-row blocks: the thread pool splits rows, the
/// dispatched kernel (src/kernels — scalar reference or AVX2 blocked
/// micro-kernel, selected at runtime) runs inside each block.  Every
/// kernel accumulates each output element in double, contributions added
/// in ascending-k order with zero A entries skipped — the exact arithmetic
/// sequence matmul_nt's dot products produce, so both weight layouts and
/// all dispatch variants round identically (see
/// MatMul.NtBitIdenticalAdversarialMagnitudes and tests/test_kernels.cpp).
/// Rows are independent, so the split is free to depend on the pool size
/// without affecting results.
void gemm_parallel(const float* a, const float* b, const float* bias, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n) {
  const kernels::KernelTable& kt = kernels::dispatch();
  for_row_blocks(m * k * n, kGemmSerialBelow, m,
                 [&](std::int64_t row_begin, std::int64_t row_end, std::int64_t) {
                   kt.gemm_rows(a, b, bias, c, row_begin, row_end, k, n);
                 });
}

/// gemm_parallel with a packed-code A operand (the conv weight layout):
/// same pool split, the kernel LUT-decodes A inside the row block.
void gemm_codes_parallel(const kernels::PackedCodesView& a, const float* b,
                         const float* bias, float* c, std::int64_t m,
                         std::int64_t k, std::int64_t n) {
  const kernels::KernelTable& kt = kernels::dispatch();
  for_row_blocks(m * k * n, kGemmSerialBelow, m,
                 [&](std::int64_t row_begin, std::int64_t row_end, std::int64_t) {
                   kt.gemm_codes_rows(a, b, bias, c, row_begin, row_end, k, n);
                 });
}

/// gemm_parallel with BOTH operands coded (conv layout): the kernel
/// decodes each through its own LUT inside the row block.
void gemm_codes_codes_parallel(const kernels::PackedCodesView& a,
                               const kernels::PackedCodesView& b,
                               const float* bias, float* c, std::int64_t m,
                               std::int64_t k, std::int64_t n) {
  const kernels::KernelTable& kt = kernels::dispatch();
  for_row_blocks(m * k * n, kGemmSerialBelow, m,
                 [&](std::int64_t row_begin, std::int64_t row_end, std::int64_t) {
                   kt.gemm_codes_codes_rows(a, b, bias, c, row_begin, row_end,
                                            k, n);
                 });
}

/// Shared serial/parallel split for the coded-B^T GEMMs.  The nt kernels
/// decode the whole B operand per row-block call (O(n*k)); a block must
/// carry enough A rows to amortize that, or a short A split into one-row
/// blocks pays the decode m times over.  Rows are independent, so
/// coarsening the grain cannot affect results.
void for_nt_row_blocks(
    std::int64_t m, std::int64_t k, std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body) {
  constexpr std::int64_t kMinDecodeRows = 16;
  if (m * k * n < kGemmSerialBelow || m <= kMinDecodeRows) {
    body(0, m, 0);
  } else {
    ThreadPool& pool = default_pool();
    const std::int64_t grain =
        std::max(balanced_grain(m, pool.thread_count()), kMinDecodeRows);
    parallel_for(pool, 0, m, grain, body);
  }
}

/// Row-parallel float-A × coded-B^T GEMM with the optional fused encode
/// epilogue and multiply-semantics selection.  kExact routes through the
/// dispatched table; kPlam routes through the scalar log-domain
/// approximate kernel (see kernels_plam.cpp).  Returns false when any
/// row block reported a non-finite output.
bool gemm_codes_nt_parallel(const float* a, const kernels::PackedCodesView& b,
                            const float* bias, float* c,
                            const kernels::ActEncode* ep,
                            kernels::ApproxMode approx, std::int64_t m,
                            std::int64_t k, std::int64_t n) {
  const kernels::GemmCodesNtRowsFn fn =
      approx == kernels::ApproxMode::kPlam
          ? &kernels::plam::gemm_codes_nt_rows
          : kernels::dispatch().gemm_codes_nt_rows;
  std::atomic<bool> ok{true};
  auto body = [&](std::int64_t row_begin, std::int64_t row_end, std::int64_t) {
    if (!fn(a, b, bias, c, ep, row_begin, row_end, k, n)) {
      ok.store(false, std::memory_order_relaxed);
    }
  };
  for_nt_row_blocks(m, k, n, body);
  // Chaos harness: pretend the epilogue saw a non-finite output, so the
  // caller exercises the real escape hatch (discard the coded stream,
  // re-run the edge unfused — bit-identical by the fusion contract).
  if (ep != nullptr && LP_FAULT_POINT("kernel.epilogue.nonfinite")) {
    return false;
  }
  return ok.load(std::memory_order_relaxed);
}

/// Row-parallel both-coded nt GEMM with the optional fused encode
/// epilogue.  Returns false when any row block reported a non-finite
/// output (all blocks still run; the caller discards the stream).  Same
/// decode-amortizing grain as matmul_nt_codes: the nt kernels expand the
/// whole B operand per row-block call.
bool gemm_codes_codes_nt_parallel(const kernels::PackedCodesView& a,
                                  const kernels::PackedCodesView& b,
                                  const float* bias, float* c,
                                  const kernels::ActEncode* ep,
                                  kernels::ApproxMode approx, std::int64_t m,
                                  std::int64_t k, std::int64_t n) {
  const kernels::GemmCodesCodesNtRowsFn fn =
      approx == kernels::ApproxMode::kPlam
          ? &kernels::plam::gemm_codes_codes_nt_rows
          : kernels::dispatch().gemm_codes_codes_nt_rows;
  std::atomic<bool> ok{true};
  auto body = [&](std::int64_t row_begin, std::int64_t row_end, std::int64_t) {
    if (!fn(a, b, bias, c, ep, row_begin, row_end, k, n)) {
      ok.store(false, std::memory_order_relaxed);
    }
  };
  for_nt_row_blocks(m, k, n, body);
  // Same escape-hatch injection as gemm_codes_nt_parallel above.
  if (ep != nullptr && LP_FAULT_POINT("kernel.epilogue.nonfinite")) {
    return false;
  }
  return ok.load(std::memory_order_relaxed);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, const Tensor* bias) {
  LP_CHECK(a.rank() == 2 && b.rank() == 2);
  LP_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner dims " << a.dim(1) << " vs "
                                                          << b.dim(0));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  Tensor c({m, n});
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == n);
  gemm_parallel(a.raw(), b.raw(), bias != nullptr ? bias->raw() : nullptr,
                c.raw(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b, const Tensor* bias) {
  LP_CHECK(a.rank() == 2 && b.rank() == 2);
  LP_CHECK_MSG(a.dim(1) == b.dim(1), "matmul_nt inner dims " << a.dim(1) << " vs "
                                                             << b.dim(1));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == n);
  Tensor c({m, n});
  // Same accumulation contract as gemm_parallel: double accumulator,
  // ascending-k contributions, zero A entries skipped — so matmul(A,B) and
  // matmul_nt(A,B^T) are bit-identical under every dispatch variant.
  const kernels::KernelTable& kt = kernels::dispatch();
  const float* bias_raw = bias != nullptr ? bias->raw() : nullptr;
  for_row_blocks(m * k * n, kGemmSerialBelow, m,
                 [&](std::int64_t row_begin, std::int64_t row_end, std::int64_t) {
                   kt.gemm_nt_rows(a.raw(), b.raw(), bias_raw, c.raw(),
                                   row_begin, row_end, k, n);
                 });
  return c;
}

Tensor matmul_nt_codes(const Tensor& a, const PackedCodes& b,
                       const Tensor* bias, kernels::ApproxMode approx) {
  LP_CHECK(a.rank() == 2 && b.rank() == 2);
  LP_CHECK_MSG(a.dim(1) == b.dim(1), "matmul_nt_codes inner dims "
                                         << a.dim(1) << " vs " << b.dim(1));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == n);
  Tensor c({m, n});
  (void)gemm_codes_nt_parallel(a.raw(), b.view(),
                               bias != nullptr ? bias->raw() : nullptr,
                               c.raw(), nullptr, approx, m, k, n);
  return c;
}

std::optional<PackedCodes> matmul_nt_codes_enc(const Tensor& a,
                                               const PackedCodes& b,
                                               const Tensor* bias,
                                               const ActEncodeSpec& enc,
                                               kernels::ApproxMode approx) {
  LP_CHECK(a.rank() == 2 && b.rank() == 2);
  LP_CHECK_MSG(a.dim(1) == b.dim(1), "matmul_nt_codes inner dims "
                                         << a.dim(1) << " vs " << b.dim(1));
  LP_CHECK(enc.lut != nullptr && (enc.bits == 8 || enc.bits == 16));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(0);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == n);
  std::vector<std::uint8_t> codes(PackedCodes::stream_bytes(m * n, enc.bits));
  const kernels::ActEncode ep{enc.qidx, codes.data(), enc.bits, enc.act};
  if (!gemm_codes_nt_parallel(a.raw(), b.view(),
                              bias != nullptr ? bias->raw() : nullptr, nullptr,
                              &ep, approx, m, k, n)) {
    return std::nullopt;
  }
  return PackedCodes::from_codes(std::move(codes), {m, n}, enc.bits, enc.lut);
}

Tensor matmul_nt_codes_codes(const PackedCodes& a, const PackedCodes& b,
                             const Tensor* bias, kernels::ApproxMode approx) {
  LP_CHECK(a.rank() >= 2 && b.rank() == 2);
  const std::int64_t k = a.shape().back();
  LP_CHECK_MSG(k == b.dim(1), "matmul_nt_codes_codes inner dims "
                                  << k << " vs " << b.dim(1));
  const std::int64_t m = a.numel() / k;
  const std::int64_t n = b.dim(0);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == n);
  Tensor c({m, n});
  (void)gemm_codes_codes_nt_parallel(
      a.view(), b.view(), bias != nullptr ? bias->raw() : nullptr, c.raw(),
      nullptr, approx, m, k, n);
  return c;
}

std::optional<PackedCodes> matmul_nt_codes_codes_enc(const PackedCodes& a,
                                                     const PackedCodes& b,
                                                     const Tensor* bias,
                                                     const ActEncodeSpec& enc,
                                                     kernels::ApproxMode approx) {
  LP_CHECK(a.rank() >= 2 && b.rank() == 2);
  const std::int64_t k = a.shape().back();
  LP_CHECK_MSG(k == b.dim(1), "matmul_nt_codes_codes inner dims "
                                  << k << " vs " << b.dim(1));
  LP_CHECK(enc.lut != nullptr && (enc.bits == 8 || enc.bits == 16));
  const std::int64_t m = a.numel() / k;
  const std::int64_t n = b.dim(0);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == n);
  std::vector<std::uint8_t> codes(PackedCodes::stream_bytes(m * n, enc.bits));
  const kernels::ActEncode ep{enc.qidx, codes.data(), enc.bits, enc.act};
  if (!gemm_codes_codes_nt_parallel(a.view(), b.view(),
                                    bias != nullptr ? bias->raw() : nullptr,
                                    nullptr, &ep, approx, m, k, n)) {
    return std::nullopt;
  }
  return PackedCodes::from_codes(std::move(codes), {m, n}, enc.bits, enc.lut);
}

std::optional<PackedCodes> encode_acts(const Tensor& t,
                                       const ActEncodeSpec& enc) {
  LP_CHECK(enc.lut != nullptr && (enc.bits == 8 || enc.bits == 16));
  std::vector<std::uint8_t> codes(PackedCodes::stream_bytes(t.numel(), enc.bits));
  const kernels::ActEncode ep{enc.qidx, codes.data(), enc.bits, enc.act};
  const float* src = t.raw();
  std::atomic<bool> ok{true};
  auto body = [&](std::int64_t e0, std::int64_t e1, std::int64_t) {
    if (!kernels::detail::encode_row_block(ep, src + e0, e0, e1 - e0)) {
      ok.store(false, std::memory_order_relaxed);
    }
  };
  const std::int64_t nelem = t.numel();
  if (nelem < kRowsSerialBelow) {
    body(0, nelem, 0);
  } else {
    parallel_for(default_pool(), 0, nelem, 1 << 15, body);
  }
  if (!ok.load(std::memory_order_relaxed)) return std::nullopt;
  return PackedCodes::from_codes(std::move(codes), t.shape(), enc.bits,
                                 enc.lut);
}

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t padding) {
  LP_CHECK(stride >= 1 && kernel >= 1 && padding >= 0);
  const std::int64_t out = (in + 2 * padding - kernel) / stride + 1;
  LP_CHECK_MSG(out >= 1, "conv output dim <= 0 (in=" << in << " k=" << kernel
                                                     << " s=" << stride
                                                     << " p=" << padding << ")");
  return out;
}

Tensor im2col(const Tensor& input, std::int64_t c_begin, std::int64_t c_count,
              std::int64_t kh, std::int64_t kw, const Conv2dSpec& spec) {
  LP_CHECK(input.rank() == 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c_total = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  LP_CHECK(c_begin >= 0 && c_begin + c_count <= c_total);
  const std::int64_t ho = conv_out_dim(h, kh, spec.stride, spec.padding);
  const std::int64_t wo = conv_out_dim(w, kw, spec.stride, spec.padding);
  Tensor cols({c_count * kh * kw, n * ho * wo});
  float* dst = cols.raw();
  const std::int64_t col_width = n * ho * wo;
  const std::int64_t patch_rows = c_count * kh * kw;
  // Each patch row writes a disjoint output row — parallel over rows.
  auto fill_rows = [&](std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t) {
    for (std::int64_t row = row_begin; row < row_end; ++row) {
      const std::int64_t cc = row / (kh * kw);
      const std::int64_t ky = (row / kw) % kh;
      const std::int64_t kx = row % kw;
      float* out_row = dst + row * col_width;
      std::int64_t col = 0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* chan = input.raw() + ((b * c_total + c_begin + cc) * h) * w;
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.padding + ky;
          const bool y_ok = iy >= 0 && iy < h;
          for (std::int64_t ox = 0; ox < wo; ++ox, ++col) {
            const std::int64_t ix = ox * spec.stride - spec.padding + kx;
            out_row[col] =
                (y_ok && ix >= 0 && ix < w) ? chan[iy * w + ix] : 0.0F;
          }
        }
      }
    }
  };
  for_row_blocks(patch_rows * col_width, kRowsSerialBelow, patch_rows,
                 fill_rows);
  return cols;
}

PackedCodes im2col_codes(const PackedCodes& input, std::int64_t c_begin,
                         std::int64_t c_count, std::int64_t kh, std::int64_t kw,
                         const Conv2dSpec& spec, std::uint32_t zero_code) {
  LP_CHECK(input.rank() == 4);
  const int bits = input.code_bits();
  LP_CHECK_MSG(bits == 8 || bits == 16,
               "coded im2col needs byte-aligned codes, got " << bits << "-bit");
  LP_CHECK(static_cast<std::size_t>(zero_code) < input.lut()->size());
  const std::int64_t n = input.dim(0);
  const std::int64_t c_total = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  LP_CHECK(c_begin >= 0 && c_begin + c_count <= c_total);
  const std::int64_t ho = conv_out_dim(h, kh, spec.stride, spec.padding);
  const std::int64_t wo = conv_out_dim(w, kw, spec.stride, spec.padding);
  const std::int64_t col_width = n * ho * wo;
  const std::int64_t patch_rows = c_count * kh * kw;
  std::vector<std::uint8_t> out(
      PackedCodes::stream_bytes(patch_rows * col_width, bits));
  std::uint8_t* dst = out.data();
  const kernels::PackedCodesView iv = input.view();
  // Same row order and padding positions as the float im2col; rows write
  // disjoint byte ranges (codes are byte-aligned), so parallel rows are
  // race-free.
  auto fill_rows = [&](std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t) {
    for (std::int64_t row = row_begin; row < row_end; ++row) {
      const std::int64_t cc = row / (kh * kw);
      const std::int64_t ky = (row / kw) % kh;
      const std::int64_t kx = row % kw;
      std::int64_t col = row * col_width;
      for (std::int64_t b = 0; b < n; ++b) {
        const std::int64_t chan = ((b * c_total + c_begin + cc) * h) * w;
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.padding + ky;
          const bool y_ok = iy >= 0 && iy < h;
          for (std::int64_t ox = 0; ox < wo; ++ox, ++col) {
            const std::int64_t ix = ox * spec.stride - spec.padding + kx;
            const std::uint32_t code =
                (y_ok && ix >= 0 && ix < w)
                    ? kernels::packed_code_at(iv, chan + iy * w + ix)
                    : zero_code;
            kernels::packed_code_write(dst, bits, col, code);
          }
        }
      }
    }
  };
  for_row_blocks(patch_rows * col_width, kRowsSerialBelow, patch_rows,
                 fill_rows);
  return PackedCodes::from_codes(std::move(out), {patch_rows, col_width}, bits,
                                 input.lut());
}

namespace {

/// Shared conv2d body for float and packed-code weights: im2col per
/// group, one GEMM per group via `group_gemm(g, k, cols, result)` (which
/// computes result[cg_out, col_width] = W_g * cols), then a scatter whose
/// strided sink comes from `make_write(out_shape)`: write(e, stride, run,
/// nruns, src, bias_v) lands contiguous src[r*run + i] + bias_v at output
/// element e + r*stride + i (one call covers a full output channel — the
/// GEMM row is contiguous across the batch, destinations stride by one
/// NCHW plane) — the plain variants write floats into an NCHW tensor, the
/// fused variant batch-encodes through the epilogue (same sink contract
/// as conv2d_cc_core).
/// `wd` is the weight's [Cout, Cin/groups, kh, kw] shape — the storage
/// forms share it, and everything outside the GEMM call and the sink is
/// identical, so the coded paths are bit-identical by construction.
/// Returns whether every sink call succeeded (all groups still run).
template <typename GroupGemm, typename MakeWrite>
bool conv2d_core(const Tensor& input, const std::int64_t (&wd)[4],
                 const Tensor* bias, const Conv2dSpec& spec,
                 GroupGemm&& group_gemm, MakeWrite&& make_write) {
  LP_CHECK(input.rank() == 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t cin = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t cout = wd[0];
  const std::int64_t kh = wd[2];
  const std::int64_t kw = wd[3];
  LP_CHECK(spec.groups >= 1);
  LP_CHECK_MSG(cin % spec.groups == 0 && cout % spec.groups == 0,
               "groups must divide channels");
  LP_CHECK_MSG(wd[1] == cin / spec.groups,
               "weight Cin/groups mismatch: " << wd[1] << " vs "
                                              << cin / spec.groups);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == cout);

  const std::int64_t ho = conv_out_dim(h, kh, spec.stride, spec.padding);
  const std::int64_t wo = conv_out_dim(w, kw, spec.stride, spec.padding);
  const std::int64_t cg_in = cin / spec.groups;
  const std::int64_t cg_out = cout / spec.groups;
  const std::int64_t col_width = n * ho * wo;

  auto write = make_write(std::vector<std::int64_t>{n, cout, ho, wo});
  std::atomic<bool> ok{true};
  for (std::int64_t g = 0; g < spec.groups; ++g) {
    const Tensor cols = im2col(input, g * cg_in, cg_in, kh, kw, spec);
    const std::int64_t k = cg_in * kh * kw;
    // result[cg_out, col_width] = W_g * cols
    std::vector<float> result(static_cast<std::size_t>(cg_out * col_width), 0.0F);
    group_gemm(g, k, cols, result.data(), cg_out, col_width);
    // Scatter back into NCHW (columns are ordered batch-major per im2col).
    // Output channels write disjoint planes — parallel over oc.
    auto scatter = [&](std::int64_t oc_begin, std::int64_t oc_end,
                       std::int64_t) {
      bool block_ok = true;
      for (std::int64_t oc = oc_begin; oc < oc_end; ++oc) {
        const float bias_v = (bias != nullptr) ? (*bias)[g * cg_out + oc] : 0.0F;
        const float* rrow = result.data() + oc * col_width;
        const std::int64_t base = (g * cg_out + oc) * ho * wo;
        block_ok = write(base, cout * ho * wo, ho * wo, n, rrow, bias_v) &&
                   block_ok;
      }
      if (!block_ok) ok.store(false, std::memory_order_relaxed);
    };
    for_row_blocks(cg_out * col_width, kRowsSerialBelow, cg_out, scatter);
  }
  return ok.load(std::memory_order_relaxed);
}

/// Sink factory writing raw floats into a fresh NCHW tensor — the plain
/// (unfused) conv2d output path.
auto tensor_sink(Tensor& out) {
  return [&out](std::vector<std::int64_t> shape) {
    out = Tensor(std::move(shape));
    float* raw = out.raw();
    return [raw](std::int64_t e, std::int64_t stride, std::int64_t run,
                 std::int64_t nruns, const float* src, float bias_v) {
      for (std::int64_t r = 0; r < nruns; ++r) {
        float* dst = raw + e + r * stride;
        const float* s = src + r * run;
        for (std::int64_t i = 0; i < run; ++i) dst[i] = s[i] + bias_v;
      }
      return true;
    };
  };
}

}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const Conv2dSpec& spec) {
  LP_CHECK(weight.rank() == 4);
  const std::int64_t wd[4] = {weight.dim(0), weight.dim(1), weight.dim(2),
                              weight.dim(3)};
  Tensor out;
  (void)conv2d_core(
      input, wd, bias, spec,
      [&](std::int64_t g, std::int64_t k, const Tensor& cols, float* result,
          std::int64_t cg_out, std::int64_t col_width) {
        // Weight slice for this group as a [cg_out, k] matrix.
        const float* wslice = weight.raw() + g * cg_out * k;
        gemm_parallel(wslice, cols.raw(), nullptr, result, cg_out, k,
                      col_width);
      },
      tensor_sink(out));
  return out;
}

Tensor conv2d_codes(const Tensor& input, const PackedCodes& weight,
                    const Tensor* bias, const Conv2dSpec& spec) {
  LP_CHECK(weight.rank() == 4);
  const std::int64_t wd[4] = {weight.dim(0), weight.dim(1), weight.dim(2),
                              weight.dim(3)};
  Tensor out;
  (void)conv2d_core(
      input, wd, bias, spec,
      [&](std::int64_t g, std::int64_t k, const Tensor& cols, float* result,
          std::int64_t cg_out, std::int64_t col_width) {
        // The group's weight slice starts at an element (not byte) offset;
        // the view carries it so 4-bit slices need no realignment.
        gemm_codes_parallel(weight.view(g * cg_out * k), cols.raw(), nullptr,
                            result, cg_out, k, col_width);
      },
      tensor_sink(out));
  return out;
}

std::optional<PackedCodes> conv2d_codes_enc(const Tensor& input,
                                            const PackedCodes& weight,
                                            const Tensor* bias,
                                            const Conv2dSpec& spec,
                                            const ActEncodeSpec& enc) {
  LP_CHECK(weight.rank() == 4);
  LP_CHECK(enc.lut != nullptr && (enc.bits == 8 || enc.bits == 16));
  const std::int64_t wd[4] = {weight.dim(0), weight.dim(1), weight.dim(2),
                              weight.dim(3)};
  std::vector<std::uint8_t> codes;
  std::vector<std::int64_t> out_shape;
  kernels::ActEncode ep{enc.qidx, nullptr, enc.bits, enc.act};
  const bool ok = conv2d_core(
      input, wd, bias, spec,
      [&](std::int64_t g, std::int64_t k, const Tensor& cols, float* result,
          std::int64_t cg_out, std::int64_t col_width) {
        gemm_codes_parallel(weight.view(g * cg_out * k), cols.raw(), nullptr,
                            result, cg_out, k, col_width);
      },
      [&](std::vector<std::int64_t> shape) {
        std::int64_t numel = 1;
        for (const std::int64_t d : shape) numel *= d;
        out_shape = std::move(shape);
        codes.resize(PackedCodes::stream_bytes(numel, enc.bits));
        ep.codes = codes.data();
        // Bias-add the whole channel row into kernel scratch, run the
        // batched epilogue (act + SIMD nearest-index search) once, then
        // scatter codes per batch-image plane — element-for-element
        // identical to encode_elem(ep, src[r*run+i] + bias_v, e+r*stride+i).
        return [&ep](std::int64_t e, std::int64_t stride, std::int64_t run,
                     std::int64_t nruns, const float* src, float bias_v) {
          const std::int64_t count = run * nruns;
          float* buf = kernels::detail::fused_scratch(count);
          for (std::int64_t i = 0; i < count; ++i) buf[i] = src[i] + bias_v;
          return kernels::detail::encode_strided_block(ep, buf, count, e,
                                                       stride, run);
        };
      });
  if (!ok) return std::nullopt;
  return PackedCodes::from_codes(std::move(codes), std::move(out_shape),
                                 enc.bits, enc.lut);
}

namespace {

/// Shared body for the coded-input convolutions: coded im2col per group,
/// both-coded GEMM per group, then a scatter whose per-element sink comes
/// from `make_write(out_shape)` (same strided contract as conv2d_core) —
/// the float variant writes `src + bias` into an NCHW tensor, the fused
/// variant batch-encodes through the epilogue.  The sink returns false
/// for an unencodable element; the core reports whether every element
/// succeeded (all groups still run).  Everything
/// around the sink is the float conv2d_core's exact sequence, so both
/// variants stay bit-identical to it.
template <typename MakeWrite>
bool conv2d_cc_core(const PackedCodes& input, const PackedCodes& weight,
                    const Tensor* bias, const Conv2dSpec& spec,
                    std::uint32_t zero_code, MakeWrite&& make_write) {
  LP_CHECK(input.rank() == 4 && weight.rank() == 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t cin = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t kh = weight.dim(2);
  const std::int64_t kw = weight.dim(3);
  LP_CHECK(spec.groups >= 1);
  LP_CHECK_MSG(cin % spec.groups == 0 && cout % spec.groups == 0,
               "groups must divide channels");
  LP_CHECK_MSG(weight.dim(1) == cin / spec.groups,
               "weight Cin/groups mismatch: " << weight.dim(1) << " vs "
                                              << cin / spec.groups);
  if (bias != nullptr) LP_CHECK(bias->rank() == 1 && bias->dim(0) == cout);

  const std::int64_t ho = conv_out_dim(h, kh, spec.stride, spec.padding);
  const std::int64_t wo = conv_out_dim(w, kw, spec.stride, spec.padding);
  const std::int64_t cg_in = cin / spec.groups;
  const std::int64_t cg_out = cout / spec.groups;
  const std::int64_t col_width = n * ho * wo;

  auto write = make_write(std::vector<std::int64_t>{n, cout, ho, wo});
  std::atomic<bool> ok{true};
  for (std::int64_t g = 0; g < spec.groups; ++g) {
    const PackedCodes cols =
        im2col_codes(input, g * cg_in, cg_in, kh, kw, spec, zero_code);
    const std::int64_t k = cg_in * kh * kw;
    std::vector<float> result(static_cast<std::size_t>(cg_out * col_width),
                              0.0F);
    gemm_codes_codes_parallel(weight.view(g * cg_out * k), cols.view(), nullptr,
                              result.data(), cg_out, k, col_width);
    // Output channels touch disjoint planes — parallel over oc, exactly
    // like the float scatter.
    auto scatter = [&](std::int64_t oc_begin, std::int64_t oc_end,
                       std::int64_t) {
      bool block_ok = true;
      for (std::int64_t oc = oc_begin; oc < oc_end; ++oc) {
        const float bias_v =
            (bias != nullptr) ? (*bias)[g * cg_out + oc] : 0.0F;
        const float* rrow = result.data() + oc * col_width;
        const std::int64_t base = (g * cg_out + oc) * ho * wo;
        block_ok = write(base, cout * ho * wo, ho * wo, n, rrow, bias_v) &&
                   block_ok;
      }
      if (!block_ok) ok.store(false, std::memory_order_relaxed);
    };
    for_row_blocks(cg_out * col_width, kRowsSerialBelow, cg_out, scatter);
  }
  return ok.load(std::memory_order_relaxed);
}

}  // namespace

Tensor conv2d_codes_codes(const PackedCodes& input, const PackedCodes& weight,
                          const Tensor* bias, const Conv2dSpec& spec,
                          std::uint32_t zero_code) {
  Tensor out;
  (void)conv2d_cc_core(input, weight, bias, spec, zero_code,
                       [&](std::vector<std::int64_t> shape) {
                         out = Tensor(std::move(shape));
                         float* raw = out.raw();
                         return [raw](std::int64_t e, std::int64_t stride,
                                      std::int64_t run, std::int64_t nruns,
                                      const float* src, float bias_v) {
                           for (std::int64_t r = 0; r < nruns; ++r) {
                             float* dst = raw + e + r * stride;
                             const float* s = src + r * run;
                             for (std::int64_t i = 0; i < run; ++i) {
                               dst[i] = s[i] + bias_v;
                             }
                           }
                           return true;
                         };
                       });
  return out;
}

std::optional<PackedCodes> conv2d_codes_codes_enc(const PackedCodes& input,
                                                  const PackedCodes& weight,
                                                  const Tensor* bias,
                                                  const Conv2dSpec& spec,
                                                  std::uint32_t zero_code,
                                                  const ActEncodeSpec& enc) {
  LP_CHECK(enc.lut != nullptr && (enc.bits == 8 || enc.bits == 16));
  std::vector<std::uint8_t> codes;
  std::vector<std::int64_t> out_shape;
  kernels::ActEncode ep{enc.qidx, nullptr, enc.bits, enc.act};
  const bool ok = conv2d_cc_core(
      input, weight, bias, spec, zero_code,
      [&](std::vector<std::int64_t> shape) {
        std::int64_t numel = 1;
        for (const std::int64_t d : shape) numel *= d;
        out_shape = std::move(shape);
        codes.resize(PackedCodes::stream_bytes(numel, enc.bits));
        ep.codes = codes.data();
        // Bias-add the whole channel row into kernel scratch, run the
        // batched epilogue (act + SIMD nearest-index search) once, then
        // scatter codes per batch-image plane — element-for-element
        // identical to encode_elem(ep, src[r*run+i] + bias_v, e+r*stride+i).
        return [&ep](std::int64_t e, std::int64_t stride, std::int64_t run,
                     std::int64_t nruns, const float* src, float bias_v) {
          const std::int64_t count = run * nruns;
          float* buf = kernels::detail::fused_scratch(count);
          for (std::int64_t i = 0; i < count; ++i) buf[i] = src[i] + bias_v;
          return kernels::detail::encode_strided_block(ep, buf, count, e,
                                                       stride, run);
        };
      });
  if (!ok) return std::nullopt;
  return PackedCodes::from_codes(std::move(codes), std::move(out_shape),
                                 enc.bits, enc.lut);
}

Tensor global_avg_pool(const Tensor& input) {
  LP_CHECK(input.rank() == 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t hw = input.dim(2) * input.dim(3);
  LP_CHECK(hw > 0);
  Tensor out({n, c});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = input.raw() + (b * c + ch) * hw;
      double s = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) s += src[i];
      out.at2(b, ch) = static_cast<float>(s / static_cast<double>(hw));
    }
  }
  return out;
}

Tensor max_pool2d(const Tensor& input, std::int64_t kernel, std::int64_t stride,
                  std::int64_t padding) {
  LP_CHECK(input.rank() == 4);
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t ho = conv_out_dim(h, kernel, stride, padding);
  const std::int64_t wo = conv_out_dim(w, kernel, stride, padding);
  Tensor out({n, c, ho, wo});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = input.raw() + (b * c + ch) * h * w;
      float* dst = out.raw() + (b * c + ch) * ho * wo;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride - padding + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = ox * stride - padding + kx;
              if (ix < 0 || ix >= w) continue;
              best = std::max(best, src[iy * w + ix]);
            }
          }
          dst[oy * wo + ox] = best;
        }
      }
    }
  }
  return out;
}

// The elementwise activations delegate to kernels::act_eval — the single
// definition the fused encode epilogue also evaluates, so fused and
// unfused flows apply bit-identical nonlinearities.

void relu_inplace(Tensor& x) {
  for (float& v : x.data()) v = kernels::act_eval(v, kernels::kActRelu);
}

void relu6_inplace(Tensor& x) {
  for (float& v : x.data()) v = kernels::act_eval(v, kernels::kActRelu6);
}

void gelu_inplace(Tensor& x) {
  for (float& v : x.data()) v = kernels::act_eval(v, kernels::kActGelu);
}

Tensor relu(const Tensor& x) {
  Tensor y = x;
  relu_inplace(y);
  return y;
}

Tensor relu6(const Tensor& x) {
  Tensor y = x;
  relu6_inplace(y);
  return y;
}

Tensor gelu(const Tensor& x) {
  Tensor y = x;
  gelu_inplace(y);
  return y;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  add_inplace(c, b);
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  LP_CHECK_MSG(a.shape() == b.shape(),
               "add shape mismatch " << a.shape_str() << " vs " << b.shape_str());
  float* pa = a.raw();
  const float* pb = b.raw();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void scale_inplace(Tensor& a, float s) {
  for (float& v : a.data()) v *= s;
}

Tensor softmax_lastdim(const Tensor& x) {
  LP_CHECK(x.rank() >= 1);
  const std::int64_t d = x.shape().back();
  LP_CHECK(d > 0);
  const std::int64_t rows = x.numel() / d;
  Tensor y = x;
  auto softmax_rows = [&](std::int64_t row_begin, std::int64_t row_end,
                          std::int64_t) {
    const auto uniform = static_cast<float>(1.0 / static_cast<double>(d));
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      float* row = y.raw() + r * d;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t i = 0; i < d; ++i) mx = std::max(mx, row[i]);
      // A fully masked attention row (all -inf) would otherwise yield
      // sum == 0 and inv == inf, spraying NaN downstream; a +inf or
      // all-NaN row would poison exp().  Both degrade to the uniform
      // distribution, the standard masked-softmax convention.
      if (!std::isfinite(mx)) {
        for (std::int64_t i = 0; i < d; ++i) row[i] = uniform;
        continue;
      }
      double sum = 0.0;
      for (std::int64_t i = 0; i < d; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
      }
      if (!(sum > 0.0) || !std::isfinite(sum)) {
        for (std::int64_t i = 0; i < d; ++i) row[i] = uniform;
        continue;
      }
      const auto inv = static_cast<float>(1.0 / sum);
      for (std::int64_t i = 0; i < d; ++i) row[i] *= inv;
    }
  };
  for_row_blocks(rows * d, kRowsSerialBelow, rows, softmax_rows);
  return y;
}

Tensor layernorm_lastdim(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps) {
  LP_CHECK(x.rank() >= 1);
  const std::int64_t d = x.shape().back();
  LP_CHECK(gamma.rank() == 1 && gamma.dim(0) == d);
  LP_CHECK(beta.rank() == 1 && beta.dim(0) == d);
  const std::int64_t rows = x.numel() / d;
  Tensor y = x;
  auto norm_rows = [&](std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      float* row = y.raw() + r * d;
      double mu = 0.0;
      for (std::int64_t i = 0; i < d; ++i) mu += row[i];
      mu /= static_cast<double>(d);
      double var = 0.0;
      for (std::int64_t i = 0; i < d; ++i) {
        const double dv = row[i] - mu;
        var += dv * dv;
      }
      var /= static_cast<double>(d);
      const double inv = 1.0 / std::sqrt(var + eps);
      for (std::int64_t i = 0; i < d; ++i) {
        row[i] = static_cast<float>((row[i] - mu) * inv) * gamma[i] + beta[i];
      }
    }
  };
  for_row_blocks(rows * d, kRowsSerialBelow, rows, norm_rows);
  return y;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  LP_CHECK(logits.rank() == 2);
  const std::int64_t n = logits.dim(0);
  const std::int64_t d = logits.dim(1);
  LP_CHECK(d > 0);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    const float* row = logits.raw() + r * d;
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < d; ++i) {
      if (row[i] > row[best]) best = i;
    }
    idx[static_cast<std::size_t>(r)] = best;
  }
  return idx;
}

}  // namespace lp
