#include "tensor/tensor.h"

#include <sstream>

namespace lp {

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) const {
  std::int64_t n = 1;
  for (auto d : new_shape) {
    LP_CHECK(d >= 0);
    n *= d;
  }
  LP_CHECK_MSG(n == numel_, "reshape numel mismatch: " << n << " vs " << numel_);
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  out.numel_ = numel_;
  return out;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace lp
