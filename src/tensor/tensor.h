// Minimal dense float tensor used as the substrate for the DNN models that
// LPQ quantizes.  The paper's experiments run on PyTorch; this library
// provides the forward-pass subset LPQ needs (see DESIGN.md section 2).
//
// Design: contiguous row-major float32 storage with value semantics.  All
// shape arithmetic is checked (LP_CHECK) so misuse surfaces as exceptions,
// not corrupted experiments.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace lp {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
    validate_shape();
    data_.assign(static_cast<std::size_t>(numel_), 0.0F);
  }

  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  /// Tensor wrapping a copy of existing data.
  Tensor(std::vector<std::int64_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    validate_shape();
    LP_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == numel_,
                 "data size " << data_.size() << " != numel " << numel_);
  }

  [[nodiscard]] const std::vector<std::int64_t>& shape() const { return shape_; }
  [[nodiscard]] std::int64_t dim(std::size_t i) const {
    LP_CHECK(i < shape_.size());
    return shape_[i];
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::int64_t numel() const { return numel_; }
  [[nodiscard]] bool empty() const { return numel_ == 0; }

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }
  [[nodiscard]] float* raw() { return data_.data(); }
  [[nodiscard]] const float* raw() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    LP_CHECK(i >= 0 && i < numel_);
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    LP_CHECK(i >= 0 && i < numel_);
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D accessor (rows x cols); checked.
  float& at2(std::int64_t r, std::int64_t c) {
    LP_CHECK(rank() == 2);
    LP_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  [[nodiscard]] float at2(std::int64_t r, std::int64_t c) const {
    return const_cast<Tensor*>(this)->at2(r, c);
  }

  /// 4-D accessor (NCHW); checked.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    LP_CHECK(rank() == 4);
    LP_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
             h < shape_[2] && w >= 0 && w < shape_[3]);
    const std::int64_t idx =
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    return data_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] float at4(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) const {
    return const_cast<Tensor*>(this)->at4(n, c, h, w);
  }

  /// Reshape to a compatible shape (same numel); returns a copy-free view
  /// of *this (value semantics: shape metadata changes only).
  [[nodiscard]] Tensor reshaped(std::vector<std::int64_t> new_shape) const;

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] std::string shape_str() const;

 private:
  void validate_shape() {
    numel_ = 1;
    for (auto d : shape_) {
      LP_CHECK_MSG(d >= 0, "negative dimension " << d);
      numel_ *= d;
    }
  }

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
  std::int64_t numel_ = 0;
};

}  // namespace lp
