// Forward-pass tensor operations.
//
// These are the primitives the DNN substrate (src/nn) composes: GEMM,
// im2col convolution (grouped, so depthwise MobileNet blocks work), pooling,
// activations, softmax, layernorm.  All functions are pure (inputs const,
// fresh output) unless suffixed _inplace.
#pragma once

#include <optional>

#include "core/packed_codes.h"
#include "tensor/tensor.h"

namespace lp {

class NumberFormat;

/// Quantize every element of t in place through the format's batched path
/// (see NumberFormat::quantize_batch).  The RMSE-returning variant is
/// quantize_span in core/number_format.h; this one is for the forward-pass
/// hot loops that discard the error.
void quantize_inplace(Tensor& t, const NumberFormat& fmt);

/// C[M,N] = A[M,K] * B[K,N]  (+bias[N] if non-null).  Both matmul variants
/// accumulate each output element in double, in ascending-k order, so
/// matmul(A, B) is bit-identical to matmul_nt(A, B^T) — the same logical
/// layer rounds the same way regardless of weight layout.  Row-parallel on
/// the default pool; results are bit-identical for any pool size.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b,
                            const Tensor* bias = nullptr);

/// C[M,N] = A[M,K] * B[N,K]^T (+bias[N] if non-null).  This is the
/// fully-connected / attention-projection layout.  Same accumulation
/// contract as matmul (see above).
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b,
                               const Tensor* bias = nullptr);

/// matmul_nt against a packed-code weight operand ([N,K] logical shape):
/// the dispatched kernel LUT-decodes the codes inside the datapath, so
/// the result is bit-identical to matmul_nt(a, decoded_b, bias) while the
/// B-stream reads 4-8x fewer weight bytes.  `approx` selects the multiply
/// semantics: kExact (default) is the bit-identical IEEE path, kPlam is
/// the opt-in log-domain approximate multiply (see kernels.h) bounded by
/// kernels::kPlamMaxRelError per product.
[[nodiscard]] Tensor matmul_nt_codes(
    const Tensor& a, const PackedCodes& b, const Tensor* bias = nullptr,
    kernels::ApproxMode approx = kernels::ApproxMode::kExact);

/// Output-coding spec for the fused quantize-to-code epilogues: each
/// finished output element gets `act` (kernels::kAct*) applied, is
/// nearest-index encoded through `qidx`, and lands in a fresh stream of
/// `bits`-wide codes decoding through `lut` — the inter-layer activation
/// never materializes as floats.  `qidx` and `lut` must belong to the same
/// format (lut[i] == the float the quantize path stores for index i).
struct ActEncodeSpec {
  kernels::QuantIndexView qidx;
  std::shared_ptr<const DecodeTable> lut;
  int bits = 8;  ///< 8 or 16 (byte-aligned; see kernels::packed_code_write)
  int act = kernels::kActNone;
};

/// Fused variant of matmul_nt_codes: act + encode applied per element
/// before it leaves the kernel, so a float-activation × coded-weight
/// layer writes only codes — the decode→GEMM→bias→act→encode pipeline is
/// one kernel pass.  Returns nullopt when any output element is
/// non-finite (no code can represent NaN) — callers re-run the edge on
/// the float path.
[[nodiscard]] std::optional<PackedCodes> matmul_nt_codes_enc(
    const Tensor& a, const PackedCodes& b, const Tensor* bias,
    const ActEncodeSpec& enc,
    kernels::ApproxMode approx = kernels::ApproxMode::kExact);

/// matmul_nt with BOTH operands coded: A [..., K] holds activation codes
/// (leading dims flatten to M, so rank-3 token activations need no
/// reshape copy), B [N,K] holds weight codes, each decoded through its
/// own LUT inside the kernel.  Bit-identical to matmul_nt over the
/// decoded operands.  Result is [M, N].
[[nodiscard]] Tensor matmul_nt_codes_codes(
    const PackedCodes& a, const PackedCodes& b, const Tensor* bias = nullptr,
    kernels::ApproxMode approx = kernels::ApproxMode::kExact);

/// Fused variant of matmul_nt_codes_codes: act + encode applied per
/// element before it leaves the kernel; the [M,N] result exists only as
/// codes.  Returns nullopt when any output element is non-finite (no code
/// can represent NaN) — callers re-run the edge on the float path.
[[nodiscard]] std::optional<PackedCodes> matmul_nt_codes_codes_enc(
    const PackedCodes& a, const PackedCodes& b, const Tensor* bias,
    const ActEncodeSpec& enc,
    kernels::ApproxMode approx = kernels::ApproxMode::kExact);

/// Encode an (already activated) float tensor into a coded activation
/// stream through the epilogue's nearest-index search: the decoded stream
/// equals quantizing `t` through the same table, element for element.
/// Returns nullopt when any element is non-finite.  Used where the GEMM
/// output cannot be encoded in-kernel (float-input conv, attention) but
/// the outgoing edge is still coded.
[[nodiscard]] std::optional<PackedCodes> encode_acts(const Tensor& t,
                                                     const ActEncodeSpec& enc);

struct Conv2dSpec {
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t groups = 1;
};

/// 2-D convolution, NCHW input [N,C,H,W], weight [Cout,Cin/groups,kh,kw],
/// optional bias [Cout].  im2col + GEMM implementation.
[[nodiscard]] Tensor conv2d(const Tensor& input, const Tensor& weight,
                            const Tensor* bias, const Conv2dSpec& spec);

/// conv2d with a packed-code weight tensor (same logical layout): the
/// per-group weight slice is the GEMM's A operand, decoded element-wise
/// inside the kernel.  Bit-identical to conv2d over the decoded weights.
[[nodiscard]] Tensor conv2d_codes(const Tensor& input,
                                  const PackedCodes& weight,
                                  const Tensor* bias, const Conv2dSpec& spec);

/// Fused variant of conv2d_codes: bias + act + encode applied per element
/// in the scatter, so the float-input × coded-weight convolution emits
/// only codes.  Returns nullopt when any output element is non-finite.
[[nodiscard]] std::optional<PackedCodes> conv2d_codes_enc(
    const Tensor& input, const PackedCodes& weight, const Tensor* bias,
    const Conv2dSpec& spec, const ActEncodeSpec& enc);

/// conv2d with coded weights AND a coded NCHW input: patches gather as
/// codes (padding with `zero_code`, which must decode to exact +0.0f —
/// see lut_zero_code) and both GEMM operands decode inside the kernel.
/// Bit-identical to conv2d over the decoded tensors.
[[nodiscard]] Tensor conv2d_codes_codes(const PackedCodes& input,
                                        const PackedCodes& weight,
                                        const Tensor* bias,
                                        const Conv2dSpec& spec,
                                        std::uint32_t zero_code);

/// Fused variant of conv2d_codes_codes: bias + act + encode applied per
/// element in the scatter, so the [N,Cout,H',W'] output exists only as
/// codes.  Returns nullopt when any output element is non-finite.
[[nodiscard]] std::optional<PackedCodes> conv2d_codes_codes_enc(
    const PackedCodes& input, const PackedCodes& weight, const Tensor* bias,
    const Conv2dSpec& spec, std::uint32_t zero_code, const ActEncodeSpec& enc);

/// Global average pool: [N,C,H,W] -> [N,C].
[[nodiscard]] Tensor global_avg_pool(const Tensor& input);

/// Max pool with square kernel/stride: [N,C,H,W] -> [N,C,H',W'].
[[nodiscard]] Tensor max_pool2d(const Tensor& input, std::int64_t kernel,
                                std::int64_t stride, std::int64_t padding = 0);

/// Elementwise activations (fresh output).
[[nodiscard]] Tensor relu(const Tensor& x);
[[nodiscard]] Tensor relu6(const Tensor& x);
[[nodiscard]] Tensor gelu(const Tensor& x);

void relu_inplace(Tensor& x);
void relu6_inplace(Tensor& x);
void gelu_inplace(Tensor& x);

/// Elementwise sum (shapes must match).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);

/// Scale all elements.
void scale_inplace(Tensor& a, float s);

/// Softmax over the last dimension.  Rows without a finite maximum (fully
/// masked attention rows of all -inf, or rows poisoned by +inf/NaN) produce
/// the uniform distribution instead of NaN.
[[nodiscard]] Tensor softmax_lastdim(const Tensor& x);

/// LayerNorm over the last dimension with affine params gamma/beta [D].
[[nodiscard]] Tensor layernorm_lastdim(const Tensor& x, const Tensor& gamma,
                                       const Tensor& beta, float eps = 1e-5F);

/// argmax over the last dimension of a 2-D tensor: [N,D] -> indices[N].
[[nodiscard]] std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// im2col for conv2d: returns [Cin*kh*kw, N*Hout*Wout] patch matrix for a
/// single group slice.  Exposed for testing.
[[nodiscard]] Tensor im2col(const Tensor& input, std::int64_t c_begin,
                            std::int64_t c_count, std::int64_t kh,
                            std::int64_t kw, const Conv2dSpec& spec);

/// im2col over a coded NCHW input: gathers codes instead of floats,
/// padding with `zero_code` (must decode to exact +0.0f).  The result
/// shares the input's LUT and code width; the input must be byte-aligned
/// (8- or 16-bit codes — activation streams always are).  Exposed for
/// testing.
[[nodiscard]] PackedCodes im2col_codes(const PackedCodes& input,
                                       std::int64_t c_begin,
                                       std::int64_t c_count, std::int64_t kh,
                                       std::int64_t kw, const Conv2dSpec& spec,
                                       std::uint32_t zero_code);

/// Output spatial size of a convolution dimension.
[[nodiscard]] std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                                        std::int64_t stride, std::int64_t padding);

}  // namespace lp
