// Forward-pass tensor operations.
//
// These are the primitives the DNN substrate (src/nn) composes: GEMM,
// im2col convolution (grouped, so depthwise MobileNet blocks work), pooling,
// activations, softmax, layernorm.  All functions are pure (inputs const,
// fresh output) unless suffixed _inplace.
#pragma once

#include "tensor/tensor.h"

namespace lp {

class NumberFormat;
class PackedCodes;

/// Quantize every element of t in place through the format's batched path
/// (see NumberFormat::quantize_batch).  The RMSE-returning variant is
/// quantize_span in core/number_format.h; this one is for the forward-pass
/// hot loops that discard the error.
void quantize_inplace(Tensor& t, const NumberFormat& fmt);

/// C[M,N] = A[M,K] * B[K,N]  (+bias[N] if non-null).  Both matmul variants
/// accumulate each output element in double, in ascending-k order, so
/// matmul(A, B) is bit-identical to matmul_nt(A, B^T) — the same logical
/// layer rounds the same way regardless of weight layout.  Row-parallel on
/// the default pool; results are bit-identical for any pool size.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b,
                            const Tensor* bias = nullptr);

/// C[M,N] = A[M,K] * B[N,K]^T (+bias[N] if non-null).  This is the
/// fully-connected / attention-projection layout.  Same accumulation
/// contract as matmul (see above).
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b,
                               const Tensor* bias = nullptr);

/// matmul_nt against a packed-code weight operand ([N,K] logical shape):
/// the dispatched kernel LUT-decodes the codes inside the datapath, so
/// the result is bit-identical to matmul_nt(a, decoded_b, bias) while the
/// B-stream reads 4-8x fewer weight bytes.
[[nodiscard]] Tensor matmul_nt_codes(const Tensor& a, const PackedCodes& b,
                                     const Tensor* bias = nullptr);

struct Conv2dSpec {
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t groups = 1;
};

/// 2-D convolution, NCHW input [N,C,H,W], weight [Cout,Cin/groups,kh,kw],
/// optional bias [Cout].  im2col + GEMM implementation.
[[nodiscard]] Tensor conv2d(const Tensor& input, const Tensor& weight,
                            const Tensor* bias, const Conv2dSpec& spec);

/// conv2d with a packed-code weight tensor (same logical layout): the
/// per-group weight slice is the GEMM's A operand, decoded element-wise
/// inside the kernel.  Bit-identical to conv2d over the decoded weights.
[[nodiscard]] Tensor conv2d_codes(const Tensor& input,
                                  const PackedCodes& weight,
                                  const Tensor* bias, const Conv2dSpec& spec);

/// Global average pool: [N,C,H,W] -> [N,C].
[[nodiscard]] Tensor global_avg_pool(const Tensor& input);

/// Max pool with square kernel/stride: [N,C,H,W] -> [N,C,H',W'].
[[nodiscard]] Tensor max_pool2d(const Tensor& input, std::int64_t kernel,
                                std::int64_t stride, std::int64_t padding = 0);

/// Elementwise activations (fresh output).
[[nodiscard]] Tensor relu(const Tensor& x);
[[nodiscard]] Tensor relu6(const Tensor& x);
[[nodiscard]] Tensor gelu(const Tensor& x);

void relu_inplace(Tensor& x);
void relu6_inplace(Tensor& x);
void gelu_inplace(Tensor& x);

/// Elementwise sum (shapes must match).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);

/// Scale all elements.
void scale_inplace(Tensor& a, float s);

/// Softmax over the last dimension.  Rows without a finite maximum (fully
/// masked attention rows of all -inf, or rows poisoned by +inf/NaN) produce
/// the uniform distribution instead of NaN.
[[nodiscard]] Tensor softmax_lastdim(const Tensor& x);

/// LayerNorm over the last dimension with affine params gamma/beta [D].
[[nodiscard]] Tensor layernorm_lastdim(const Tensor& x, const Tensor& gamma,
                                       const Tensor& beta, float eps = 1e-5F);

/// argmax over the last dimension of a 2-D tensor: [N,D] -> indices[N].
[[nodiscard]] std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// im2col for conv2d: returns [Cin*kh*kw, N*Hout*Wout] patch matrix for a
/// single group slice.  Exposed for testing.
[[nodiscard]] Tensor im2col(const Tensor& input, std::int64_t c_begin,
                            std::int64_t c_count, std::int64_t kh,
                            std::int64_t kw, const Conv2dSpec& spec);

/// Output spatial size of a convolution dimension.
[[nodiscard]] std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                                        std::int64_t stride, std::int64_t padding);

}  // namespace lp
