// OverloadController — graceful degradation for the dynamic-batching
// server.
//
// Shedding (request_queue.h) bounds the queue; this controller changes
// *how* the server works through what it admits.  Under sustained
// backlog it widens the batching knobs — a larger max_batch and a longer
// straggler linger — so each fused forward amortizes per-layer work over
// more rows: per-request latency degrades, aggregate throughput rises,
// and the backlog drains faster than it would at the latency-tuned
// settings.  When pressure clears it restores the base knobs.
//
// Both transitions are streak-gated (N consecutive observations past the
// watermark), with separate high/low depth watermarks, so a single bursty
// batch neither trips degradation nor flaps it off mid-drain.  The
// controller is deliberately standalone — depth observations in, knobs
// out, no clock, no queue reference — so tests drive it with synthetic
// depth sequences (tests/test_serve.cpp) without a real server.
//
// Thread-safe: workers call observe() concurrently; state sits behind an
// internal mutex (one uncontended lock per batch pop — noise next to a
// fused forward).
#pragma once

#include <chrono>
#include <cstdint>

#include "util/thread_annotations.h"

namespace lp::serve {

struct OverloadPolicy {
  /// Queue depth at/above which an observation counts as pressure.
  std::size_t backlog_high = 32;
  /// Queue depth at/below which an observation counts as clear.  Depths
  /// between the two watermarks reset both streaks (hysteresis band).
  std::size_t backlog_low = 4;
  /// Consecutive pressure observations before degrading.
  int trip_after = 3;
  /// Consecutive clear observations before restoring.
  int restore_after = 8;
  /// Degraded max_batch = base * this (throughput over latency).
  double max_batch_scale = 4.0;
  /// Degraded batch_deadline = base * this (linger longer, fuse more).
  double linger_scale = 4.0;
};

class OverloadController {
 public:
  /// The batching knobs a worker should pop with right now.
  struct Knobs {
    std::size_t max_batch = 1;
    std::chrono::microseconds batch_deadline{0};
    bool degraded = false;
  };

  OverloadController(std::size_t base_max_batch,
                     std::chrono::microseconds base_linger,
                     OverloadPolicy policy = {});

  /// Feed one queue-depth observation (a worker, just before popping) and
  /// get the knobs for the next batch.
  [[nodiscard]] Knobs observe(std::size_t queue_depth) LP_EXCLUDES(mu_);

  /// Current knobs without feeding an observation.
  [[nodiscard]] Knobs knobs() const LP_EXCLUDES(mu_);
  [[nodiscard]] bool degraded() const LP_EXCLUDES(mu_);
  /// Times the controller entered / left the degraded state.
  [[nodiscard]] std::uint64_t degrade_events() const LP_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t restore_events() const LP_EXCLUDES(mu_);

 private:
  [[nodiscard]] Knobs knobs_locked() const LP_REQUIRES(mu_);

  const std::size_t base_max_batch_;
  const std::chrono::microseconds base_linger_;
  const OverloadPolicy policy_;

  mutable Mutex mu_;
  bool degraded_ LP_GUARDED_BY(mu_) = false;
  int pressure_streak_ LP_GUARDED_BY(mu_) = 0;
  int clear_streak_ LP_GUARDED_BY(mu_) = 0;
  std::uint64_t degrade_events_ LP_GUARDED_BY(mu_) = 0;
  std::uint64_t restore_events_ LP_GUARDED_BY(mu_) = 0;
};

}  // namespace lp::serve
