#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "runtime/session.h"
#include "util/check.h"

namespace lp::serve {

using Clock = std::chrono::steady_clock;

Server::Server(const runtime::SnapshotPublisher& publisher, ServerOptions opts)
    : publisher_(&publisher), opts_(opts) {
  LP_CHECK(opts_.workers >= 1);
  LP_CHECK(opts_.max_batch >= 1);
  LP_CHECK(opts_.batch_deadline.count() >= 0);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(Tensor input) {
  std::future<Response> fut = queue_.push(std::move(input));
  requests_.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

void Server::shutdown() {
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ServerStats Server::stats() const {
  ServerStats st;
  st.requests = requests_.load(std::memory_order_relaxed);
  st.responses = responses_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  st.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  st.max_batch_rows = max_batch_rows_.load(std::memory_order_relaxed);
  return st;
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Request> batch =
        queue_.pop_batch(opts_.max_batch, opts_.batch_deadline);
    if (batch.empty()) return;  // closed and drained
    serve_batch(std::move(batch));
  }
}

void Server::serve_batch(std::vector<Request> batch) {
  const auto popped = Clock::now();
  try {
    // Acquire once per batch: this pins the snapshot for the whole fused
    // forward, so a concurrent hot-swap cannot tear it.
    const runtime::ServablePtr m = publisher_->acquire();
    LP_CHECK_MSG(m != nullptr, "no model published — set_formats() first");

    std::vector<Tensor> inputs;
    inputs.reserve(batch.size());
    for (Request& r : batch) inputs.push_back(std::move(r.input));
    const Tensor stacked = runtime::stack_batches(inputs);
    const std::int64_t total_rows = stacked.dim(0);

    const Tensor logits = m->run(stacked).logits;
    const auto done = Clock::now();
    const auto compute =
        std::chrono::duration_cast<std::chrono::microseconds>(done - popped);
    LP_CHECK(logits.dim(0) == total_rows);
    const std::int64_t classes = logits.numel() / total_rows;

    // Split the stacked logits back into per-request row slices, in the
    // same arrival order stack_batches packed them.
    std::int64_t row = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::int64_t rows_i = inputs[i].dim(0);
      Response resp;
      resp.logits = Tensor({rows_i, classes});
      std::copy_n(logits.raw() + row * classes, rows_i * classes,
                  resp.logits.raw());
      row += rows_i;
      resp.model_version = m->version();
      resp.batch_rows = total_rows;
      resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
          popped - batch[i].enqueued);
      resp.compute = compute;
      batch[i].promise.set_value(std::move(resp));
      responses_.fetch_add(1, std::memory_order_relaxed);
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_rows_.fetch_add(static_cast<std::uint64_t>(total_rows),
                            std::memory_order_relaxed);
    std::uint64_t prev = max_batch_rows_.load(std::memory_order_relaxed);
    while (prev < static_cast<std::uint64_t>(total_rows) &&
           !max_batch_rows_.compare_exchange_weak(
               prev, static_cast<std::uint64_t>(total_rows),
               std::memory_order_relaxed)) {
    }
  } catch (...) {
    // A bad request (shape mismatch in the stack) or missing model fails
    // the whole batch — every submitter sees the error, none hangs.
    for (Request& r : batch) {
      r.promise.set_exception(std::current_exception());
      responses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace lp::serve
