#include "serve/server.h"

#include <algorithm>
#include <map>
#include <utility>

#include "runtime/session.h"
#include "util/check.h"

namespace lp::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Map the exception in flight to a response status.  Shape/validation
/// failures (LP_CHECK throws std::invalid_argument) are the client's
/// fault; everything else — injected faults included — is the server's.
std::pair<ServeStatus, std::string> classify_current_exception() {
  try {
    throw;
  } catch (const std::invalid_argument& e) {
    return {ServeStatus::kInvalidRequest, e.what()};
  } catch (const std::exception& e) {
    return {ServeStatus::kInternal, e.what()};
  } catch (...) {
    return {ServeStatus::kInternal, "unknown serving error"};
  }
}

}  // namespace

Server::Server(const runtime::SnapshotPublisher& publisher, ServerOptions opts)
    : publisher_(&publisher),
      opts_(opts),
      queue_(QueueOptions{opts.queue_depth, opts.admission_wait}),
      overload_(opts.max_batch, opts.batch_deadline, opts.overload) {
  LP_CHECK(opts_.workers >= 1);
  LP_CHECK(opts_.max_batch >= 1);
  LP_CHECK(opts_.batch_deadline.count() >= 0);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(Tensor input,
                                     std::chrono::microseconds deadline) {
  std::future<Response> fut = queue_.push(std::move(input), deadline);
  requests_.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

void Server::shutdown() {
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void Server::cancel() {
  queue_.cancel();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ServerStats Server::stats() const {
  ServerStats st;
  st.requests = requests_.load(std::memory_order_relaxed);
  st.responses = responses_.load(std::memory_order_relaxed);
  st.failures = failures_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  st.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  st.max_batch_rows = max_batch_rows_.load(std::memory_order_relaxed);
  return st;
}

ServerHealth Server::health() const {
  ServerHealth h;
  h.queue_depth = queue_.depth();
  h.degraded = overload_.degraded();
  const QueueCounters qc = queue_.counters();
  h.accepted = qc.accepted;
  h.shed = qc.shed;
  h.expired = qc.expired;
  h.cancelled = qc.cancelled;
  h.degrade_events = overload_.degrade_events();
  h.restore_events = overload_.restore_events();
  h.estimated_wait = queue_.estimated_wait();
  h.wait_p50 = queue_.wait_quantile(0.5);
  h.wait_p99 = queue_.wait_quantile(0.99);
  return h;
}

void Server::worker_loop() {
  for (;;) {
    OverloadController::Knobs knobs;
    if (opts_.degrade) {
      knobs = overload_.observe(queue_.depth());
    } else {
      knobs.max_batch = opts_.max_batch;
      knobs.batch_deadline = opts_.batch_deadline;
    }
    std::vector<Request> batch =
        queue_.pop_batch(knobs.max_batch, knobs.batch_deadline);
    if (batch.empty()) return;  // closed and drained
    serve_batch(std::move(batch), knobs.degraded);
  }
}

void Server::resolve(Request& req, Response resp) {
  if (!resp.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  req.promise.set_value(std::move(resp));
  responses_.fetch_add(1, std::memory_order_relaxed);
}

void Server::serve_batch(std::vector<Request> batch, bool degraded) {
  const auto popped = Clock::now();
  // Acquire once per batch: this pins the snapshot for the whole fused
  // forward, so a concurrent hot-swap cannot tear it.
  const runtime::ServablePtr m = publisher_->acquire();
  if (m == nullptr) {
    for (Request& r : batch) {
      Response resp;
      resp.status = ServeStatus::kInternal;
      resp.error = "no model published — set_formats() first";
      resp.degraded = degraded;
      resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
          popped - r.enqueued);
      resolve(r, std::move(resp));
    }
    return;
  }

  std::vector<Tensor> inputs;
  inputs.reserve(batch.size());
  for (Request& r : batch) inputs.push_back(std::move(r.input));

  // Partition into stackable groups by trailing shape (everything after
  // the row dim), preserving arrival order within a group and
  // first-arrival order across groups.  In the common case this is one
  // group spanning the whole batch; a request with an odd shape lands in
  // its own group, so it can only fail itself.
  std::map<std::vector<std::int64_t>, std::size_t> group_of;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::vector<std::int64_t> tail(inputs[i].shape().begin() + 1,
                                   inputs[i].shape().end());
    const auto [it, fresh] = group_of.emplace(std::move(tail), groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  for (const std::vector<std::size_t>& idx : groups) {
    serve_group(*m, batch, idx, inputs, popped, degraded);
  }
}

void Server::serve_group(const runtime::ServableModel& m,
                         std::vector<Request>& batch,
                         const std::vector<std::size_t>& idx,
                         std::vector<Tensor>& inputs,
                         Clock::time_point popped, bool degraded) {
  // Move this group's tensors out of the batch-wide list; on a fused
  // failure the serial retry below reuses them.
  std::vector<Tensor> gin;
  gin.reserve(idx.size());
  for (const std::size_t i : idx) gin.push_back(std::move(inputs[i]));

  const auto note_forward = [this](std::int64_t rows) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_rows_.fetch_add(static_cast<std::uint64_t>(rows),
                            std::memory_order_relaxed);
    std::uint64_t prev = max_batch_rows_.load(std::memory_order_relaxed);
    while (prev < static_cast<std::uint64_t>(rows) &&
           !max_batch_rows_.compare_exchange_weak(
               prev, static_cast<std::uint64_t>(rows),
               std::memory_order_relaxed)) {
    }
  };
  const auto ok_response = [&](const Tensor& logits, std::int64_t row,
                               std::int64_t rows_i, std::int64_t total_rows,
                               std::chrono::microseconds compute,
                               const Request& req) {
    const std::int64_t classes = logits.numel() / total_rows;
    Response resp;
    resp.logits = Tensor({rows_i, classes});
    std::copy_n(logits.raw() + row * classes, rows_i * classes,
                resp.logits.raw());
    resp.model_version = m.version();
    resp.batch_rows = total_rows;
    resp.degraded = degraded;
    resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
        popped - req.enqueued);
    resp.compute = compute;
    return resp;
  };
  const auto fail_current = [&](Request& req) {
    const auto [status, what] = classify_current_exception();
    Response resp;
    resp.status = status;
    resp.error = what;
    resp.degraded = degraded;
    resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
        popped - req.enqueued);
    resolve(req, std::move(resp));
  };

  try {
    const Tensor stacked = runtime::stack_batches(gin);
    const std::int64_t total_rows = stacked.dim(0);
    const auto started = Clock::now();
    const Tensor logits = m.run(stacked).logits;
    const auto compute = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - started);
    LP_CHECK(logits.dim(0) == total_rows);

    // Split the stacked logits back into per-request row slices, in the
    // same arrival order stack_batches packed them.
    std::int64_t row = 0;
    for (std::size_t j = 0; j < idx.size(); ++j) {
      const std::int64_t rows_j = gin[j].dim(0);
      resolve(batch[idx[j]], ok_response(logits, row, rows_j, total_rows,
                                         compute, batch[idx[j]]));
      row += rows_j;
    }
    note_forward(total_rows);
    return;
  } catch (...) {
    if (idx.size() == 1) {
      fail_current(batch[idx[0]]);
      return;
    }
  }

  // The fused forward failed with more than one request aboard.  Retry
  // each serially: the row-independence contract makes a lone re-run
  // bit-identical to the rows it would have produced in the fused batch,
  // so innocents still get exactly their answer — only the request whose
  // input (or whose turn at an injected fault) caused the failure fails.
  for (std::size_t j = 0; j < idx.size(); ++j) {
    Request& req = batch[idx[j]];
    try {
      const std::int64_t rows_j = gin[j].dim(0);
      const auto started = Clock::now();
      const Tensor logits = m.run(gin[j]).logits;
      const auto compute =
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                started);
      LP_CHECK(logits.dim(0) == rows_j);
      resolve(req, ok_response(logits, 0, rows_j, rows_j, compute, req));
      note_forward(rows_j);
    } catch (...) {
      fail_current(req);
    }
  }
}

}  // namespace lp::serve
