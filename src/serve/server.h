// Server — the serving layer of the multi-tenant core.
//
// Three layers (see README "Serving"):
//
//   control plane   InferenceSession — owns caches, prepares snapshots,
//                   publishes ServableModels (runtime/session.h)
//   shared layer    ServableModel behind a SnapshotPublisher — immutable,
//                   refcounted, hot-swappable (runtime/servable_model.h)
//   per-request     this file — a RequestQueue coalescing single-sample
//                   requests into fused batches, worker threads executing
//                   them against whatever snapshot is published
//
// The server never touches the session's caches: each worker acquire()s a
// strong ServableModel reference per batch, so a set_formats() hot-swap
// mid-serve is safe — in-flight batches finish on the snapshot they
// acquired, the next batch picks up the replacement, and every response
// carries the version that served it.
//
// Determinism: batch composition is timing-dependent (that is the point
// of dynamic batching), but responses are not — each request's logits
// rows are bit-identical to a serial session.run() of the same input
// against the same published version, because the batched forward is
// row-independent (tests/test_serve.cpp pins this under 8+ concurrent
// clients across a mid-serve hot-swap).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "runtime/servable_model.h"
#include "serve/request_queue.h"

namespace lp::serve {

struct ServerOptions {
  /// Worker threads popping batches.  Each batch's forward already fans
  /// out across the shared compute pool, so one worker saturates compute;
  /// more workers overlap queue/stacking latency with compute.
  int workers = 1;
  /// Row cap per fused batch.
  std::size_t max_batch = 8;
  /// How long a worker lingers for stragglers after popping the first
  /// request of a batch.  0 = dispatch immediately (batch-per-request
  /// unless a backlog already formed).
  std::chrono::microseconds batch_deadline{200};
};

/// Monotonic serving counters (relaxed atomics — snapshot, not invariant).
struct ServerStats {
  std::uint64_t requests = 0;      ///< submitted
  std::uint64_t responses = 0;     ///< fulfilled (incl. exceptional)
  std::uint64_t batches = 0;       ///< fused forwards executed
  std::uint64_t batched_rows = 0;  ///< total rows across those forwards
  std::uint64_t max_batch_rows = 0;  ///< largest single fused batch
};

class Server {
 public:
  /// `publisher` must outlive the server (it is owned by the session).
  /// Workers start immediately; submits before the first publish fail
  /// with an exception on the future, not a crash.
  explicit Server(const runtime::SnapshotPublisher& publisher,
                  ServerOptions opts = {});
  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one request.  `input` is [rows, ...] — shape single samples
  /// [1, ...].  The future resolves to this request's logits rows plus
  /// serving metadata, or to an exception if the batch failed (bad shape,
  /// no published model).
  [[nodiscard]] std::future<Response> submit(Tensor input);

  /// Stop accepting requests, serve everything already queued, join the
  /// workers.  Idempotent.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  void worker_loop();
  void serve_batch(std::vector<Request> batch);

  const runtime::SnapshotPublisher* publisher_;
  ServerOptions opts_;
  RequestQueue queue_;
  /// No mutex of its own: all mutable shared state lives behind the
  /// queue's capability (request_queue.h) and the publisher's
  /// (servable_model.h); workers_ is written in the constructor and
  /// joined in shutdown() only, and the counters below are relaxed
  /// atomics.  scripts/lint_invariants.py allows raw std::thread in
  /// exactly this file and thread_pool.cpp — everything else must go
  /// through the pool.
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};
  std::atomic<std::uint64_t> max_batch_rows_{0};
};

}  // namespace lp::serve
