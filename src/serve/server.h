// Server — the serving layer of the multi-tenant core.
//
// Three layers (see README "Serving"):
//
//   control plane   InferenceSession — owns caches, prepares snapshots,
//                   publishes ServableModels (runtime/session.h)
//   shared layer    ServableModel behind a SnapshotPublisher — immutable,
//                   refcounted, hot-swappable (runtime/servable_model.h)
//   per-request     this file — a RequestQueue coalescing single-sample
//                   requests into fused batches, worker threads executing
//                   them against whatever snapshot is published
//
// The server never touches the session's caches: each worker acquire()s a
// strong ServableModel reference per batch, so a set_formats() hot-swap
// mid-serve is safe — in-flight batches finish on the snapshot they
// acquired, the next batch picks up the replacement, and every response
// carries the version that served it.
//
// Overload hardening (docs/ROBUSTNESS.md):
//
//   * every future resolves with a Response whose ServeStatus says what
//     happened — no exception crosses the serving boundary, and no
//     future hangs, under any fault the chaos harness injects;
//   * admission control sheds at the queue (depth bound + estimated-wait
//     watermark) and per-request deadlines fail fast at pop, so overload
//     costs O(1) per rejected request instead of unbounded latency for
//     every request;
//   * an OverloadController widens the batching knobs under sustained
//     backlog (throughput over latency) and restores them when pressure
//     clears — responses served degraded say so;
//   * one bad request fails only its own future: requests are grouped by
//     stackable shape, and a group whose fused forward throws is retried
//     per-request serially, which is bit-identical for the innocent rows
//     (the runtime's row-independence contract).
//
// Determinism: batch composition is timing-dependent (that is the point
// of dynamic batching), but responses are not — each request's logits
// rows are bit-identical to a serial session.run() of the same input
// against the same published version, because the batched forward is
// row-independent (tests/test_serve.cpp pins this under 8+ concurrent
// clients across a mid-serve hot-swap; tests/test_chaos.cpp re-pins it
// with faults firing).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "runtime/servable_model.h"
#include "serve/overload.h"
#include "serve/request_queue.h"

namespace lp::serve {

struct ServerOptions {
  /// Worker threads popping batches.  Each batch's forward already fans
  /// out across the shared compute pool, so one worker saturates compute;
  /// more workers overlap queue/stacking latency with compute.
  int workers = 1;
  /// Row cap per fused batch (base knob; see `overload`).
  std::size_t max_batch = 8;
  /// How long a worker lingers for stragglers after popping the first
  /// request of a batch.  0 = dispatch immediately (batch-per-request
  /// unless a backlog already formed).  Base knob; see `overload`.
  std::chrono::microseconds batch_deadline{200};
  /// Admission control: queue depth bound (0 = unbounded) and
  /// estimated-wait watermark (0 = disabled) — see QueueOptions.
  std::size_t queue_depth = 1024;
  std::chrono::microseconds admission_wait{0};
  /// Graceful degradation under sustained backlog.  nullopt-free design:
  /// `degrade` switches the controller; the policy tunes it.
  bool degrade = true;
  OverloadPolicy overload;
};

/// Monotonic serving counters (relaxed atomics — snapshot, not invariant).
struct ServerStats {
  std::uint64_t requests = 0;      ///< submitted (incl. shed at admission)
  std::uint64_t responses = 0;     ///< futures resolved by workers
  std::uint64_t failures = 0;      ///< of those, status != kOk
  std::uint64_t batches = 0;       ///< fused forwards executed
  std::uint64_t batched_rows = 0;  ///< total rows across those forwards
  std::uint64_t max_batch_rows = 0;  ///< largest single fused batch
};

/// One coherent liveness snapshot for monitoring — queue pressure,
/// admission outcomes, and degradation state in a single read.
struct ServerHealth {
  std::size_t queue_depth = 0;
  bool degraded = false;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;       ///< rejected kOverloaded at admission
  std::uint64_t expired = 0;    ///< failed kDeadlineExceeded
  std::uint64_t cancelled = 0;  ///< failed kShutdown by cancel()
  std::uint64_t degrade_events = 0;
  std::uint64_t restore_events = 0;
  std::chrono::microseconds estimated_wait{0};  ///< EWMA queue wait
  std::chrono::microseconds wait_p50{0};
  std::chrono::microseconds wait_p99{0};
};

class Server {
 public:
  /// `publisher` must outlive the server (it is owned by the session).
  /// Workers start immediately; submits before the first publish resolve
  /// with ServeStatus::kInternal, not a crash.
  explicit Server(const runtime::SnapshotPublisher& publisher,
                  ServerOptions opts = {});
  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one request.  `input` is [rows, ...] — shape single samples
  /// [1, ...].  `deadline` is relative; 0 = none.  The future always
  /// resolves with a Response; check `Response::status` (admission
  /// rejections resolve immediately, kOk carries this request's logits
  /// rows plus serving metadata).
  [[nodiscard]] std::future<Response> submit(
      Tensor input, std::chrono::microseconds deadline =
                        std::chrono::microseconds{0});

  /// Stop accepting requests, serve everything already queued, join the
  /// workers.  Idempotent.
  void shutdown();

  /// Stop accepting requests and fail everything still queued with
  /// kShutdown (in-flight batches finish), then join.  Idempotent;
  /// shutdown() after cancel() is a no-op.
  void cancel();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] ServerHealth health() const;
  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  void worker_loop();
  void serve_batch(std::vector<Request> batch, bool degraded);
  /// Fused-forward one stackable group; on failure, retry each request
  /// serially so exactly the culpable ones fail.
  void serve_group(const runtime::ServableModel& m,
                   std::vector<Request>& batch,
                   const std::vector<std::size_t>& idx,
                   std::vector<Tensor>& inputs,
                   std::chrono::steady_clock::time_point popped,
                   bool degraded);
  void resolve(Request& req, Response resp);

  const runtime::SnapshotPublisher* publisher_;
  ServerOptions opts_;
  RequestQueue queue_;
  OverloadController overload_;
  /// No mutex of its own: all mutable shared state lives behind the
  /// queue's capability (request_queue.h), the controller's (overload.h),
  /// and the publisher's (servable_model.h); workers_ is written in the
  /// constructor and joined in shutdown() only, and the counters below
  /// are relaxed atomics.  scripts/lint_invariants.py allows raw
  /// std::thread in exactly this file and thread_pool.cpp — everything
  /// else must go through the pool.
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};
  std::atomic<std::uint64_t> max_batch_rows_{0};
};

}  // namespace lp::serve
