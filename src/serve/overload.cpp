#include "serve/overload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lp::serve {

OverloadController::OverloadController(std::size_t base_max_batch,
                                       std::chrono::microseconds base_linger,
                                       OverloadPolicy policy)
    : base_max_batch_(base_max_batch),
      base_linger_(base_linger),
      policy_(policy) {
  LP_CHECK(base_max_batch_ >= 1);
  LP_CHECK(base_linger_.count() >= 0);
  LP_CHECK_MSG(policy_.backlog_low < policy_.backlog_high,
               "overload watermarks must satisfy low < high");
  LP_CHECK(policy_.trip_after >= 1);
  LP_CHECK(policy_.restore_after >= 1);
  LP_CHECK(policy_.max_batch_scale >= 1.0);
  LP_CHECK(policy_.linger_scale >= 1.0);
}

OverloadController::Knobs OverloadController::knobs_locked() const {
  Knobs k;
  k.degraded = degraded_;
  if (!degraded_) {
    k.max_batch = base_max_batch_;
    k.batch_deadline = base_linger_;
    return k;
  }
  k.max_batch = std::max<std::size_t>(
      base_max_batch_ + 1,
      static_cast<std::size_t>(
          std::llround(static_cast<double>(base_max_batch_) *
                       policy_.max_batch_scale)));
  k.batch_deadline = std::chrono::microseconds{
      std::llround(static_cast<double>(base_linger_.count()) *
                   policy_.linger_scale)};
  return k;
}

OverloadController::Knobs OverloadController::observe(std::size_t queue_depth) {
  const MutexLock lk(mu_);
  if (queue_depth >= policy_.backlog_high) {
    clear_streak_ = 0;
    if (!degraded_ && ++pressure_streak_ >= policy_.trip_after) {
      degraded_ = true;
      pressure_streak_ = 0;
      ++degrade_events_;
    }
  } else if (queue_depth <= policy_.backlog_low) {
    pressure_streak_ = 0;
    if (degraded_ && ++clear_streak_ >= policy_.restore_after) {
      degraded_ = false;
      clear_streak_ = 0;
      ++restore_events_;
    }
  } else {
    // Hysteresis band: neither pressure nor clear accumulates here, so a
    // depth hovering between the watermarks holds the current state.
    pressure_streak_ = 0;
    clear_streak_ = 0;
  }
  return knobs_locked();
}

OverloadController::Knobs OverloadController::knobs() const {
  const MutexLock lk(mu_);
  return knobs_locked();
}

bool OverloadController::degraded() const {
  const MutexLock lk(mu_);
  return degraded_;
}

std::uint64_t OverloadController::degrade_events() const {
  const MutexLock lk(mu_);
  return degrade_events_;
}

std::uint64_t OverloadController::restore_events() const {
  const MutexLock lk(mu_);
  return restore_events_;
}

}  // namespace lp::serve
