#include "serve/request_queue.h"

#include <utility>

#include "util/check.h"

namespace lp::serve {

std::future<Response> RequestQueue::push(Tensor input) {
  LP_CHECK_MSG(input.rank() >= 2,
               "serve requests are [rows, ...] tensors; shape a single "
               "sample [1, ...]");
  Request req;
  req.input = std::move(input);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Response> fut = req.promise.get_future();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    LP_CHECK_MSG(!closed_, "push on a closed RequestQueue");
    q_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

std::vector<Request> RequestQueue::pop_batch(
    std::size_t max_batch, std::chrono::microseconds deadline) {
  LP_CHECK(max_batch >= 1);
  std::vector<Request> batch;
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !q_.empty() || closed_; });
  if (q_.empty()) return batch;  // closed and drained

  auto take = [&] {
    batch.push_back(std::move(q_.front()));
    q_.pop_front();
  };
  take();
  // Linger for stragglers: up to `deadline` past the first take, refilling
  // from the queue as requests land, until the batch is full.
  const auto cutoff = std::chrono::steady_clock::now() + deadline;
  while (batch.size() < max_batch) {
    if (!q_.empty()) {
      take();
      continue;
    }
    if (closed_) break;
    if (cv_.wait_until(lk, cutoff, [&] { return !q_.empty() || closed_; })) {
      continue;  // re-check: either more work or closed
    }
    break;  // deadline expired with a partial batch — dispatch it
  }
  lk.unlock();
  // More work may remain for sibling workers.
  cv_.notify_one();
  return batch;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

}  // namespace lp::serve
