#include "serve/request_queue.h"

#include <utility>

#include "util/check.h"

namespace lp::serve {

std::future<Response> RequestQueue::push(Tensor input) {
  LP_CHECK_MSG(input.rank() >= 2,
               "serve requests are [rows, ...] tensors; shape a single "
               "sample [1, ...]");
  Request req;
  req.input = std::move(input);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Response> fut = req.promise.get_future();
  {
    const MutexLock lk(mu_);
    LP_CHECK_MSG(!closed_, "push on a closed RequestQueue");
    q_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

std::vector<Request> RequestQueue::pop_batch(
    std::size_t max_batch, std::chrono::microseconds deadline) {
  LP_CHECK(max_batch >= 1);
  std::vector<Request> batch;
  MutexLock lk(mu_);
  // Explicit wait loops throughout (not predicate lambdas): the guarded
  // reads stay in this locked scope, where the analysis can check them.
  while (q_.empty() && !closed_) cv_.wait(lk);
  if (q_.empty()) {
    lk.unlock();
    return batch;  // closed and drained
  }

  batch.push_back(std::move(q_.front()));
  q_.pop_front();
  // Linger for stragglers: up to `deadline` past the first take, refilling
  // from the queue as requests land, until the batch is full.
  const auto cutoff = std::chrono::steady_clock::now() + deadline;
  while (batch.size() < max_batch) {
    if (!q_.empty()) {
      batch.push_back(std::move(q_.front()));
      q_.pop_front();
      continue;
    }
    if (closed_) break;
    if (cv_.wait_until(lk, cutoff) == std::cv_status::timeout && q_.empty()) {
      break;  // deadline expired with a partial batch — dispatch it
    }
    // Re-check: either more work, a straggler beat the timeout, or closed.
  }
  lk.unlock();
  // More work may remain for sibling workers.
  cv_.notify_one();
  return batch;
}

void RequestQueue::close() {
  {
    const MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  const MutexLock lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  const MutexLock lk(mu_);
  return q_.size();
}

}  // namespace lp::serve
