#include "serve/request_queue.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace lp::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// A future already resolved with a failure Response — what push()
/// returns when the request never enters the queue.
std::future<Response> resolved_failure(ServeStatus status,
                                       const std::string& error) {
  std::promise<Response> p;
  Response resp;
  resp.status = status;
  resp.error = error;
  p.set_value(std::move(resp));
  return p.get_future();
}

}  // namespace

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kInvalidRequest: return "invalid-request";
    case ServeStatus::kInternal: return "internal";
    case ServeStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

void fail_request(Request& req, ServeStatus status, const std::string& error) {
  Response resp;
  resp.status = status;
  resp.error = error;
  resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - req.enqueued);
  req.promise.set_value(std::move(resp));
}

RequestQueue::RequestQueue(QueueOptions opts) : opts_(opts) {
  LP_CHECK(opts_.max_estimated_wait.count() >= 0);
}

void RequestQueue::note_wait_locked(std::chrono::microseconds wait) {
  const auto us = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(wait).count()));
  // EWMA with alpha = 1/8: new = old + (sample - old) / 8, in integer µs.
  // Signed intermediate so samples below the average pull it down.
  const auto old = static_cast<std::int64_t>(ewma_wait_us_);
  ewma_wait_us_ = static_cast<std::uint64_t>(
      old + (static_cast<std::int64_t>(us) - old) / 8);
  const auto bucket = std::min<std::size_t>(
      kWaitBuckets - 1, static_cast<std::size_t>(std::bit_width(us)));
  ++wait_hist_[bucket];
}

std::future<Response> RequestQueue::push(Tensor input,
                                         std::chrono::microseconds deadline) {
  if (input.rank() < 2) {
    std::ostringstream os;
    os << "serve requests are [rows, ...] tensors (shape a single sample "
          "[1, ...]); got rank "
       << input.rank();
    return resolved_failure(ServeStatus::kInvalidRequest, os.str());
  }
  const auto now = Clock::now();
  Request req;
  req.input = std::move(input);
  req.enqueued = now;
  if (deadline.count() > 0) req.deadline = now + deadline;
  std::future<Response> fut = req.promise.get_future();
  {
    const MutexLock lk(mu_);
    if (closed_) {
      return resolved_failure(ServeStatus::kShutdown,
                              "push on a closed RequestQueue");
    }
    if (deadline.count() < 0) {
      ++counters_.expired;
      return resolved_failure(ServeStatus::kDeadlineExceeded,
                              "deadline expired before admission");
    }
    if (opts_.max_depth > 0 && q_.size() >= opts_.max_depth) {
      ++counters_.shed;
      std::ostringstream os;
      os << "queue depth bound " << opts_.max_depth << " reached";
      return resolved_failure(ServeStatus::kOverloaded, os.str());
    }
    if (opts_.max_estimated_wait.count() > 0 && !q_.empty() &&
        ewma_wait_us_ >
            static_cast<std::uint64_t>(opts_.max_estimated_wait.count())) {
      ++counters_.shed;
      std::ostringstream os;
      os << "estimated queue wait " << ewma_wait_us_
         << "us exceeds admission watermark "
         << opts_.max_estimated_wait.count() << "us";
      return resolved_failure(ServeStatus::kOverloaded, os.str());
    }
    ++counters_.accepted;
    q_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

std::vector<Request> RequestQueue::pop_batch(std::size_t max_batch,
                                             std::chrono::microseconds linger) {
  LP_CHECK(max_batch >= 1);
  std::vector<Request> batch;
  MutexLock lk(mu_);
  // Explicit wait loops throughout (not predicate lambdas): the guarded
  // reads stay in this locked scope, where the analysis can check them.
  Clock::time_point cutoff{};  // set when the first live request is taken
  while (batch.size() < max_batch) {
    if (!q_.empty()) {
      Request r = std::move(q_.front());
      q_.pop_front();
      const auto now = Clock::now();
      note_wait_locked(std::chrono::duration_cast<std::chrono::microseconds>(
          now - r.enqueued));
      if (r.deadline <= now) {
        // Fail fast under the lock — an expired request never occupies a
        // batch slot or a compute cycle.  set_value only stores + wakes
        // the submitter; it cannot call back into the queue.
        ++counters_.expired;
        fail_request(r, ServeStatus::kDeadlineExceeded,
                     "deadline expired while queued");
        continue;
      }
      if (batch.empty()) cutoff = now + linger;
      batch.push_back(std::move(r));
      continue;
    }
    if (closed_) break;
    if (batch.empty()) {
      cv_.wait(lk);  // nothing taken yet — no linger clock to run down
      continue;
    }
    // Linger for stragglers: up to `linger` past the first take, refilling
    // from the queue as requests land, until the batch is full.
    if (cv_.wait_until(lk, cutoff) == std::cv_status::timeout && q_.empty()) {
      break;  // linger expired with a partial batch — dispatch it
    }
    // Re-check: either more work, a straggler beat the timeout, or closed.
  }
  lk.unlock();
  // More work may remain for sibling workers.
  cv_.notify_one();
  return batch;
}

void RequestQueue::close() {
  {
    const MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::cancel() {
  std::deque<Request> dropped;
  {
    const MutexLock lk(mu_);
    closed_ = true;
    dropped.swap(q_);
    counters_.cancelled += dropped.size();
  }
  cv_.notify_all();
  for (Request& r : dropped) {
    fail_request(r, ServeStatus::kShutdown, "request cancelled at shutdown");
  }
}

bool RequestQueue::closed() const {
  const MutexLock lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  const MutexLock lk(mu_);
  return q_.size();
}

QueueCounters RequestQueue::counters() const {
  const MutexLock lk(mu_);
  return counters_;
}

std::chrono::microseconds RequestQueue::estimated_wait() const {
  const MutexLock lk(mu_);
  return std::chrono::microseconds{
      static_cast<std::int64_t>(ewma_wait_us_)};
}

std::chrono::microseconds RequestQueue::wait_quantile(double q) const {
  LP_CHECK(q >= 0.0 && q <= 1.0);
  const MutexLock lk(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t c : wait_hist_) total += c;
  if (total == 0) return std::chrono::microseconds{0};
  // Rank of the quantile sample, 1-based: the smallest bucket whose
  // cumulative count reaches it holds the answer.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kWaitBuckets; ++b) {
    seen += wait_hist_[b];
    if (seen >= target) {
      // Upper bound of bucket b: waits with bit_width == b, i.e. < 2^b µs.
      return std::chrono::microseconds{
          b == 0 ? 0 : (std::int64_t{1} << b) - 1};
    }
  }
  return std::chrono::microseconds{(std::int64_t{1} << (kWaitBuckets - 1))};
}

}  // namespace lp::serve
