// RequestQueue — the per-request layer's front door, with admission
// control.
//
// Single-sample inference requests arrive one at a time, but the LPQ
// datapath amortizes per-layer format-table lookups and activation
// quantization across batch rows (runtime::stack_batches + one fused
// forward).  The queue therefore coalesces: a worker popping a batch
// takes everything already waiting, then lingers up to a configurable
// deadline for stragglers before dispatching, bounded by a max batch
// size.  That deadline is the classic latency/throughput knob — zero
// degenerates to batch-per-request, larger values trade p50 latency for
// fused-GEMM throughput.
//
// Overload hardening (this layer's second job): an unbounded queue turns
// overload into unbounded latency — every request eventually computes,
// long after its caller stopped caring.  This queue instead *sheds*: a
// push past the configured depth bound, or while the observed queue wait
// exceeds the admission watermark, resolves immediately with
// ServeStatus::kOverloaded and costs no compute.  Requests may also carry
// a deadline; one that expires while queued is failed with
// kDeadlineExceeded at pop time — fast, and never computed.
//
// Failure is a value, not an exception: every future from push()
// resolves with a Response whose `status` says what happened.  A bad
// request, a shed, an expired deadline, or a shutdown each fail exactly
// that request's future; nothing hangs and nothing throws across the
// queue boundary.
//
// Each request carries a promise; the popped worker fulfills it with the
// logits rows belonging to that request plus serving metadata (which
// model version served it, how long it queued, how big the fused batch
// was).  Batch composition never affects the numbers: the batched
// forward is bit-identical per row to a per-sample run (the runtime's
// determinism contract, pinned by tests/test_runtime.cpp), so dynamic
// batching is an invisible performance optimization.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/thread_annotations.h"

namespace lp::serve {

/// How a request's future resolved.  Mirrors the usual RPC taxonomy so a
/// client can switch on the class of failure without parsing text.
enum class ServeStatus {
  kOk = 0,
  kDeadlineExceeded,  ///< request deadline passed while queued
  kOverloaded,        ///< shed at admission: queue full or wait watermark
  kInvalidRequest,    ///< bad shape (this request only — batch unaffected)
  kInternal,          ///< server-side failure (no model, injected fault)
  kShutdown,          ///< queue closed/cancelled before this request ran
};

[[nodiscard]] const char* to_string(ServeStatus status);

/// What a client's future resolves to.  `status` is the first thing to
/// check: on anything but kOk, `logits` is empty and `error` says why.
struct Response {
  ServeStatus status = ServeStatus::kOk;
  std::string error;  ///< non-empty iff status != kOk
  Tensor logits;      ///< [rows, classes] — this request's rows only
  /// ServableModel::version() of the snapshot that served the request —
  /// lets clients correlate results with hot-swapped assignments.
  std::uint64_t model_version = 0;
  /// Total rows in the fused batch this request rode in.
  std::int64_t batch_rows = 0;
  /// True when the batch ran under widened (overload-degraded) batching
  /// knobs — see serve/overload.h.
  bool degraded = false;
  /// Time spent queued before a worker popped the request.
  std::chrono::microseconds queue_wait{0};
  /// Wall time of the fused forward that produced the logits.
  std::chrono::microseconds compute{0};

  [[nodiscard]] bool ok() const { return status == ServeStatus::kOk; }
};

/// One queued request: the input tensor plus the promise its submitter
/// holds the future of.
struct Request {
  Tensor input;  ///< [rows, ...]; dim 0 is this request's row count
  std::promise<Response> promise;
  std::chrono::steady_clock::time_point enqueued;
  /// Absolute expiry; time_point::max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Resolve `req` with a failure Response (status + error text).  The
/// queue wait is stamped from `req.enqueued`.  Exposed for the server,
/// which owns popped requests.
void fail_request(Request& req, ServeStatus status, const std::string& error);

struct QueueOptions {
  /// Depth bound: a push that would make the queue deeper than this sheds
  /// with kOverloaded.  0 = unbounded (the pre-hardening behavior).
  std::size_t max_depth = 0;
  /// Admission watermark: while the exponentially-weighted average of
  /// recently observed queue waits exceeds this, new pushes shed with
  /// kOverloaded (the queue is already serving requests later than this
  /// bound — adding more only makes every wait worse).  0 = disabled.
  std::chrono::microseconds max_estimated_wait{0};
};

/// Monotonic admission/expiry counters (snapshot, not invariant).
struct QueueCounters {
  std::uint64_t accepted = 0;   ///< pushes that entered the queue
  std::uint64_t shed = 0;       ///< pushes rejected kOverloaded
  std::uint64_t expired = 0;    ///< requests failed kDeadlineExceeded
  std::uint64_t cancelled = 0;  ///< pending requests failed by cancel()
};

class RequestQueue {
 public:
  explicit RequestQueue(QueueOptions opts = {});

  /// Enqueue an input and return the future its response arrives on.
  /// Never throws for per-request conditions: a rank-<2 input, a closed
  /// queue, an already-expired deadline, or an admission rejection each
  /// return an immediately-resolved future carrying the matching
  /// ServeStatus.  `deadline` is relative to now; 0 = no deadline.
  [[nodiscard]] std::future<Response> push(
      Tensor input, std::chrono::microseconds deadline =
                        std::chrono::microseconds{0}) LP_EXCLUDES(mu_);

  /// Pop a coalesced batch: blocks until at least one live request (or
  /// the queue is closed), takes up to `max_batch` requests, and waits at
  /// most `linger` past the first take for more to arrive.  Requests
  /// whose deadline has passed are failed kDeadlineExceeded right here —
  /// they never occupy a batch slot.  Returns an empty vector only when
  /// the queue is closed and fully drained — the worker's exit signal.
  /// Live requests are returned strictly in arrival order.
  [[nodiscard]] std::vector<Request> pop_batch(
      std::size_t max_batch, std::chrono::microseconds linger)
      LP_EXCLUDES(mu_);

  /// Stop accepting pushes and wake every waiting popper.  Requests still
  /// queued remain poppable (shutdown drains, not drops).
  void close() LP_EXCLUDES(mu_);

  /// close() plus: fail every still-queued request with kShutdown.  For
  /// aborting a backlog that no longer matters; close() is the graceful
  /// variant.
  void cancel() LP_EXCLUDES(mu_);

  [[nodiscard]] bool closed() const LP_EXCLUDES(mu_);
  /// Requests currently waiting (diagnostic; racy by nature).
  [[nodiscard]] std::size_t depth() const LP_EXCLUDES(mu_);
  [[nodiscard]] QueueCounters counters() const LP_EXCLUDES(mu_);
  /// Current EWMA of observed queue waits — the admission estimate.
  [[nodiscard]] std::chrono::microseconds estimated_wait() const
      LP_EXCLUDES(mu_);
  /// Approximate quantile (q in [0,1]) of all observed queue waits, from
  /// a log2-bucketed histogram — upper bucket bound, so p50/p99 are
  /// conservative to within 2x.
  [[nodiscard]] std::chrono::microseconds wait_quantile(double q) const
      LP_EXCLUDES(mu_);

 private:
  /// Record one observed wait into the EWMA + histogram.
  void note_wait_locked(std::chrono::microseconds wait) LP_REQUIRES(mu_);

  static constexpr std::size_t kWaitBuckets = 40;  ///< log2 µs buckets

  const QueueOptions opts_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request> q_ LP_GUARDED_BY(mu_);
  bool closed_ LP_GUARDED_BY(mu_) = false;
  QueueCounters counters_ LP_GUARDED_BY(mu_);
  /// EWMA (alpha = 1/8) of queue waits observed at pop, in µs.
  std::uint64_t ewma_wait_us_ LP_GUARDED_BY(mu_) = 0;
  std::uint64_t wait_hist_[kWaitBuckets] LP_GUARDED_BY(mu_) = {};
};

}  // namespace lp::serve
