// RequestQueue — the per-request layer's front door.
//
// Single-sample inference requests arrive one at a time, but the LPQ
// datapath amortizes per-layer format-table lookups and activation
// quantization across batch rows (runtime::stack_batches + one fused
// forward).  The queue therefore coalesces: a worker popping a batch
// takes everything already waiting, then lingers up to a configurable
// deadline for stragglers before dispatching, bounded by a max batch
// size.  That deadline is the classic latency/throughput knob — zero
// degenerates to batch-per-request, larger values trade p50 latency for
// fused-GEMM throughput.
//
// Each request carries a promise; the popped worker fulfills it with the
// logits rows belonging to that request plus serving metadata (which
// model version served it, how long it queued, how big the fused batch
// was).  Batch composition never affects the numbers: the batched
// forward is bit-identical per row to a per-sample run (the runtime's
// determinism contract, pinned by tests/test_runtime.cpp), so dynamic
// batching is an invisible performance optimization.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "tensor/tensor.h"
#include "util/thread_annotations.h"

namespace lp::serve {

/// What a client's future resolves to.
struct Response {
  Tensor logits;  ///< [rows, classes] — this request's rows only
  /// ServableModel::version() of the snapshot that served the request —
  /// lets clients correlate results with hot-swapped assignments.
  std::uint64_t model_version = 0;
  /// Total rows in the fused batch this request rode in.
  std::int64_t batch_rows = 0;
  /// Time spent queued before a worker popped the request.
  std::chrono::microseconds queue_wait{0};
  /// Wall time of the fused forward that produced the logits.
  std::chrono::microseconds compute{0};
};

/// One queued request: the input tensor plus the promise its submitter
/// holds the future of.
struct Request {
  Tensor input;  ///< [rows, ...]; dim 0 is this request's row count
  std::promise<Response> promise;
  std::chrono::steady_clock::time_point enqueued;
};

class RequestQueue {
 public:
  /// Enqueue an input and return the future its response arrives on.
  /// Throws std::invalid_argument after close().
  [[nodiscard]] std::future<Response> push(Tensor input) LP_EXCLUDES(mu_);

  /// Pop a coalesced batch: blocks until at least one request (or the
  /// queue is closed), takes up to `max_batch` requests, and waits at
  /// most `deadline` past the first take for more to arrive.  Returns an
  /// empty vector only when the queue is closed and fully drained — the
  /// worker's exit signal.  Requests are returned strictly in arrival
  /// order.
  [[nodiscard]] std::vector<Request> pop_batch(
      std::size_t max_batch, std::chrono::microseconds deadline)
      LP_EXCLUDES(mu_);

  /// Stop accepting pushes and wake every waiting popper.  Requests still
  /// queued remain poppable (shutdown drains, not drops).
  void close() LP_EXCLUDES(mu_);

  [[nodiscard]] bool closed() const LP_EXCLUDES(mu_);
  /// Requests currently waiting (diagnostic; racy by nature).
  [[nodiscard]] std::size_t depth() const LP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request> q_ LP_GUARDED_BY(mu_);
  bool closed_ LP_GUARDED_BY(mu_) = false;
};

}  // namespace lp::serve
