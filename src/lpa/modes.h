// LPA precision modes (paper Section 5.1): each PE processes one 8-bit
// weight word that packs 4 / 2 / 1 weights depending on the mode.
#pragma once

#include <string>

#include "util/check.h"

namespace lp::lpa {

enum class Mode {
  kA,  ///< four 2-bit weights per word
  kB,  ///< two 4-bit weights per word
  kC,  ///< one 8-bit weight per word
};

/// Weights packed in one 8-bit word.
[[nodiscard]] constexpr int lanes(Mode m) {
  switch (m) {
    case Mode::kA: return 4;
    case Mode::kB: return 2;
    case Mode::kC: return 1;
  }
  return 1;
}

/// Weight width in bits.
[[nodiscard]] constexpr int weight_bits(Mode m) {
  switch (m) {
    case Mode::kA: return 2;
    case Mode::kB: return 4;
    case Mode::kC: return 8;
  }
  return 8;
}

/// Mode for a weight bit-width (hardware preset widths only).
[[nodiscard]] inline Mode mode_for_bits(int bits) {
  switch (bits) {
    case 2: return Mode::kA;
    case 4: return Mode::kB;
    case 8: return Mode::kC;
    default:
      LP_CHECK_MSG(false, "LPA supports 2/4/8-bit weights, got " << bits);
  }
}

[[nodiscard]] inline std::string mode_name(Mode m) {
  switch (m) {
    case Mode::kA: return "MODE-A(4x2b)";
    case Mode::kB: return "MODE-B(2x4b)";
    case Mode::kC: return "MODE-C(1x8b)";
  }
  return "?";
}

}  // namespace lp::lpa
