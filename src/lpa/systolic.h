// Functional model of the LPA systolic array: a GEMM computed element-wise
// through the bit-level PE datapath (decode -> log-domain multiply ->
// linear-domain accumulate).  Used to validate the datapath end-to-end
// against a floating-point reference; the *performance* model lives in
// src/sim (this function is exact but slow).
#pragma once

#include "core/lp_config.h"
#include "lpa/datapath.h"
#include "tensor/tensor.h"

namespace lp::lpa {

struct GemmStats {
  std::int64_t total_macs = 0;
  std::int64_t zero_skipped = 0;  ///< products skipped because a lane was 0
};

/// out[M,N] = Wq[M,K] * Xq[K,N] where Wq/Xq are the inputs quantized to the
/// given LP configs and the arithmetic is the PE datapath (log-domain
/// multiply, 8-bit converters, aligned linear accumulate).
[[nodiscard]] Tensor lpa_gemm(const Tensor& w, const Tensor& x,
                              const LPConfig& wcfg, const LPConfig& acfg,
                              GemmStats* stats = nullptr);

/// Reference: quantize both operands with the same code tables, then GEMM
/// in double precision.  The datapath result must match this within the
/// 8-bit converter tolerance.
[[nodiscard]] Tensor lpa_gemm_reference(const Tensor& w, const Tensor& x,
                                        const LPConfig& wcfg,
                                        const LPConfig& acfg);

}  // namespace lp::lpa
