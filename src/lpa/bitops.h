// Multi-precision bit primitives of the unified LP decoder (paper Fig. 4):
// a two's complementer and a leading-zero detector that operate on one
// 8-bit word interpreted as 4x2 / 2x4 / 1x8 sub-words depending on MODE.
// These are functional models of the mux-chained hardware blocks; tests
// check them against per-sub-word reference computations.
#pragma once

#include <array>
#include <cstdint>

#include "lpa/modes.h"

namespace lp::lpa {

/// Two's complement of each sub-word of `x` (Fig. 4(a)).
[[nodiscard]] std::uint8_t twos_complement_multi(std::uint8_t x, Mode mode);

/// Leading-zero count of each sub-word, MSB lane first (Fig. 4(b)).
/// Lane i of the result covers bits [8 - (i+1)*w, 8 - i*w) of the input.
/// Inactive lanes are 0.
[[nodiscard]] std::array<int, 4> leading_zeros_multi(std::uint8_t x, Mode mode);

/// Extract sub-word `lane` (0 = most significant lane).
[[nodiscard]] std::uint8_t extract_lane(std::uint8_t x, Mode mode, int lane);

/// Replace sub-word `lane` of `x`.
[[nodiscard]] std::uint8_t insert_lane(std::uint8_t x, Mode mode, int lane,
                                       std::uint8_t value);

}  // namespace lp::lpa
