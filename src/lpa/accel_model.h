// Area / energy / capability models of LPA and the baseline accelerators
// (ANT, BitFusion, AdaptivFloat, plus the mixed-precision posit PE of
// Table 4), calibrated at TSMC 28 nm with the component areas the paper
// reports in Table 3.  All designs share an 8x8 weight-stationary systolic
// array and a 512 kB on-chip buffer (4.2 mm^2).
//
// Capability semantics:
//  * packing(w)  — weights sharing one PE (LPA/posit multi-weight mapping);
//                  multiplies effective output columns.
//  * fusion(w)   — PEs ganged to form one higher-precision MAC
//                  (ANT/BitFusion); divides effective output columns.
#pragma once

#include <string>
#include <vector>

#include "util/check.h"

namespace lp::lpa {

enum class AccelKind { kLPA, kANT, kBitFusion, kAdaptivFloat, kPositPE };

struct AcceleratorModel {
  std::string name;
  AccelKind kind = AccelKind::kLPA;
  int rows = 8;
  int cols = 8;
  double freq_ghz = 1.0;

  // --- area (um^2 unless noted), 28 nm ---
  double pe_area_um2 = 0.0;
  double decoder_area_um2 = 0.0;
  int decoder_units = 0;
  double encoder_area_um2 = 0.0;
  int encoder_units = 0;
  double buffer_mm2 = 4.2;  ///< 512 kB on-chip buffer

  // --- energy (pJ) ---
  double mac_energy_pj = 0.0;      ///< per native-precision PE operation
  double decode_energy_pj = 0.0;   ///< per decoded value
  double encode_energy_pj = 0.0;   ///< per encoded output
  double sram_pj_per_byte = 1.0;
  double dram_pj_per_byte = 16.0;

  // --- supported operand widths ---
  // Weight widths the PEs execute natively; the cycle simulator also bounds
  // activation widths by this list (sim::simulate snaps requested
  // activation bits against it).
  std::vector<int> widths;

  [[nodiscard]] bool supports(int w_bits) const;

  /// Weights mapped per PE at this precision (>= 1; 1 for non-packing PEs).
  [[nodiscard]] int packing(int w_bits) const;

  /// PEs ganged per effective MAC at this precision (>= 1).
  [[nodiscard]] int fusion(int w_bits) const;

  /// Effective MACs per cycle at this precision.
  [[nodiscard]] int macs_per_cycle(int w_bits) const;

  /// Energy of one effective MAC at this precision (scales with ganged
  /// PEs for fused designs and is amortized across packed weights for
  /// packing designs).
  [[nodiscard]] double mac_energy(int w_bits) const;

  [[nodiscard]] double compute_area_um2() const;
  [[nodiscard]] double compute_area_mm2() const { return compute_area_um2() / 1e6; }
  [[nodiscard]] double total_area_mm2() const {
    return buffer_mm2 + compute_area_mm2();
  }
  /// Peak throughput in GOPS (2 ops per MAC) at a given weight width.
  [[nodiscard]] double peak_gops(int w_bits) const;
};

/// The proposed design: 2/4/8-bit LP PEs with MODE packing.
[[nodiscard]] AcceleratorModel make_lpa();
/// ANT (MICRO'22): 4-bit flint/int PEs, pairs fused for 8-bit.
[[nodiscard]] AcceleratorModel make_ant();
/// BitFusion (ISCA'18): 2-bit bricks, 2/4 ganged for 4/8-bit.
[[nodiscard]] AcceleratorModel make_bitfusion();
/// AdaptivFloat (DAC'20): fixed 8-bit hybrid-float PEs.
[[nodiscard]] AcceleratorModel make_adaptivfloat();
/// Mixed-precision posit PE (Table 4 ablation): packing like LPA but a
/// linear-domain posit MAC (larger, slower per area).
[[nodiscard]] AcceleratorModel make_posit_pe();

/// DeepScale-style technology scaling of area between nodes (ISCAS'21):
/// area scales roughly with the square of the feature-size ratio.
[[nodiscard]] double scale_area_um2(double area_um2, double from_nm, double to_nm);

}  // namespace lp::lpa
