// LPA PE datapath (paper Fig. 3): unified LP decoder, log-domain MUL stage,
// linear-domain ACC stage, unified LP encoder.
//
// Number representation inside the array (functional model of the RTL):
//  * decoded lane: sign, regime value (2^es*k - sf) and ulfx (e + f') as
//    Q.8 fixed point — the "16-bit regime / 16-bit ulfx" unified format.
//  * product: the lane-wise sum of weight and activation regime/ulfx
//    (multiplication in LP is addition of log-domain components).
//  * partial sum: sign-magnitude float-like {mantissa Q.16, exponent},
//    produced by the 8-bit log->linear converter and aligned addition.
//
// The encoder performs the inverse walk (linear->log converter, regime
// reassembly, rounding with carry, saturation), matching
// core/lp_codec's encode_log_rounded up to the converters' 8-bit
// quantization (tests bound the difference).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "core/lp_codec.h"
#include "lpa/converters.h"
#include "lpa/modes.h"

namespace lp::lpa {

/// One decoded LP value in the unified fixed-point format.
struct DecodedLane {
  bool zero = true;
  int sign = 0;             ///< 0 positive, 1 negative
  std::int32_t regime_q = 0;///< (2^es * k - sf) * 256
  std::int32_t ulfx_q = 0;  ///< (e + f') * 256
};

/// Decoder configuration: the tensor's LP parameters with the scale factor
/// pre-quantized to Q.8 (what the controller programs).
struct DecoderConfig {
  LPConfig cfg;
  std::int32_t sf_q = 0;

  static DecoderConfig from(const LPConfig& c) {
    DecoderConfig d;
    d.cfg = c;
    d.sf_q = static_cast<std::int32_t>(std::lround(c.sf * kFracOne));
    return d;
  }
};

/// Decode one LP code of width cfg.n (NaR decodes as zero: weights and
/// activations in a DNN are never NaR; the accelerator treats the pattern
/// as a null contribution).
[[nodiscard]] DecodedLane decode_lane(std::uint32_t code, const DecoderConfig& dc);

/// Unified weight decoder: splits an 8-bit word into MODE lanes and decodes
/// each (paper Fig. 3, "Unified LP Decoder").
[[nodiscard]] std::array<DecodedLane, 4> decode_weight_word(
    std::uint8_t word, Mode mode, const DecoderConfig& dc);

/// Log-domain product of a weight lane and an activation lane (MUL stage):
/// regimes add, ulfx add, signs XOR.
struct Product {
  bool zero = true;
  int sign = 0;
  std::int32_t scale_q = 0;  ///< total exponent (regime + ulfx sums), Q.8
};

[[nodiscard]] Product multiply(const DecodedLane& w, const DecodedLane& a);

/// Linear-domain partial sum: value = mantissa * 2^(exponent - 16).
/// mantissa is signed; zero is {0, 0}.
struct PartialSum {
  std::int64_t mantissa = 0;
  int exponent = 0;

  [[nodiscard]] double to_double() const;
};

/// ACC stage: convert the product to the linear domain through the 8-bit
/// log->linear converter and add it to the running partial sum with
/// exponent alignment and renormalization.
void accumulate(PartialSum& psum, const Product& p);

/// Unified LP encoder: quantize a partial sum to an LP code of the output
/// configuration (linear->log converter + regime assembly + rounding).
[[nodiscard]] std::uint32_t encode_psum(const PartialSum& psum,
                                        const DecoderConfig& out);

/// Number of fractional bits in the partial-sum mantissa.
inline constexpr int kAccFracBits = 16;

}  // namespace lp::lpa
