// Gate-level-equivalent log/linear fraction converters (paper Section 5.2).
//
// The hardware derives an 8-bit combinational function from a Karnaugh map
// over the full conversion truth table; the functional equivalent is the
// exact 256-entry rounded table:
//   log->linear:  f' in [0,1) as Q0.8  ->  (2^f' - 1) in [0,1) as Q0.8
//   linear->log:  f  in [0,1) as Q0.8  ->  log2(1+f)   in [0,1) as Q0.8
// Both are monotone and inverse to each other within 1 LSB (tested).
#pragma once

#include <cstdint>

namespace lp::lpa {

/// lnf (Q0.8 log-domain fraction) -> lf (Q0.8 linear fraction of 1.f).
[[nodiscard]] std::uint8_t log_to_linear(std::uint8_t lnf);

/// lf (Q0.8 linear fraction of 1.f) -> lnf (Q0.8 log-domain fraction).
[[nodiscard]] std::uint8_t linear_to_log(std::uint8_t lf);

/// Number of fractional bits in the unified fixed-point formats.
inline constexpr int kFracBits = 8;
inline constexpr int kFracOne = 1 << kFracBits;  // 256

}  // namespace lp::lpa
