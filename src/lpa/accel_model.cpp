#include "lpa/accel_model.h"

#include <algorithm>

namespace lp::lpa {

bool AcceleratorModel::supports(int w_bits) const {
  return std::find(widths.begin(), widths.end(), w_bits) != widths.end();
}

int AcceleratorModel::packing(int w_bits) const {
  LP_CHECK_MSG(supports(w_bits), name << " does not support " << w_bits
                                      << "-bit weights");
  if (kind == AccelKind::kLPA || kind == AccelKind::kPositPE) {
    return 8 / w_bits;  // MODE-A/B/C multi-weight mapping
  }
  return 1;
}

int AcceleratorModel::fusion(int w_bits) const {
  LP_CHECK_MSG(supports(w_bits), name << " does not support " << w_bits
                                      << "-bit weights");
  switch (kind) {
    case AccelKind::kANT:
      return w_bits <= 4 ? 1 : 2;  // 4-bit native; pairs for 8-bit
    case AccelKind::kBitFusion:
      return std::max(1, w_bits / 2);  // 2-bit bricks
    default:
      return 1;
  }
}

int AcceleratorModel::macs_per_cycle(int w_bits) const {
  return rows * cols * packing(w_bits) / fusion(w_bits);
}

double AcceleratorModel::mac_energy(int w_bits) const {
  // Fused designs burn one PE energy per ganged PE; packing designs pay the
  // same lane energy regardless of how many weights share the PE (each lane
  // is a distinct adder), so per-MAC energy is flat.
  return mac_energy_pj * fusion(w_bits);
}

double AcceleratorModel::compute_area_um2() const {
  // Encoders are physically part of the post-processing unit; the paper's
  // Table 3 compute-area totals count PEs and decoders only.
  return rows * cols * pe_area_um2 + decoder_units * decoder_area_um2;
}

double AcceleratorModel::peak_gops(int w_bits) const {
  return 2.0 * macs_per_cycle(w_bits) * freq_ghz;
}

AcceleratorModel make_lpa() {
  AcceleratorModel m;
  m.name = "LPA";
  m.kind = AccelKind::kLPA;
  // Table 3: 2/4/8-bit LP PE 187.43 um^2, decoder 5.2 um^2 (8 weight-side +
  // 8 activation-side), encoder 9.4 um^2 (counted with the PPU in the
  // paper's compute-area total, kept here for energy accounting).
  m.pe_area_um2 = 187.43;
  m.decoder_area_um2 = 5.2;
  m.decoder_units = 16;
  m.encoder_area_um2 = 9.4;
  m.encoder_units = 8;
  // Log-domain MAC: two 4-bit adds are cheap, but the log->linear
  // converter and the wider unified-format alignment push the per-lane
  // energy above ANT's plain INT4 MAC (the paper's "modest increase in
  // energy ... attributed to native mixed-precision support and
  // conversion logic").
  m.mac_energy_pj = 0.44;
  m.decode_energy_pj = 0.05;
  m.encode_energy_pj = 0.09;
  m.widths = {2, 4, 8};
  return m;
}

AcceleratorModel make_ant() {
  AcceleratorModel m;
  m.name = "ANT";
  m.kind = AccelKind::kANT;
  // Table 3: 4/8-bit INT PE 79.57 um^2, decoder 4.9 um^2 (one per side).
  m.pe_area_um2 = 79.57;
  m.decoder_area_um2 = 4.9;
  m.decoder_units = 2;
  m.encoder_area_um2 = 0.0;
  m.encoder_units = 0;
  // 4-bit integer multiply-accumulate.
  m.mac_energy_pj = 0.26;
  m.decode_energy_pj = 0.04;
  m.widths = {4, 8};
  return m;
}

AcceleratorModel make_bitfusion() {
  AcceleratorModel m;
  m.name = "BitFusion";
  m.kind = AccelKind::kBitFusion;
  // Table 3: fusible 2/4/8-bit PE array, 5093.75 um^2 total -> 79.59 per PE.
  m.pe_area_um2 = 79.59;
  m.mac_energy_pj = 0.14;  // 2-bit brick
  m.widths = {2, 4, 8};
  return m;
}

AcceleratorModel make_adaptivfloat() {
  AcceleratorModel m;
  m.name = "AdaptivFloat";
  m.kind = AccelKind::kAdaptivFloat;
  // Table 3: 23357.14 um^2 / 64 PEs = 364.96 um^2 per 8-bit hybrid-float PE.
  m.pe_area_um2 = 364.955;
  // 8-bit float MAC: multiplier + exponent path.
  m.mac_energy_pj = 1.10;
  m.widths = {8};
  return m;
}

AcceleratorModel make_posit_pe() {
  AcceleratorModel m;
  m.name = "Posit-2/4/8";
  m.kind = AccelKind::kPositPE;
  // Table 4: compute density 3.15 TOPS/mm^2 vs LPA's 16.84 at the same
  // throughput behaviour -> PE ~5.3x larger (linear-domain posit multiplier
  // and wide decode).
  m.pe_area_um2 = 1002.0;
  m.decoder_area_um2 = 5.2;
  m.decoder_units = 16;
  m.encoder_area_um2 = 9.4;
  m.encoder_units = 8;
  m.mac_energy_pj = 0.95;
  m.decode_energy_pj = 0.05;
  m.encode_energy_pj = 0.09;
  m.widths = {2, 4, 8};
  return m;
}

double scale_area_um2(double area_um2, double from_nm, double to_nm) {
  LP_CHECK(from_nm > 0.0 && to_nm > 0.0);
  const double ratio = to_nm / from_nm;
  return area_um2 * ratio * ratio;
}

}  // namespace lp::lpa
