#include "lpa/datapath.h"

#include <bit>
#include <cmath>

#include "lpa/bitops.h"

namespace lp::lpa {

DecodedLane decode_lane(std::uint32_t code, const DecoderConfig& dc) {
  const LPFields f = decode_fields(code, dc.cfg);
  DecodedLane lane;
  if (f.is_zero || f.is_nar) return lane;  // zero contribution
  lane.zero = false;
  lane.sign = f.sign;
  // regime_q = k * 2^(es+8) - sf_q  (exact in Q.8)
  lane.regime_q = (static_cast<std::int32_t>(f.k) << (dc.cfg.es + kFracBits)) -
                  dc.sf_q;
  // ulfx_q = B * 2^(8 + es - tail_len); the shift is non-negative for all
  // n <= 8 configurations (tail_len <= n-2 <= 6 <= 8 + es).
  const int shift = kFracBits + dc.cfg.es - f.tail_len;
  LP_DCHECK(shift >= 0);
  lane.ulfx_q = static_cast<std::int32_t>(f.tail_bits) << shift;
  return lane;
}

std::array<DecodedLane, 4> decode_weight_word(std::uint8_t word, Mode mode,
                                              const DecoderConfig& dc) {
  LP_CHECK_MSG(dc.cfg.n == weight_bits(mode),
               "decoder config width " << dc.cfg.n << " does not match "
                                       << mode_name(mode));
  std::array<DecodedLane, 4> out;
  for (int l = 0; l < lanes(mode); ++l) {
    out[static_cast<std::size_t>(l)] =
        decode_lane(extract_lane(word, mode, l), dc);
  }
  return out;
}

Product multiply(const DecodedLane& w, const DecodedLane& a) {
  Product p;
  if (w.zero || a.zero) return p;
  p.zero = false;
  p.sign = w.sign ^ a.sign;
  p.scale_q = (w.regime_q + w.ulfx_q) + (a.regime_q + a.ulfx_q);
  return p;
}

double PartialSum::to_double() const {
  return std::ldexp(static_cast<double>(mantissa), exponent - kAccFracBits);
}

namespace {

/// Renormalize so |mantissa| stays within 2^(kAccFracBits+8); keeps the
/// model's precision close to the RTL's bounded accumulator width.
void renormalize(PartialSum& s) {
  if (s.mantissa == 0) {
    s.exponent = 0;
    return;
  }
  std::uint64_t mag = static_cast<std::uint64_t>(
      s.mantissa < 0 ? -s.mantissa : s.mantissa);
  while (mag >= (1ULL << (kAccFracBits + 9))) {
    s.mantissa >>= 1;
    mag >>= 1;
    ++s.exponent;
  }
}

}  // namespace

void accumulate(PartialSum& psum, const Product& p) {
  if (p.zero) return;
  // Split the Q.8 scale into integer exponent and log fraction, convert
  // the fraction to the linear domain: contribution = (1.lf) * 2^exp.
  const std::int32_t e = p.scale_q >> kFracBits;          // floor
  const auto frac = static_cast<std::uint8_t>(p.scale_q & (kFracOne - 1));
  const std::int64_t lf = kFracOne + log_to_linear(frac); // Q.8 in [256,512)
  std::int64_t man = lf << (kAccFracBits - kFracBits);    // Q.16
  if (p.sign != 0) man = -man;

  if (psum.mantissa == 0) {
    psum.mantissa = man;
    psum.exponent = e;
    renormalize(psum);
    return;
  }
  // Align the smaller-exponent operand; beyond 48 bits it vanishes.
  int d = e - psum.exponent;
  if (d > 48) {
    psum.mantissa = man;
    psum.exponent = e;
  } else if (d >= 0) {
    psum.mantissa = (psum.mantissa >> d) + man;
    psum.exponent = e;
  } else {
    d = -d;
    if (d > 48) {
      // incoming term too small to register
    } else {
      psum.mantissa += (man >> d);
    }
  }
  renormalize(psum);
}

std::uint32_t encode_psum(const PartialSum& psum, const DecoderConfig& out) {
  if (psum.mantissa == 0) return 0U;
  const bool neg = psum.mantissa < 0;
  const auto mag = static_cast<std::uint64_t>(neg ? -psum.mantissa : psum.mantissa);
  // Normalize: mag = 1.f * 2^p with p = MSB index.
  const int p = 63 - std::countl_zero(mag);
  // Extract the 8 fraction bits below the MSB (round toward zero; the
  // linear->log table then rounds to the nearest Q.8 log value).
  std::uint8_t frac8;
  if (p >= kFracBits) {
    frac8 = static_cast<std::uint8_t>((mag >> (p - kFracBits)) & (kFracOne - 1));
  } else {
    frac8 = static_cast<std::uint8_t>((mag << (kFracBits - p)) & (kFracOne - 1));
  }
  const std::uint8_t lnf = linear_to_log(frac8);
  // Total target exponent in Q.8, with the output scale factor applied:
  // t = log2|v| + sf = (exponent - 16 + p) + lnf/256 + sf.
  const std::int64_t t_q =
      (static_cast<std::int64_t>(psum.exponent - kAccFracBits + p) << kFracBits) +
      lnf + out.sf_q;

  const LPConfig& cfg = out.cfg;
  const int body = cfg.n - 1;
  const std::int64_t step_q = static_cast<std::int64_t>(kFracOne) << cfg.es;

  // k = floor(t / step), remainder r in [0, step).
  std::int64_t k = t_q >= 0 ? t_q / step_q : -((-t_q + step_q - 1) / step_q);
  std::int64_t r = t_q - k * step_q;
  LP_DCHECK(r >= 0 && r < step_q);

  const int kmin = cfg.min_k();
  const int kmax = cfg.max_k();
  if (k < kmin) {
    k = kmin;
    r = 0;
  }
  bool saturate_high = false;
  if (k > kmax) {
    k = kmax;
    saturate_high = true;
  }

  auto tail_len_for = [&](std::int64_t kk) {
    const int m = (kk >= 0) ? static_cast<int>(kk) + 1 : -static_cast<int>(kk);
    const int cap = cfg.max_run();
    const int consumed = (m < cap && m < body) ? m + 1 : m;
    return body - consumed;
  };

  std::uint32_t tail = 0;
  for (;;) {
    const int tl = tail_len_for(k);
    const int shift = kFracBits + cfg.es - tl;
    LP_DCHECK(shift >= 0);
    std::int64_t b = saturate_high
                         ? (static_cast<std::int64_t>(1) << tl) - 1
                         : ((r + (shift > 0 ? (static_cast<std::int64_t>(1)
                                               << (shift - 1))
                                            : 0)) >>
                            shift);
    if (b >= (static_cast<std::int64_t>(1) << tl)) {
      if (k < kmax) {
        ++k;
        r = 0;
        continue;
      }
      b = (static_cast<std::int64_t>(1) << tl) - 1;
    }
    tail = static_cast<std::uint32_t>(b);
    break;
  }

  // Assemble regime + terminator + tail (same walk as the reference codec).
  const int m = (k >= 0) ? static_cast<int>(k) + 1 : -static_cast<int>(k);
  const int cap = cfg.max_run();
  const int first = (k >= 0) ? 1 : 0;
  const bool has_term = (m < cap && m < body);
  const int tl = body - (has_term ? m + 1 : m);

  std::uint32_t magbits = 0;
  if (first == 1) magbits = (1U << m) - 1U;
  if (has_term) magbits = (magbits << 1) | static_cast<std::uint32_t>(first ^ 1);
  magbits = (magbits << tl) | (tl > 0 ? (tail & ((1U << tl) - 1U)) : 0U);
  if (magbits == 0) magbits = 1;  // avoid the zero code for nonzero sums

  const std::uint32_t mask = (1U << cfg.n) - 1U;
  std::uint32_t code = magbits;
  if (neg) code = (~code + 1U) & mask;
  return code & mask;
}

}  // namespace lp::lpa
