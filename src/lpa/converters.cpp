#include "lpa/converters.h"

#include <array>
#include <cmath>

namespace lp::lpa {
namespace {

std::array<std::uint8_t, 256> build_log_to_linear() {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    const double f = i / 256.0;
    const double lin = std::exp2(f) - 1.0;              // in [0, 1)
    const int q = static_cast<int>(std::lround(lin * 256.0));
    t[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(q > 255 ? 255 : q);
  }
  return t;
}

std::array<std::uint8_t, 256> build_linear_to_log() {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    const double f = i / 256.0;
    const double lg = std::log2(1.0 + f);               // in [0, 1)
    const int q = static_cast<int>(std::lround(lg * 256.0));
    t[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(q > 255 ? 255 : q);
  }
  return t;
}

}  // namespace

std::uint8_t log_to_linear(std::uint8_t lnf) {
  static const auto table = build_log_to_linear();
  return table[lnf];
}

std::uint8_t linear_to_log(std::uint8_t lf) {
  static const auto table = build_linear_to_log();
  return table[lf];
}

}  // namespace lp::lpa
