#include "lpa/systolic.h"

#include <vector>

namespace lp::lpa {

Tensor lpa_gemm(const Tensor& w, const Tensor& x, const LPConfig& wcfg,
                const LPConfig& acfg, GemmStats* stats) {
  LP_CHECK(w.rank() == 2 && x.rank() == 2);
  LP_CHECK(w.dim(1) == x.dim(0));
  const std::int64_t m = w.dim(0);
  const std::int64_t k = w.dim(1);
  const std::int64_t n = x.dim(1);

  const CodeTable wtab(wcfg);
  const CodeTable atab(acfg);
  const DecoderConfig wdc = DecoderConfig::from(wcfg);
  const DecoderConfig adc = DecoderConfig::from(acfg);

  // Quantize + decode both operands once (the on-chip decoders sit at the
  // array boundary and each element is decoded a single time per tile).
  std::vector<std::uint32_t> wcodes(static_cast<std::size_t>(m * k));
  wtab.encode_batch(w.data(), wcodes);
  std::vector<DecodedLane> wd(wcodes.size());
  for (std::size_t i = 0; i < wcodes.size(); ++i) {
    wd[i] = decode_lane(wcodes[i], wdc);
  }
  std::vector<std::uint32_t> xcodes(static_cast<std::size_t>(k * n));
  atab.encode_batch(x.data(), xcodes);
  std::vector<DecodedLane> xd(xcodes.size());
  for (std::size_t i = 0; i < xcodes.size(); ++i) {
    xd[i] = decode_lane(xcodes[i], adc);
  }

  Tensor out({m, n});
  GemmStats st;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      PartialSum psum;
      for (std::int64_t p = 0; p < k; ++p) {
        ++st.total_macs;
        const Product prod = multiply(wd[static_cast<std::size_t>(i * k + p)],
                                      xd[static_cast<std::size_t>(p * n + j)]);
        if (prod.zero) {
          ++st.zero_skipped;
          continue;
        }
        accumulate(psum, prod);
      }
      out.at2(i, j) = static_cast<float>(psum.to_double());
    }
  }
  if (stats != nullptr) *stats = st;
  return out;
}

Tensor lpa_gemm_reference(const Tensor& w, const Tensor& x, const LPConfig& wcfg,
                          const LPConfig& acfg) {
  LP_CHECK(w.rank() == 2 && x.rank() == 2);
  LP_CHECK(w.dim(1) == x.dim(0));
  const CodeTable wtab(wcfg);
  const CodeTable atab(acfg);
  Tensor wq = w;
  (void)wtab.quantize_batch(wq.data());
  Tensor xq = x;
  (void)atab.quantize_batch(xq.data());
  const std::int64_t m = w.dim(0);
  const std::int64_t k = w.dim(1);
  const std::int64_t n = x.dim(1);
  Tensor out({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(wq.at2(i, p)) * xq.at2(p, j);
      }
      out.at2(i, j) = static_cast<float>(s);
    }
  }
  return out;
}

}  // namespace lp::lpa
