#include "lpa/bitops.h"

namespace lp::lpa {

std::uint8_t extract_lane(std::uint8_t x, Mode mode, int lane) {
  const int w = weight_bits(mode);
  LP_CHECK(lane >= 0 && lane < lanes(mode));
  const int shift = 8 - (lane + 1) * w;
  const std::uint8_t mask = static_cast<std::uint8_t>((1U << w) - 1U);
  return static_cast<std::uint8_t>((x >> shift) & mask);
}

std::uint8_t insert_lane(std::uint8_t x, Mode mode, int lane, std::uint8_t value) {
  const int w = weight_bits(mode);
  LP_CHECK(lane >= 0 && lane < lanes(mode));
  const int shift = 8 - (lane + 1) * w;
  const std::uint8_t mask = static_cast<std::uint8_t>((1U << w) - 1U);
  x = static_cast<std::uint8_t>(x & ~(mask << shift));
  return static_cast<std::uint8_t>(x | ((value & mask) << shift));
}

std::uint8_t twos_complement_multi(std::uint8_t x, Mode mode) {
  std::uint8_t out = 0;
  const int w = weight_bits(mode);
  const std::uint8_t mask = static_cast<std::uint8_t>((1U << w) - 1U);
  for (int l = 0; l < lanes(mode); ++l) {
    const std::uint8_t sub = extract_lane(x, mode, l);
    const auto neg = static_cast<std::uint8_t>((~sub + 1U) & mask);
    out = insert_lane(out, mode, l, neg);
  }
  return out;
}

std::array<int, 4> leading_zeros_multi(std::uint8_t x, Mode mode) {
  std::array<int, 4> out{0, 0, 0, 0};
  const int w = weight_bits(mode);
  for (int l = 0; l < lanes(mode); ++l) {
    const std::uint8_t sub = extract_lane(x, mode, l);
    int count = 0;
    for (int b = w - 1; b >= 0; --b) {
      if ((sub >> b) & 1U) break;
      ++count;
    }
    out[static_cast<std::size_t>(l)] = count;
  }
  return out;
}

}  // namespace lp::lpa
