// AdaptivFloat (Tambe et al., DAC 2020) — an n-bit float whose exponent
// bias is chosen per tensor so the representable range covers the tensor's
// dynamic range.  It adapts *range* but not *shape*: accuracy is flat
// across the covered range, which is the property Fig. 1(b) contrasts
// against LP's tapering.
#pragma once

#include <span>
#include <string>

#include "core/number_format.h"

namespace lp {

class AdaptivFloatFormat final : public EnumeratedFormat {
 public:
  /// n total bits: 1 sign, `exp_bits` exponent, rest mantissa.
  /// `exp_bias` positions the range: max magnitude ~= 2^(2^exp_bits-1-exp_bias)*2.
  AdaptivFloatFormat(int n, int exp_bits, int exp_bias);

  /// Choose the bias from data so the largest magnitude is representable
  /// (the AdaptivFloat calibration rule).
  [[nodiscard]] static AdaptivFloatFormat calibrated(int n, int exp_bits,
                                                     std::span<const float> data);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int bits() const override { return n_; }
  [[nodiscard]] int exp_bias() const { return bias_; }

 private:
  int n_;
  int exp_bits_;
  int bias_;
};

}  // namespace lp
