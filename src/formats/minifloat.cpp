#include "formats/minifloat.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace lp {

MiniFloatFormat::MiniFloatFormat(int n, int exp_bits) : n_(n), exp_bits_(exp_bits) {
  LP_CHECK_MSG(n >= 3 && n <= 16, "MiniFloat n out of range");
  LP_CHECK_MSG(exp_bits >= 2 && exp_bits <= n - 1, "MiniFloat exp_bits out of range");
  const int mant_bits = n - 1 - exp_bits;
  const int bias = (1 << (exp_bits - 1)) - 1;
  std::vector<double> vals;
  vals.push_back(0.0);
  for (int e = 0; e < (1 << exp_bits); ++e) {
    for (int m = 0; m < (1 << mant_bits); ++m) {
      double mag;
      if (e == 0) {
        if (m == 0) continue;  // zero already added
        mag = std::ldexp(static_cast<double>(m), 1 - bias - mant_bits);  // subnormal
      } else {
        mag = std::ldexp(1.0 + std::ldexp(static_cast<double>(m), -mant_bits),
                         e - bias);
      }
      vals.push_back(mag);
      vals.push_back(-mag);
    }
  }
  set_values(std::move(vals));
}

std::string MiniFloatFormat::name() const {
  std::ostringstream os;
  os << "FP" << n_ << "-E" << exp_bits_ << 'M' << (n_ - 1 - exp_bits_);
  return os.str();
}

}  // namespace lp
