// Base-2 logarithmic number system (LNS): 1 sign bit plus an (n-1)-bit
// two's-complement fixed-point exponent with `frac_bits` fractional bits:
// value = +/- 2^(E). One code is reserved for zero.  LNS is the
// "computational efficiency" primitive of LP — multiplications become
// additions — but on its own it has a rigid, non-tapered accuracy profile.
#pragma once

#include <span>
#include <string>

#include "core/number_format.h"

namespace lp {

class LnsFormat final : public EnumeratedFormat {
 public:
  /// `bias` shifts the exponent range (like LP's sf, but static).
  LnsFormat(int n, int frac_bits, double bias = 0.0);

  /// Center the exponent range on the data's mean log-magnitude.
  [[nodiscard]] static LnsFormat calibrated(int n, int frac_bits,
                                            std::span<const float> data);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int bits() const override { return n_; }

 private:
  int n_;
  int frac_bits_;
  double bias_;
};

}  // namespace lp
