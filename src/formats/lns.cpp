#include "formats/lns.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace lp {

LnsFormat::LnsFormat(int n, int frac_bits, double bias)
    : n_(n), frac_bits_(frac_bits), bias_(bias) {
  LP_CHECK_MSG(n >= 3 && n <= 16, "LNS n out of range");
  LP_CHECK_MSG(frac_bits >= 0 && frac_bits <= n - 2, "LNS frac_bits out of range");
  const int ebits = n - 1;
  const int count = 1 << ebits;
  std::vector<double> vals;
  vals.reserve(static_cast<std::size_t>(count) * 2 + 1);
  vals.push_back(0.0);
  // Two's-complement exponent in [-2^(ebits-1), 2^(ebits-1)-1]; the most
  // negative code is reserved for zero (standard LNS convention).
  for (int e = -(count / 2) + 1; e <= count / 2 - 1; ++e) {
    const double mag = std::exp2(std::ldexp(static_cast<double>(e), -frac_bits) + bias_);
    vals.push_back(mag);
    vals.push_back(-mag);
  }
  set_values(std::move(vals));
}

LnsFormat LnsFormat::calibrated(int n, int frac_bits, std::span<const float> data) {
  LP_CHECK(!data.empty());
  double sum = 0.0;
  std::size_t cnt = 0;
  for (float x : data) {
    const double a = std::fabs(static_cast<double>(x));
    if (a > 0.0) {
      sum += std::log2(a);
      ++cnt;
    }
  }
  const double bias = (cnt > 0) ? sum / static_cast<double>(cnt) : 0.0;
  return LnsFormat(n, frac_bits, bias);
}

std::string LnsFormat::name() const {
  std::ostringstream os;
  os << "LNS<" << n_ << ",f" << frac_bits_ << '>';
  return os.str();
}

}  // namespace lp
