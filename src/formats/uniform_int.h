// Symmetric uniform integer quantization (the INT/fixed-point baseline):
// values are scale * i for i in [-(2^(n-1)-1), 2^(n-1)-1].  Calibration
// picks the scale from the data's max magnitude or a percentile (the
// standard PTQ clipping rule).
#pragma once

#include <span>
#include <string>

#include "core/number_format.h"

namespace lp {

class UniformIntFormat final : public EnumeratedFormat {
 public:
  UniformIntFormat(int n, double scale);

  /// Scale so that `max_abs` (or the p-quantile of |x|) maps to the top code.
  [[nodiscard]] static UniformIntFormat calibrated(int n,
                                                   std::span<const float> data,
                                                   double clip_quantile = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int bits() const override { return n_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  int n_;
  double scale_;
};

}  // namespace lp
