#include "formats/posit.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace lp {

PositFormat::PositFormat(int n, int es) : n_(n), es_(es) {
  LP_CHECK_MSG(n >= 2 && n <= 16, "posit n out of range");
  LP_CHECK_MSG(es >= 0 && es <= 5, "posit es out of range");
  std::vector<double> vals;
  const std::uint32_t count = 1U << n;
  const std::uint32_t nar = 1U << (n - 1);
  vals.reserve(count - 1);
  for (std::uint32_t c = 0; c < count; ++c) {
    if (c == nar) continue;
    vals.push_back(decode(c, n, es));
  }
  set_values(std::move(vals));
}

double PositFormat::decode(std::uint32_t code, int n, int es) {
  const std::uint32_t mask = (1U << n) - 1U;
  code &= mask;
  if (code == 0) return 0.0;
  if (code == (1U << (n - 1))) return std::numeric_limits<double>::quiet_NaN();

  const int sign = static_cast<int>((code >> (n - 1)) & 1U);
  std::uint32_t mag = code;
  if (sign != 0) mag = (~code + 1U) & mask;

  const int body = n - 1;
  const int first = static_cast<int>((mag >> (body - 1)) & 1U);
  int m = 1;
  while (m < body && static_cast<int>((mag >> (body - 1 - m)) & 1U) == first) ++m;
  const int k = (first == 1) ? m - 1 : -m;
  const int consumed = (m < body) ? m + 1 : m;  // terminator unless run fills word

  const int tail_len = body - consumed;
  const std::uint32_t tail =
      (tail_len > 0) ? (mag & ((1U << tail_len) - 1U)) : 0U;

  // Exponent: es bits MSB-aligned within the tail; fraction is the rest.
  const int ebits = tail_len < es ? tail_len : es;
  const int fbits = tail_len - ebits;
  const std::uint32_t echunk = (tail_len > 0) ? (tail >> fbits) : 0U;
  const int e = static_cast<int>(echunk) << (es - ebits);
  const std::uint32_t f = (fbits > 0) ? (tail & ((1U << fbits) - 1U)) : 0U;
  const double frac = 1.0 + std::ldexp(static_cast<double>(f), -fbits);

  const double val =
      std::ldexp(frac, (k << es) + e);
  return sign != 0 ? -val : val;
}

std::string PositFormat::name() const {
  std::ostringstream os;
  os << "Posit<" << n_ << ',' << es_ << '>';
  return os.str();
}

}  // namespace lp
