// IEEE-style minifloat (e.g. FP8 E4M3 / E5M2): 1 sign, `exp_bits` exponent
// with IEEE bias, subnormals, no infinities/NaN codes included in the value
// set (OCP FP8 style saturating arithmetic).  The non-adaptive float
// baseline in the format comparison.
#pragma once

#include <string>

#include "core/number_format.h"

namespace lp {

class MiniFloatFormat final : public EnumeratedFormat {
 public:
  MiniFloatFormat(int n, int exp_bits);

  [[nodiscard]] static MiniFloatFormat e4m3() { return {8, 4}; }
  [[nodiscard]] static MiniFloatFormat e5m2() { return {8, 5}; }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int bits() const override { return n_; }

 private:
  int n_;
  int exp_bits_;
};

}  // namespace lp
