// ANT's "flint" adaptive data type (Guo et al., MICRO 2022), modelled as a
// posit-style unary-exponent + integer-mantissa composite with a per-tensor
// scale: small magnitudes get int-like uniform resolution, large magnitudes
// get float-like exponential steps.  This is the stand-in for ANT in the
// format comparison (see DESIGN.md section 2 on substitutions); its value
// lattice matches flint's "float for large / int for small" behaviour.
#pragma once

#include <span>
#include <string>

#include "core/number_format.h"

namespace lp {

class FlintFormat final : public EnumeratedFormat {
 public:
  FlintFormat(int n, double scale);

  /// Scale chosen so the largest flint code reaches the data's max |x|.
  [[nodiscard]] static FlintFormat calibrated(int n, std::span<const float> data);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int bits() const override { return n_; }

 private:
  int n_;
  double scale_;
};

}  // namespace lp
