#include "formats/flint.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "formats/posit.h"
#include "util/check.h"

namespace lp {

FlintFormat::FlintFormat(int n, double scale) : n_(n), scale_(scale) {
  LP_CHECK_MSG(n >= 3 && n <= 16, "Flint n out of range");
  LP_CHECK_MSG(scale > 0.0, "Flint scale must be positive");
  // Flint's lattice is a unary leading-ones exponent followed by an integer
  // mantissa — structurally a posit<n, es=0> with a linear fraction.  We
  // enumerate that lattice and apply the per-tensor scale.
  const std::uint32_t count = 1U << n;
  const std::uint32_t nar = 1U << (n - 1);
  std::vector<double> vals;
  vals.reserve(count - 1);
  for (std::uint32_t c = 0; c < count; ++c) {
    if (c == nar) continue;
    vals.push_back(scale * PositFormat::decode(c, n, /*es=*/0));
  }
  set_values(std::move(vals));
}

FlintFormat FlintFormat::calibrated(int n, std::span<const float> data) {
  LP_CHECK(!data.empty());
  double max_abs = 0.0;
  for (float x : data) max_abs = std::max(max_abs, std::fabs(static_cast<double>(x)));
  if (max_abs <= 0.0) max_abs = 1.0;
  // posit<n,0> maxpos is 2^(n-2); align it with max_abs.
  const double maxpos = std::ldexp(1.0, n - 2);
  return FlintFormat(n, max_abs / maxpos);
}

std::string FlintFormat::name() const {
  std::ostringstream os;
  os << "Flint<" << n_ << '>';
  return os.str();
}

}  // namespace lp
