#include "formats/uniform_int.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace lp {

UniformIntFormat::UniformIntFormat(int n, double scale) : n_(n), scale_(scale) {
  LP_CHECK_MSG(n >= 2 && n <= 16, "UniformInt n out of range");
  LP_CHECK_MSG(scale > 0.0, "UniformInt scale must be positive");
  const int top = (1 << (n - 1)) - 1;
  std::vector<double> vals;
  vals.reserve(static_cast<std::size_t>(2 * top + 1));
  for (int i = -top; i <= top; ++i) vals.push_back(scale * i);
  set_values(std::move(vals));
}

UniformIntFormat UniformIntFormat::calibrated(int n, std::span<const float> data,
                                              double clip_quantile) {
  LP_CHECK(!data.empty());
  LP_CHECK(clip_quantile > 0.0 && clip_quantile <= 1.0);
  std::vector<float> mags(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) mags[i] = std::fabs(data[i]);
  const float clip = (clip_quantile >= 1.0) ? max_value(mags)
                                            : quantile(mags, clip_quantile);
  const int top = (1 << (n - 1)) - 1;
  const double scale = (clip > 0.0F) ? static_cast<double>(clip) / top : 1.0 / top;
  return UniformIntFormat(n, scale);
}

std::string UniformIntFormat::name() const {
  std::ostringstream os;
  os << "INT" << n_;
  return os.str();
}

}  // namespace lp
