// Standard posit<n, es> (Gustafson & Yonemoto 2017) with a *linear-domain*
// fraction — the genuine posit used as an LP primitive/baseline in the
// paper's comparisons.  The regime is unbounded (may fill the word) and
// there is no scale-factor bias; that is exactly what LP generalizes.
#pragma once

#include <cstdint>
#include <string>

#include "core/number_format.h"

namespace lp {

class PositFormat final : public EnumeratedFormat {
 public:
  PositFormat(int n, int es);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int bits() const override { return n_; }

  /// Reference decode of one posit code (low n bits).  Exposed for tests.
  [[nodiscard]] static double decode(std::uint32_t code, int n, int es);

 private:
  int n_;
  int es_;
};

}  // namespace lp
