#include "formats/adaptivfloat.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace lp {

AdaptivFloatFormat::AdaptivFloatFormat(int n, int exp_bits, int exp_bias)
    : n_(n), exp_bits_(exp_bits), bias_(exp_bias) {
  LP_CHECK_MSG(n >= 3 && n <= 16, "AdaptivFloat n out of range");
  LP_CHECK_MSG(exp_bits >= 1 && exp_bits <= n - 2,
               "AdaptivFloat exp_bits out of range");
  const int mant_bits = n - 1 - exp_bits;
  const int exp_count = 1 << exp_bits;
  std::vector<double> vals;
  vals.reserve(static_cast<std::size_t>(exp_count) * (1U << mant_bits) * 2 + 1);
  vals.push_back(0.0);
  // AdaptivFloat has normalized values only; the all-zero mantissa at the
  // lowest exponent is sacrificed for zero (per the AFP paper), all other
  // codes are (1 + m/2^mb) * 2^(e - bias).
  for (int e = 0; e < exp_count; ++e) {
    for (int m = 0; m < (1 << mant_bits); ++m) {
      if (e == 0 && m == 0) continue;  // reserved for zero
      const double mag =
          std::ldexp(1.0 + std::ldexp(static_cast<double>(m), -mant_bits),
                     e - bias_);
      vals.push_back(mag);
      vals.push_back(-mag);
    }
  }
  set_values(std::move(vals));
}

AdaptivFloatFormat AdaptivFloatFormat::calibrated(int n, int exp_bits,
                                                  std::span<const float> data) {
  LP_CHECK(!data.empty());
  double max_abs = 0.0;
  for (float x : data) max_abs = std::max(max_abs, std::fabs(static_cast<double>(x)));
  if (max_abs <= 0.0) max_abs = 1.0;
  // Want the top exponent (2^exp_bits - 1 - bias) to reach max_abs:
  // bias = (2^exp_bits - 1) - floor(log2(max_abs)).
  const int top = (1 << exp_bits) - 1;
  const int bias = top - static_cast<int>(std::floor(std::log2(max_abs)));
  return AdaptivFloatFormat(n, exp_bits, bias);
}

std::string AdaptivFloatFormat::name() const {
  std::ostringstream os;
  os << "AdaptivFloat<" << n_ << ",e" << exp_bits_ << ",b" << bias_ << '>';
  return os.str();
}

}  // namespace lp
