// InferenceSession — the quantized-inference runtime's control plane.
//
// The seed-era flow ("quantize then run once") rebuilt every format table
// and re-quantized every weight tensor for each quantized forward.  That
// is the dominant cost of an LPQ generation: a genetic-search population
// shares most per-layer genes with the best parent, so nearly all of that
// work recomputes bytes the previous evaluation already produced.  The
// session separates format conversion from the inference datapath the way
// the paper's LPA (and PDPU / Deep Positron) do in hardware:
//
//   * a FormatCache interns one LPFormat (code table + quant index) per
//     distinct LPConfig,
//   * a WeightCodeCache keeps packed weight codes (n-bit indices plus one
//     decode LUT per format — see core/packed_codes.h) keyed by
//     (slot, format) under a byte budget, 4-8x denser than the float
//     tensors they decode to; the GEMM kernels expand them in-datapath,
//   * prepare()/prepare_all() snapshot candidates into QuantizedModels,
//     quantizing only (slot, format) pairs never seen before,
//   * set_formats()/run() serve batched inference against the current
//     snapshot — changing one layer's format gene re-quantizes only that
//     layer.
//
// Multi-tenant serving split: the session is the *writer* side only.  What
// concurrent callers execute is an immutable, refcounted ServableModel
// (runtime/servable_model.h) published through an RCU-style atomic slot —
// set_formats() builds the snapshot off to the side and publishes it in
// one atomic swap, so LPQ can hot-swap a better config mid-serve while
// in-flight batches finish on the snapshot they acquired.  Prepare calls
// from any thread serialize behind an internal mutex; cache reads
// (stats(), servable(), publisher().acquire()) are safe concurrently with
// a prepare (the cache's sharded locks and atomic counters — see
// weight_cache.h — cover the overlap).  save_artifact()/load_artifact()
// persist the published snapshot as a versioned, checksummed file
// (runtime/artifact.h) so a server cold-starts without re-quantizing.
//
// Determinism contract: all cache mutation happens in the (serialized)
// prepare phase; the parallel work inside it (building missing format
// tables, quantizing missing weight tensors) writes disjoint per-entry
// slots in an order fixed by the request list, never by thread
// scheduling.  Snapshots are therefore bit-identical to the uncached
// Model::forward_quantized path for any LP_THREADS / LP_KERNEL
// combination (tests/test_runtime.cpp pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/artifact.h"
#include "runtime/quantized_model.h"
#include "runtime/servable_model.h"
#include "runtime/weight_cache.h"
#include "util/thread_annotations.h"

namespace lp::runtime {

/// Knobs for InferenceSession::cold_start.
struct ColdStartOptions {
  /// When the artifact is unusable, fall back to quantizing from the given
  /// configs (slow but alive) instead of reporting a dead start.
  bool fallback_requantize = true;
};

/// What a cold start did.  Exactly one of `loaded` / `requantized` is true
/// on success; both false means the artifact failed and fallback was off
/// (or itself not attempted) — `error` then says why the artifact was
/// rejected.
struct ColdStartResult {
  bool loaded = false;       ///< artifact accepted, no re-quantization ran
  bool requantized = false;  ///< fell back to quantizing from configs
  std::uint64_t version = 0; ///< published snapshot version (if any)
  ArtifactErrorCode error = ArtifactErrorCode::kNone;
  std::string error_message;
};

struct SessionOptions {
  /// Byte budget for cached quantized weight copies.
  std::size_t weight_cache_bytes = WeightCodeCache::kDefaultBudgetBytes;
  /// Entry cap for interned formats.  sf is continuous, so a long search
  /// interns a fresh format for almost every new gene; the cap bounds that
  /// growth with the same generational sweep as the weight cache.
  std::size_t format_cache_entries = 4096;
  /// Thread inter-layer activations as packed codes (bit-identical to the
  /// float path; edges whose activation format has no enumerable code
  /// table fall back to float per-edge).  Off = every edge stays float.
  bool coded_activations = true;
  /// Multiply semantics for the coded-B^T GEMMs in every snapshot this
  /// session assembles.  Defaults to the LP_APPROX env selection (exact
  /// unless LP_APPROX=plam) so serving processes opt in without a rebuild.
  kernels::ApproxMode approx = kernels::approx_mode();
  /// Fuse GEMM→bias→act→encode for float-in coded-out layers (the
  /// both-coded fusion is always on).  Off reproduces the unfused flow —
  /// the A/B lever bench_micro's ForwardFused counters measure.
  bool fuse = true;
};

class InferenceSession {
 public:
  /// The model must outlive the session.
  explicit InferenceSession(const nn::Model& model, SessionOptions opts = {});

  /// Snapshot one assignment.  `weight_cfgs`/`act_cfgs` are per-slot
  /// (act_cfgs may be empty = no activation quantization).  Quantizes only
  /// layers whose (slot, weight format) pair is not already cached.
  [[nodiscard]] QuantizedModel prepare(std::span<const LPConfig> weight_cfgs,
                                       std::span<const LPConfig> act_cfgs);

  /// Population variant: snapshot many assignments at once.  All missing
  /// (slot, format) pairs across the population are deduplicated and
  /// quantized in a single parallel pass, then every candidate snapshot is
  /// assembled from the cache — candidates sharing layer genes share the
  /// quantized bytes.  One generation tick for the whole batch.
  [[nodiscard]] std::vector<QuantizedModel> prepare_all(
      std::span<const std::vector<LPConfig>> weight_cfgs,
      std::span<const std::vector<LPConfig>> act_cfgs);

  /// Serving API: make `weight_cfgs`/`act_cfgs` the session's current
  /// assignment and atomically publish it as a new ServableModel version.
  /// Only layers whose format gene changed are re-quantized.  Safe to call
  /// while serving threads execute the previous version (they finish on
  /// the snapshot they acquired — the hot-swap contract).
  void set_formats(std::span<const LPConfig> weight_cfgs,
                   std::span<const LPConfig> act_cfgs);

  /// Batched forward through the current published snapshot (set_formats
  /// first).  The batch rides dim 0; per-layer activation formats are
  /// applied in one quantize_batch pass over each node's whole batched
  /// output.  With coded activations on (the default), inter-layer
  /// activations flow as packed codes; `act_traffic` (optional) receives
  /// the byte counts.  Safe concurrently with a hot-swap (the call
  /// executes on the snapshot it acquires).
  [[nodiscard]] nn::ForwardResult run(const Tensor& batch,
                                      bool capture_pooled = false,
                                      nn::ActTraffic* act_traffic = nullptr) const;

  /// Multi-request variant: stacks equal-shaped inputs (samples or
  /// mini-batches) into one batch and executes a single fused forward, so
  /// per-layer table lookups and activation quantization amortize across
  /// every request.  Returns the stacked logits ([total_batch, classes]).
  [[nodiscard]] Tensor run_batched(std::span<const Tensor> inputs) const;

  /// The current snapshot (set_formats first).  Legacy single-caller
  /// accessor: the reference is valid until the next set_formats /
  /// load_artifact; concurrent serving must hold a servable() reference
  /// instead.
  [[nodiscard]] const QuantizedModel& current() const;

  /// Strong reference to the published ServableModel (null before the
  /// first set_formats).  Thread-safe.
  [[nodiscard]] ServablePtr servable() const { return publisher_.acquire(); }

  /// The publish point serving layers subscribe to (serve::Server holds a
  /// pointer to this and acquires per batch).  Thread-safe.
  [[nodiscard]] const SnapshotPublisher& publisher() const {
    return publisher_;
  }

  /// Serialize the current published snapshot to `path` (versioned,
  /// checksummed — see runtime/artifact.h).  set_formats first.
  void save_artifact(const std::string& path) const;

  /// Cold-start path: seed the caches from a serialized artifact and
  /// publish its assignment as the current snapshot — no weight is
  /// re-quantized (stats().misses stays 0 for the load).  The artifact
  /// must match this session's model (name and per-slot weight shapes),
  /// and its stored decode LUTs must equal the tables this build derives
  /// for the same configs; any mismatch throws ArtifactLoadError with the
  /// precise ArtifactErrorCode.  Returns the published version stamp.
  std::uint64_t load_artifact(const std::string& path);

  /// Supervised cold start: try load_artifact(path); if the artifact is
  /// rejected for any reason and `opts.fallback_requantize` is set,
  /// degrade to a from-scratch set_formats over the caller's configs —
  /// slow instead of dead.  The fallback publishes exactly what a fresh
  /// quantization of the same configs would (bit-identical logits).
  /// Never throws ArtifactLoadError; the result carries the rejection.
  ColdStartResult cold_start(const std::string& path,
                             std::span<const LPConfig> weight_cfgs,
                             std::span<const LPConfig> act_cfgs,
                             const ColdStartOptions& opts = {});

  [[nodiscard]] const nn::Model& model() const { return *model_; }
  /// Weight-cache counter snapshot (hits/misses/evictions/bytes).
  /// Lock-free; safe concurrently with a prepare pass.
  [[nodiscard]] CacheStats stats() const { return weights_.stats(); }
  /// Number of distinct interned formats (weight + activation).
  [[nodiscard]] std::size_t format_count() const { return formats_.size(); }

 private:
  /// One candidate's resolved per-slot assignment during prepare.
  [[nodiscard]] QuantizedModel assemble(std::span<const LPConfig> weight_cfgs,
                                        std::span<const LPConfig> act_cfgs)
      LP_REQUIRES(prepare_mu_);
  void prepare_missing(std::span<const std::vector<LPConfig>> weight_cfgs,
                       std::span<const std::vector<LPConfig>> act_cfgs)
      LP_REQUIRES(prepare_mu_);
  [[nodiscard]] QuantizedModel prepare_locked(
      std::span<const LPConfig> weight_cfgs,
      std::span<const LPConfig> act_cfgs) LP_REQUIRES(prepare_mu_);
  /// Wrap a snapshot + its assignment into the next ServableModel version
  /// and publish it.
  void publish_locked(QuantizedModel qm,
                      std::span<const LPConfig> weight_cfgs,
                      std::span<const LPConfig> act_cfgs)
      LP_REQUIRES(prepare_mu_);

  const nn::Model* model_;
  SessionOptions opts_;
  /// Serializes every cache-mutating phase (prepare, set_formats,
  /// load_artifact) so concurrent control-plane callers are safe; the
  /// read paths never take it.
  Mutex prepare_mu_;
  /// Phase-confined, not mutex-guarded: every mutation happens inside the
  /// *_locked methods above (LP_REQUIRES(prepare_mu_)), but the parallel
  /// format-build/quantize passes read it lock-free from pool threads —
  /// a confinement the analysis cannot model, so no LP_GUARDED_BY here.
  /// The TSan legs and the prepare-phase contract in format_cache.h cover
  /// it.
  FormatCache formats_;
  WeightCodeCache weights_;
  SnapshotPublisher publisher_;
  std::uint64_t publish_seq_ LP_GUARDED_BY(prepare_mu_) = 0;
};

/// Stack inputs along dim 0 ([...] -> [sum_N, ...]).  Dim 0 of each input
/// is its batch size; trailing dims must match.  An input whose rank is
/// one less than the highest rank present is treated as a single sample
/// and contributes one row.  Note a uniform-rank list is necessarily
/// interpreted as batches — when stacking bare samples, shape them
/// [1, ...] (or include one batch so the sample rank is distinguishable).
/// Exposed for tests.
[[nodiscard]] Tensor stack_batches(std::span<const Tensor> inputs);

}  // namespace lp::runtime
