#include "runtime/artifact.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "runtime/servable_model.h"

namespace lp::runtime {
namespace {

constexpr char kMagic[4] = {'L', 'P', 'A', 'R'};

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Append-only little-endian serializer.  The library targets x86 (the
/// SIMD kernel dispatch is x86-only), so host order is the file order;
/// fixed-width copies keep that explicit.
struct Writer {
  std::vector<std::uint8_t> out;

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
  }
  void put_bytes(const void* p, std::size_t n) {
    const std::size_t at = out.size();
    out.resize(at + n);
    std::memcpy(out.data() + at, p, n);
  }
  void put_config(const LPConfig& c) {
    put<std::int32_t>(c.n);
    put<std::int32_t>(c.es);
    put<std::int32_t>(c.rs);
    put<std::uint64_t>(std::bit_cast<std::uint64_t>(c.sf));
  }
};

/// Bounds-checked cursor over the deserialized body.
struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    LP_CHECK_MSG(pos + sizeof(T) <= in.size(), "artifact truncated");
    T v;
    std::memcpy(&v, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }
  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    LP_CHECK_MSG(pos + n <= in.size(), "artifact truncated");
    const auto s = in.subspan(pos, n);
    pos += n;
    return s;
  }
  LPConfig get_config() {
    LPConfig c;
    c.n = get<std::int32_t>();
    c.es = get<std::int32_t>();
    c.rs = get<std::int32_t>();
    c.sf = std::bit_cast<double>(get<std::uint64_t>());
    c.validate();
    return c;
  }
};

}  // namespace

void write_artifact(const std::string& path, const ServableModel& m) {
  const QuantizedModel& qm = m.snapshot();
  const std::size_t n = m.weight_configs().size();

  Writer body;
  const std::string& name = m.model().name();
  body.put<std::uint32_t>(static_cast<std::uint32_t>(name.size()));
  body.put_bytes(name.data(), name.size());
  body.put<std::uint64_t>(n);
  body.put<std::uint8_t>(m.act_configs().empty() ? 0 : 1);
  for (const LPConfig& c : m.weight_configs()) body.put_config(c);
  for (const LPConfig& c : m.act_configs()) body.put_config(c);

  // Distinct weight decode LUTs, in first-use slot order (deterministic),
  // deduplicated by instance — slots of one interned format share one LUT.
  std::vector<const DecodeTable*> luts;
  std::unordered_map<const DecodeTable*, std::size_t> lut_index;
  for (std::size_t s = 0; s < n; ++s) {
    const auto& codes = qm.codes()[s];
    if (codes == nullptr) continue;
    const DecodeTable* lut = codes->lut().get();
    if (lut_index.emplace(lut, luts.size()).second) luts.push_back(lut);
  }
  body.put<std::uint64_t>(luts.size());
  for (const DecodeTable* lut : luts) {
    body.put<std::uint64_t>(lut->size());
    for (const float v : *lut) {
      body.put<std::uint32_t>(std::bit_cast<std::uint32_t>(v));
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    const auto& codes = qm.codes()[s];
    const auto& floats = qm.weights()[s];
    if (codes != nullptr) {
      body.put<std::uint8_t>(0);
      body.put<std::uint32_t>(static_cast<std::uint32_t>(codes->rank()));
      for (const std::int64_t d : codes->shape()) body.put<std::int64_t>(d);
      body.put<std::int32_t>(codes->code_bits());
      body.put<std::uint64_t>(lut_index.at(codes->lut().get()));
      const auto raw = codes->raw_bytes();
      body.put<std::uint64_t>(raw.size());
      body.put_bytes(raw.data(), raw.size());
    } else {
      LP_CHECK_MSG(floats != nullptr,
                   "slot " << s << " has neither codes nor floats");
      body.put<std::uint8_t>(1);
      body.put<std::uint32_t>(static_cast<std::uint32_t>(floats->rank()));
      for (const std::int64_t d : floats->shape()) body.put<std::int64_t>(d);
      const auto data = floats->data();
      body.put<std::uint64_t>(data.size());
      for (const float v : data) {
        body.put<std::uint32_t>(std::bit_cast<std::uint32_t>(v));
      }
    }
  }

  Writer head;
  head.put_bytes(kMagic, sizeof(kMagic));
  head.put<std::uint32_t>(kArtifactVersion);
  head.put<std::uint64_t>(fnv1a64(body.out));
  head.put<std::uint64_t>(body.out.size());

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  LP_CHECK_MSG(f.good(), "cannot open artifact for writing: " << path);
  f.write(reinterpret_cast<const char*>(head.out.data()),
          static_cast<std::streamsize>(head.out.size()));
  f.write(reinterpret_cast<const char*>(body.out.data()),
          static_cast<std::streamsize>(body.out.size()));
  f.flush();
  LP_CHECK_MSG(f.good(), "artifact write failed: " << path);
}

Artifact read_artifact(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  LP_CHECK_MSG(f.good(), "cannot open artifact: " << path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(raw.data()), size);
  LP_CHECK_MSG(f.good(), "artifact read failed: " << path);

  constexpr std::size_t kHeader = sizeof(kMagic) + sizeof(std::uint32_t) +
                                  2 * sizeof(std::uint64_t);
  LP_CHECK_MSG(raw.size() >= kHeader, "artifact too small: " << path);
  LP_CHECK_MSG(std::memcmp(raw.data(), kMagic, sizeof(kMagic)) == 0,
               "not an LP artifact (bad magic): " << path);
  Reader head{std::span<const std::uint8_t>(raw).subspan(sizeof(kMagic)), 0};
  const auto version = head.get<std::uint32_t>();
  LP_CHECK_MSG(version == kArtifactVersion,
               "artifact format version " << version << " != supported "
                                          << kArtifactVersion);
  const auto checksum = head.get<std::uint64_t>();
  const auto body_size = head.get<std::uint64_t>();
  LP_CHECK_MSG(raw.size() == kHeader + body_size,
               "artifact size mismatch: " << path);
  const auto body_bytes = std::span<const std::uint8_t>(raw).subspan(kHeader);
  LP_CHECK_MSG(fnv1a64(body_bytes) == checksum,
               "artifact checksum mismatch (corrupt file): " << path);

  Reader r{body_bytes, 0};
  Artifact art;
  art.format_version = version;
  const auto name_len = r.get<std::uint32_t>();
  const auto name = r.get_bytes(name_len);
  art.model_name.assign(reinterpret_cast<const char*>(name.data()),
                        name.size());
  const auto num_slots = r.get<std::uint64_t>();
  const bool has_acts = r.get<std::uint8_t>() != 0;
  art.weight_cfgs.reserve(num_slots);
  for (std::uint64_t s = 0; s < num_slots; ++s) {
    art.weight_cfgs.push_back(r.get_config());
  }
  if (has_acts) {
    art.act_cfgs.reserve(num_slots);
    for (std::uint64_t s = 0; s < num_slots; ++s) {
      art.act_cfgs.push_back(r.get_config());
    }
  }

  const auto num_luts = r.get<std::uint64_t>();
  art.luts.reserve(num_luts);
  for (std::uint64_t l = 0; l < num_luts; ++l) {
    const auto lut_size = r.get<std::uint64_t>();
    LP_CHECK_MSG(lut_size <= PackedCodes::kMaxLutSize,
                 "artifact LUT larger than the packed path serves");
    DecodeTable lut;
    lut.reserve(lut_size);
    for (std::uint64_t i = 0; i < lut_size; ++i) {
      lut.push_back(std::bit_cast<float>(r.get<std::uint32_t>()));
    }
    art.luts.push_back(std::move(lut));
  }

  art.slots.reserve(num_slots);
  for (std::uint64_t s = 0; s < num_slots; ++s) {
    ArtifactSlot slot;
    slot.packed = r.get<std::uint8_t>() == 0;
    const auto rank = r.get<std::uint32_t>();
    std::int64_t numel = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      slot.shape.push_back(r.get<std::int64_t>());
      LP_CHECK_MSG(slot.shape.back() >= 0, "artifact negative dimension");
      numel *= slot.shape.back();
    }
    if (slot.packed) {
      slot.code_bits = r.get<std::int32_t>();
      LP_CHECK_MSG(slot.code_bits == 4 || slot.code_bits == 8 ||
                       slot.code_bits == 16,
                   "artifact code width " << slot.code_bits);
      slot.lut_index = r.get<std::uint64_t>();
      LP_CHECK_MSG(slot.lut_index < art.luts.size(),
                   "artifact LUT index out of range");
      const auto nbytes = r.get<std::uint64_t>();
      LP_CHECK_MSG(nbytes ==
                       PackedCodes::stream_bytes(numel, slot.code_bits),
                   "artifact code stream size mismatch at slot " << s);
      const auto bytes = r.get_bytes(nbytes);
      slot.codes.assign(bytes.begin(), bytes.end());
    } else {
      const auto count = r.get<std::uint64_t>();
      LP_CHECK_MSG(count == static_cast<std::uint64_t>(numel),
                   "artifact float payload size mismatch at slot " << s);
      slot.floats.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        slot.floats.push_back(std::bit_cast<float>(r.get<std::uint32_t>()));
      }
    }
    art.slots.push_back(std::move(slot));
  }
  LP_CHECK_MSG(r.pos == r.in.size(), "artifact has trailing bytes");
  return art;
}

}  // namespace lp::runtime
