#include "runtime/artifact.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "runtime/servable_model.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace lp::runtime {
namespace {

constexpr char kMagic[4] = {'L', 'P', 'A', 'R'};

[[noreturn]] void raise(ArtifactErrorCode code, const std::string& msg) {
  std::ostringstream os;
  os << "artifact load failed [" << to_string(code) << "]: " << msg;
  throw ArtifactLoadError(code, os.str());
}

/// LP_CHECK_MSG analogue that throws the structured error instead.
#define LP_ARTIFACT_CHECK(code, cond, msg)      \
  do {                                          \
    if (!(cond)) {                              \
      std::ostringstream lp_art_os_;            \
      lp_art_os_ << msg;                        \
      raise((code), lp_art_os_.str());          \
    }                                           \
  } while (false)

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Append-only little-endian serializer.  The library targets x86 (the
/// SIMD kernel dispatch is x86-only), so host order is the file order;
/// fixed-width copies keep that explicit.
struct Writer {
  std::vector<std::uint8_t> out;

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
  }
  void put_bytes(const void* p, std::size_t n) {
    const std::size_t at = out.size();
    out.resize(at + n);
    std::memcpy(out.data() + at, p, n);
  }
  void put_config(const LPConfig& c) {
    put<std::int32_t>(c.n);
    put<std::int32_t>(c.es);
    put<std::int32_t>(c.rs);
    put<std::uint64_t>(std::bit_cast<std::uint64_t>(c.sf));
  }
};

/// Bounds-checked cursor over the deserialized body.
struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    LP_ARTIFACT_CHECK(ArtifactErrorCode::kTruncated,
                      pos + sizeof(T) <= in.size(),
                      "body ends mid-field at offset " << pos);
    T v;
    std::memcpy(&v, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }
  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    LP_ARTIFACT_CHECK(ArtifactErrorCode::kTruncated, pos + n <= in.size(),
                      "body ends mid-field at offset " << pos);
    const auto s = in.subspan(pos, n);
    pos += n;
    return s;
  }
  LPConfig get_config() {
    LPConfig c;
    c.n = get<std::int32_t>();
    c.es = get<std::int32_t>();
    c.rs = get<std::int32_t>();
    c.sf = std::bit_cast<double>(get<std::uint64_t>());
    try {
      c.validate();
    } catch (const std::invalid_argument& e) {
      raise(ArtifactErrorCode::kMalformed, e.what());
    }
    return c;
  }
};

}  // namespace

const char* to_string(ArtifactErrorCode code) {
  switch (code) {
    case ArtifactErrorCode::kNone: return "none";
    case ArtifactErrorCode::kIo: return "io";
    case ArtifactErrorCode::kBadMagic: return "bad-magic";
    case ArtifactErrorCode::kVersionSkew: return "version-skew";
    case ArtifactErrorCode::kTruncated: return "truncated";
    case ArtifactErrorCode::kChecksum: return "checksum";
    case ArtifactErrorCode::kMalformed: return "malformed";
    case ArtifactErrorCode::kLutMismatch: return "lut-mismatch";
    case ArtifactErrorCode::kModelMismatch: return "model-mismatch";
  }
  return "unknown";
}

void write_artifact(const std::string& path, const ServableModel& m) {
  const QuantizedModel& qm = m.snapshot();
  const std::size_t n = m.weight_configs().size();

  Writer body;
  const std::string& name = m.model().name();
  body.put<std::uint32_t>(static_cast<std::uint32_t>(name.size()));
  body.put_bytes(name.data(), name.size());
  body.put<std::uint64_t>(n);
  body.put<std::uint8_t>(m.act_configs().empty() ? 0 : 1);
  for (const LPConfig& c : m.weight_configs()) body.put_config(c);
  for (const LPConfig& c : m.act_configs()) body.put_config(c);

  // Distinct weight decode LUTs, in first-use slot order (deterministic),
  // deduplicated by instance — slots of one interned format share one LUT.
  std::vector<const DecodeTable*> luts;
  std::unordered_map<const DecodeTable*, std::size_t> lut_index;
  for (std::size_t s = 0; s < n; ++s) {
    const auto& codes = qm.codes()[s];
    if (codes == nullptr) continue;
    const DecodeTable* lut = codes->lut().get();
    if (lut_index.emplace(lut, luts.size()).second) luts.push_back(lut);
  }
  body.put<std::uint64_t>(luts.size());
  for (const DecodeTable* lut : luts) {
    body.put<std::uint64_t>(lut->size());
    for (const float v : *lut) {
      body.put<std::uint32_t>(std::bit_cast<std::uint32_t>(v));
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    const auto& codes = qm.codes()[s];
    const auto& floats = qm.weights()[s];
    if (codes != nullptr) {
      body.put<std::uint8_t>(0);
      body.put<std::uint32_t>(static_cast<std::uint32_t>(codes->rank()));
      for (const std::int64_t d : codes->shape()) body.put<std::int64_t>(d);
      body.put<std::int32_t>(codes->code_bits());
      body.put<std::uint64_t>(lut_index.at(codes->lut().get()));
      const auto raw = codes->raw_bytes();
      body.put<std::uint64_t>(raw.size());
      body.put_bytes(raw.data(), raw.size());
    } else {
      LP_CHECK_MSG(floats != nullptr,
                   "slot " << s << " has neither codes nor floats");
      body.put<std::uint8_t>(1);
      body.put<std::uint32_t>(static_cast<std::uint32_t>(floats->rank()));
      for (const std::int64_t d : floats->shape()) body.put<std::int64_t>(d);
      const auto data = floats->data();
      body.put<std::uint64_t>(data.size());
      for (const float v : data) {
        body.put<std::uint32_t>(std::bit_cast<std::uint32_t>(v));
      }
    }
  }

  Writer head;
  head.put_bytes(kMagic, sizeof(kMagic));
  head.put<std::uint32_t>(kArtifactVersion);
  head.put<std::uint64_t>(fnv1a64(body.out));
  head.put<std::uint64_t>(body.out.size());

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  LP_CHECK_MSG(f.good(), "cannot open artifact for writing: " << path);
  f.write(reinterpret_cast<const char*>(head.out.data()),
          static_cast<std::streamsize>(head.out.size()));
  f.write(reinterpret_cast<const char*>(body.out.data()),
          static_cast<std::streamsize>(body.out.size()));
  f.flush();
  LP_CHECK_MSG(f.good(), "artifact write failed: " << path);
}

Artifact read_artifact(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kIo, f.good(),
                    "cannot open artifact: " << path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(raw.data()), size);
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kIo, f.good(),
                    "artifact read failed: " << path);
  // Chaos harness: pretend the file system handed us a short file, so the
  // truncation rejection (and any cold-start fallback above it) runs.
  if (LP_FAULT_POINT("artifact.read.truncate") && raw.size() > 1) {
    raw.resize(raw.size() / 2);
  }

  constexpr std::size_t kHeader = sizeof(kMagic) + sizeof(std::uint32_t) +
                                  2 * sizeof(std::uint64_t);
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kTruncated, raw.size() >= kHeader,
                    "artifact smaller than its header: " << path);
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kBadMagic,
                    std::memcmp(raw.data(), kMagic, sizeof(kMagic)) == 0,
                    "not an LP artifact: " << path);
  Reader head{std::span<const std::uint8_t>(raw).subspan(sizeof(kMagic)), 0};
  const auto version = head.get<std::uint32_t>();
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kVersionSkew,
                    version == kArtifactVersion,
                    "on-disk format version " << version << " != supported "
                                              << kArtifactVersion);
  const auto checksum = head.get<std::uint64_t>();
  const auto body_size = head.get<std::uint64_t>();
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kTruncated,
                    raw.size() == kHeader + body_size,
                    "size field says " << body_size << " body bytes, file has "
                                       << raw.size() - kHeader);
  const auto body_bytes = std::span<const std::uint8_t>(raw).subspan(kHeader);
  // Chaos harness: force the checksum comparison down its failure arm.
  const bool checksum_ok = fnv1a64(body_bytes) == checksum &&
                           !LP_FAULT_POINT("artifact.read.checksum");
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kChecksum, checksum_ok,
                    "body checksum mismatch (corrupt file): " << path);

  Reader r{body_bytes, 0};
  Artifact art;
  art.format_version = version;
  const auto name_len = r.get<std::uint32_t>();
  const auto name = r.get_bytes(name_len);
  art.model_name.assign(reinterpret_cast<const char*>(name.data()),
                        name.size());
  const auto num_slots = r.get<std::uint64_t>();
  const bool has_acts = r.get<std::uint8_t>() != 0;
  art.weight_cfgs.reserve(num_slots);
  for (std::uint64_t s = 0; s < num_slots; ++s) {
    art.weight_cfgs.push_back(r.get_config());
  }
  if (has_acts) {
    art.act_cfgs.reserve(num_slots);
    for (std::uint64_t s = 0; s < num_slots; ++s) {
      art.act_cfgs.push_back(r.get_config());
    }
  }

  const auto num_luts = r.get<std::uint64_t>();
  art.luts.reserve(num_luts);
  for (std::uint64_t l = 0; l < num_luts; ++l) {
    const auto lut_size = r.get<std::uint64_t>();
    LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed,
                      lut_size <= PackedCodes::kMaxLutSize,
                      "LUT larger than the packed path serves");
    DecodeTable lut;
    lut.reserve(lut_size);
    for (std::uint64_t i = 0; i < lut_size; ++i) {
      lut.push_back(std::bit_cast<float>(r.get<std::uint32_t>()));
    }
    art.luts.push_back(std::move(lut));
  }

  art.slots.reserve(num_slots);
  for (std::uint64_t s = 0; s < num_slots; ++s) {
    ArtifactSlot slot;
    slot.packed = r.get<std::uint8_t>() == 0;
    const auto rank = r.get<std::uint32_t>();
    std::int64_t numel = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      slot.shape.push_back(r.get<std::int64_t>());
      LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed, slot.shape.back() >= 0,
                        "negative dimension at slot " << s);
      numel *= slot.shape.back();
    }
    if (slot.packed) {
      slot.code_bits = r.get<std::int32_t>();
      LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed,
                        slot.code_bits == 4 || slot.code_bits == 8 ||
                            slot.code_bits == 16,
                        "unsupported code width " << slot.code_bits);
      slot.lut_index = r.get<std::uint64_t>();
      LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed,
                        slot.lut_index < art.luts.size(),
                        "LUT index out of range at slot " << s);
      const auto nbytes = r.get<std::uint64_t>();
      LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed,
                        nbytes ==
                            PackedCodes::stream_bytes(numel, slot.code_bits),
                        "code stream size mismatch at slot " << s);
      const auto bytes = r.get_bytes(nbytes);
      slot.codes.assign(bytes.begin(), bytes.end());
    } else {
      const auto count = r.get<std::uint64_t>();
      LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed,
                        count == static_cast<std::uint64_t>(numel),
                        "float payload size mismatch at slot " << s);
      slot.floats.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        slot.floats.push_back(std::bit_cast<float>(r.get<std::uint32_t>()));
      }
    }
    art.slots.push_back(std::move(slot));
  }
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kMalformed, r.pos == r.in.size(),
                    "trailing bytes after last slot");
  return art;
}

}  // namespace lp::runtime
