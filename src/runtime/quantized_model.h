// QuantizedModel — an immutable snapshot of an nn::Model under one
// per-layer format assignment: shared packed weight-code payloads (from
// the session's weight-code cache) plus interned activation formats.
//
// A snapshot is cheap to build (pointer copies once the cache is warm) and
// cheap to copy, so the LPQ engine materializes one per candidate and
// evaluates them concurrently; shared ownership keeps every referenced
// payload alive even if the cache evicts it mid-flight.  run() executes
// the fused per-node quantize -> GEMM -> activation pipeline on the
// default thread pool and the dispatched SIMD kernels; slots with packed
// codes run the LUT-decoding GEMM datapath (slots the packed path cannot
// serve carry a pre-quantized float tensor instead) — in either case
// bit-identical to Model::forward_quantized with the equivalent QuantSpec.
#pragma once

#include <memory>
#include <vector>

#include "core/packed_codes.h"
#include "nn/model.h"
#include "runtime/format_cache.h"

namespace lp::runtime {

class QuantizedModel {
 public:
  QuantizedModel() = default;

  /// Batched forward through the snapshot.  `input` carries the batch in
  /// dim 0; every activation-format application inside is one
  /// quantize_batch pass over the whole batched node output.  When the
  /// snapshot carries coded-activation specs (see act_coding()),
  /// inter-layer activations flow as packed codes — bit-identical logits —
  /// and `act_traffic` (optional) receives the per-representation byte
  /// counts; edges whose format has no enumerable table, and any run that
  /// captures pooled values, stay float.
  [[nodiscard]] nn::ForwardResult run(const Tensor& input,
                                      bool capture_pooled = false,
                                      nn::ActTraffic* act_traffic = nullptr) const;

  /// GEMM workloads this snapshot executes for `input` (batch folded into
  /// each workload's N dimension) — feed to sim::simulate.
  [[nodiscard]] std::vector<nn::LayerWorkload> trace_workloads(
      const Tensor& input) const;

  [[nodiscard]] const nn::Model& model() const {
    LP_CHECK_MSG(model_ != nullptr, "empty QuantizedModel");
    return *model_;
  }
  [[nodiscard]] bool empty() const { return model_ == nullptr; }

  /// Per-slot packed weight codes (null = slot runs the float payload in
  /// weights(), or its FP weights when both are null).
  [[nodiscard]] const std::vector<std::shared_ptr<const PackedCodes>>& codes()
      const {
    return codes_;
  }
  /// Per-slot quantized float weights — only filled for slots the packed
  /// path could not serve (null everywhere codes() is non-null).
  [[nodiscard]] const std::vector<std::shared_ptr<const Tensor>>& weights()
      const {
    return weights_;
  }
  /// Per-slot weight formats aligned with weights() (null = FP slot).
  [[nodiscard]] const std::vector<std::shared_ptr<const LPFormat>>&
  weight_formats() const {
    return weight_fmts_;
  }
  /// Per-slot activation formats (null = unquantized activations).
  [[nodiscard]] const std::vector<std::shared_ptr<const LPFormat>>&
  act_formats() const {
    return act_fmts_;
  }
  /// Per-slot coded-activation specs (empty when the session prepared the
  /// snapshot with coded activations off, or no activation formats were
  /// given).  Entries with a null qidx fall back to float on that edge.
  [[nodiscard]] std::span<const nn::ActCoding> act_coding() const {
    return act_coding_;
  }
  /// Execution options the session stamped into this snapshot (multiply
  /// semantics and float-in fusion — see nn::ExecOpts).
  [[nodiscard]] const nn::ExecOpts& exec_opts() const { return exec_; }

 private:
  friend class InferenceSession;

  const nn::Model* model_ = nullptr;
  std::vector<std::shared_ptr<const PackedCodes>> codes_;
  std::vector<std::shared_ptr<const Tensor>> weights_;
  std::vector<std::shared_ptr<const LPFormat>> weight_fmts_;
  std::vector<std::shared_ptr<const LPFormat>> act_fmts_;
  std::vector<const PackedCodes*> code_ptrs_;  ///< aligned view of codes_
  std::vector<const Tensor*> weight_ptrs_;     ///< aligned view of weights_
  nn::QuantSpec act_spec_;                     ///< act_fmt filled, weights null
  /// Per-slot coded-activation specs; the shared_ptr LUT inside each entry
  /// keeps the cache's activation decode tables alive for this snapshot.
  std::vector<nn::ActCoding> act_coding_;
  nn::ExecOpts exec_;  ///< stamped from SessionOptions at assembly
};

}  // namespace lp::runtime
