#include "runtime/weight_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lp::runtime {
namespace {

std::size_t physical_bytes(const WeightPayload& p) {
  if (p.codes != nullptr) return p.codes->payload_bytes();
  return static_cast<std::size_t>(p.floats->numel()) * sizeof(float);
}

std::size_t decoded_bytes(const WeightPayload& p) {
  if (p.codes != nullptr) return p.codes->logical_bytes();
  return static_cast<std::size_t>(p.floats->numel()) * sizeof(float);
}

std::size_t lut_payload_bytes(const DecodeTable& lut) {
  return lut.size() * sizeof(float);
}

}  // namespace

WeightPayload WeightCodeCache::find(std::size_t slot, const LPConfig& cfg) {
  const auto it = entries_.find(SlotKey{slot, FormatKey::of(cfg)});
  if (it == entries_.end()) return {};
  it->second.last_used = tick_;
  ++stats_.hits;
  return it->second.payload;
}

void WeightCodeCache::insert(std::size_t slot, const LPConfig& cfg,
                             WeightPayload payload) {
  LP_CHECK(!payload.empty());
  ++stats_.misses;
  const SlotKey key{slot, FormatKey::of(cfg)};
  const std::size_t phys = physical_bytes(payload);
  const std::size_t log = decoded_bytes(payload);
  const bool packed = payload.packed();
  auto [it, inserted] =
      entries_.emplace(key, Entry{std::move(payload), tick_, phys, log});
  if (!inserted) {
    it->second.last_used = tick_;
    return;  // already cached (same bits); keep the existing copy
  }
  if (packed) {
    // The payload must carry the LUT decode_lut() interned for this
    // format — that is what find() hands to live snapshots and what the
    // byte accounting charged once.
    const auto lit = luts_.find(key.fmt);
    LP_CHECK_MSG(lit != luts_.end() &&
                     lit->second.lut == it->second.payload.codes->lut(),
                 "packed payload with an un-interned decode LUT");
    ++lit->second.refs;
    ++stats_.packed_entries;
  }
  stats_.bytes += phys;
  stats_.logical_bytes += log;
  stats_.entries = entries_.size();
}

std::shared_ptr<const DecodeTable> WeightCodeCache::decode_lut(
    const LPConfig& cfg, const NumberFormat& fmt) {
  const FormatKey key = FormatKey::of(cfg);
  const auto it = luts_.find(key);
  if (it != luts_.end()) {
    it->second.last_used = tick_;
    return it->second.lut;
  }
  std::shared_ptr<const DecodeTable> lut = build_decode_table(fmt);
  if (lut != nullptr) {
    const std::size_t b = lut_payload_bytes(*lut);
    stats_.bytes += b;
    stats_.lut_bytes += b;
  }
  luts_.emplace(key, LutRec{lut, 0, tick_});
  return lut;
}

std::shared_ptr<const DecodeTable> WeightCodeCache::act_decode_lut(
    const LPConfig& cfg, const NumberFormat& fmt) {
  const FormatKey key = FormatKey::of(cfg);
  const auto it = act_luts_.find(key);
  if (it != act_luts_.end()) {
    it->second.last_used = tick_;
    return it->second.lut;
  }
  std::shared_ptr<const DecodeTable> lut = build_decode_table(fmt);
  if (lut != nullptr) {
    const std::size_t b = lut_payload_bytes(*lut);
    stats_.bytes += b;
    stats_.act_lut_bytes += b;
  }
  act_luts_.emplace(key, LutRec{lut, 0, tick_});
  return lut;
}

void WeightCodeCache::next_generation() {
  evict_to_budget();
  sweep_stale_luts();
  sweep_stale_act_luts();
  ++tick_;
}

void WeightCodeCache::erase_entry(const SlotKey& key, const Entry& entry) {
  stats_.bytes -= entry.phys_bytes;
  stats_.logical_bytes -= entry.log_bytes;
  if (entry.payload.packed()) {
    --stats_.packed_entries;
    const auto lit = luts_.find(key.fmt);
    if (lit != luts_.end() && --lit->second.refs == 0) {
      // Last entry of this format gone: its decode LUT goes with it.
      if (lit->second.lut != nullptr) {
        const std::size_t b = lut_payload_bytes(*lit->second.lut);
        stats_.bytes -= b;
        stats_.lut_bytes -= b;
      }
      luts_.erase(lit);
    }
  }
  entries_.erase(key);
  ++stats_.evictions;
}

void WeightCodeCache::evict_to_budget() {
  if (stats_.bytes <= budget_bytes_) return;
  // Collect evictable entries (not used this tick), oldest ticks first;
  // within a tick the map's key order breaks ties deterministically.
  std::vector<std::pair<std::uint64_t, SlotKey>> victims;
  for (const auto& [key, entry] : entries_) {
    if (entry.last_used < tick_) victims.emplace_back(entry.last_used, key);
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (const auto& [tick, key] : victims) {
    if (stats_.bytes <= budget_bytes_) break;
    const auto it = entries_.find(key);
    erase_entry(key, it->second);
  }
  stats_.entries = entries_.size();
}

void WeightCodeCache::sweep_stale_luts() {
  // A LUT interned for a format whose every tensor fell back to floats
  // (non-finite weights) has refs == 0 and would otherwise linger charged
  // against the budget forever.  Null records (formats the packed path
  // cannot serve) cost nothing and stay as a negative cache.
  for (auto it = luts_.begin(); it != luts_.end();) {
    if (it->second.refs == 0 && it->second.lut != nullptr &&
        it->second.last_used < tick_) {
      const std::size_t b = lut_payload_bytes(*it->second.lut);
      stats_.bytes -= b;
      stats_.lut_bytes -= b;
      it = luts_.erase(it);
    } else {
      ++it;
    }
  }
}

void WeightCodeCache::sweep_stale_act_luts() {
  // Activation LUTs have no entry refcounts — recency alone decides.  A
  // LUT untouched for a full generation is dropped (live snapshots keep
  // shared ownership); null records stay as a free negative cache.
  for (auto it = act_luts_.begin(); it != act_luts_.end();) {
    if (it->second.lut != nullptr && it->second.last_used < tick_) {
      const std::size_t b = lut_payload_bytes(*it->second.lut);
      stats_.bytes -= b;
      stats_.act_lut_bytes -= b;
      it = act_luts_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lp::runtime
