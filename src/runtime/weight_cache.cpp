#include "runtime/weight_cache.h"

#include <algorithm>
#include <vector>

namespace lp::runtime {
namespace {

std::size_t payload_bytes(const Tensor& t) {
  return static_cast<std::size_t>(t.numel()) * sizeof(float);
}

}  // namespace

std::shared_ptr<const Tensor> WeightCodeCache::find(std::size_t slot,
                                                    const LPConfig& cfg) {
  const auto it = entries_.find(SlotKey{slot, FormatKey::of(cfg)});
  if (it == entries_.end()) return nullptr;
  it->second.last_used = tick_;
  ++stats_.hits;
  return it->second.weights;
}

void WeightCodeCache::insert(std::size_t slot, const LPConfig& cfg,
                             std::shared_ptr<const Tensor> weights) {
  LP_CHECK(weights != nullptr);
  ++stats_.misses;
  const SlotKey key{slot, FormatKey::of(cfg)};
  auto [it, inserted] = entries_.emplace(key, Entry{std::move(weights), tick_});
  if (!inserted) {
    it->second.last_used = tick_;
    return;  // already cached (same bits); keep the existing copy
  }
  stats_.bytes += payload_bytes(*it->second.weights);
  stats_.entries = entries_.size();
}

void WeightCodeCache::next_generation() {
  evict_to_budget();
  ++tick_;
}

void WeightCodeCache::evict_to_budget() {
  if (stats_.bytes <= budget_bytes_) return;
  // Collect evictable entries (not used this tick), oldest ticks first;
  // within a tick the map's key order breaks ties deterministically.
  std::vector<std::pair<std::uint64_t, SlotKey>> victims;
  for (const auto& [key, entry] : entries_) {
    if (entry.last_used < tick_) victims.emplace_back(entry.last_used, key);
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (const auto& [tick, key] : victims) {
    if (stats_.bytes <= budget_bytes_) break;
    const auto it = entries_.find(key);
    stats_.bytes -= payload_bytes(*it->second.weights);
    entries_.erase(it);
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

}  // namespace lp::runtime
