#include "runtime/weight_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lp::runtime {
namespace {

std::size_t physical_bytes(const WeightPayload& p) {
  if (p.codes != nullptr) return p.codes->payload_bytes();
  return static_cast<std::size_t>(p.floats->numel()) * sizeof(float);
}

std::size_t decoded_bytes(const WeightPayload& p) {
  if (p.codes != nullptr) return p.codes->logical_bytes();
  return static_cast<std::size_t>(p.floats->numel()) * sizeof(float);
}

std::size_t lut_payload_bytes(const DecodeTable& lut) {
  return lut.size() * sizeof(float);
}

}  // namespace

WeightPayload WeightCodeCache::find(std::size_t slot, const LPConfig& cfg) {
  Shard& shard = shard_for(slot);
  const MutexLock lk(shard.mu);
  const auto it = shard.entries.find(SlotKey{slot, FormatKey::of(cfg)});
  if (it == shard.entries.end()) return {};
  it->second.last_used = tick_.load(std::memory_order_relaxed);
  counters_.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.payload;
}

bool WeightCodeCache::contains(std::size_t slot, const LPConfig& cfg) const {
  const Shard& shard = shard_for(slot);
  const MutexLock lk(shard.mu);
  return shard.entries.find(SlotKey{slot, FormatKey::of(cfg)}) !=
         shard.entries.end();
}

void WeightCodeCache::insert(std::size_t slot, const LPConfig& cfg,
                             WeightPayload payload, bool count_miss) {
  LP_CHECK(!payload.empty());
  if (count_miss) counters_.misses.fetch_add(1, std::memory_order_relaxed);
  const SlotKey key{slot, FormatKey::of(cfg)};
  const std::size_t phys = physical_bytes(payload);
  const std::size_t log = decoded_bytes(payload);
  const bool packed = payload.packed();
  Shard& shard = shard_for(slot);
  const MutexLock lk(shard.mu);
  const std::uint64_t tick = tick_.load(std::memory_order_relaxed);
  auto [it, inserted] =
      shard.entries.emplace(key, Entry{std::move(payload), tick, phys, log});
  if (!inserted) {
    it->second.last_used = tick;
    return;  // already cached (same bits); keep the existing copy
  }
  if (packed) {
    // The payload must carry the LUT decode_lut() interned for this
    // format — that is what find() hands to live snapshots and what the
    // byte accounting charged once.
    const MutexLock llk(lut_mu_);
    const auto lit = luts_.find(key.fmt);
    LP_CHECK_MSG(lit != luts_.end() &&
                     lit->second.lut == it->second.payload.codes->lut(),
                 "packed payload with an un-interned decode LUT");
    ++lit->second.refs;
    counters_.packed_entries.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.bytes.fetch_add(phys, std::memory_order_relaxed);
  counters_.logical_bytes.fetch_add(log, std::memory_order_relaxed);
  counters_.entries.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const DecodeTable> WeightCodeCache::decode_lut(
    const LPConfig& cfg, const NumberFormat& fmt) {
  const FormatKey key = FormatKey::of(cfg);
  const MutexLock lk(lut_mu_);
  const auto it = luts_.find(key);
  if (it != luts_.end()) {
    it->second.last_used = tick_.load(std::memory_order_relaxed);
    return it->second.lut;
  }
  std::shared_ptr<const DecodeTable> lut = build_decode_table(fmt);
  if (lut != nullptr) {
    const std::size_t b = lut_payload_bytes(*lut);
    counters_.bytes.fetch_add(b, std::memory_order_relaxed);
    counters_.lut_bytes.fetch_add(b, std::memory_order_relaxed);
  }
  luts_.emplace(key, LutRec{lut, 0, tick_.load(std::memory_order_relaxed)});
  return lut;
}

std::shared_ptr<const DecodeTable> WeightCodeCache::act_decode_lut(
    const LPConfig& cfg, const NumberFormat& fmt) {
  const FormatKey key = FormatKey::of(cfg);
  const MutexLock lk(lut_mu_);
  const auto it = act_luts_.find(key);
  if (it != act_luts_.end()) {
    it->second.last_used = tick_.load(std::memory_order_relaxed);
    return it->second.lut;
  }
  std::shared_ptr<const DecodeTable> lut = build_decode_table(fmt);
  if (lut != nullptr) {
    const std::size_t b = lut_payload_bytes(*lut);
    counters_.bytes.fetch_add(b, std::memory_order_relaxed);
    counters_.act_lut_bytes.fetch_add(b, std::memory_order_relaxed);
  }
  act_luts_.emplace(key,
                    LutRec{lut, 0, tick_.load(std::memory_order_relaxed)});
  return lut;
}

CacheStats WeightCodeCache::stats() const {
  CacheStats s;
  s.hits = counters_.hits.load(std::memory_order_relaxed);
  s.misses = counters_.misses.load(std::memory_order_relaxed);
  s.evictions = counters_.evictions.load(std::memory_order_relaxed);
  s.entries = counters_.entries.load(std::memory_order_relaxed);
  s.bytes = counters_.bytes.load(std::memory_order_relaxed);
  s.logical_bytes = counters_.logical_bytes.load(std::memory_order_relaxed);
  s.lut_bytes = counters_.lut_bytes.load(std::memory_order_relaxed);
  s.act_lut_bytes = counters_.act_lut_bytes.load(std::memory_order_relaxed);
  s.packed_entries =
      counters_.packed_entries.load(std::memory_order_relaxed);
  return s;
}

void WeightCodeCache::next_generation() {
  evict_to_budget();
  sweep_stale_luts();
  sweep_stale_act_luts();
  tick_.fetch_add(1, std::memory_order_relaxed);
}

void WeightCodeCache::erase_entry_locked(
    Shard& shard, const SlotKey& key,
    std::map<SlotKey, Entry>::iterator it) {
  const Entry& entry = it->second;
  counters_.bytes.fetch_sub(entry.phys_bytes, std::memory_order_relaxed);
  counters_.logical_bytes.fetch_sub(entry.log_bytes,
                                    std::memory_order_relaxed);
  if (entry.payload.packed()) {
    counters_.packed_entries.fetch_sub(1, std::memory_order_relaxed);
    const MutexLock llk(lut_mu_);
    const auto lit = luts_.find(key.fmt);
    if (lit != luts_.end() && --lit->second.refs == 0) {
      // Last entry of this format gone: its decode LUT goes with it.
      if (lit->second.lut != nullptr) {
        const std::size_t b = lut_payload_bytes(*lit->second.lut);
        counters_.bytes.fetch_sub(b, std::memory_order_relaxed);
        counters_.lut_bytes.fetch_sub(b, std::memory_order_relaxed);
      }
      luts_.erase(lit);
    }
  }
  shard.entries.erase(it);
  counters_.entries.fetch_sub(1, std::memory_order_relaxed);
  counters_.evictions.fetch_add(1, std::memory_order_relaxed);
}

void WeightCodeCache::evict_to_budget() {
  if (counters_.bytes.load(std::memory_order_relaxed) <= budget_bytes_) {
    return;
  }
  // Collect evictable entries (not used this tick) across every shard,
  // oldest ticks first; within a tick the key order breaks ties
  // deterministically — shard layout never influences the sweep order.
  const std::uint64_t tick = tick_.load(std::memory_order_relaxed);
  std::vector<std::pair<std::uint64_t, SlotKey>> victims;
  for (Shard& shard : shards_) {
    const MutexLock lk(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      if (entry.last_used < tick) victims.emplace_back(entry.last_used, key);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (const auto& [vtick, key] : victims) {
    if (counters_.bytes.load(std::memory_order_relaxed) <= budget_bytes_) {
      break;
    }
    Shard& shard = shard_for(key.slot);
    const MutexLock lk(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) erase_entry_locked(shard, key, it);
  }
}

void WeightCodeCache::sweep_stale_luts() {
  // A LUT interned for a format whose every tensor fell back to floats
  // (non-finite weights) has refs == 0 and would otherwise linger charged
  // against the budget forever.  Null records (formats the packed path
  // cannot serve) cost nothing and stay as a negative cache.
  const std::uint64_t tick = tick_.load(std::memory_order_relaxed);
  const MutexLock lk(lut_mu_);
  for (auto it = luts_.begin(); it != luts_.end();) {
    if (it->second.refs == 0 && it->second.lut != nullptr &&
        it->second.last_used < tick) {
      const std::size_t b = lut_payload_bytes(*it->second.lut);
      counters_.bytes.fetch_sub(b, std::memory_order_relaxed);
      counters_.lut_bytes.fetch_sub(b, std::memory_order_relaxed);
      it = luts_.erase(it);
    } else {
      ++it;
    }
  }
}

void WeightCodeCache::sweep_stale_act_luts() {
  // Activation LUTs have no entry refcounts — recency alone decides.  A
  // LUT untouched for a full generation is dropped (live snapshots keep
  // shared ownership); null records stay as a free negative cache.
  const std::uint64_t tick = tick_.load(std::memory_order_relaxed);
  const MutexLock lk(lut_mu_);
  for (auto it = act_luts_.begin(); it != act_luts_.end();) {
    if (it->second.lut != nullptr && it->second.last_used < tick) {
      const std::size_t b = lut_payload_bytes(*it->second.lut);
      counters_.bytes.fetch_sub(b, std::memory_order_relaxed);
      counters_.act_lut_bytes.fetch_sub(b, std::memory_order_relaxed);
      it = act_luts_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lp::runtime
