#include "runtime/format_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lp::runtime {

std::shared_ptr<const LPFormat> FormatCache::get(const LPConfig& cfg) {
  const FormatKey key = FormatKey::of(cfg);
  auto it = map_.find(key);
  if (it == map_.end()) {
    it = map_.emplace(key, Entry{std::make_shared<const LPFormat>(cfg), tick_})
             .first;
  }
  it->second.last_used = tick_;
  return it->second.fmt;
}

std::shared_ptr<const LPFormat> FormatCache::find(const LPConfig& cfg) const {
  const auto it = map_.find(FormatKey::of(cfg));
  return it == map_.end() ? nullptr : it->second.fmt;
}

void FormatCache::put(const LPConfig& cfg, std::shared_ptr<const LPFormat> fmt) {
  const auto it =
      map_.try_emplace(FormatKey::of(cfg), Entry{std::move(fmt), tick_}).first;
  it->second.last_used = tick_;
}

void FormatCache::next_generation(std::size_t max_entries) {
  if (map_.size() > max_entries) {
    std::vector<std::pair<std::uint64_t, FormatKey>> victims;
    for (const auto& [key, entry] : map_) {
      if (entry.last_used < tick_) victims.emplace_back(entry.last_used, key);
    }
    std::sort(victims.begin(), victims.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;
              });
    for (const auto& [tick, key] : victims) {
      if (map_.size() <= max_entries) break;
      map_.erase(key);
    }
  }
  ++tick_;
}

}  // namespace lp::runtime
