#include "runtime/quantized_model.h"

namespace lp::runtime {

nn::ForwardResult QuantizedModel::run(const Tensor& input, bool capture_pooled,
                                      nn::ActTraffic* act_traffic) const {
  LP_CHECK_MSG(model_ != nullptr, "empty QuantizedModel");
  return model_->forward_with_weights(input, weight_ptrs_, code_ptrs_,
                                      act_spec_, act_coding_, act_traffic,
                                      capture_pooled, exec_);
}

std::vector<nn::LayerWorkload> QuantizedModel::trace_workloads(
    const Tensor& input) const {
  LP_CHECK_MSG(model_ != nullptr, "empty QuantizedModel");
  // Workload dims depend only on weight/input shapes, and quantization
  // preserves shapes — so the plain FP trace yields exactly the dims this
  // snapshot executes (batch folded into N by the batched `input`),
  // without paying a quantized forward for a diagnostic.
  return model_->trace_workloads(input);
}

}  // namespace lp::runtime
