#include "runtime/session.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "runtime/artifact.h"
#include "tensor/ops.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace lp::runtime {
namespace {

[[noreturn]] void raise_artifact(ArtifactErrorCode code,
                                 const std::string& msg) {
  std::ostringstream os;
  os << "artifact load failed [" << to_string(code) << "]: " << msg;
  throw ArtifactLoadError(code, os.str());
}

/// LP_CHECK_MSG analogue for the load path's model/LUT cross-checks.
#define LP_ARTIFACT_CHECK(code, cond, msg)      \
  do {                                          \
    if (!(cond)) {                              \
      std::ostringstream lp_art_os_;            \
      lp_art_os_ << msg;                        \
      raise_artifact((code), lp_art_os_.str()); \
    }                                           \
  } while (false)

/// (slot, format) pair key for the per-prepare missing set.
struct PairKey {
  std::size_t slot = 0;
  FormatKey fmt;
  friend bool operator==(const PairKey&, const PairKey&) = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    return FormatKeyHash{}(k.fmt) ^ (k.slot * 0x9e3779b97f4a7c15ULL);
  }
};

using MissingSet = std::unordered_set<PairKey, PairKeyHash>;

}  // namespace

InferenceSession::InferenceSession(const nn::Model& model, SessionOptions opts)
    : model_(&model), opts_(opts), weights_(opts.weight_cache_bytes) {
  LP_CHECK(model_->num_slots() > 0);
}

void InferenceSession::prepare_missing(
    std::span<const std::vector<LPConfig>> weight_cfgs,
    std::span<const std::vector<LPConfig>> act_cfgs) {
  const std::size_t n = model_->num_slots();

  // Distinct formats and (slot, weight format) pairs not yet cached, in
  // first-appearance order (candidate-major, slot-minor) — the work lists
  // for the parallel build below.  Order is a pure function of the request,
  // so the cache contents stay deterministic for any pool size.
  std::vector<LPConfig> missing_fmts;
  MissingSet seen_fmts;
  auto note_format = [&](const LPConfig& cfg) {
    if (formats_.find(cfg) != nullptr) return;
    if (seen_fmts.insert(PairKey{0, FormatKey::of(cfg)}).second) {
      missing_fmts.push_back(cfg);
    }
  };
  std::vector<std::pair<std::size_t, LPConfig>> missing_weights;
  MissingSet seen_pairs;
  std::vector<LPConfig> act_fmt_list;  ///< distinct act configs, request order
  MissingSet seen_acts;
  for (std::size_t c = 0; c < weight_cfgs.size(); ++c) {
    LP_CHECK_MSG(weight_cfgs[c].size() == n,
                 "candidate " << c << " has " << weight_cfgs[c].size()
                              << " layer configs but model has " << n
                              << " slots");
    for (std::size_t s = 0; s < n; ++s) {
      const LPConfig& w = weight_cfgs[c][s];
      note_format(w);
      if (weights_.contains(s, w)) continue;
      if (seen_pairs.insert(PairKey{s, FormatKey::of(w)}).second) {
        missing_weights.emplace_back(s, w);
      }
    }
    if (c < act_cfgs.size() && !act_cfgs[c].empty()) {
      LP_CHECK(act_cfgs[c].size() == n);
      for (const LPConfig& a : act_cfgs[c]) {
        note_format(a);
        if (seen_acts.insert(PairKey{0, FormatKey::of(a)}).second) {
          act_fmt_list.push_back(a);
        }
      }
    }
  }

  ThreadPool& pool = default_pool();

  // Build missing format tables in parallel (each entry writes only its
  // own slot), then intern serially.
  std::vector<std::shared_ptr<const LPFormat>> built(missing_fmts.size());
  pool.run_chunks(static_cast<std::int64_t>(missing_fmts.size()),
                  [&](std::int64_t i) {
                    const auto u = static_cast<std::size_t>(i);
                    built[u] = std::make_shared<const LPFormat>(missing_fmts[u]);
                  });
  for (std::size_t i = 0; i < missing_fmts.size(); ++i) {
    formats_.put(missing_fmts[i], std::move(built[i]));
  }

  // Intern activation decode LUTs (serial — cache mutation) so every
  // assemble() below is a pure cache hit.  Formats without an enumerable
  // code table negative-cache a null record; their edges stay float.
  if (opts_.coded_activations) {
    for (const LPConfig& a : act_fmt_list) {
      (void)weights_.act_decode_lut(a, *formats_.find(a));
    }
  }

  // Intern decode LUTs for the missing weight formats (serial — cache
  // mutation) so the parallel pass below only reads them.
  std::vector<std::shared_ptr<const DecodeTable>> pair_luts(
      missing_weights.size());
  for (std::size_t i = 0; i < missing_weights.size(); ++i) {
    const LPConfig& cfg = missing_weights[i].second;
    pair_luts[i] = weights_.decode_lut(cfg, *formats_.find(cfg));
  }

  // Quantize missing weight payloads in parallel.  The packed path emits
  // nearest-value code indices straight from the FP weights — the same
  // indices whose LUT entries quantize_batch writes — so decoding the
  // cached codes reproduces the float flow bit-for-bit; slots the packed
  // path cannot serve (no enumerated code table, or non-finite weight
  // elements) copy and quantize a float tensor exactly as before.  The
  // format and LUT maps are read-only here (built above).
  std::vector<WeightPayload> payloads(missing_weights.size());
  const auto& slots = model_->slot_list();
  pool.run_chunks(static_cast<std::int64_t>(missing_weights.size()),
                  [&](std::int64_t i) {
                    const auto u = static_cast<std::size_t>(i);
                    const auto& [slot, cfg] = missing_weights[u];
                    const std::shared_ptr<const LPFormat> fmt = formats_.find(cfg);
                    const Tensor& w = slots[slot]->weight;
                    if (pair_luts[u] != nullptr) {
                      auto packed =
                          PackedCodes::pack(w.data(), w.shape(), *fmt,
                                            pair_luts[u]);
                      if (packed.has_value()) {
                        payloads[u].codes = std::make_shared<const PackedCodes>(
                            std::move(*packed));
                        return;
                      }
                    }
                    auto copy = std::make_shared<Tensor>(w);
                    quantize_inplace(*copy, *fmt);
                    payloads[u].floats = std::move(copy);
                  });
  for (std::size_t i = 0; i < missing_weights.size(); ++i) {
    weights_.insert(missing_weights[i].first, missing_weights[i].second,
                    std::move(payloads[i]));
  }
}

QuantizedModel InferenceSession::assemble(std::span<const LPConfig> weight_cfgs,
                                          std::span<const LPConfig> act_cfgs) {
  const std::size_t n = model_->num_slots();
  LP_CHECK(weight_cfgs.size() == n);
  LP_CHECK(act_cfgs.empty() || act_cfgs.size() == n);

  QuantizedModel qm;
  qm.model_ = model_;
  qm.codes_.resize(n);
  qm.weights_.resize(n);
  qm.weight_fmts_.resize(n);
  qm.act_fmts_.resize(n);
  qm.code_ptrs_.assign(n, nullptr);
  qm.weight_ptrs_.assign(n, nullptr);
  qm.act_spec_.resize(n);
  const bool coded_acts = opts_.coded_activations && !act_cfgs.empty();
  if (coded_acts) qm.act_coding_.resize(n);
  qm.exec_ = nn::ExecOpts{opts_.approx, opts_.fuse};
  for (std::size_t s = 0; s < n; ++s) {
    // get() (not find()) so assembly stamps format recency for the
    // generational sweep; this phase is serial, so stamping is safe.
    qm.weight_fmts_[s] = formats_.get(weight_cfgs[s]);
    WeightPayload payload = weights_.find(s, weight_cfgs[s]);
    LP_CHECK_MSG(!payload.empty(), "slot " << s << " not prepared");
    qm.codes_[s] = std::move(payload.codes);
    qm.weights_[s] = std::move(payload.floats);
    qm.code_ptrs_[s] = qm.codes_[s].get();
    qm.weight_ptrs_[s] = qm.weights_[s].get();
    if (!act_cfgs.empty()) {
      qm.act_fmts_[s] = formats_.get(act_cfgs[s]);
      qm.act_spec_.act_fmt[s] = qm.act_fmts_[s].get();
      if (coded_acts) {
        // The qidx points into the interned LPFormat and the LUT into the
        // cache's activation table — both shared-owned by the snapshot.
        const LPFormat& f = *qm.act_fmts_[s];
        std::shared_ptr<const DecodeTable> lut =
            weights_.act_decode_lut(act_cfgs[s], f);
        const QuantIndex* qidx = f.quant_index();
        if (lut != nullptr && qidx != nullptr) {
          const int bits = PackedCodes::bits_for(lut->size(), /*min_bits=*/8);
          qm.act_coding_[s] = nn::ActCoding{qidx, std::move(lut), bits};
        }
      }
    }
  }
  return qm;
}

QuantizedModel InferenceSession::prepare_locked(
    std::span<const LPConfig> weight_cfgs,
    std::span<const LPConfig> act_cfgs) {
  const std::vector<std::vector<LPConfig>> w{
      std::vector<LPConfig>(weight_cfgs.begin(), weight_cfgs.end())};
  const std::vector<std::vector<LPConfig>> a{
      std::vector<LPConfig>(act_cfgs.begin(), act_cfgs.end())};
  prepare_missing(w, a);
  QuantizedModel qm = assemble(weight_cfgs, act_cfgs);
  weights_.next_generation();
  formats_.next_generation(opts_.format_cache_entries);
  return qm;
}

QuantizedModel InferenceSession::prepare(std::span<const LPConfig> weight_cfgs,
                                         std::span<const LPConfig> act_cfgs) {
  const MutexLock lk(prepare_mu_);
  return prepare_locked(weight_cfgs, act_cfgs);
}

std::vector<QuantizedModel> InferenceSession::prepare_all(
    std::span<const std::vector<LPConfig>> weight_cfgs,
    std::span<const std::vector<LPConfig>> act_cfgs) {
  const MutexLock lk(prepare_mu_);
  prepare_missing(weight_cfgs, act_cfgs);
  std::vector<QuantizedModel> out;
  out.reserve(weight_cfgs.size());
  for (std::size_t c = 0; c < weight_cfgs.size(); ++c) {
    const std::span<const LPConfig> acts =
        c < act_cfgs.size() ? std::span<const LPConfig>(act_cfgs[c])
                            : std::span<const LPConfig>();
    out.push_back(assemble(weight_cfgs[c], acts));
  }
  weights_.next_generation();
  formats_.next_generation(opts_.format_cache_entries);
  return out;
}

void InferenceSession::publish_locked(QuantizedModel qm,
                                      std::span<const LPConfig> weight_cfgs,
                                      std::span<const LPConfig> act_cfgs) {
  // Chaos harness: fault before the sequence increment, so a failed
  // publish never consumes a version number — the retry that succeeds
  // publishes the next consecutive version and serving threads keep the
  // previous snapshot throughout.
  if (LP_FAULT_POINT("snapshot.publish")) {
    throw fault::InjectedFault("snapshot.publish");
  }
  publisher_.publish(std::make_shared<const ServableModel>(
      std::move(qm),
      std::vector<LPConfig>(weight_cfgs.begin(), weight_cfgs.end()),
      std::vector<LPConfig>(act_cfgs.begin(), act_cfgs.end()),
      ++publish_seq_));
}

void InferenceSession::set_formats(std::span<const LPConfig> weight_cfgs,
                                   std::span<const LPConfig> act_cfgs) {
  const MutexLock lk(prepare_mu_);
  publish_locked(prepare_locked(weight_cfgs, act_cfgs), weight_cfgs,
                 act_cfgs);
}

const QuantizedModel& InferenceSession::current() const {
  const ServablePtr sp = publisher_.acquire();
  LP_CHECK_MSG(sp != nullptr, "call set_formats() first");
  // The publisher slot keeps the servable alive until the next publish —
  // the documented lifetime of this reference.
  return sp->snapshot();
}

nn::ForwardResult InferenceSession::run(const Tensor& batch,
                                        bool capture_pooled,
                                        nn::ActTraffic* act_traffic) const {
  const ServablePtr sp = publisher_.acquire();
  LP_CHECK_MSG(sp != nullptr, "call set_formats() first");
  return sp->run(batch, capture_pooled, act_traffic);
}

Tensor InferenceSession::run_batched(std::span<const Tensor> inputs) const {
  const ServablePtr sp = publisher_.acquire();
  LP_CHECK_MSG(sp != nullptr, "call set_formats() first");
  return sp->run(stack_batches(inputs)).logits;
}

void InferenceSession::save_artifact(const std::string& path) const {
  const ServablePtr sp = publisher_.acquire();
  LP_CHECK_MSG(sp != nullptr, "call set_formats() first");
  write_artifact(path, *sp);
}

std::uint64_t InferenceSession::load_artifact(const std::string& path) {
  Artifact art = read_artifact(path);
  const std::size_t n = model_->num_slots();
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kModelMismatch,
                    art.model_name == model_->name(),
                    "built for model '" << art.model_name << "', loaded into '"
                                        << model_->name() << "'");
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kModelMismatch,
                    art.weight_cfgs.size() == n,
                    "has " << art.weight_cfgs.size()
                           << " slots but model has " << n);
  LP_ARTIFACT_CHECK(ArtifactErrorCode::kModelMismatch, art.slots.size() == n,
                    "slot payload count " << art.slots.size()
                                          << " != model slots " << n);
  const auto& slots = model_->slot_list();

  const MutexLock lk(prepare_mu_);
  // Which stored LUTs have been bit-compared against this build's tables.
  std::vector<bool> lut_verified(art.luts.size(), false);
  for (std::size_t s = 0; s < n; ++s) {
    const LPConfig& cfg = art.weight_cfgs[s];
    ArtifactSlot& as = art.slots[s];
    LP_ARTIFACT_CHECK(ArtifactErrorCode::kModelMismatch,
                      as.shape == slots[s]->weight.shape(),
                      "slot " << s << " shape mismatch against model '"
                              << model_->name() << "'");
    if (weights_.contains(s, cfg)) continue;  // keep the cached bits
    const std::shared_ptr<const LPFormat> fmt = formats_.get(cfg);
    WeightPayload payload;
    if (as.packed) {
      std::shared_ptr<const DecodeTable> lut = weights_.decode_lut(cfg, *fmt);
      LP_ARTIFACT_CHECK(ArtifactErrorCode::kLutMismatch, lut != nullptr,
                        "slot " << s
                                << " is packed but the format has no decode "
                                   "table in this build");
      if (!lut_verified[as.lut_index]) {
        // The artifact's table must be bit-equal to the one this build
        // derives for the config — otherwise the stored codes would decode
        // to different values than a fresh quantization.
        const DecodeTable& stored = art.luts[as.lut_index];
        LP_ARTIFACT_CHECK(ArtifactErrorCode::kLutMismatch,
                          stored.size() == lut->size(),
                          "decode LUT size mismatch (format tables changed "
                          "since the artifact was written)");
        for (std::size_t i = 0; i < stored.size(); ++i) {
          LP_ARTIFACT_CHECK(ArtifactErrorCode::kLutMismatch,
                            std::bit_cast<std::uint32_t>(stored[i]) ==
                                std::bit_cast<std::uint32_t>((*lut)[i]),
                            "decode LUT entry " << i
                                << " mismatch (format tables changed since "
                                   "the artifact was written)");
        }
        lut_verified[as.lut_index] = true;
      }
      payload.codes = std::make_shared<const PackedCodes>(
          PackedCodes::from_codes(std::move(as.codes), as.shape, as.code_bits,
                                  std::move(lut)));
    } else {
      payload.floats = std::make_shared<const Tensor>(
          Tensor(as.shape, std::move(as.floats)));
    }
    weights_.insert(s, cfg, std::move(payload), /*count_miss=*/false);
  }

  // Assemble through the normal prepare path — every (slot, format) pair
  // is now a pure cache hit, so no weight quantization runs — and publish.
  publish_locked(prepare_locked(art.weight_cfgs, art.act_cfgs),
                 art.weight_cfgs, art.act_cfgs);
  return publish_seq_;
}

ColdStartResult InferenceSession::cold_start(
    const std::string& path, std::span<const LPConfig> weight_cfgs,
    std::span<const LPConfig> act_cfgs, const ColdStartOptions& opts) {
  ColdStartResult res;
  try {
    res.version = load_artifact(path);
    res.loaded = true;
    return res;
  } catch (const ArtifactLoadError& e) {
    res.error = e.code();
    res.error_message = e.what();
  }
  if (!opts.fallback_requantize) return res;
  // Degraded path: quantize everything from the caller's configs.  The
  // result is what a fresh set_formats publishes — bit-identical to a
  // never-had-an-artifact start; only the cold-start latency differs.
  set_formats(weight_cfgs, act_cfgs);
  res.requantized = true;
  const MutexLock lk(prepare_mu_);
  res.version = publish_seq_;
  return res;
}

Tensor stack_batches(std::span<const Tensor> inputs) {
  LP_CHECK_MSG(!inputs.empty(), "stack_batches over no inputs");
  // Target rank = the highest rank present; rank-(r-1) inputs are single
  // samples and contribute one batch row, rank-r inputs are batches and
  // contribute dim(0) rows.
  std::size_t rank = 0;
  for (const Tensor& t : inputs) rank = std::max(rank, t.rank());
  LP_CHECK(rank >= 1);

  // Non-batch dims from the first input (its own dims if it is a sample).
  const Tensor& first = inputs[0];
  const std::size_t skip0 = first.rank() == rank ? 1 : 0;
  std::vector<std::int64_t> tail(first.shape().begin() +
                                     static_cast<std::ptrdiff_t>(skip0),
                                 first.shape().end());

  std::int64_t total = 0;
  for (const Tensor& t : inputs) {
    const bool sample = t.rank() + 1 == rank;
    LP_CHECK_MSG(sample || t.rank() == rank, "stack_batches rank mismatch");
    for (std::size_t d = 0; d < tail.size(); ++d) {
      LP_CHECK_MSG(t.dim(d + (sample ? 0 : 1)) == tail[d],
                   "stack_batches shape mismatch");
    }
    total += sample ? 1 : t.dim(0);
  }

  std::vector<std::int64_t> shape;
  shape.reserve(rank);
  shape.push_back(total);
  shape.insert(shape.end(), tail.begin(), tail.end());
  Tensor out(std::move(shape));
  float* dst = out.raw();
  for (const Tensor& t : inputs) {
    std::copy_n(t.raw(), t.numel(), dst);
    dst += t.numel();
  }
  return out;
}

}  // namespace lp::runtime
