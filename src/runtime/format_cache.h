// Shared LPFormat instances, one per distinct LPConfig.
//
// Building an LPFormat is not free: the CodeTable decodes and sorts all
// 2^n codes and the QuantIndex resolves every decision boundary with a
// binary search over float key space.  An LPQ generation asks for the same
// handful of configs hundreds of times (children copy most genes from the
// best parent), so the runtime interns formats here and hands out shared
// pointers.  Lookup keys compare sf by bit pattern — two configs are "the
// same format" only when every field, including the continuous scale
// factor, is exactly equal.
//
// Because sf is continuous, a long search interns a new format for almost
// every fresh gene; next_generation() bounds that growth with the same
// generational-LRU sweep the weight cache uses (entries touched in the
// current generation are never evicted, and shared ownership keeps
// formats referenced by live snapshots valid after eviction).
//
// Not internally synchronized: InferenceSession confines all cache
// mutation — including recency stamps — to its serial prepare phase;
// find() is read-only and safe to call from the parallel build passes.
// This phase confinement is deliberately NOT expressed with
// LP_GUARDED_BY(prepare_mu_): the parallel passes read the map from pool
// threads that do not hold the session mutex, which is correct (no writer
// can run concurrently) but outside the mutex model clang's thread-safety
// analysis checks.  The enforceable half lives in session.h — every
// mutating caller is LP_REQUIRES(prepare_mu_) — and the TSan legs cover
// the rest.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/lp_format.h"

namespace lp::runtime {

/// Exact-match hash key for an LPConfig.
struct FormatKey {
  std::int32_t n = 0;
  std::int32_t es = 0;
  std::int32_t rs = 0;
  std::uint64_t sf_bits = 0;

  [[nodiscard]] static FormatKey of(const LPConfig& c) {
    return {c.n, c.es, c.rs, std::bit_cast<std::uint64_t>(c.sf)};
  }

  friend bool operator==(const FormatKey&, const FormatKey&) = default;

  /// Total order for deterministic eviction sweeps (field-wise, not hash).
  friend bool operator<(const FormatKey& a, const FormatKey& b) {
    if (a.n != b.n) return a.n < b.n;
    if (a.es != b.es) return a.es < b.es;
    if (a.rs != b.rs) return a.rs < b.rs;
    return a.sf_bits < b.sf_bits;
  }
};

struct FormatKeyHash {
  std::size_t operator()(const FormatKey& k) const {
    // SplitMix64 finalizer over the packed fields.
    std::uint64_t x = k.sf_bits;
    x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.n)) << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.es)) << 20) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.rs));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

class FormatCache {
 public:
  /// The interned format for `cfg`, building it on first request; marks
  /// the entry as used in the current generation.  Serial phase only.
  [[nodiscard]] std::shared_ptr<const LPFormat> get(const LPConfig& cfg);

  /// Read-only lookup: null when the config has never been interned.
  /// Does not touch recency, so it is safe from parallel build passes.
  [[nodiscard]] std::shared_ptr<const LPFormat> find(const LPConfig& cfg) const;

  /// Intern an externally built format (from a parallel build pass) and
  /// mark it used.  A config already present keeps its existing instance.
  void put(const LPConfig& cfg, std::shared_ptr<const LPFormat> fmt);

  /// Advance the generation and evict oldest-generation entries (ties
  /// broken by key order — deterministic) until at most `max_entries`
  /// remain.  Entries used in the current generation are never evicted.
  void next_generation(std::size_t max_entries);

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const LPFormat> fmt;
    std::uint64_t last_used = 0;
  };

  std::unordered_map<FormatKey, Entry, FormatKeyHash> map_;
  std::uint64_t tick_ = 0;
};

}  // namespace lp::runtime
