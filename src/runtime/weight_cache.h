// Weight-code cache: pre-quantized weight tensors keyed by (slot, format).
//
// Quantizing a layer's weights — one full quantize_batch pass over the
// weight tensor — is the dominant cost of an LPQ fitness evaluation once
// GEMM is SIMD-dispatched.  A GA generation re-evaluates candidates that
// share most of their per-layer genes with the current best parent, so the
// same (slot, format) pair is requested over and over.  This cache keeps
// each quantized copy alive as a shared tensor; hits are pointer copies.
//
// Eviction is generational LRU under a byte budget: every prepare pass on
// the owning session advances a tick, entries remember the last tick that
// touched them, and the sweep drops oldest ticks first (ties broken by
// slot then format key, so eviction order never depends on hash-map
// iteration order).  Entries touched in the current tick are never evicted
// — a single generation's working set may exceed the budget, but reuse
// within the generation is always preserved.  Snapshots hold shared
// ownership, so eviction never invalidates a live QuantizedModel.
//
// Not internally synchronized: mutation is confined to the session's
// serial prepare phase.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "runtime/format_cache.h"
#include "tensor/tensor.h"

namespace lp::runtime {

struct CacheStats {
  std::uint64_t hits = 0;        ///< lookups served from the cache
  std::uint64_t misses = 0;      ///< lookups that required quantization
  std::uint64_t evictions = 0;   ///< entries dropped by the byte budget
  std::size_t entries = 0;       ///< live entries
  std::size_t bytes = 0;         ///< live payload bytes
};

class WeightCodeCache {
 public:
  /// Default budget: 256 MB of quantized weight copies.
  static constexpr std::size_t kDefaultBudgetBytes = 256U << 20;

  explicit WeightCodeCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}

  /// Cached quantized weights for (slot, cfg), or null.  A hit marks the
  /// entry as used in the current tick and counts toward stats().hits
  /// (lookups served from the cache — including entries quantized earlier
  /// in the same prepare pass; misses counts pairs that had to be
  /// quantized, so the invalidation delta per format-gene change is exact).
  [[nodiscard]] std::shared_ptr<const Tensor> find(std::size_t slot,
                                                   const LPConfig& cfg);

  /// Presence probe without touching counters or recency.
  [[nodiscard]] bool contains(std::size_t slot, const LPConfig& cfg) const {
    return entries_.find(SlotKey{slot, FormatKey::of(cfg)}) != entries_.end();
  }

  /// Insert a freshly quantized copy (counted as a miss).
  void insert(std::size_t slot, const LPConfig& cfg,
              std::shared_ptr<const Tensor> weights);

  /// Advance the generation tick and sweep oldest-tick entries until the
  /// payload fits the budget again (current-tick entries are kept).
  void next_generation();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct SlotKey {
    std::size_t slot = 0;
    FormatKey fmt;
    friend bool operator<(const SlotKey& a, const SlotKey& b) {
      if (a.slot != b.slot) return a.slot < b.slot;
      return a.fmt < b.fmt;
    }
  };
  struct Entry {
    std::shared_ptr<const Tensor> weights;
    std::uint64_t last_used = 0;
  };

  void evict_to_budget();

  // Ordered map: the eviction sweep iterates in key order, which makes the
  // set of survivors a pure function of the lookup/insert history.
  std::map<SlotKey, Entry> entries_;
  std::size_t budget_bytes_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace lp::runtime
