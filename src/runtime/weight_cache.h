// Weight-code cache: packed quantized weight payloads keyed by
// (slot, format).
//
// Quantizing a layer's weights — one full quantize_batch pass over the
// weight tensor — is the dominant cost of an LPQ fitness evaluation once
// GEMM is SIMD-dispatched.  A GA generation re-evaluates candidates that
// share most of their per-layer genes with the current best parent, so the
// same (slot, format) pair is requested over and over.  This cache keeps
// each quantized copy alive as a shared payload; hits are pointer copies.
//
// Entries are PackedCodes — n-bit code indices (bit-packed for 4-bit) plus
// one decode LUT shared per format — exactly what the paper's accelerator
// keeps in SRAM, so the same byte budget holds 4-8x more (slot, format)
// pairs than the float tensors it used to store.  Slots the packed path
// cannot serve (a format without an enumerated code table, or weights with
// non-finite elements, which quantize to NaN) fall back to a float
// tensor.  stats() reports physical bytes (codes + fallbacks + LUTs — the
// LUTs are charged so many live formats cannot silently overshoot the
// budget), the float32-equivalent logical bytes, and the LUT share.
//
// Eviction is generational LRU under a byte budget: every prepare pass on
// the owning session advances a tick, entries remember the last tick that
// touched them, and the sweep drops oldest ticks first (ties broken by
// slot then format key, so eviction order never depends on hash-map
// iteration order).  Entries touched in the current tick are never evicted
// — a single generation's working set may exceed the budget, but reuse
// within the generation is always preserved.  A decode LUT lives as long
// as any entry of its format (dropping with the last one); snapshots hold
// shared ownership, so eviction never invalidates a live QuantizedModel.
//
// Concurrency: the entry map is sharded by slot, each shard behind its own
// mutex, and every counter is a relaxed atomic — so readers (find /
// contains / stats) are safe concurrently with each other and with a
// prepare pass mutating the cache.  stats() is lock-free: it snapshots the
// counters without touching any shard.  What stays single-writer is the
// *compound* prepare sequence (the contains -> quantize -> insert dance
// and the eviction sweep): InferenceSession serializes prepares behind its
// own mutex, which also keeps eviction order — and therefore the set of
// survivors — a pure function of the request history.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "core/packed_codes.h"
#include "runtime/format_cache.h"
#include "tensor/tensor.h"
#include "util/thread_annotations.h"

namespace lp::runtime {

/// A point-in-time snapshot of the cache counters (plain values — safe to
/// copy and compare).  Taken lock-free from the relaxed atomics, so a
/// snapshot racing a prepare pass may be mid-update between fields; each
/// individual field is always a value the counter actually held.
struct CacheStats {
  std::uint64_t hits = 0;        ///< lookups served from the cache
  std::uint64_t misses = 0;      ///< lookups that required quantization
  std::uint64_t evictions = 0;   ///< entries dropped by the byte budget
  std::size_t entries = 0;       ///< live entries
  std::size_t bytes = 0;         ///< live physical bytes: codes + float fallbacks + decode LUTs
  std::size_t logical_bytes = 0; ///< float32-equivalent bytes of live entries
  std::size_t lut_bytes = 0;     ///< portion of `bytes` held by weight decode LUTs
  std::size_t act_lut_bytes = 0; ///< portion of `bytes` held by activation decode LUTs
  std::size_t packed_entries = 0;///< entries stored as packed codes (rest are float fallbacks)
};

/// One cached weight payload: packed codes (the common path for every
/// n <= 16 LP format) or a pre-quantized float tensor (fallback).
/// Decoding `codes` yields bit-for-bit the floats `floats` would hold.
struct WeightPayload {
  std::shared_ptr<const PackedCodes> codes;
  std::shared_ptr<const Tensor> floats;

  [[nodiscard]] bool packed() const { return codes != nullptr; }
  [[nodiscard]] bool empty() const {
    return codes == nullptr && floats == nullptr;
  }
};

class WeightCodeCache {
 public:
  /// Default budget: 256 MB of cached weight payloads.  Packed codes make
  /// this hold 4-8x more (slot, format) pairs than float storage did.
  static constexpr std::size_t kDefaultBudgetBytes = 256U << 20;

  /// Entry-map shards; slot s lives in shard s % kShards.
  static constexpr std::size_t kShards = 8;

  explicit WeightCodeCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}

  /// Cached payload for (slot, cfg), or an empty payload.  A hit marks the
  /// entry as used in the current tick and counts toward stats().hits
  /// (lookups served from the cache — including entries quantized earlier
  /// in the same prepare pass; misses counts pairs that had to be
  /// quantized, so the invalidation delta per format-gene change is exact).
  /// Thread-safe against concurrent finds and a concurrent prepare.
  [[nodiscard]] WeightPayload find(std::size_t slot, const LPConfig& cfg);

  /// Presence probe without touching counters or recency.  Thread-safe.
  [[nodiscard]] bool contains(std::size_t slot, const LPConfig& cfg) const;

  /// Insert a freshly quantized payload.  A packed payload must carry the
  /// LUT decode_lut() returned for its config.  `count_miss` is false when
  /// seeding from a serialized artifact — those payloads were never
  /// quantized here, and cold-start accounting must show zero misses.
  void insert(std::size_t slot, const LPConfig& cfg, WeightPayload payload,
              bool count_miss = true);

  /// Shared decode LUT for cfg, built from `fmt` on first request and
  /// charged against the budget, or null when the format cannot serve the
  /// packed path (callers then quantize a float fallback).  Prepare phase
  /// only (serialized by the owning session).
  [[nodiscard]] std::shared_ptr<const DecodeTable> decode_lut(
      const LPConfig& cfg, const NumberFormat& fmt);

  /// Shared decode LUT for cfg used as an *activation* format — interned
  /// in its own map with its own byte accounting (stats().act_lut_bytes),
  /// so the weight vs activation LUT budget split stays visible.  Null
  /// when the format has no enumerable code table (those edges stay
  /// float).  LUTs unused for a full generation are swept; snapshots hold
  /// shared ownership, so eviction never invalidates a live run.  Prepare
  /// phase only (serialized by the owning session).
  [[nodiscard]] std::shared_ptr<const DecodeTable> act_decode_lut(
      const LPConfig& cfg, const NumberFormat& fmt);

  /// Advance the generation tick and sweep oldest-tick entries until the
  /// payload fits the budget again (current-tick entries are kept).  Also
  /// drops decode LUTs no live entry references.  Prepare phase only.
  void next_generation();

  /// Lock-free counter snapshot (see CacheStats).
  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct SlotKey {
    std::size_t slot = 0;
    FormatKey fmt;
    friend bool operator<(const SlotKey& a, const SlotKey& b) {
      if (a.slot != b.slot) return a.slot < b.slot;
      return a.fmt < b.fmt;
    }
  };
  struct Entry {
    WeightPayload payload;
    std::uint64_t last_used = 0;
    std::size_t phys_bytes = 0;
    std::size_t log_bytes = 0;
  };
  struct LutRec {
    std::shared_ptr<const DecodeTable> lut;  ///< null = format can't pack
    std::size_t refs = 0;                    ///< live entries of this format
    std::uint64_t last_used = 0;
  };
  /// One entry-map shard.  Ordered maps: the eviction sweep iterates in
  /// key order, which makes the set of survivors a pure function of the
  /// lookup/insert history.
  struct Shard {
    mutable Mutex mu;
    std::map<SlotKey, Entry> entries LP_GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& shard_for(std::size_t slot) {
    return shards_[slot % kShards];
  }
  [[nodiscard]] const Shard& shard_for(std::size_t slot) const {
    return shards_[slot % kShards];
  }

  void evict_to_budget();
  /// Drop one entry; caller holds the shard lock (NOT lut_mu_ — the lock
  /// order is shard.mu then lut_mu_, taken inside for packed payloads).
  void erase_entry_locked(Shard& shard, const SlotKey& key,
                          std::map<SlotKey, Entry>::iterator it)
      LP_REQUIRES(shard.mu) LP_EXCLUDES(lut_mu_);
  void sweep_stale_luts() LP_EXCLUDES(lut_mu_);
  void sweep_stale_act_luts() LP_EXCLUDES(lut_mu_);

  std::array<Shard, kShards> shards_;
  /// Lock order: shard.mu before lut_mu_ (erase_entry_locked); never the
  /// reverse.  The analysis cannot state an order against an array of
  /// capabilities, so the order is prose + the EXCLUDES above.
  mutable Mutex lut_mu_;
  std::map<FormatKey, LutRec> luts_ LP_GUARDED_BY(lut_mu_);
  /// Activation-side LUTs (refs unused).
  std::map<FormatKey, LutRec> act_luts_ LP_GUARDED_BY(lut_mu_);
  std::size_t budget_bytes_;
  std::atomic<std::uint64_t> tick_{0};

  /// Relaxed atomics behind stats() — lock-free to read while a prepare
  /// pass mutates the cache (the TSan concurrent prepare/read test pins
  /// this).
  struct Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::size_t> entries{0};
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> logical_bytes{0};
    std::atomic<std::size_t> lut_bytes{0};
    std::atomic<std::size_t> act_lut_bytes{0};
    std::atomic<std::size_t> packed_entries{0};
  };
  mutable Counters counters_;
};

}  // namespace lp::runtime
