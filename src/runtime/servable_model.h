// ServableModel — the shared layer of the multi-tenant serving core.
//
// An InferenceSession is a control plane: it owns the caches and mutates
// them during prepare.  Serving threads must never touch that machinery,
// so what they execute is a ServableModel — an immutable, refcounted
// bundle of one published QuantizedModel snapshot plus the exact per-slot
// configs it was prepared from (the provenance the serialized artifact
// writes) and a monotonically increasing version.  Everything inside is
// shared-owned: interned formats, packed weight codes, decode LUTs — so a
// ServableModel outlives any cache eviction or session teardown that
// happens while requests are in flight.
//
// Publication is RCU-style: a SnapshotPublisher holds the current
// ServableModel behind a std::atomic<std::shared_ptr>.  Readers acquire()
// a strong reference (wait-free for the reader's purposes; no reader ever
// blocks a writer), writers publish() a replacement built off to the side
// — the atomic swap is the only synchronization point, which is what lets
// LPQ hot-swap a better config mid-serve: in-flight batches finish on the
// snapshot they acquired, new batches pick up the replacement.  Response
// consumers can tell which model served them by the version stamp.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/quantized_model.h"
#include "util/thread_annotations.h"

namespace lp::runtime {

class ServableModel {
 public:
  ServableModel(QuantizedModel snapshot, std::vector<LPConfig> weight_cfgs,
                std::vector<LPConfig> act_cfgs, std::uint64_t version)
      : snapshot_(std::move(snapshot)),
        weight_cfgs_(std::move(weight_cfgs)),
        act_cfgs_(std::move(act_cfgs)),
        version_(version) {
    LP_CHECK_MSG(!snapshot_.empty(), "servable over an empty snapshot");
    LP_CHECK(weight_cfgs_.size() == snapshot_.model().num_slots());
    LP_CHECK(act_cfgs_.empty() ||
             act_cfgs_.size() == weight_cfgs_.size());
  }

  /// Batched forward through the snapshot — safe from any number of
  /// threads concurrently (the snapshot is immutable; the forward runs on
  /// the shared thread pool like every other caller).
  [[nodiscard]] nn::ForwardResult run(const Tensor& input,
                                      bool capture_pooled = false,
                                      nn::ActTraffic* act_traffic = nullptr)
      const {
    return snapshot_.run(input, capture_pooled, act_traffic);
  }

  [[nodiscard]] const QuantizedModel& snapshot() const { return snapshot_; }
  [[nodiscard]] const nn::Model& model() const { return snapshot_.model(); }
  /// Publish-order stamp: strictly increasing per session, so responses
  /// can be matched to the exact assignment that produced them.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  /// The per-slot assignment this snapshot was prepared from — what
  /// save_artifact serializes.
  [[nodiscard]] const std::vector<LPConfig>& weight_configs() const {
    return weight_cfgs_;
  }
  [[nodiscard]] const std::vector<LPConfig>& act_configs() const {
    return act_cfgs_;
  }

 private:
  QuantizedModel snapshot_;
  std::vector<LPConfig> weight_cfgs_;
  std::vector<LPConfig> act_cfgs_;
  std::uint64_t version_;
};

using ServablePtr = std::shared_ptr<const ServableModel>;

/// The RCU-style publish point.  One writer (the session's prepare path,
/// or LPQ when it finds a better config) swaps in a new snapshot; any
/// number of serving threads acquire() concurrently.
///
/// Implementation note: this is a mutex-guarded shared_ptr rather than
/// std::atomic<std::shared_ptr>.  GCC 12's _Sp_atomic releases its
/// internal spinlock in load() with a relaxed fetch_sub, so a reader's
/// load of the pointer field never formally synchronizes-with the next
/// writer — ThreadSanitizer reports the resulting (library-level) race
/// on every acquire/publish overlap.  The critical section here is a
/// pointer copy + refcount bump, held for nanoseconds once per *batch*
/// (not per request), so the mutex costs nothing measurable and keeps
/// the whole serving path clean under TSan.
class SnapshotPublisher {
 public:
  /// Atomically replace the published snapshot.  The previous snapshot
  /// stays alive while any acquired reference holds it.
  void publish(ServablePtr m) LP_EXCLUDES(mu_) {
    const MutexLock lk(mu_);
    slot_ = std::move(m);
  }

  /// Strong reference to the current snapshot (null before the first
  /// publish).  Callers hold the reference for the duration of one batch
  /// and re-acquire for the next, so hot-swaps take effect at batch
  /// granularity.
  [[nodiscard]] ServablePtr acquire() const LP_EXCLUDES(mu_) {
    const MutexLock lk(mu_);
    return slot_;
  }

 private:
  mutable Mutex mu_;
  ServablePtr slot_ LP_GUARDED_BY(mu_);
};

}  // namespace lp::runtime
