// Serialized quantized-model artifact — the persistence layer of the
// serving core.
//
// A server should be able to cold-start from the exact bytes a previous
// quantization run produced: the packed per-slot weight codes, the decode
// LUTs they index, the per-layer LPConfig assignment (weights and
// activations), all without re-running quantization.  This module defines
// that on-disk format and the pure read/write halves;
// InferenceSession::save_artifact / load_artifact wire them into the
// cache + publish machinery.
//
// Layout (little-endian, fixed-width fields):
//
//   magic "LPAR" | u32 format_version | u64 fnv1a64(body) | u64 body_size
//   body:
//     u32 name_len, name bytes          — model the artifact was built for
//     u64 num_slots, u8 has_act_cfgs
//     num_slots x weight LPConfig       — i32 n, es, rs + u64 sf bit pattern
//     [num_slots x act LPConfig]
//     u64 num_luts; per LUT: u64 size, size x u32 float bits
//     per slot:
//       u8 kind (0 = packed codes, 1 = float fallback)
//       u32 rank, rank x i64 dims
//       packed: i32 code_bits, u64 lut_index, u64 nbytes, raw code bytes
//       float:  u64 count, count x u32 float bits
//
// Every float crosses the boundary as its IEEE-754 bit pattern, and the
// packed code stream is stored verbatim — so a round trip is bit-identical
// by construction, and the checksum turns silent corruption into a load
// error instead of wrong logits.  The stored LUTs also let the loader
// cross-check against the decode tables this build computes for the same
// configs: a mismatch means the format implementation changed since the
// artifact was written, which must fail loudly, not serve stale values.
//
// Failure is structured: every load-path rejection throws
// ArtifactLoadError carrying an ArtifactErrorCode, so a cold-start
// supervisor can distinguish "file is torn, re-quantize from configs"
// (InferenceSession::cold_start) from "this artifact was never for this
// model" without parsing exception text.  ArtifactLoadError derives from
// std::invalid_argument, so pre-existing catch sites keep working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/lp_config.h"
#include "core/packed_codes.h"

namespace lp::runtime {

class ServableModel;

/// Current on-disk format version; bumped on any layout change.
inline constexpr std::uint32_t kArtifactVersion = 1;

/// Why an artifact failed to load.  kNone is the "no error" value used by
/// cold-start results; everything else names one rejection class the
/// corruption-matrix tests in tests/test_chaos.cpp cover.
enum class ArtifactErrorCode {
  kNone = 0,
  kIo,             ///< file missing / unreadable / short read
  kBadMagic,       ///< first four bytes are not "LPAR"
  kVersionSkew,    ///< on-disk format_version != kArtifactVersion
  kTruncated,      ///< header or body ends mid-field
  kChecksum,       ///< body bytes fail the stored FNV-1a checksum
  kMalformed,      ///< body parses but violates a structural invariant
  kLutMismatch,    ///< stored decode LUT != the table this build derives
  kModelMismatch,  ///< artifact names/shapes a different model
};

[[nodiscard]] const char* to_string(ArtifactErrorCode code);

/// Structured artifact rejection.  Subclass of std::invalid_argument so
/// legacy `catch (const std::invalid_argument&)` sites still catch it.
class ArtifactLoadError : public std::invalid_argument {
 public:
  ArtifactLoadError(ArtifactErrorCode code, const std::string& what)
      : std::invalid_argument(what), code_(code) {}
  [[nodiscard]] ArtifactErrorCode code() const { return code_; }

 private:
  ArtifactErrorCode code_;
};

/// One slot's deserialized payload (raw bytes — not yet bound to a model
/// or a decode-LUT instance; InferenceSession::load_artifact does that).
struct ArtifactSlot {
  bool packed = false;
  std::vector<std::int64_t> shape;
  int code_bits = 0;
  std::size_t lut_index = 0;        ///< into Artifact::luts (packed only)
  std::vector<std::uint8_t> codes;  ///< packed payload
  std::vector<float> floats;        ///< float-fallback payload
};

/// In-memory form of a deserialized artifact.
struct Artifact {
  std::uint32_t format_version = kArtifactVersion;
  std::string model_name;
  std::vector<LPConfig> weight_cfgs;
  std::vector<LPConfig> act_cfgs;  ///< empty = no activation quantization
  std::vector<DecodeTable> luts;   ///< distinct weight decode LUTs
  std::vector<ArtifactSlot> slots;
};

/// Serialize a published snapshot (codes, LUTs, configs) to `path`.
/// Throws std::invalid_argument on I/O failure.
void write_artifact(const std::string& path, const ServableModel& m);

/// Parse `path`, validating magic, version, size, and checksum.  Throws
/// ArtifactLoadError (an std::invalid_argument) with the precise
/// ArtifactErrorCode on any mismatch or truncation.
[[nodiscard]] Artifact read_artifact(const std::string& path);

}  // namespace lp::runtime
