#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace lp::data {
namespace {

/// Smoothed Gaussian field: N(0,1) pixels blurred twice with a 3x3 box
/// filter, then renormalized to unit std — gives prototypes spatial
/// structure so convolutions see correlated inputs.
Tensor make_prototype(int channels, int size, Rng& rng) {
  Tensor img({1, channels, size, size});
  for (float& v : img.data()) v = static_cast<float>(rng.gaussian());
  Tensor tmp = img;
  for (int pass = 0; pass < 2; ++pass) {
    for (int c = 0; c < channels; ++c) {
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          float s = 0.0F;
          int cnt = 0;
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int yy = y + dy;
              const int xx = x + dx;
              if (yy < 0 || yy >= size || xx < 0 || xx >= size) continue;
              s += img.at4(0, c, yy, xx);
              ++cnt;
            }
          }
          tmp.at4(0, c, y, x) = s / static_cast<float>(cnt);
        }
      }
    }
    img = tmp;
  }
  // Renormalize to unit std.
  double var = 0.0;
  for (float v : img.data()) var += static_cast<double>(v) * v;
  var /= static_cast<double>(img.numel());
  const auto inv = static_cast<float>(1.0 / std::sqrt(var + 1e-12));
  for (float& v : img.data()) v *= inv;
  return img;
}

/// Stack per-class prototypes into [classes, C, H, W].
Tensor stack_prototypes(int classes, int channels, int size, Rng& rng) {
  Tensor protos({classes, channels, size, size});
  for (int c = 0; c < classes; ++c) {
    const Tensor p = make_prototype(channels, size, rng);
    std::copy_n(p.raw(), p.numel(), protos.raw() + c * p.numel());
  }
  return protos;
}

/// Sample `count` noisy views: inputs[i] = proto[class_i] + noise*N(0,1).
Tensor sample_views(const Tensor& protos, const std::vector<std::int64_t>& cls,
                    double noise, Rng& rng) {
  const std::int64_t per = protos.numel() / protos.dim(0);
  Tensor out({static_cast<std::int64_t>(cls.size()), protos.dim(1),
              protos.dim(2), protos.dim(3)});
  for (std::size_t i = 0; i < cls.size(); ++i) {
    const float* src = protos.raw() + cls[i] * per;
    float* dst = out.raw() + static_cast<std::int64_t>(i) * per;
    for (std::int64_t j = 0; j < per; ++j) {
      dst[j] = src[j] + static_cast<float>(noise * rng.gaussian());
    }
  }
  return out;
}

}  // namespace

void align_head_with_prototypes(nn::Model& model, const Tensor& prototypes) {
  LP_CHECK(prototypes.rank() == 4);
  const std::size_t head_node = model.node_count() - 1;
  nn::WeightSlot* head = model.slot_list().back();
  LP_CHECK_MSG(head->weight.rank() == 2,
               "final node must be a linear classifier head");
  const std::int64_t classes = head->weight.dim(0);
  const std::int64_t dim = head->weight.dim(1);
  LP_CHECK_MSG(prototypes.dim(0) == classes,
               "need one prototype per class: " << prototypes.dim(0) << " vs "
                                                << classes);
  // Penultimate features of each prototype.
  const int feat_node = model.node(head_node).inputs()[0];
  const Tensor feats = model.forward_node_output(
      prototypes, static_cast<std::size_t>(feat_node));
  LP_CHECK(feats.rank() == 2 && feats.dim(1) == dim);
  // Random feature extractors produce a large input-independent "base"
  // component shared by every input (channel activation means); left in
  // place it collapses all class directions onto one axis.  Center the
  // prototype features and fold the base into the bias so logits depend
  // on the input-specific component only.
  std::vector<double> base(static_cast<std::size_t>(dim), 0.0);
  for (std::int64_t c = 0; c < classes; ++c) {
    for (std::int64_t j = 0; j < dim; ++j) {
      base[static_cast<std::size_t>(j)] += feats.at2(c, j);
    }
  }
  for (auto& b : base) b /= static_cast<double>(classes);
  for (std::int64_t c = 0; c < classes; ++c) {
    double nrm = 0.0;
    for (std::int64_t j = 0; j < dim; ++j) {
      const double v = feats.at2(c, j) - base[static_cast<std::size_t>(j)];
      nrm += v * v;
    }
    nrm = std::sqrt(nrm) + 1e-12;
    double bias_c = 0.0;
    for (std::int64_t j = 0; j < dim; ++j) {
      const double w =
          (feats.at2(c, j) - base[static_cast<std::size_t>(j)]) / nrm;
      head->weight.at2(c, j) = static_cast<float>(w);
      bias_c -= w * base[static_cast<std::size_t>(j)];
    }
    head->bias[c] = static_cast<float>(bias_c);
  }
}

Dataset make_dataset(nn::Model& model, int in_channels, int input_size,
                     const DatasetOptions& opts) {
  LP_CHECK(opts.classes >= 2);
  LP_CHECK(opts.n_calibration >= 1 && opts.n_eval >= 1);
  Rng rng(opts.seed);
  const Tensor protos = stack_prototypes(opts.classes, in_channels, input_size, rng);

  if (opts.align_head) align_head_with_prototypes(model, protos);

  // Ground-truth labels: FP prediction on the clean prototype.
  const Tensor proto_logits = model.forward(protos).logits;
  const std::vector<std::int64_t> proto_labels = argmax_rows(proto_logits);

  Dataset ds;
  ds.classes = opts.classes;
  ds.noise = opts.noise;

  std::vector<std::int64_t> cal_cls(static_cast<std::size_t>(opts.n_calibration));
  for (auto& c : cal_cls) c = rng.uniform_int(0, opts.classes - 1);
  ds.calibration = sample_views(protos, cal_cls, opts.noise, rng);

  std::vector<std::int64_t> eval_cls(static_cast<std::size_t>(opts.n_eval));
  for (auto& c : eval_cls) c = rng.uniform_int(0, opts.classes - 1);
  ds.eval_inputs = sample_views(protos, eval_cls, opts.noise, rng);
  ds.eval_labels.resize(eval_cls.size());
  for (std::size_t i = 0; i < eval_cls.size(); ++i) {
    ds.eval_labels[i] = proto_labels[static_cast<std::size_t>(eval_cls[i])];
  }

  if (opts.target_fp_accuracy > 0.0) {
    // Corrupt a label fraction so the FP baseline lands near the target.
    // Corruption hits FP and quantized models identically, leaving the
    // accuracy deltas the tables compare untouched.
    const Tensor logits = model.forward(ds.eval_inputs).logits;
    const double clean_acc = top1_accuracy(logits, ds.eval_labels);
    if (clean_acc > opts.target_fp_accuracy) {
      const double flip = (clean_acc - opts.target_fp_accuracy) / clean_acc;
      Rng corrupt_rng = rng.fork(13);
      for (auto& label : ds.eval_labels) {
        if (!corrupt_rng.coin(flip)) continue;
        std::int64_t wrong = corrupt_rng.uniform_int(0, opts.classes - 1);
        if (wrong == label) wrong = (wrong + 1) % opts.classes;
        label = wrong;
      }
    }
  }
  return ds;
}

double top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  LP_CHECK(static_cast<std::size_t>(logits.dim(0)) == labels.size());
  const auto preds = argmax_rows(logits);
  int hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(labels.size());
}

double evaluate_fp(const nn::Model& model, const Dataset& ds) {
  return top1_accuracy(model.forward(ds.eval_inputs).logits, ds.eval_labels);
}

double evaluate_quantized(const nn::Model& model, const nn::QuantSpec& spec,
                          const Dataset& ds) {
  return top1_accuracy(model.forward_quantized(ds.eval_inputs, spec).logits,
                       ds.eval_labels);
}

}  // namespace lp::data
