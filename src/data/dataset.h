// Synthetic calibration / evaluation data.
//
// The paper calibrates LPQ on 128 unlabeled ImageNet images and reports
// ImageNet top-1.  Offline substitution (DESIGN.md section 2): a
// class-prototype dataset.  Each class has a smoothed-Gaussian prototype
// image; samples are prototypes plus *small* pixel noise, and a sample's
// label is the FP model's prediction on its clean prototype.  The small
// noise keeps decision margins healthy, the way trained models have
// margins on correctly classified examples — so low-precision quantization
// degrades accuracy while 8-bit is harmless, matching the paper's regime.
//
// To reproduce a paper-like baseline level (e.g. 77.7% instead of ~99%),
// a fraction of evaluation labels is corrupted to random other classes.
// Corruption subtracts the same accuracy mass from the FP and every
// quantized model, so accuracy *deltas* — the quantity the paper's tables
// compare — are unaffected by it.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace lp::data {

struct Dataset {
  Tensor calibration;                ///< [n_cal, C, H, W], unlabeled
  Tensor eval_inputs;                ///< [n_eval, C, H, W]
  std::vector<std::int64_t> eval_labels;
  int classes = 0;
  double noise = 0.0;                ///< pixel noise actually used
};

struct DatasetOptions {
  int classes = 64;
  int n_calibration = 128;
  int n_eval = 256;
  double noise = 0.1;               ///< pixel noise (keep small: margins)
  double target_fp_accuracy = 0.0;  ///< e.g. 0.78; corrupts labels when > 0
  bool align_head = true;           ///< prototype-align the classifier head
  std::uint64_t seed = 1234;
};

/// Build a dataset for a model.  When `align_head` is set (default), the
/// model's classifier head is rewritten as a nearest-prototype classifier
/// over its own (random) features: w_c = normalized feature of prototype c.
/// Random feature extractors have chaotic, thin decision margins;
/// prototype alignment restores the large margins trained classifiers
/// have, which is the regime in which the paper's quantization results
/// live (8-bit harmless, 2-bit destructive).
[[nodiscard]] Dataset make_dataset(nn::Model& model, int in_channels,
                                   int input_size, const DatasetOptions& opts);

/// The head-alignment step, exposed for custom flows: sets the final
/// linear layer's weights to the L2-normalized penultimate features of
/// `prototypes` ([classes, C, H, W]) and zeroes its bias.
void align_head_with_prototypes(nn::Model& model, const Tensor& prototypes);

/// Top-1 accuracy of `logits` against labels.
[[nodiscard]] double top1_accuracy(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels);

/// Evaluate a model's FP top-1 on the dataset.
[[nodiscard]] double evaluate_fp(const nn::Model& model, const Dataset& ds);

/// Evaluate a quantized model's top-1 on the dataset.
[[nodiscard]] double evaluate_quantized(const nn::Model& model,
                                        const nn::QuantSpec& spec,
                                        const Dataset& ds);

}  // namespace lp::data
