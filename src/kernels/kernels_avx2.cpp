// AVX2 kernel table.  This is the only TU compiled with -mavx2; nothing in
// it executes unless runtime cpuid reports AVX2 (see dispatch.cpp).
//
// Bit-equality with the scalar reference is engineered, not hoped for:
//  * GEMM accumulates each output element in a dedicated double lane,
//    contributions added in ascending-k order with _mm256_mul_pd followed
//    by _mm256_add_pd — the same two correctly-rounded IEEE operations the
//    scalar code performs (FMA would single-round and is never used).
//  * The scalar path's zero-skip (a == 0 contributes nothing, so an inf or
//    NaN in B under a structural zero never reaches the accumulator) is a
//    per-(row, k) predicate, identical across the vector lanes of one row,
//    so it stays an ordinary branch.
//  * Quantization runs two passes per block: a SIMD pass computing nearest
//    indices (branchless boundary-key count), then the shared scalar
//    quantize_apply pass whose element-order error accumulation is the
//    reference code itself.
//  * Edge tiles (rows % 4, columns % 8) fall through to the reference
//    block helpers, which are per-element identical by definition.
#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "core/quant_rule.h"
#include "kernels/kernels_internal.h"

namespace lp::kernels {
namespace {

// ---------------------------------------------------------------------------
// GEMM (B row-major): cache-blocked, register-tiled micro-kernel.
//
// For each 8-column panel of B we pack the k x 8 slice into a contiguous
// buffer once (pure data movement — loads reorder, arithmetic does not),
// then sweep all row tiles over it: R rows x 8 columns of double
// accumulators live in ymm registers for the whole k loop.  `panel_stride`
// is 8 for a packed panel and n for reading B in place — the values loaded
// are identical either way, so the choice cannot affect results.

template <int R>
void gemm_micro(const float* a, const float* panel,
                std::int64_t panel_stride, const float* bias, float* c,
                std::int64_t i, std::int64_t j, std::int64_t k,
                std::int64_t n) {
  __m256d acc[R][2];
  if (bias != nullptr) {
    const __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(bias + j));
    const __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(bias + j + 4));
    for (int r = 0; r < R; ++r) {
      acc[r][0] = b0;
      acc[r][1] = b1;
    }
  } else {
    const __m256d z = _mm256_setzero_pd();
    for (int r = 0; r < R; ++r) {
      acc[r][0] = z;
      acc[r][1] = z;
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* bp = panel + panel_stride * p;
    const __m256d bv0 = _mm256_cvtps_pd(_mm_loadu_ps(bp));
    const __m256d bv1 = _mm256_cvtps_pd(_mm_loadu_ps(bp + 4));
    for (int r = 0; r < R; ++r) {
      const double av = a[(i + r) * k + p];
      if (av == 0.0) continue;
      const __m256d avv = _mm256_set1_pd(av);
      acc[r][0] = _mm256_add_pd(acc[r][0], _mm256_mul_pd(avv, bv0));
      acc[r][1] = _mm256_add_pd(acc[r][1], _mm256_mul_pd(avv, bv1));
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = c + (i + r) * n + j;
    _mm_storeu_ps(crow, _mm256_cvtpd_ps(acc[r][0]));
    _mm_storeu_ps(crow + 4, _mm256_cvtpd_ps(acc[r][1]));
  }
}

void gemm_rows_avx2(const float* a, const float* b, const float* bias,
                    float* c, std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n) {
  const std::int64_t full_cols = n - (n % 8);
  const std::int64_t rows = row_end - row_begin;
  // Packing a panel costs one pass over the k x 8 slice; it only pays for
  // itself when enough row tiles reuse it.  Short row blocks (the common
  // case when the thread pool splits a small m) read B in place instead —
  // same loads, no copy — so pool threads don't duplicate packing traffic.
  const bool pack = rows >= 8;
  if (full_cols > 0 && rows > 0) {
    std::vector<float> panel(pack ? static_cast<std::size_t>(k) * 8 : 0);
    for (std::int64_t j = 0; j < full_cols; j += 8) {
      const float* pnl = b + j;
      std::int64_t stride = n;
      if (pack) {
        float* dst = panel.data();
        const float* src = b + j;
        for (std::int64_t p = 0; p < k; ++p, dst += 8, src += n) {
          std::memcpy(dst, src, 8 * sizeof(float));
        }
        pnl = panel.data();
        stride = 8;
      }
      std::int64_t i = row_begin;
      for (; i + 4 <= row_end; i += 4) {
        gemm_micro<4>(a, pnl, stride, bias, c, i, j, k, n);
      }
      switch (row_end - i) {
        case 3: gemm_micro<3>(a, pnl, stride, bias, c, i, j, k, n); break;
        case 2: gemm_micro<2>(a, pnl, stride, bias, c, i, j, k, n); break;
        case 1: gemm_micro<1>(a, pnl, stride, bias, c, i, j, k, n); break;
        default: break;
      }
    }
  }
  if (full_cols < n) {
    detail::gemm_ref_block(a, b, bias, c, row_begin, row_end, full_cols, n, k,
                           n);
  }
}

// ---------------------------------------------------------------------------
// Packed-code decode: expand a run of codes into their LUT float values.
//
// The decoded floats are the *same* floats the quantized-weight tensor of
// the float path stores, so everything downstream (cvtps_pd, mul, add) is
// the identical IEEE operation sequence — decode placement cannot affect
// results.  Strategy by code width:
//   * 4-bit: the whole LUT (<= 16 floats) lives in two ymm registers; a
//     pair of cross-lane permutes selected by index bit 3 is an in-register
//     LUT (the pshufb trick, lifted to 32-bit lanes via vpermd/vpermps).
//   * 8-bit: vpgatherdd-style float gather over the <= 256-entry table.
//   * 16-bit: same gather over the <= 65536-entry table.
// Nibble extraction stays scalar (arbitrary element offsets from grouped
// convolutions are not byte-aligned); the LUT application is the vector
// part worth keeping in registers.

void decode_elems_avx2(const PackedCodesView& v, std::int64_t elem_begin,
                       std::int64_t count, float* dst) {
  std::int64_t i = 0;
  if (v.bits == 4) {
    alignas(32) float lut16[16] = {};
    std::memcpy(lut16, v.lut, v.lut_size * sizeof(float));
    const __m256 lo = _mm256_load_ps(lut16);
    const __m256 hi = _mm256_load_ps(lut16 + 8);
    for (; i + 8 <= count; i += 8) {
      alignas(32) std::uint32_t idx[8];
      for (int l = 0; l < 8; ++l) {
        idx[l] = packed_code_at(v, elem_begin + i + l);
      }
      const __m256i iv =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(idx));
      const __m256 a = _mm256_permutevar8x32_ps(lo, iv);
      const __m256 b = _mm256_permutevar8x32_ps(hi, iv);
      // Bit 3 of the index picks the upper half; shifted to the sign
      // position it drives blendv's per-lane select.
      const __m256 sel = _mm256_castsi256_ps(_mm256_slli_epi32(iv, 28));
      _mm256_storeu_ps(dst + i, _mm256_blendv_ps(a, b, sel));
    }
  } else if (v.bits == 8) {
    const std::uint8_t* src = v.data + v.offset + elem_begin;
    for (; i + 8 <= count; i += 8) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(src + i));
      const __m256i iv = _mm256_cvtepu8_epi32(bytes);
      _mm256_storeu_ps(dst + i, _mm256_i32gather_ps(v.lut, iv, 4));
    }
  } else {
    const std::uint8_t* src = v.data + (v.offset + elem_begin) * 2;
    for (; i + 8 <= count; i += 8) {
      const __m128i words = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + i * 2));
      const __m256i iv = _mm256_cvtepu16_epi32(words);
      _mm256_storeu_ps(dst + i, _mm256_i32gather_ps(v.lut, iv, 4));
    }
  }
  for (; i < count; ++i) dst[i] = packed_decode_at(v, elem_begin + i);
}

// ---------------------------------------------------------------------------
// GEMM with a coded A operand (conv-as-GEMM; the weight matrix is A).
// The A row block is LUT-expanded once per call (SIMD decode, O(rows*k));
// re-decoding per 8-column panel would multiply the nibble-extraction
// cost by n/8.  The expanded floats are exactly what the float kernel
// reads from its A tensor, so delegating to gemm_rows_avx2 — edge tiles
// included — is bit-identical to decode-then-gemm by the decode contract,
// and keeps a single copy of the pack/tile heuristics.

void gemm_codes_rows_avx2(const PackedCodesView& a, const float* b,
                          const float* bias, float* c, std::int64_t row_begin,
                          std::int64_t row_end, std::int64_t k,
                          std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  decode_elems_avx2(a, row_begin * k, rows * k, a_block.data());
  gemm_rows_avx2(a_block.data(), b, bias, c + row_begin * n, 0, rows, k, n);
}

// ---------------------------------------------------------------------------
// GEMM with a coded B^T operand (linear/attention layout; B [n,k] holds W
// as codes).  Per 8-column panel the 8 coded B rows are LUT-expanded once
// into a packed float panel, then every A row of the block sweeps it with
// gemm_nt_rows_avx2's exact accumulation — the decode cost amortizes over
// the row block while the loads the arithmetic sees are the same values
// the float kernel reads from its [n,k] tensor.

void gemm_codes_nt_float_avx2(const float* a, const PackedCodesView& b,
                              const float* bias, float* c,
                              std::int64_t row_begin, std::int64_t row_end,
                              std::int64_t k, std::int64_t n) {
  const std::int64_t full_cols = n - (n % 8);
  if (full_cols > 0 && row_end > row_begin) {
    std::vector<float> rows8(static_cast<std::size_t>(k) * 8);
    for (std::int64_t j = 0; j < full_cols; j += 8) {
      for (int r = 0; r < 8; ++r) {
        decode_elems_avx2(b, (j + r) * k, k, rows8.data() + r * k);
      }
      const float* br0 = rows8.data();
      const float* br1 = br0 + k;
      const float* br2 = br1 + k;
      const float* br3 = br2 + k;
      const float* br4 = br3 + k;
      const float* br5 = br4 + k;
      const float* br6 = br5 + k;
      const float* br7 = br6 + k;
      for (std::int64_t i = row_begin; i < row_end; ++i) {
        const float* arow = a + i * k;
        __m256d acc0;
        __m256d acc1;
        if (bias != nullptr) {
          acc0 = _mm256_cvtps_pd(_mm_loadu_ps(bias + j));
          acc1 = _mm256_cvtps_pd(_mm_loadu_ps(bias + j + 4));
        } else {
          acc0 = _mm256_setzero_pd();
          acc1 = _mm256_setzero_pd();
        }
        for (std::int64_t p = 0; p < k; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const __m128 f0 = _mm_setr_ps(br0[p], br1[p], br2[p], br3[p]);
          const __m128 f1 = _mm_setr_ps(br4[p], br5[p], br6[p], br7[p]);
          const __m256d avv = _mm256_set1_pd(av);
          acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(avv, _mm256_cvtps_pd(f0)));
          acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(avv, _mm256_cvtps_pd(f1)));
        }
        float* crow = c + i * n;
        _mm_storeu_ps(crow + j, _mm256_cvtpd_ps(acc0));
        _mm_storeu_ps(crow + j + 4, _mm256_cvtpd_ps(acc1));
      }
    }
  }
  if (full_cols < n) {
    detail::gemm_codes_nt_ref_block(a, b, bias, c, row_begin, row_end,
                                    full_cols, n, k, n);
  }
}

bool gemm_codes_nt_rows_avx2(const float* a, const PackedCodesView& b,
                             const float* bias, float* c, const ActEncode* ep,
                             std::int64_t row_begin, std::int64_t row_end,
                             std::int64_t k, std::int64_t n) {
  if (ep == nullptr) {
    gemm_codes_nt_float_avx2(a, b, bias, c, row_begin, row_end, k, n);
    return true;
  }
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float_avx2(a + row_begin * k, b, bias, c_block, 0, rows,
                           k, n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

// ---------------------------------------------------------------------------
// Both operands coded, conv layout (A = coded weights, B = coded
// activation patches).  The A row block is LUT-expanded once per call;
// each 8-column B panel is LUT-expanded at panel load — the activation
// codes stream through the decode port exactly like the weight codes do
// in gemm_codes_nt_rows_avx2.  The decoded floats equal the float path's
// operands by the decode contract, so gemm_micro sees the identical IEEE
// operation sequence; edge columns fall to the shared reference block.

void gemm_codes_codes_rows_avx2(const PackedCodesView& a,
                                const PackedCodesView& b, const float* bias,
                                float* c, std::int64_t row_begin,
                                std::int64_t row_end, std::int64_t k,
                                std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  decode_elems_avx2(a, row_begin * k, rows * k, a_block.data());
  const std::int64_t full_cols = n - (n % 8);
  if (full_cols > 0) {
    std::vector<float> panel(static_cast<std::size_t>(k) * 8);
    float* cr = c + row_begin * n;
    for (std::int64_t j = 0; j < full_cols; j += 8) {
      for (std::int64_t p = 0; p < k; ++p) {
        decode_elems_avx2(b, p * n + j, 8, panel.data() + p * 8);
      }
      std::int64_t i = 0;
      for (; i + 4 <= rows; i += 4) {
        gemm_micro<4>(a_block.data(), panel.data(), 8, bias, cr, i, j, k, n);
      }
      switch (rows - i) {
        case 3: gemm_micro<3>(a_block.data(), panel.data(), 8, bias, cr, i, j, k, n); break;
        case 2: gemm_micro<2>(a_block.data(), panel.data(), 8, bias, cr, i, j, k, n); break;
        case 1: gemm_micro<1>(a_block.data(), panel.data(), 8, bias, cr, i, j, k, n); break;
        default: break;
      }
    }
  }
  if (full_cols < n) {
    detail::gemm_codes_codes_ref_block(a, b, bias, c, row_begin, row_end,
                                       full_cols, n, k, n);
  }
}

// ---------------------------------------------------------------------------
// Both operands coded, linear layout, with the optional fused encode
// epilogue.  Decode the coded activation row block once (same floats the
// unfused path's activation tensor holds), run the proven coded-B^T
// kernel over it, then — when an epilogue is attached — hand the staged
// row block to the shared scalar encoder, so the only bytes that leave
// are codes.

bool gemm_codes_codes_nt_rows_avx2(const PackedCodesView& a,
                                   const PackedCodesView& b, const float* bias,
                                   float* c, const ActEncode* ep,
                                   std::int64_t row_begin,
                                   std::int64_t row_end, std::int64_t k,
                                   std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  decode_elems_avx2(a, row_begin * k, rows * k, a_block.data());
  if (ep == nullptr) {
    gemm_codes_nt_float_avx2(a_block.data(), b, bias, c + row_begin * n, 0,
                             rows, k, n);
    return true;
  }
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float_avx2(a_block.data(), b, bias, c_block, 0, rows, k,
                           n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

// ---------------------------------------------------------------------------
// GEMM against B^T ([n, k] row-major): 8 output columns per step, each
// column's dot product in its own double lane (single chain per element,
// ascending p).  The 8 B rows are walked sequentially in p — 8 forward
// streams, cache-friendly without packing.

void gemm_nt_rows_avx2(const float* a, const float* b, const float* bias,
                       float* c, std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t k, std::int64_t n) {
  const std::int64_t full_cols = n - (n % 8);
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < full_cols; j += 8) {
      const float* br0 = b + j * k;
      const float* br1 = br0 + k;
      const float* br2 = br1 + k;
      const float* br3 = br2 + k;
      const float* br4 = br3 + k;
      const float* br5 = br4 + k;
      const float* br6 = br5 + k;
      const float* br7 = br6 + k;
      __m256d acc0;
      __m256d acc1;
      if (bias != nullptr) {
        acc0 = _mm256_cvtps_pd(_mm_loadu_ps(bias + j));
        acc1 = _mm256_cvtps_pd(_mm_loadu_ps(bias + j + 4));
      } else {
        acc0 = _mm256_setzero_pd();
        acc1 = _mm256_setzero_pd();
      }
      for (std::int64_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        const __m128 f0 = _mm_setr_ps(br0[p], br1[p], br2[p], br3[p]);
        const __m128 f1 = _mm_setr_ps(br4[p], br5[p], br6[p], br7[p]);
        const __m256d avv = _mm256_set1_pd(av);
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(avv, _mm256_cvtps_pd(f0)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(avv, _mm256_cvtps_pd(f1)));
      }
      _mm_storeu_ps(crow + j, _mm256_cvtpd_ps(acc0));
      _mm_storeu_ps(crow + j + 4, _mm256_cvtpd_ps(acc1));
    }
    if (full_cols < n) {
      detail::gemm_nt_ref_block(a, b, bias, c, i, i + 1, full_cols, n, k, n);
    }
  }
}

// ---------------------------------------------------------------------------
// Quantization: SIMD ordered-key computation + branchless boundary count.

/// Branchless boundary search: count keys <= key inside the bucket (SIMD
/// 8-at-a-time, signed compare after bias), no early exit.  Returns the
/// same index as the reference scan for every key by construction (both
/// compute bucket_lo[b] + |{t : keys[t] <= key}|).
std::size_t lookup_count(const QuantIndexView& v, std::uint32_t key) {
  const std::uint32_t b = key >> (32 - v.bucket_bits);
  const std::uint32_t lo = v.bucket_lo[b];
  const std::uint32_t hi = v.bucket_lo[b + 1];
  std::uint32_t t = lo;
  std::size_t count = 0;
  const __m256i biasv = _mm256_set1_epi32(static_cast<int>(0x80000000U));
  const __m256i kv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), biasv);
  for (; t + 8 <= hi; t += 8) {
    const __m256i ks = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.keys + t)),
        biasv);
    const __m256i gt = _mm256_cmpgt_epi32(ks, kv);
    const auto mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(gt)));
    count += 8U - static_cast<unsigned>(std::popcount(mask));
  }
  for (; t < hi; ++t) count += (v.keys[t] <= key) ? 1U : 0U;
  return lo + count;
}

void nearest_indices_avx2(const QuantIndexView& v, const float* xs,
                          std::uint32_t* out, std::size_t n) {
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000U));
  const __m256i expm = _mm256_set1_epi32(0x7F800000);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    // ordered_key, vectorized: negatives (sign-propagating shift gives an
    // all-ones mask) flip entirely, positives set the sign bit.
    const __m256i neg = _mm256_srai_epi32(bits, 31);
    const __m256i key = _mm256_or_si256(_mm256_xor_si256(bits, neg),
                                        _mm256_andnot_si256(neg, sign));
    const __m256i bad =
        _mm256_cmpeq_epi32(_mm256_and_si256(bits, expm), expm);
    alignas(32) std::uint32_t keys[8];
    alignas(32) std::uint32_t bads[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(keys), key);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bads), bad);
    for (int l = 0; l < 8; ++l) {
      out[i + static_cast<std::size_t>(l)] =
          bads[l] != 0
              ? kInvalidIndex
              : static_cast<std::uint32_t>(lookup_count(v, keys[l]));
    }
  }
  for (; i < n; ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(xs[i]);
    out[i] = quant::is_finite_bits(bits)
                 ? static_cast<std::uint32_t>(
                       lookup_count(v, quant::ordered_key(bits)))
                 : kInvalidIndex;
  }
}

double quantize_chunk_avx2(const QuantIndexView& v, float* xs,
                           std::size_t n) {
  // Two passes per block: SIMD index computation, then the shared scalar
  // apply pass continuing one element-order error accumulator — the same
  // addition sequence as the single-pass scalar kernel.
  constexpr std::size_t kBlock = 512;
  std::uint32_t idx[kBlock];
  double se = 0.0;
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t len = std::min(kBlock, n - base);
    nearest_indices_avx2(v, xs + base, idx, len);
    detail::quantize_apply(v, xs + base, idx, len, se);
  }
  return se;
}

}  // namespace

// Referenced by dispatch.cpp (only when LOGPOSIT_HAVE_AVX2 is defined).
const KernelTable* avx2_kernels_impl() {
  static constexpr KernelTable kTable{"avx2",
                                      gemm_rows_avx2,
                                      gemm_nt_rows_avx2,
                                      gemm_codes_rows_avx2,
                                      gemm_codes_nt_rows_avx2,
                                      gemm_codes_codes_rows_avx2,
                                      gemm_codes_codes_nt_rows_avx2,
                                      quantize_chunk_avx2,
                                      nearest_indices_avx2};
  return &kTable;
}

}  // namespace lp::kernels

#endif  // defined(__AVX2__)
