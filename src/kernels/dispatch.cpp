// Runtime CPU-feature dispatch: pick the kernel table once per process
// from LP_KERNEL and cpuid.  Selection never trusts compile flags alone —
// an AVX2/AVX-512 TU baked into the binary is only used when the host CPU
// reports the feature set, so one build runs correctly on any x86-64.
#include <cstdio>
#include <cstdlib>

#include "kernels/kernels.h"

namespace lp::kernels {

#if defined(LOGPOSIT_HAVE_AVX2)
// Defined in kernels_avx2.cpp (compiled with -mavx2).
const KernelTable* avx2_kernels_impl();
#endif
#if defined(LOGPOSIT_HAVE_AVX512)
// Defined in kernels_avx512.cpp (compiled with -mavx512{f,bw,vl}).
const KernelTable* avx512_kernels_impl();
#endif

const KernelTable* avx2_kernels() {
#if defined(LOGPOSIT_HAVE_AVX2)
  return avx2_kernels_impl();
#else
  return nullptr;
#endif
}

const KernelTable* avx512_kernels() {
#if defined(LOGPOSIT_HAVE_AVX512)
  return avx512_kernels_impl();
#else
  return nullptr;
#endif
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The avx512 TU is compiled with -mavx512f -mavx512bw -mavx512vl, so the
  // compiler may emit any of the three anywhere in it — all must be present.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

bool is_known_kernel_name(std::string_view name) {
  return name == "scalar" || name == "avx2" || name == "avx512";
}

const KernelTable* by_name(std::string_view name) {
  if (name == "scalar") return &scalar_kernels();
  if (name == "avx2") return avx2_kernels();
  if (name == "avx512") return avx512_kernels();
  return nullptr;
}

namespace {

bool table_usable(const KernelTable* t) {
  if (t == nullptr) return false;
  if (t == &scalar_kernels()) return true;
  if (t == avx2_kernels()) return cpu_supports_avx2();
  if (t == avx512_kernels()) return cpu_supports_avx512();
  return false;
}

const KernelTable& best_available() {
  if (const KernelTable* v512 = avx512_kernels();
      v512 != nullptr && cpu_supports_avx512()) {
    return *v512;
  }
  if (const KernelTable* v2 = avx2_kernels();
      v2 != nullptr && cpu_supports_avx2()) {
    return *v2;
  }
  return scalar_kernels();
}

}  // namespace

std::vector<const KernelTable*> available_kernels() {
  std::vector<const KernelTable*> out{&scalar_kernels()};
  if (const KernelTable* t = avx2_kernels(); table_usable(t)) out.push_back(t);
  if (const KernelTable* t = avx512_kernels(); table_usable(t)) {
    out.push_back(t);
  }
  return out;
}

const KernelTable& select_kernels(const char* requested) {
  if (requested != nullptr && *requested != '\0') {
    const KernelTable* t = by_name(requested);
    if (table_usable(t)) return *t;
    const KernelTable& fallback = best_available();
    // Name the precise reason so an operator can tell a typo from a
    // build gap from a host capability gap.
    const char* reason;
    if (!is_known_kernel_name(requested)) {
      reason = "unknown kernel name";
    } else if (t == nullptr) {
      reason = "not compiled into this binary";
    } else {
      reason = "CPU lacks the required instruction-set features";
    }
    std::fprintf(stderr, "logposit: LP_KERNEL=%s is not available (%s); using '%s'\n",
                 requested, reason, fallback.name);
    return fallback;
  }
  return best_available();
}

const KernelTable& dispatch() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): resolved once under static init
  static const KernelTable& table = select_kernels(std::getenv("LP_KERNEL"));
  return table;
}

ApproxMode approx_mode_from_name(const char* requested) {
  if (requested == nullptr || *requested == '\0') return ApproxMode::kExact;
  const std::string_view name(requested);
  if (name == "off" || name == "exact") return ApproxMode::kExact;
  if (name == "plam") return ApproxMode::kPlam;
  std::fprintf(stderr,
               "logposit: LP_APPROX=%s is not a recognized approximation "
               "mode (expected 'plam', 'exact', or 'off'); using exact\n",
               requested);
  return ApproxMode::kExact;
}

ApproxMode approx_mode() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): resolved once under static init
  static const ApproxMode mode =
      approx_mode_from_name(std::getenv("LP_APPROX"));
  return mode;
}

}  // namespace lp::kernels
