// Runtime CPU-feature dispatch: pick the kernel table once per process
// from LP_KERNEL and cpuid.  Selection never trusts compile flags alone —
// an AVX2 TU baked into the binary is only used when the host CPU reports
// the feature, so one build runs correctly on any x86-64.
#include <cstdio>
#include <cstdlib>

#include "kernels/kernels.h"

namespace lp::kernels {

#if defined(LOGPOSIT_HAVE_AVX2)
// Defined in kernels_avx2.cpp (compiled with -mavx2).
const KernelTable* avx2_kernels_impl();
#endif

const KernelTable* avx2_kernels() {
#if defined(LOGPOSIT_HAVE_AVX2)
  return avx2_kernels_impl();
#else
  return nullptr;
#endif
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelTable* by_name(std::string_view name) {
  if (name == "scalar") return &scalar_kernels();
  if (name == "avx2") return avx2_kernels();
  return nullptr;
}

std::vector<const KernelTable*> available_kernels() {
  std::vector<const KernelTable*> out{&scalar_kernels()};
  if (const KernelTable* t = avx2_kernels();
      t != nullptr && cpu_supports_avx2()) {
    out.push_back(t);
  }
  return out;
}

namespace {

const KernelTable& best_available() {
  const KernelTable* avx2 = avx2_kernels();
  return (avx2 != nullptr && cpu_supports_avx2()) ? *avx2 : scalar_kernels();
}

}  // namespace

const KernelTable& select_kernels(const char* requested) {
  if (requested != nullptr && *requested != '\0') {
    const KernelTable* t = by_name(requested);
    if (t != nullptr && (t == &scalar_kernels() || cpu_supports_avx2())) {
      return *t;
    }
    const KernelTable& fallback = best_available();
    std::fprintf(stderr,
                 "logposit: LP_KERNEL=%s is not available on this host "
                 "(unknown name, not compiled in, or missing CPU support); "
                 "using '%s'\n",
                 requested, fallback.name);
    return fallback;
  }
  return best_available();
}

const KernelTable& dispatch() {
  static const KernelTable& table = select_kernels(std::getenv("LP_KERNEL"));
  return table;
}

}  // namespace lp::kernels
