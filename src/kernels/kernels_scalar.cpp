// Portable reference kernels.  This TU is compiled with the baseline ISA
// and -ffp-contract=off: the arithmetic here (double accumulators,
// ascending-k mul-then-add, zero-skip) is the definition every SIMD table
// must reproduce bit-for-bit.
#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "core/quant_rule.h"
#include "kernels/kernels_internal.h"

namespace lp::kernels {

namespace detail {

void gemm_ref_block(const float* a, const float* b, const float* bias,
                    float* c, std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t col_begin, std::int64_t col_end,
                    std::int64_t k, std::int64_t n) {
  const std::int64_t w = col_end - col_begin;
  if (w <= 0 || row_end <= row_begin) return;
  std::vector<double> acc(static_cast<std::size_t>(w));
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < w; ++j) {
        acc[static_cast<std::size_t>(j)] = bias[col_begin + j];
      }
    } else {
      std::fill(acc.begin(), acc.end(), 0.0);
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const float* brow = b + p * n + col_begin;
      for (std::int64_t j = 0; j < w; ++j) {
        acc[static_cast<std::size_t>(j)] += av * brow[j];
      }
    }
    float* crow = c + i * n + col_begin;
    for (std::int64_t j = 0; j < w; ++j) {
      crow[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
    }
  }
}

void gemm_nt_ref_block(const float* a, const float* b, const float* bias,
                       float* c, std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t col_begin, std::int64_t col_end,
                       std::int64_t k, std::int64_t n) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = col_begin; j < col_end; ++j) {
      const float* brow = b + j * k;
      double s = (bias != nullptr) ? bias[j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        s += av * brow[p];
      }
      crow[j] = static_cast<float>(s);
    }
  }
}

void gemm_codes_ref_block(const PackedCodesView& a, const float* b,
                          const float* bias, float* c, std::int64_t row_begin,
                          std::int64_t row_end, std::int64_t col_begin,
                          std::int64_t col_end, std::int64_t k,
                          std::int64_t n) {
  const std::int64_t w = col_end - col_begin;
  if (w <= 0 || row_end <= row_begin) return;
  std::vector<double> acc(static_cast<std::size_t>(w));
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < w; ++j) {
        acc[static_cast<std::size_t>(j)] = bias[col_begin + j];
      }
    } else {
      std::fill(acc.begin(), acc.end(), 0.0);
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const double av = packed_decode_at(a, i * k + p);
      if (av == 0.0) continue;
      const float* brow = b + p * n + col_begin;
      for (std::int64_t j = 0; j < w; ++j) {
        acc[static_cast<std::size_t>(j)] += av * brow[j];
      }
    }
    float* crow = c + i * n + col_begin;
    for (std::int64_t j = 0; j < w; ++j) {
      crow[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
    }
  }
}

void gemm_codes_nt_ref_block(const float* a, const PackedCodesView& b,
                             const float* bias, float* c,
                             std::int64_t row_begin, std::int64_t row_end,
                             std::int64_t col_begin, std::int64_t col_end,
                             std::int64_t k, std::int64_t n) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = col_begin; j < col_end; ++j) {
      double s = (bias != nullptr) ? bias[j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        s += av * packed_decode_at(b, j * k + p);
      }
      crow[j] = static_cast<float>(s);
    }
  }
}

void gemm_codes_codes_ref_block(const PackedCodesView& a,
                                const PackedCodesView& b, const float* bias,
                                float* c, std::int64_t row_begin,
                                std::int64_t row_end, std::int64_t col_begin,
                                std::int64_t col_end, std::int64_t k,
                                std::int64_t n) {
  const std::int64_t w = col_end - col_begin;
  if (w <= 0 || row_end <= row_begin) return;
  std::vector<double> acc(static_cast<std::size_t>(w));
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < w; ++j) {
        acc[static_cast<std::size_t>(j)] = bias[col_begin + j];
      }
    } else {
      std::fill(acc.begin(), acc.end(), 0.0);
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const double av = packed_decode_at(a, i * k + p);
      if (av == 0.0) continue;
      const std::int64_t brow = p * n + col_begin;
      for (std::int64_t j = 0; j < w; ++j) {
        acc[static_cast<std::size_t>(j)] += av * packed_decode_at(b, brow + j);
      }
    }
    float* crow = c + i * n + col_begin;
    for (std::int64_t j = 0; j < w; ++j) {
      crow[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
    }
  }
}

bool encode_elem(const ActEncode& ep, float v, std::int64_t e) {
  const float y = act_eval(v, ep.act);
  const auto bits = std::bit_cast<std::uint32_t>(y);
  if (!quant::is_finite_bits(bits)) return false;
  const std::size_t idx = qindex_lookup(ep.qidx, quant::ordered_key(bits));
  packed_code_write(ep.codes, ep.bits, e, static_cast<std::uint32_t>(idx));
  return true;
}

namespace {

// act_eval with the selector hoisted out of the loop: a compile-time act
// folds the switch away, so the relu/relu6 cases vectorize instead of
// re-dispatching per element (same float ops, so same bits either way).
template <int A>
void act_apply(const float* src, float* dst, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    dst[i] = act_eval(src[i], A);
  }
}

void act_apply_dyn(int act, const float* src, float* dst,
                   std::int64_t count) {
  switch (act) {
    case kActRelu: act_apply<kActRelu>(src, dst, count); return;
    case kActRelu6: act_apply<kActRelu6>(src, dst, count); return;
    case kActGelu: act_apply<kActGelu>(src, dst, count); return;
    default: act_apply<kActNone>(src, dst, count); return;
  }
}

// Batched tail of the fused epilogue: nearest-index search over the
// already-activated values through the dispatched table — every table's
// search is pinned bit-identical, so this is a pure throughput choice —
// then code writes.  Pool workers are persistent, so thread_local scratch
// amortizes the index-buffer allocation.
const std::uint32_t* activated_indices(const ActEncode& ep, const float* xs,
                                       std::int64_t count) {
  thread_local std::vector<std::uint32_t> idx;
  idx.resize(static_cast<std::size_t>(count));
  dispatch().nearest_indices(ep.qidx, xs, idx.data(),
                             static_cast<std::size_t>(count));
  return idx.data();
}

bool write_codes(const ActEncode& ep, const std::uint32_t* idx,
                 std::int64_t elem_begin, std::int64_t count) {
  bool ok = true;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::uint32_t ix = idx[i];
    if (ix == kInvalidIndex) {
      ok = false;  // non-finite: no code, matching encode_elem
      continue;
    }
    packed_code_write(ep.codes, ep.bits, elem_begin + i, ix);
  }
  return ok;
}

bool encode_activated_block(const ActEncode& ep, const float* xs,
                            std::int64_t elem_begin, std::int64_t count) {
  return write_codes(ep, activated_indices(ep, xs, count), elem_begin, count);
}

}  // namespace

bool encode_row_block(const ActEncode& ep, const float* src,
                      std::int64_t elem_begin, std::int64_t count) {
  // src may be a caller's live tensor, not scratch (encode_acts passes
  // one), so the activated values stage in thread-local scratch.
  const float* xs = src;
  if (ep.act != kActNone) {
    thread_local std::vector<float> act_buf;
    act_buf.resize(static_cast<std::size_t>(count));
    act_apply_dyn(ep.act, src, act_buf.data(), count);
    xs = act_buf.data();
  }
  return encode_activated_block(ep, xs, elem_begin, count);
}

bool encode_scratch_block(const ActEncode& ep, float* scratch,
                          std::int64_t elem_begin, std::int64_t count) {
  if (ep.act != kActNone) {
    act_apply_dyn(ep.act, scratch, scratch, count);
  }
  return encode_activated_block(ep, scratch, elem_begin, count);
}

bool encode_strided_block(const ActEncode& ep, float* scratch,
                          std::int64_t count, std::int64_t e0,
                          std::int64_t stride, std::int64_t run) {
  if (ep.act != kActNone) {
    act_apply_dyn(ep.act, scratch, scratch, count);
  }
  const std::uint32_t* idx = activated_indices(ep, scratch, count);
  bool ok = true;
  for (std::int64_t r = 0; r * run < count; ++r) {
    ok = write_codes(ep, idx + r * run, e0 + r * stride, run) && ok;
  }
  return ok;
}

float* fused_scratch(std::int64_t count) {
  thread_local std::vector<float> buf;
  if (static_cast<std::int64_t>(buf.size()) < count) {
    buf.resize(static_cast<std::size_t>(count));
  }
  return buf.data();
}

std::size_t qindex_lookup(const QuantIndexView& v, std::uint32_t key) {
  const std::uint32_t b = key >> (32 - v.bucket_bits);
  const std::uint32_t* first = v.keys + v.bucket_lo[b];
  const std::uint32_t* last = v.keys + v.bucket_lo[b + 1];
  // Buckets hold a handful of keys for the paper's narrow formats; a
  // linear scan beats binary-search branches there.  Wide (12+ bit)
  // formats can have dense buckets, so fall back above a small span.
  if (last - first > 16) {
    return static_cast<std::size_t>(std::upper_bound(first, last, key) -
                                    v.keys);
  }
  while (first < last && *first <= key) ++first;
  return static_cast<std::size_t>(first - v.keys);
}

void quantize_apply(const QuantIndexView& v, float* xs,
                    const std::uint32_t* idx, std::size_t n, double& se) {
  for (std::size_t i = 0; i < n; ++i) {
    float& x = xs[i];
    if (idx[i] == kInvalidIndex) {
      // q = NaN poisons the error accumulator, matching the scalar
      // quantize path's behaviour for non-finite inputs.
      const double d = static_cast<double>(x) -
                       std::numeric_limits<double>::quiet_NaN();
      se += d * d;
      x = std::numeric_limits<float>::quiet_NaN();
      continue;
    }
    const double d = static_cast<double>(x) - v.values_d[idx[i]];
    se += d * d;
    x = v.values_f[idx[i]];
  }
}

}  // namespace detail

namespace {

void gemm_rows_scalar(const float* a, const float* b, const float* bias,
                      float* c, std::int64_t row_begin, std::int64_t row_end,
                      std::int64_t k, std::int64_t n) {
  detail::gemm_ref_block(a, b, bias, c, row_begin, row_end, 0, n, k, n);
}

void gemm_nt_rows_scalar(const float* a, const float* b, const float* bias,
                         float* c, std::int64_t row_begin,
                         std::int64_t row_end, std::int64_t k,
                         std::int64_t n) {
  detail::gemm_nt_ref_block(a, b, bias, c, row_begin, row_end, 0, n, k, n);
}

void gemm_codes_rows_scalar(const PackedCodesView& a, const float* b,
                            const float* bias, float* c,
                            std::int64_t row_begin, std::int64_t row_end,
                            std::int64_t k, std::int64_t n) {
  detail::gemm_codes_ref_block(a, b, bias, c, row_begin, row_end, 0, n, k, n);
}

void gemm_codes_nt_float(const float* a, const PackedCodesView& b,
                         const float* bias, float* c, std::int64_t row_begin,
                         std::int64_t row_end, std::int64_t k,
                         std::int64_t n) {
  // Decode each coded B row once and sweep every A row over it (j outer,
  // i inner) — the reference block's i-outer order would re-decode row j
  // per output row.  Each c[i,j] is an independent dot product with the
  // same ascending-p arithmetic, so the interchange cannot affect results.
  std::vector<float> brow(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t p = 0; p < k; ++p) {
      brow[static_cast<std::size_t>(p)] = packed_decode_at(b, j * k + p);
    }
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      double s = (bias != nullptr) ? bias[j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        s += av * brow[static_cast<std::size_t>(p)];
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

bool gemm_codes_nt_rows_scalar(const float* a, const PackedCodesView& b,
                               const float* bias, float* c,
                               const ActEncode* ep, std::int64_t row_begin,
                               std::int64_t row_end, std::int64_t k,
                               std::int64_t n) {
  if (ep == nullptr) {
    gemm_codes_nt_float(a, b, bias, c, row_begin, row_end, k, n);
    return true;
  }
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  // Fused epilogue: stage the finished float rows in kernel-local scratch
  // (the values are exactly what the unfused path's tensor would hold),
  // then act + encode each element — only codes leave the kernel.
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float(a + row_begin * k, b, bias, c_block, 0, rows, k,
                      n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

void gemm_codes_codes_rows_scalar(const PackedCodesView& a,
                                  const PackedCodesView& b, const float* bias,
                                  float* c, std::int64_t row_begin,
                                  std::int64_t row_end, std::int64_t k,
                                  std::int64_t n) {
  detail::gemm_codes_codes_ref_block(a, b, bias, c, row_begin, row_end, 0, n,
                                     k, n);
}

bool gemm_codes_codes_nt_rows_scalar(const PackedCodesView& a,
                                     const PackedCodesView& b,
                                     const float* bias, float* c,
                                     const ActEncode* ep,
                                     std::int64_t row_begin,
                                     std::int64_t row_end, std::int64_t k,
                                     std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  // Decode the coded A row block once (the decoded floats ARE the floats
  // the unfused path's activation tensor holds, by the LUT contract), then
  // run the existing coded-B^T reference over it.  Composing the two
  // proven paths keeps one definition of the accumulation order.
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  for (std::int64_t t = 0; t < rows * k; ++t) {
    a_block[static_cast<std::size_t>(t)] =
        packed_decode_at(a, row_begin * k + t);
  }
  if (ep == nullptr) {
    gemm_codes_nt_float(a_block.data(), b, bias, c + row_begin * n, 0, rows, k,
                        n);
    return true;
  }
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float(a_block.data(), b, bias, c_block, 0, rows, k, n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

double quantize_chunk_scalar(const QuantIndexView& v, float* xs,
                             std::size_t n) {
  double se = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    float& x = xs[i];
    const auto bits = std::bit_cast<std::uint32_t>(x);
    if (!quant::is_finite_bits(bits)) {
      const double d = static_cast<double>(x) -
                       std::numeric_limits<double>::quiet_NaN();
      se += d * d;
      x = std::numeric_limits<float>::quiet_NaN();
      continue;
    }
    const std::size_t idx = detail::qindex_lookup(v, quant::ordered_key(bits));
    const double d = static_cast<double>(x) - v.values_d[idx];
    se += d * d;
    x = v.values_f[idx];
  }
  return se;
}

void nearest_indices_scalar(const QuantIndexView& v, const float* xs,
                            std::uint32_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(xs[i]);
    out[i] = quant::is_finite_bits(bits)
                 ? static_cast<std::uint32_t>(
                       detail::qindex_lookup(v, quant::ordered_key(bits)))
                 : kInvalidIndex;
  }
}

}  // namespace

const KernelTable& scalar_kernels() {
  static constexpr KernelTable kTable{"scalar",
                                      gemm_rows_scalar,
                                      gemm_nt_rows_scalar,
                                      gemm_codes_rows_scalar,
                                      gemm_codes_nt_rows_scalar,
                                      gemm_codes_codes_rows_scalar,
                                      gemm_codes_codes_nt_rows_scalar,
                                      quantize_chunk_scalar,
                                      nearest_indices_scalar};
  return kTable;
}

}  // namespace lp::kernels
