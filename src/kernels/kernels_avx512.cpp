// AVX-512 kernel table.  This is the only TU compiled with
// -mavx512f/-mavx512bw/-mavx512vl; nothing in it executes unless runtime
// cpuid reports all three extensions (see dispatch.cpp).
//
// The bit-equality engineering mirrors kernels_avx2.cpp, widened to 16
// float lanes:
//  * GEMM accumulates each output element in a dedicated double lane
//    (two zmm registers per 16 columns), contributions added in
//    ascending-k order with _mm512_mul_pd followed by _mm512_add_pd —
//    the same two correctly-rounded IEEE operations the scalar code
//    performs (FMA would single-round and is never used).
//  * The zero-skip of A entries stays an ordinary branch: it is a
//    per-(row, k) predicate identical across the 16 lanes of one row, so
//    an inf or NaN in B under a structural zero never reaches any lane.
//  * 4-bit LUT decode holds the entire table (<= 16 floats) in a single
//    zmm register; _mm512_permutexvar_ps is a full 16-entry in-register
//    lookup, so no blend tree is needed.  8/16-bit codes widen to dword
//    indices and gather from the table.
//  * Quantization lookup counts boundary keys with a native unsigned
//    compare (_mm512_cmp_epu32_mask) — no sign-bias xor — and popcounts
//    the 16-bit lane mask; the result equals the reference scan's index
//    by construction.
//  * Edge tiles (rows % 4, columns % 16) fall through to the reference
//    block helpers, which are per-element identical by definition.
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "core/quant_rule.h"
#include "kernels/kernels_internal.h"

namespace lp::kernels {
namespace {

// ---------------------------------------------------------------------------
// GEMM (B row-major): cache-blocked, register-tiled micro-kernel.
// R rows x 16 columns of double accumulators live in zmm registers for
// the whole k loop.  `panel_stride` is 16 for a packed panel and n for
// reading B in place — identical loads either way.

template <int R>
void gemm_micro(const float* a, const float* panel, std::int64_t panel_stride,
                const float* bias, float* c, std::int64_t i, std::int64_t j,
                std::int64_t k, std::int64_t n) {
  __m512d acc[R][2];
  if (bias != nullptr) {
    const __m512d b0 = _mm512_cvtps_pd(_mm256_loadu_ps(bias + j));
    const __m512d b1 = _mm512_cvtps_pd(_mm256_loadu_ps(bias + j + 8));
    for (int r = 0; r < R; ++r) {
      acc[r][0] = b0;
      acc[r][1] = b1;
    }
  } else {
    const __m512d z = _mm512_setzero_pd();
    for (int r = 0; r < R; ++r) {
      acc[r][0] = z;
      acc[r][1] = z;
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* bp = panel + panel_stride * p;
    const __m512d bv0 = _mm512_cvtps_pd(_mm256_loadu_ps(bp));
    const __m512d bv1 = _mm512_cvtps_pd(_mm256_loadu_ps(bp + 8));
    for (int r = 0; r < R; ++r) {
      const double av = a[(i + r) * k + p];
      if (av == 0.0) continue;
      const __m512d avv = _mm512_set1_pd(av);
      acc[r][0] = _mm512_add_pd(acc[r][0], _mm512_mul_pd(avv, bv0));
      acc[r][1] = _mm512_add_pd(acc[r][1], _mm512_mul_pd(avv, bv1));
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = c + (i + r) * n + j;
    _mm256_storeu_ps(crow, _mm512_cvtpd_ps(acc[r][0]));
    _mm256_storeu_ps(crow + 8, _mm512_cvtpd_ps(acc[r][1]));
  }
}

void gemm_rows_avx512(const float* a, const float* b, const float* bias,
                      float* c, std::int64_t row_begin, std::int64_t row_end,
                      std::int64_t k, std::int64_t n) {
  const std::int64_t full_cols = n - (n % 16);
  const std::int64_t rows = row_end - row_begin;
  // Pack only when enough row tiles amortize the k x 16 copy (same
  // heuristic and threshold as the AVX2 table).
  const bool pack = rows >= 8;
  if (full_cols > 0 && rows > 0) {
    std::vector<float> panel(pack ? static_cast<std::size_t>(k) * 16 : 0);
    for (std::int64_t j = 0; j < full_cols; j += 16) {
      const float* pnl = b + j;
      std::int64_t stride = n;
      if (pack) {
        float* dst = panel.data();
        const float* src = b + j;
        for (std::int64_t p = 0; p < k; ++p, dst += 16, src += n) {
          std::memcpy(dst, src, 16 * sizeof(float));
        }
        pnl = panel.data();
        stride = 16;
      }
      std::int64_t i = row_begin;
      for (; i + 4 <= row_end; i += 4) {
        gemm_micro<4>(a, pnl, stride, bias, c, i, j, k, n);
      }
      switch (row_end - i) {
        case 3: gemm_micro<3>(a, pnl, stride, bias, c, i, j, k, n); break;
        case 2: gemm_micro<2>(a, pnl, stride, bias, c, i, j, k, n); break;
        case 1: gemm_micro<1>(a, pnl, stride, bias, c, i, j, k, n); break;
        default: break;
      }
    }
  }
  if (full_cols < n) {
    detail::gemm_ref_block(a, b, bias, c, row_begin, row_end, full_cols, n, k,
                           n);
  }
}

// ---------------------------------------------------------------------------
// Packed-code decode, 16 elements per step.  The decoded floats are the
// same floats the float path's quantized-weight tensor stores, so decode
// placement cannot affect results (see kernels_avx2.cpp for the full
// argument).  Nibble extraction stays scalar — grouped-convolution slices
// start at arbitrary element offsets that are not byte-aligned.

void decode_elems_avx512(const PackedCodesView& v, std::int64_t elem_begin,
                         std::int64_t count, float* dst) {
  std::int64_t i = 0;
  if (v.bits == 4) {
    alignas(64) float lut16[16] = {};
    std::memcpy(lut16, v.lut, v.lut_size * sizeof(float));
    // The whole 4-bit table fits one zmm; permutexvar is a full 16-entry
    // in-register LUT (no cross-half blend needed as with 8-lane AVX2).
    const __m512 table = _mm512_load_ps(lut16);
    for (; i + 16 <= count; i += 16) {
      alignas(64) std::uint32_t idx[16];
      for (int l = 0; l < 16; ++l) {
        idx[l] = packed_code_at(v, elem_begin + i + l);
      }
      const __m512i iv = _mm512_load_si512(idx);
      _mm512_storeu_ps(dst + i, _mm512_permutexvar_ps(iv, table));
    }
  } else if (v.bits == 8) {
    const std::uint8_t* src = v.data + v.offset + elem_begin;
    for (; i + 16 <= count; i += 16) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m512i iv = _mm512_cvtepu8_epi32(bytes);
      _mm512_storeu_ps(dst + i, _mm512_i32gather_ps(iv, v.lut, 4));
    }
  } else {
    const std::uint8_t* src = v.data + (v.offset + elem_begin) * 2;
    for (; i + 16 <= count; i += 16) {
      const __m256i words =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 2));
      const __m512i iv = _mm512_cvtepu16_epi32(words);
      _mm512_storeu_ps(dst + i, _mm512_i32gather_ps(iv, v.lut, 4));
    }
  }
  for (; i < count; ++i) dst[i] = packed_decode_at(v, elem_begin + i);
}

// ---------------------------------------------------------------------------
// GEMM with a coded A operand (conv-as-GEMM).  Decode the A row block
// once, then delegate to the float kernel — bit-identical to
// decode-then-gemm by the decode contract.

void gemm_codes_rows_avx512(const PackedCodesView& a, const float* b,
                            const float* bias, float* c,
                            std::int64_t row_begin, std::int64_t row_end,
                            std::int64_t k, std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  decode_elems_avx512(a, row_begin * k, rows * k, a_block.data());
  gemm_rows_avx512(a_block.data(), b, bias, c + row_begin * n, 0, rows, k, n);
}

// ---------------------------------------------------------------------------
// GEMM with a coded B^T operand (linear/attention layout).  Per 16-column
// panel the 16 coded B rows are LUT-expanded once, then every A row of
// the block sweeps them with the exact double-lane accumulation.

void gemm_codes_nt_float_avx512(const float* a, const PackedCodesView& b,
                                const float* bias, float* c,
                                std::int64_t row_begin, std::int64_t row_end,
                                std::int64_t k, std::int64_t n) {
  const std::int64_t full_cols = n - (n % 16);
  if (full_cols > 0 && row_end > row_begin) {
    std::vector<float> rows16(static_cast<std::size_t>(k) * 16);
    for (std::int64_t j = 0; j < full_cols; j += 16) {
      const float* br[16];
      for (int r = 0; r < 16; ++r) {
        decode_elems_avx512(b, (j + r) * k, k, rows16.data() + r * k);
        br[r] = rows16.data() + r * k;
      }
      for (std::int64_t i = row_begin; i < row_end; ++i) {
        const float* arow = a + i * k;
        __m512d acc0;
        __m512d acc1;
        if (bias != nullptr) {
          acc0 = _mm512_cvtps_pd(_mm256_loadu_ps(bias + j));
          acc1 = _mm512_cvtps_pd(_mm256_loadu_ps(bias + j + 8));
        } else {
          acc0 = _mm512_setzero_pd();
          acc1 = _mm512_setzero_pd();
        }
        for (std::int64_t p = 0; p < k; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const __m256 f0 =
              _mm256_setr_ps(br[0][p], br[1][p], br[2][p], br[3][p], br[4][p],
                             br[5][p], br[6][p], br[7][p]);
          const __m256 f1 =
              _mm256_setr_ps(br[8][p], br[9][p], br[10][p], br[11][p],
                             br[12][p], br[13][p], br[14][p], br[15][p]);
          const __m512d avv = _mm512_set1_pd(av);
          acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(avv, _mm512_cvtps_pd(f0)));
          acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(avv, _mm512_cvtps_pd(f1)));
        }
        float* crow = c + i * n;
        _mm256_storeu_ps(crow + j, _mm512_cvtpd_ps(acc0));
        _mm256_storeu_ps(crow + j + 8, _mm512_cvtpd_ps(acc1));
      }
    }
  }
  if (full_cols < n) {
    detail::gemm_codes_nt_ref_block(a, b, bias, c, row_begin, row_end,
                                    full_cols, n, k, n);
  }
}

bool gemm_codes_nt_rows_avx512(const float* a, const PackedCodesView& b,
                               const float* bias, float* c,
                               const ActEncode* ep, std::int64_t row_begin,
                               std::int64_t row_end, std::int64_t k,
                               std::int64_t n) {
  if (ep == nullptr) {
    gemm_codes_nt_float_avx512(a, b, bias, c, row_begin, row_end, k, n);
    return true;
  }
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float_avx512(a + row_begin * k, b, bias, c_block, 0,
                             rows, k, n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

// ---------------------------------------------------------------------------
// Both operands coded, conv layout.

void gemm_codes_codes_rows_avx512(const PackedCodesView& a,
                                  const PackedCodesView& b, const float* bias,
                                  float* c, std::int64_t row_begin,
                                  std::int64_t row_end, std::int64_t k,
                                  std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  decode_elems_avx512(a, row_begin * k, rows * k, a_block.data());
  const std::int64_t full_cols = n - (n % 16);
  if (full_cols > 0) {
    std::vector<float> panel(static_cast<std::size_t>(k) * 16);
    float* cr = c + row_begin * n;
    for (std::int64_t j = 0; j < full_cols; j += 16) {
      for (std::int64_t p = 0; p < k; ++p) {
        decode_elems_avx512(b, p * n + j, 16, panel.data() + p * 16);
      }
      std::int64_t i = 0;
      for (; i + 4 <= rows; i += 4) {
        gemm_micro<4>(a_block.data(), panel.data(), 16, bias, cr, i, j, k, n);
      }
      switch (rows - i) {
        case 3: gemm_micro<3>(a_block.data(), panel.data(), 16, bias, cr, i, j, k, n); break;
        case 2: gemm_micro<2>(a_block.data(), panel.data(), 16, bias, cr, i, j, k, n); break;
        case 1: gemm_micro<1>(a_block.data(), panel.data(), 16, bias, cr, i, j, k, n); break;
        default: break;
      }
    }
  }
  if (full_cols < n) {
    detail::gemm_codes_codes_ref_block(a, b, bias, c, row_begin, row_end,
                                       full_cols, n, k, n);
  }
}

// ---------------------------------------------------------------------------
// Both operands coded, linear layout, optional fused encode epilogue —
// same staging discipline as the AVX2 table: only codes leave the kernel
// when an epilogue is attached.

bool gemm_codes_codes_nt_rows_avx512(const PackedCodesView& a,
                                     const PackedCodesView& b,
                                     const float* bias, float* c,
                                     const ActEncode* ep,
                                     std::int64_t row_begin,
                                     std::int64_t row_end, std::int64_t k,
                                     std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  decode_elems_avx512(a, row_begin * k, rows * k, a_block.data());
  if (ep == nullptr) {
    gemm_codes_nt_float_avx512(a_block.data(), b, bias, c + row_begin * n, 0,
                               rows, k, n);
    return true;
  }
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float_avx512(a_block.data(), b, bias, c_block, 0, rows,
                             k, n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

// ---------------------------------------------------------------------------
// GEMM against B^T ([n, k] row-major): 16 output columns per step, each
// column's dot product in its own double lane.

void gemm_nt_rows_avx512(const float* a, const float* b, const float* bias,
                         float* c, std::int64_t row_begin,
                         std::int64_t row_end, std::int64_t k,
                         std::int64_t n) {
  const std::int64_t full_cols = n - (n % 16);
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < full_cols; j += 16) {
      const float* br[16];
      for (int r = 0; r < 16; ++r) br[r] = b + (j + r) * k;
      __m512d acc0;
      __m512d acc1;
      if (bias != nullptr) {
        acc0 = _mm512_cvtps_pd(_mm256_loadu_ps(bias + j));
        acc1 = _mm512_cvtps_pd(_mm256_loadu_ps(bias + j + 8));
      } else {
        acc0 = _mm512_setzero_pd();
        acc1 = _mm512_setzero_pd();
      }
      for (std::int64_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        const __m256 f0 =
            _mm256_setr_ps(br[0][p], br[1][p], br[2][p], br[3][p], br[4][p],
                           br[5][p], br[6][p], br[7][p]);
        const __m256 f1 =
            _mm256_setr_ps(br[8][p], br[9][p], br[10][p], br[11][p],
                           br[12][p], br[13][p], br[14][p], br[15][p]);
        const __m512d avv = _mm512_set1_pd(av);
        acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(avv, _mm512_cvtps_pd(f0)));
        acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(avv, _mm512_cvtps_pd(f1)));
      }
      _mm256_storeu_ps(crow + j, _mm512_cvtpd_ps(acc0));
      _mm256_storeu_ps(crow + j + 8, _mm512_cvtpd_ps(acc1));
    }
    if (full_cols < n) {
      detail::gemm_nt_ref_block(a, b, bias, c, i, i + 1, full_cols, n, k, n);
    }
  }
}

// ---------------------------------------------------------------------------
// Quantization: SIMD ordered-key computation + branchless boundary count.

/// Count keys <= key inside the bucket, 16 at a time.  AVX-512 compares
/// unsigned dwords natively (no sign-bias xor) and returns a lane mask,
/// so the count is a single popcount per step.  Returns the same index
/// as the reference scan for every key by construction.
std::size_t lookup_count(const QuantIndexView& v, std::uint32_t key) {
  const std::uint32_t b = key >> (32 - v.bucket_bits);
  const std::uint32_t lo = v.bucket_lo[b];
  const std::uint32_t hi = v.bucket_lo[b + 1];
  std::uint32_t t = lo;
  std::size_t count = 0;
  const __m512i kv = _mm512_set1_epi32(static_cast<int>(key));
  for (; t + 16 <= hi; t += 16) {
    const __m512i ks = _mm512_loadu_si512(v.keys + t);
    const __mmask16 le = _mm512_cmp_epu32_mask(ks, kv, _MM_CMPINT_LE);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(le)));
  }
  for (; t < hi; ++t) count += (v.keys[t] <= key) ? 1U : 0U;
  return lo + count;
}

void nearest_indices_avx512(const QuantIndexView& v, const float* xs,
                            std::uint32_t* out, std::size_t n) {
  const __m512i sign = _mm512_set1_epi32(static_cast<int>(0x80000000U));
  const __m512i expm = _mm512_set1_epi32(0x7F800000);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i bits = _mm512_loadu_si512(xs + i);
    // ordered_key, vectorized: negatives (sign-propagating shift gives an
    // all-ones mask) flip entirely, positives set the sign bit.
    const __m512i neg = _mm512_srai_epi32(bits, 31);
    const __m512i key = _mm512_or_epi32(_mm512_xor_epi32(bits, neg),
                                        _mm512_andnot_epi32(neg, sign));
    const __mmask16 bad =
        _mm512_cmpeq_epi32_mask(_mm512_and_epi32(bits, expm), expm);
    alignas(64) std::uint32_t keys[16];
    _mm512_store_si512(keys, key);
    for (int l = 0; l < 16; ++l) {
      out[i + static_cast<std::size_t>(l)] =
          ((bad >> l) & 1U) != 0
              ? kInvalidIndex
              : static_cast<std::uint32_t>(lookup_count(v, keys[l]));
    }
  }
  for (; i < n; ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(xs[i]);
    out[i] = quant::is_finite_bits(bits)
                 ? static_cast<std::uint32_t>(
                       lookup_count(v, quant::ordered_key(bits)))
                 : kInvalidIndex;
  }
}

double quantize_chunk_avx512(const QuantIndexView& v, float* xs,
                             std::size_t n) {
  // Two passes per block: SIMD index computation, then the shared scalar
  // apply pass continuing one element-order error accumulator — the same
  // addition sequence as the single-pass scalar kernel.
  constexpr std::size_t kBlock = 512;
  std::uint32_t idx[kBlock];
  double se = 0.0;
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t len = std::min(kBlock, n - base);
    nearest_indices_avx512(v, xs + base, idx, len);
    detail::quantize_apply(v, xs + base, idx, len, se);
  }
  return se;
}

}  // namespace

// Referenced by dispatch.cpp (only when LOGPOSIT_HAVE_AVX512 is defined).
const KernelTable* avx512_kernels_impl() {
  static constexpr KernelTable kTable{"avx512",
                                      gemm_rows_avx512,
                                      gemm_nt_rows_avx512,
                                      gemm_codes_rows_avx512,
                                      gemm_codes_nt_rows_avx512,
                                      gemm_codes_codes_rows_avx512,
                                      gemm_codes_codes_nt_rows_avx512,
                                      quantize_chunk_avx512,
                                      nearest_indices_avx512};
  return &kTable;
}

}  // namespace lp::kernels

#endif  // AVX512F && AVX512BW && AVX512VL
