// SIMD kernel subsystem: cache-blocked GEMM micro-kernels and vectorized
// quantization index lookups, behind a one-time runtime CPU-feature
// dispatch table.
//
// Contract: every entry in every table is bit-identical to the scalar
// reference for all inputs — including denormals, ±inf, NaN, and zero
// entries in A (the GEMM kernels skip zero contributions exactly like the
// scalar path, so an inf in B multiplied by a structural zero never leaks
// into the accumulator).  The GEMM kernels accumulate each output element
// in double, contributions added in ascending-k order with separate
// mul-then-add rounding (never FMA), which is also why the build pins
// -ffp-contract=off.  tests/test_kernels.cpp pins the equality on
// adversarial inputs for every table available on the host.
//
// Parallelism composes from the outside: the thread pool (LP_THREADS)
// splits row blocks / chunks across threads, and the dispatched kernel
// vectorizes inside each block.  Selection order for dispatch():
//   1. LP_KERNEL=scalar|avx2|avx512 if set and usable on this host
//      (otherwise a one-line stderr warning naming the reason at first
//      use, then automatic selection);
//   2. the best table the CPU supports (runtime cpuid, not compile flags).
//
// Orthogonal to table selection, LP_APPROX=plam opts the coded GEMM
// paths into the log-domain approximate multiplier (see plam below) —
// the one datapath that is deliberately NOT bit-identical; it carries a
// pinned relative error bound instead.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lp::kernels {

/// Index reported for non-finite inputs by nearest-index kernels.  Equal to
/// QuantIndex::kInvalid (static_asserted in quant_index.cpp).
inline constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFU;

/// Raw-pointer view of a QuantIndex (see src/core/quant_index.h) that
/// kernels operate on: `keys` are the num_keys ascending boundary keys,
/// `bucket_lo` the (1 << bucket_bits) + 1 bucket lower bounds over the top
/// bucket_bits of key space, `values_f`/`values_d` the num_keys + 1 table
/// values as float and double.
struct QuantIndexView {
  const std::uint32_t* keys = nullptr;
  std::size_t num_keys = 0;
  const std::uint32_t* bucket_lo = nullptr;
  int bucket_bits = 0;
  const float* values_f = nullptr;
  const double* values_d = nullptr;
};

/// GEMM row-block kernel: C[i,:] = bias + A[i,:] * B for i in
/// [row_begin, row_end), with A [m,k] row-major, B [k,n] row-major
/// (or, for the _nt entry, B [n,k] row-major holding B^T) and C [m,n].
/// `bias` is n floats or nullptr.  Row blocks write disjoint rows, so the
/// thread pool may split [0, m) freely without affecting results.
using GemmRowsFn = void (*)(const float* a, const float* b, const float* bias,
                            float* c, std::int64_t row_begin,
                            std::int64_t row_end, std::int64_t k,
                            std::int64_t n);

/// View of a packed weight-code matrix for the LUT-decoding GEMM kernels:
/// `data` is a row-major stream of codes, each `bits` wide (4 = two codes
/// per byte, low nibble first; 8 = one byte; 16 = little-endian uint16),
/// starting `offset` *elements* into the stream (grouped convolutions
/// slice one weight tensor at arbitrary element offsets, which for 4-bit
/// codes need not be byte-aligned).  `lut` decodes a code to its float
/// value — the exact float the quantized-weight tensor of the float path
/// stores, which is what makes decode-in-the-kernel bit-identical to
/// decode-then-GEMM.
struct PackedCodesView {
  const std::uint8_t* data = nullptr;
  std::int64_t offset = 0;
  int bits = 8;  ///< 4, 8, or 16
  const float* lut = nullptr;
  std::uint32_t lut_size = 0;
};

/// Code at logical element i of the view.
[[nodiscard]] inline std::uint32_t packed_code_at(const PackedCodesView& v,
                                                  std::int64_t i) {
  const std::int64_t e = v.offset + i;
  switch (v.bits) {
    case 4:
      return (v.data[e >> 1] >> ((e & 1) * 4)) & 0xFU;
    case 8:
      return v.data[e];
    default: {
      const std::int64_t b = e * 2;
      return static_cast<std::uint32_t>(v.data[b]) |
             (static_cast<std::uint32_t>(v.data[b + 1]) << 8);
    }
  }
}

/// Decoded value at logical element i of the view.
[[nodiscard]] inline float packed_decode_at(const PackedCodesView& v,
                                            std::int64_t i) {
  return v.lut[packed_code_at(v, i)];
}

/// Write a code at element e of a byte-aligned output stream.  Activation
/// code streams are always 8- or 16-bit (never nibble-packed), so parallel
/// row blocks and scatter writers never share a byte.
inline void packed_code_write(std::uint8_t* data, int bits, std::int64_t e,
                              std::uint32_t code) {
  if (bits == 8) {
    data[e] = static_cast<std::uint8_t>(code);
  } else {
    data[e * 2] = static_cast<std::uint8_t>(code & 0xFFU);
    data[e * 2 + 1] = static_cast<std::uint8_t>((code >> 8) & 0xFFU);
  }
}

/// Post-GEMM nonlinearity selector for the fused encode epilogue.  Values
/// mirror nn::Act (none, relu, relu6, gelu).
inline constexpr int kActNone = 0;
inline constexpr int kActRelu = 1;
inline constexpr int kActRelu6 = 2;
inline constexpr int kActGelu = 3;

/// Per-element activation function.  This is THE definition: the float
/// tensor path (relu/relu6/gelu in tensor/ops.cpp) and the fused encode
/// epilogue both evaluate it, so fused and unfused flows apply
/// bit-identical nonlinearities (the build pins -ffp-contract=off, so the
/// polynomial rounds the same everywhere).
[[nodiscard]] inline float act_eval(float v, int act) {
  switch (act) {
    case kActRelu:
      return std::max(v, 0.0F);
    case kActRelu6:
      return std::clamp(v, 0.0F, 6.0F);
    case kActGelu: {
      // tanh approximation of GELU (the variant ViT implementations use).
      constexpr float kSqrt2OverPi = 0.7978845608028654F;
      const float u = kSqrt2OverPi * (v + 0.044715F * v * v * v);
      return 0.5F * v * (1.0F + std::tanh(u));
    }
    default:
      return v;
  }
}

/// Fused quantize-to-code epilogue for the coded-activation GEMM kernels:
/// each finished (bias-seeded) output element gets `act` applied, is
/// encoded to its nearest-table-value index through `qidx` — the same
/// boundary search the quantize kernels run, so the code indexes exactly
/// the float the unfused path would have stored — and the code is written
/// to `codes` at the element's output position.  `bits` is 8 or 16
/// (byte-aligned; see packed_code_write).  Non-finite outputs have no
/// code: the kernel reports them by returning false and the caller re-runs
/// that edge on the float path.
struct ActEncode {
  QuantIndexView qidx;
  std::uint8_t* codes = nullptr;  ///< element 0 of the output code stream
  int bits = 8;                   ///< 8 or 16
  int act = kActNone;
};

/// GEMM row-block kernel with a *coded* A operand (the conv-as-GEMM
/// layout, where the weight matrix is A): C[i,:] = bias + decode(A)[i,:]
/// * B, same shapes and accumulation contract as GemmRowsFn.  Decoding
/// happens inside the datapath; the result is bit-identical to expanding
/// A through the LUT and calling gemm_rows.
using GemmCodesRowsFn = void (*)(const PackedCodesView& a, const float* b,
                                 const float* bias, float* c,
                                 std::int64_t row_begin, std::int64_t row_end,
                                 std::int64_t k, std::int64_t n);

/// GEMM row-block kernel against a *coded* B^T operand (the
/// linear/attention layout, B [n,k] row-major holding W), plus an
/// optional fused encode epilogue: C[i,:] = bias + A[i,:] * decode(B)^T,
/// bit-identical to expanding B through the LUT and calling gemm_nt_rows.
/// SIMD variants LUT-expand the codes into packed B panels during
/// packing.  With `ep == nullptr` this writes float C rows and returns
/// true.  With an epilogue, `c` is ignored (may be null): the row block
/// stages into kernel-local scratch, the epilogue applies act +
/// nearest-index encode per element, and only codes reach the output
/// stream.  Returns false when any output element was non-finite (not
/// encodable); the caller then re-runs the edge on the float path.
using GemmCodesNtRowsFn = bool (*)(const float* a, const PackedCodesView& b,
                                   const float* bias, float* c,
                                   const ActEncode* ep,
                                   std::int64_t row_begin,
                                   std::int64_t row_end, std::int64_t k,
                                   std::int64_t n);

/// GEMM row-block kernel with BOTH operands coded, conv layout: A is the
/// coded weight matrix [m,k] (weight LUT), B the coded activation patch
/// matrix [k,n] (activation LUT), C float.  Each operand decodes through
/// its own LUT at load; bit-identical to expanding both and calling
/// gemm_rows.
using GemmCodesCodesRowsFn = void (*)(const PackedCodesView& a,
                                      const PackedCodesView& b,
                                      const float* bias, float* c,
                                      std::int64_t row_begin,
                                      std::int64_t row_end, std::int64_t k,
                                      std::int64_t n);

/// GEMM row-block kernel with BOTH operands coded, linear layout: A is the
/// coded activation matrix [m,k], B [n,k] row-major holds the coded
/// weights (used transposed), plus an optional fused encode epilogue.
/// With `ep == nullptr` this writes float C rows exactly like
/// gemm_codes_nt_rows over the decoded A.  With an epilogue, `c` is
/// ignored (may be null): the row block stages into kernel-local scratch,
/// the epilogue applies act + nearest-index encode per element, and only
/// codes reach the output stream — the inter-layer activation never
/// materializes as a float tensor.  Returns false when any output element
/// was non-finite (not encodable); the caller then re-runs the edge on the
/// float path.
using GemmCodesCodesNtRowsFn = bool (*)(const PackedCodesView& a,
                                        const PackedCodesView& b,
                                        const float* bias, float* c,
                                        const ActEncode* ep,
                                        std::int64_t row_begin,
                                        std::int64_t row_end, std::int64_t k,
                                        std::int64_t n);

/// Quantize xs[0..n) in place against the index view (non-finite inputs
/// become quiet NaN) and return the squared error accumulated in element
/// order — the same addition sequence as the scalar reference, so partials
/// combined per fixed-size chunk stay bit-identical across kernels.
using QuantizeChunkFn = double (*)(const QuantIndexView& v, float* xs,
                                   std::size_t n);

/// out[i] = index of the nearest table value to xs[i], or kInvalidIndex
/// when xs[i] is not finite.
using NearestIndicesFn = void (*)(const QuantIndexView& v, const float* xs,
                                  std::uint32_t* out, std::size_t n);

struct KernelTable {
  const char* name;  ///< "scalar", "avx2", ... (the LP_KERNEL spelling)
  GemmRowsFn gemm_rows;
  GemmRowsFn gemm_nt_rows;
  GemmCodesRowsFn gemm_codes_rows;
  GemmCodesNtRowsFn gemm_codes_nt_rows;
  GemmCodesCodesRowsFn gemm_codes_codes_rows;
  GemmCodesCodesNtRowsFn gemm_codes_codes_nt_rows;
  QuantizeChunkFn quantize_chunk;
  NearestIndicesFn nearest_indices;
};

/// The portable reference table.  Always available; the other tables are
/// defined as bit-identical to it.
[[nodiscard]] const KernelTable& scalar_kernels();

/// The AVX2 table, or nullptr when the build has no AVX2 translation unit
/// (non-x86 target or a compiler without -mavx2).  Non-null does NOT imply
/// the host CPU can run it — check cpu_supports_avx2().
[[nodiscard]] const KernelTable* avx2_kernels();

/// The AVX-512 table (16-lane LUT decode, 16-column micro-kernels), or
/// nullptr when the build has no AVX-512 translation unit.  Non-null does
/// NOT imply the host CPU can run it — check cpu_supports_avx512().
[[nodiscard]] const KernelTable* avx512_kernels();

/// Runtime cpuid check (independent of what was compiled in).
[[nodiscard]] bool cpu_supports_avx2();

/// Runtime cpuid check for the avx512 table's ISA set (F + BW + VL — the
/// common server baseline the TU is compiled against).
[[nodiscard]] bool cpu_supports_avx512();

/// Table with that LP_KERNEL name, or nullptr for unknown names and tables
/// not compiled into this build.
[[nodiscard]] const KernelTable* by_name(std::string_view name);

/// True when `name` is a spelling LP_KERNEL understands, whether or not
/// that table made it into this build — distinguishes "unknown name" from
/// "known but not compiled in" for the fallback warning.
[[nodiscard]] bool is_known_kernel_name(std::string_view name);

/// Every table this host can actually execute, scalar first.  Tests and
/// benches iterate this to A/B all variants in one process.
[[nodiscard]] std::vector<const KernelTable*> available_kernels();

/// Pure selection logic behind dispatch(): `requested` is the LP_KERNEL
/// value (nullptr/empty = automatic).  Unknown or unusable requests warn
/// on stderr and fall back to automatic selection (each call warns; only
/// dispatch() memoizes, so the library warns at most once).  Exposed for
/// tests.
[[nodiscard]] const KernelTable& select_kernels(const char* requested);

/// The process-wide table every hot path calls through, resolved once on
/// first use from LP_KERNEL and cpuid.
[[nodiscard]] const KernelTable& dispatch();

// ---------------------------------------------------------------------------
// Approximate-multiply opt-in (LP_APPROX).
//
// LP formats are logarithmic, so the PLAM observation (posit multiply ≈
// integer add of the bit patterns) maps here to Mitchell's log
// approximation on the decoded operands: log2(2^e * (1+f)) ≈ e + f.  The
// plam kernels below multiply through that approximation — the product
// magnitude is always underestimated, with relative error at most 1/9 per
// multiply — while accumulation stays exact in double, ascending-k,
// rounded once at the end (the PDPU accumulate-in-wide discipline).  This
// is the software model of the src/lpa datapath's log-domain MUL stage;
// tests cross-validate the two against the exact kernels.

enum class ApproxMode {
  kExact = 0,  ///< bit-identical kernels (the default)
  kPlam = 1,   ///< Mitchell log-domain approximate multiply
};

/// Maximum relative error of one Mitchell approximate multiply (1/9,
/// rounded up).  A dot product's absolute error is bounded by this times
/// sum_k |a_k * b_k|; tests pin the bound.
inline constexpr double kPlamMaxRelError = 0.1112;

/// Parse an LP_APPROX value: null/empty/"off"/"exact" = kExact, "plam" =
/// kPlam.  Unknown values warn on stderr and fall back to kExact (each
/// call warns; only approx_mode() memoizes).  Exposed for tests.
[[nodiscard]] ApproxMode approx_mode_from_name(const char* requested);

/// The process-wide approximate-multiply mode, resolved once on first use
/// from LP_APPROX.
[[nodiscard]] ApproxMode approx_mode();

namespace plam {

/// One Mitchell approximate multiply over finite operands: decompose each
/// |operand| as 2^e * (1+f), add in the log domain (e+f), reconstruct.
/// Magnitude is underestimated by at most kPlamMaxRelError; exact for
/// powers of two and zeros.  Non-finite operands fall back to the exact
/// product (no log decomposition exists for them).
[[nodiscard]] double mitchell_mul(double x, double y);

/// Approximate counterpart of KernelTable::gemm_codes_nt_rows: same
/// layout, bias seeding, ascending-k accumulation order, zero-skip, and
/// fused-epilogue contract — but every product goes through mitchell_mul.
bool gemm_codes_nt_rows(const float* a, const PackedCodesView& b,
                        const float* bias, float* c, const ActEncode* ep,
                        std::int64_t row_begin, std::int64_t row_end,
                        std::int64_t k, std::int64_t n);

/// Approximate counterpart of KernelTable::gemm_codes_codes_nt_rows (both
/// operands coded, linear layout, optional fused epilogue).
bool gemm_codes_codes_nt_rows(const PackedCodesView& a,
                              const PackedCodesView& b, const float* bias,
                              float* c, const ActEncode* ep,
                              std::int64_t row_begin, std::int64_t row_end,
                              std::int64_t k, std::int64_t n);

}  // namespace plam

}  // namespace lp::kernels
