// SIMD kernel subsystem: cache-blocked GEMM micro-kernels and vectorized
// quantization index lookups, behind a one-time runtime CPU-feature
// dispatch table.
//
// Contract: every entry in every table is bit-identical to the scalar
// reference for all inputs — including denormals, ±inf, NaN, and zero
// entries in A (the GEMM kernels skip zero contributions exactly like the
// scalar path, so an inf in B multiplied by a structural zero never leaks
// into the accumulator).  The GEMM kernels accumulate each output element
// in double, contributions added in ascending-k order with separate
// mul-then-add rounding (never FMA), which is also why the build pins
// -ffp-contract=off.  tests/test_kernels.cpp pins the equality on
// adversarial inputs for every table available on the host.
//
// Parallelism composes from the outside: the thread pool (LP_THREADS)
// splits row blocks / chunks across threads, and the dispatched kernel
// vectorizes inside each block.  Selection order for dispatch():
//   1. LP_KERNEL=scalar|avx2 if set and usable on this host (otherwise a
//      one-line stderr warning at first use, then automatic selection);
//   2. the best table the CPU supports (runtime cpuid, not compile flags).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lp::kernels {

/// Index reported for non-finite inputs by nearest-index kernels.  Equal to
/// QuantIndex::kInvalid (static_asserted in quant_index.cpp).
inline constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFU;

/// Raw-pointer view of a QuantIndex (see src/core/quant_index.h) that
/// kernels operate on: `keys` are the num_keys ascending boundary keys,
/// `bucket_lo` the (1 << bucket_bits) + 1 bucket lower bounds over the top
/// bucket_bits of key space, `values_f`/`values_d` the num_keys + 1 table
/// values as float and double.
struct QuantIndexView {
  const std::uint32_t* keys = nullptr;
  std::size_t num_keys = 0;
  const std::uint32_t* bucket_lo = nullptr;
  int bucket_bits = 0;
  const float* values_f = nullptr;
  const double* values_d = nullptr;
};

/// GEMM row-block kernel: C[i,:] = bias + A[i,:] * B for i in
/// [row_begin, row_end), with A [m,k] row-major, B [k,n] row-major
/// (or, for the _nt entry, B [n,k] row-major holding B^T) and C [m,n].
/// `bias` is n floats or nullptr.  Row blocks write disjoint rows, so the
/// thread pool may split [0, m) freely without affecting results.
using GemmRowsFn = void (*)(const float* a, const float* b, const float* bias,
                            float* c, std::int64_t row_begin,
                            std::int64_t row_end, std::int64_t k,
                            std::int64_t n);

/// View of a packed weight-code matrix for the LUT-decoding GEMM kernels:
/// `data` is a row-major stream of codes, each `bits` wide (4 = two codes
/// per byte, low nibble first; 8 = one byte; 16 = little-endian uint16),
/// starting `offset` *elements* into the stream (grouped convolutions
/// slice one weight tensor at arbitrary element offsets, which for 4-bit
/// codes need not be byte-aligned).  `lut` decodes a code to its float
/// value — the exact float the quantized-weight tensor of the float path
/// stores, which is what makes decode-in-the-kernel bit-identical to
/// decode-then-GEMM.
struct PackedCodesView {
  const std::uint8_t* data = nullptr;
  std::int64_t offset = 0;
  int bits = 8;  ///< 4, 8, or 16
  const float* lut = nullptr;
  std::uint32_t lut_size = 0;
};

/// Code at logical element i of the view.
[[nodiscard]] inline std::uint32_t packed_code_at(const PackedCodesView& v,
                                                  std::int64_t i) {
  const std::int64_t e = v.offset + i;
  switch (v.bits) {
    case 4:
      return (v.data[e >> 1] >> ((e & 1) * 4)) & 0xFU;
    case 8:
      return v.data[e];
    default: {
      const std::int64_t b = e * 2;
      return static_cast<std::uint32_t>(v.data[b]) |
             (static_cast<std::uint32_t>(v.data[b + 1]) << 8);
    }
  }
}

/// Decoded value at logical element i of the view.
[[nodiscard]] inline float packed_decode_at(const PackedCodesView& v,
                                            std::int64_t i) {
  return v.lut[packed_code_at(v, i)];
}

/// GEMM row-block kernel with a *coded* A operand (the conv-as-GEMM
/// layout, where the weight matrix is A): C[i,:] = bias + decode(A)[i,:]
/// * B, same shapes and accumulation contract as GemmRowsFn.  Decoding
/// happens inside the datapath; the result is bit-identical to expanding
/// A through the LUT and calling gemm_rows.
using GemmCodesRowsFn = void (*)(const PackedCodesView& a, const float* b,
                                 const float* bias, float* c,
                                 std::int64_t row_begin, std::int64_t row_end,
                                 std::int64_t k, std::int64_t n);

/// GEMM row-block kernel against a *coded* B^T operand (the
/// linear/attention layout, B [n,k] row-major holding W): C[i,:] = bias +
/// A[i,:] * decode(B)^T, bit-identical to expanding B through the LUT and
/// calling gemm_nt_rows.  SIMD variants LUT-expand the codes into packed
/// 8-column B panels during packing.
using GemmCodesNtRowsFn = void (*)(const float* a, const PackedCodesView& b,
                                   const float* bias, float* c,
                                   std::int64_t row_begin,
                                   std::int64_t row_end, std::int64_t k,
                                   std::int64_t n);

/// Quantize xs[0..n) in place against the index view (non-finite inputs
/// become quiet NaN) and return the squared error accumulated in element
/// order — the same addition sequence as the scalar reference, so partials
/// combined per fixed-size chunk stay bit-identical across kernels.
using QuantizeChunkFn = double (*)(const QuantIndexView& v, float* xs,
                                   std::size_t n);

/// out[i] = index of the nearest table value to xs[i], or kInvalidIndex
/// when xs[i] is not finite.
using NearestIndicesFn = void (*)(const QuantIndexView& v, const float* xs,
                                  std::uint32_t* out, std::size_t n);

struct KernelTable {
  const char* name;  ///< "scalar", "avx2", ... (the LP_KERNEL spelling)
  GemmRowsFn gemm_rows;
  GemmRowsFn gemm_nt_rows;
  GemmCodesRowsFn gemm_codes_rows;
  GemmCodesNtRowsFn gemm_codes_nt_rows;
  QuantizeChunkFn quantize_chunk;
  NearestIndicesFn nearest_indices;
};

/// The portable reference table.  Always available; the other tables are
/// defined as bit-identical to it.
[[nodiscard]] const KernelTable& scalar_kernels();

/// The AVX2 table, or nullptr when the build has no AVX2 translation unit
/// (non-x86 target or a compiler without -mavx2).  Non-null does NOT imply
/// the host CPU can run it — check cpu_supports_avx2().
[[nodiscard]] const KernelTable* avx2_kernels();

/// Runtime cpuid check (independent of what was compiled in).
[[nodiscard]] bool cpu_supports_avx2();

/// Table with that LP_KERNEL name, or nullptr for unknown names and tables
/// not compiled into this build.
[[nodiscard]] const KernelTable* by_name(std::string_view name);

/// Every table this host can actually execute, scalar first.  Tests and
/// benches iterate this to A/B all variants in one process.
[[nodiscard]] std::vector<const KernelTable*> available_kernels();

/// Pure selection logic behind dispatch(): `requested` is the LP_KERNEL
/// value (nullptr/empty = automatic).  Unknown or unusable requests warn
/// on stderr and fall back to automatic selection (each call warns; only
/// dispatch() memoizes, so the library warns at most once).  Exposed for
/// tests.
[[nodiscard]] const KernelTable& select_kernels(const char* requested);

/// The process-wide table every hot path calls through, resolved once on
/// first use from LP_KERNEL and cpuid.
[[nodiscard]] const KernelTable& dispatch();

}  // namespace lp::kernels
