// PLAM-style log-domain approximate-multiply kernels (LP_APPROX=plam).
//
// PLAM observes that a posit/LP multiply is an *add* in the log domain:
// treating the fraction field as the fractional part of log2 makes
// log2(2^e (1+f)) ~= e + f (Mitchell's approximation), so the product of
// two decoded operands is reconstructed from the integer+fraction sum
// without a mantissa multiplier.  The approximation always underestimates
// the magnitude; the worst case is fx = fy = 0.5 where
// (1+fx)(1+fy) / (1+fx+fy) = 2.25/2 gives a relative error of 1/9.
// kPlamMaxRelError (kernels.h) pins that bound with a small margin.
//
// PDPU discipline for the dot product: every approximate product is
// accumulated *exactly* in a double accumulator in ascending-k order and
// rounded to float once at the end — the fused dot-product unit
// approximates multiplies, not the accumulation.  The per-element error
// bound therefore composes linearly: |err(dot)| <= kPlamMaxRelError *
// sum_k |a_k * b_k|, which is what the regression test checks.
//
// Scope: the two coded-B^T GEMM entries only (linear / attention /
// patch-merge layers).  Convolution stays exact — its GroupGemm layout
// never routes through these entry points — and non-finite operands fall
// back to the exact product so inf/NaN semantics match the exact path.
#include <cmath>
#include <cstdint>
#include <vector>

#include "kernels/kernels_internal.h"

namespace lp::kernels::plam {

double mitchell_mul(double x, double y) {
  if (x == 0.0 || y == 0.0 || !std::isfinite(x) || !std::isfinite(y)) {
    // Exact fallback: zeros keep their sign algebra, non-finite operands
    // keep IEEE semantics (inf * 0 = NaN, etc.) identical to the exact
    // kernels.
    return x * y;
  }
  int ex = 0;
  int ey = 0;
  const double mx = std::frexp(std::fabs(x), &ex);  // mx in [0.5, 1)
  const double my = std::frexp(std::fabs(y), &ey);
  // x = 2^(ex-1) * (1 + fx) with fx = 2*mx - 1 in [0, 1).
  double f = (2.0 * mx - 1.0) + (2.0 * my - 1.0);
  int e = (ex - 1) + (ey - 1);
  if (f >= 1.0) {  // carry out of the fraction field
    f -= 1.0;
    ++e;
  }
  const double mag = std::ldexp(1.0 + f, e);
  return (std::signbit(x) != std::signbit(y)) ? -mag : mag;
}

namespace {

// Mirrors the scalar gemm_codes_nt_float loop structure (decode each
// coded B row once, j outer / i inner) with mitchell_mul in place of the
// IEEE multiply.  The zero-skip predicate is kept so an inf or NaN under
// a structural zero never reaches the accumulator, exactly as in the
// exact kernels.
void gemm_codes_nt_float_plam(const float* a, const PackedCodesView& b,
                              const float* bias, float* c,
                              std::int64_t row_begin, std::int64_t row_end,
                              std::int64_t k, std::int64_t n) {
  std::vector<float> brow(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t p = 0; p < k; ++p) {
      brow[static_cast<std::size_t>(p)] = packed_decode_at(b, j * k + p);
    }
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      double s = (bias != nullptr) ? bias[j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        s += mitchell_mul(av, brow[static_cast<std::size_t>(p)]);
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

}  // namespace

bool gemm_codes_nt_rows(const float* a, const PackedCodesView& b,
                        const float* bias, float* c, const ActEncode* ep,
                        std::int64_t row_begin, std::int64_t row_end,
                        std::int64_t k, std::int64_t n) {
  if (ep == nullptr) {
    gemm_codes_nt_float_plam(a, b, bias, c, row_begin, row_end, k, n);
    return true;
  }
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float_plam(a + row_begin * k, b, bias, c_block, 0, rows,
                           k, n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

bool gemm_codes_codes_nt_rows(const PackedCodesView& a,
                              const PackedCodesView& b, const float* bias,
                              float* c, const ActEncode* ep,
                              std::int64_t row_begin, std::int64_t row_end,
                              std::int64_t k, std::int64_t n) {
  const std::int64_t rows = row_end - row_begin;
  if (rows <= 0) return true;
  std::vector<float> a_block(static_cast<std::size_t>(rows * k));
  for (std::int64_t t = 0; t < rows * k; ++t) {
    a_block[static_cast<std::size_t>(t)] =
        packed_decode_at(a, row_begin * k + t);
  }
  if (ep == nullptr) {
    gemm_codes_nt_float_plam(a_block.data(), b, bias, c + row_begin * n, 0,
                             rows, k, n);
    return true;
  }
  float* const c_block = detail::fused_scratch(rows * n);
  gemm_codes_nt_float_plam(a_block.data(), b, bias, c_block, 0, rows, k,
                           n);
  return detail::encode_scratch_block(*ep, c_block, row_begin * n,
                                  rows * n);
}

}  // namespace lp::kernels::plam
