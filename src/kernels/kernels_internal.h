// Internals shared between the kernel translation units.  The reference
// block helpers live in kernels_scalar.cpp (compiled WITHOUT -mavx2) and
// are called by the SIMD kernels for edge tiles; keeping them out-of-line
// in a baseline-ISA TU guarantees the compiler cannot re-vectorize or
// contract them differently per caller.
#pragma once

#include "kernels/kernels.h"

namespace lp::kernels::detail {

/// Reference GEMM over the sub-block rows [row_begin, row_end) x columns
/// [col_begin, col_end): per output element a double accumulator seeded
/// from bias, contributions added in ascending-k order with zero A entries
/// skipped.  Exactly the seed's arithmetic sequence — the definition the
/// SIMD tiles must match bit-for-bit.
void gemm_ref_block(const float* a, const float* b, const float* bias,
                    float* c, std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t col_begin, std::int64_t col_end,
                    std::int64_t k, std::int64_t n);

/// Reference for the B-transposed layout (B is [n,k] row-major); same
/// accumulation contract as gemm_ref_block, so both layouts round
/// identically.
void gemm_nt_ref_block(const float* a, const float* b, const float* bias,
                       float* c, std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t col_begin, std::int64_t col_end,
                       std::int64_t k, std::int64_t n);

/// Reference for a coded A operand (conv-as-GEMM: the weight matrix is
/// A): decode each A element through the view's LUT at the point of use,
/// otherwise gemm_ref_block's exact arithmetic sequence (double
/// accumulator, ascending-k, zero decoded values skipped).
void gemm_codes_ref_block(const PackedCodesView& a, const float* b,
                          const float* bias, float* c, std::int64_t row_begin,
                          std::int64_t row_end, std::int64_t col_begin,
                          std::int64_t col_end, std::int64_t k,
                          std::int64_t n);

/// Reference for a coded B^T operand (linear/attention: B [n,k] row-major
/// holds W as codes); same accumulation contract as gemm_nt_ref_block.
void gemm_codes_nt_ref_block(const float* a, const PackedCodesView& b,
                             const float* bias, float* c,
                             std::int64_t row_begin, std::int64_t row_end,
                             std::int64_t col_begin, std::int64_t col_end,
                             std::int64_t k, std::int64_t n);

/// Reference for BOTH operands coded (conv layout: A = coded weights,
/// B = coded activation patches), each decoded through its own LUT at the
/// point of use; gemm_ref_block's exact arithmetic sequence (double
/// accumulator, ascending-k, zero decoded A values skipped).
void gemm_codes_codes_ref_block(const PackedCodesView& a,
                                const PackedCodesView& b, const float* bias,
                                float* c, std::int64_t row_begin,
                                std::int64_t row_end, std::int64_t col_begin,
                                std::int64_t col_end, std::int64_t k,
                                std::int64_t n);

/// Encode one finished output element for the fused epilogue: apply
/// ep.act, nearest-index through ep.qidx, write the code at element e of
/// ep.codes.  Returns false (and writes nothing) when the activated value
/// is non-finite.  Out-of-line in the scalar TU so every kernel table —
/// and the conv scatter in tensor/ops.cpp — shares one compiled encoder.
bool encode_elem(const ActEncode& ep, float v, std::int64_t e);

/// Fused epilogue over a finished row block: apply ep.act to src[0..count)
/// (staged in thread-local scratch), batch the nearest-index search
/// through the dispatched SIMD kernel — every table's search is pinned
/// bit-identical, so the choice affects throughput, never codes — and
/// write codes at output elements [elem_begin, elem_begin + count).
/// Returns false when any element was non-finite (the rest still encode,
/// but the caller discards the stream and re-runs the edge in float).
/// Element-for-element identical to encode_elem over src.
bool encode_row_block(const ActEncode& ep, const float* src,
                      std::int64_t elem_begin, std::int64_t count);

/// encode_row_block for callers that own `scratch` (the fused GEMM
/// wrappers): applies ep.act in place, skipping the staging copy.
bool encode_scratch_block(const ActEncode& ep, float* scratch,
                          std::int64_t elem_begin, std::int64_t count);

/// encode_scratch_block for strided destinations (the conv scatter):
/// scratch[0..count) encodes as count/run runs of `run` codes, run r
/// landing at elements [e0 + r*stride, e0 + r*stride + run).  One act +
/// nearest-index batch covers the whole block; only the code writes jump.
bool encode_strided_block(const ActEncode& ep, float* scratch,
                          std::int64_t count, std::int64_t e0,
                          std::int64_t stride, std::int64_t run);

/// Thread-local float scratch sized for a fused row block — the GEMM
/// writes every element before the epilogue reads it, so the buffer is
/// deliberately not zeroed (a per-call std::vector would memset the whole
/// block).  Valid until the next call on the same thread.
[[nodiscard]] float* fused_scratch(std::int64_t count);

/// Reference boundary search: index of the nearest table value for an
/// ordered key (bucket jump + short scan / upper_bound).  Any search that
/// counts boundary keys <= key returns the same index; the AVX2 path uses
/// a branchless SIMD count and is pinned to this by test_kernels.
[[nodiscard]] std::size_t qindex_lookup(const QuantIndexView& v,
                                        std::uint32_t key);

/// Second pass of a two-pass quantize: apply precomputed nearest indices
/// (kInvalidIndex = non-finite input) to xs[0..n), continuing the
/// element-order squared-error accumulation in `se`.  Shared by the SIMD
/// quantize kernels so their error arithmetic is the scalar code itself.
void quantize_apply(const QuantIndexView& v, float* xs,
                    const std::uint32_t* idx, std::size_t n, double& se);

}  // namespace lp::kernels::detail
