// Cycle-level performance/energy simulator (DnnWeaver-style substitute,
// DESIGN.md section 2): schedules a model's GEMM workloads onto a
// weight-stationary systolic accelerator and rolls up cycles, memory
// traffic and energy.
//
// Tiling model: the array processes K_tile = rows reduction rows and
// M_tile = cols * packing / fusion output columns per pass, streaming the
// N dimension; weights are double-buffered so tile loads overlap
// streaming.  Partial sums spill to the on-chip buffer between K tiles.
#pragma once

#include <string>
#include <vector>

#include "lpa/accel_model.h"
#include "nn/node.h"

namespace lp::sim {

struct LayerSim {
  std::string name;
  std::int64_t macs = 0;
  std::int64_t cycles = 0;
  double energy_pj = 0.0;
  int w_bits = 8;   ///< width actually executed (snapped to supported)
  int a_bits = 8;
  double utilization = 0.0;   ///< MACs / (cycles * peak MACs/cycle)
  double sram_bytes = 0.0;    ///< on-chip traffic (weights, acts, psums)
  double dram_bytes = 0.0;    ///< off-chip traffic (weights, acts, outputs)
};

struct SimResult {
  std::string accel_name;
  std::int64_t total_cycles = 0;
  std::int64_t total_macs = 0;
  double time_ms = 0.0;
  double energy_mj = 0.0;
  double avg_power_w = 0.0;
  double gops = 0.0;            ///< effective, 2 ops per MAC
  double gops_per_w = 0.0;
  double tops_per_mm2 = 0.0;    ///< gops / compute area (Table 3 metric)
  std::vector<LayerSim> layers;
};

/// Per-slot precision assignment for a simulation.  Widths are snapped to
/// the accelerator's supported set (smallest supported width >= requested).
struct PrecisionMap {
  std::vector<int> weight_bits;  ///< indexed by weight slot
  std::vector<int> act_bits;     ///< indexed by weight slot

  /// Uniform assignment for `slots` slots.
  static PrecisionMap uniform(std::size_t slots, int w_bits, int a_bits);
};

/// Simulate one model (its traced workloads) on an accelerator.
[[nodiscard]] SimResult simulate(const lpa::AcceleratorModel& accel,
                                 const std::vector<nn::LayerWorkload>& workloads,
                                 const PrecisionMap& precision);

/// Snap a requested width to the smallest supported width >= it (or the
/// largest supported width if none is larger).
[[nodiscard]] int snap_width(const lpa::AcceleratorModel& accel, int bits);

}  // namespace lp::sim
