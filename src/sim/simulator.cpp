#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

namespace lp::sim {

PrecisionMap PrecisionMap::uniform(std::size_t slots, int w_bits, int a_bits) {
  PrecisionMap p;
  p.weight_bits.assign(slots, w_bits);
  p.act_bits.assign(slots, a_bits);
  return p;
}

int snap_width(const lpa::AcceleratorModel& accel, int bits) {
  LP_CHECK(!accel.widths.empty());
  int best = 0;
  for (int w : accel.widths) {
    if (w >= bits && (best == 0 || w < best)) best = w;
  }
  if (best == 0) best = *std::max_element(accel.widths.begin(), accel.widths.end());
  return best;
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

LayerSim simulate_layer(const lpa::AcceleratorModel& accel,
                        const nn::LayerWorkload& wl, int req_w_bits,
                        int req_a_bits) {
  LayerSim ls;
  ls.name = wl.name;
  ls.macs = wl.macs();
  ls.w_bits = snap_width(accel, req_w_bits);
  // The activation cap comes from the accelerator's `widths` list: snap to
  // the smallest supported width >= requested, or the widest supported one
  // when the request exceeds it.  (The seed hard-coded min(8, req), silently
  // clamping 16-bit-capable configs below what `widths` advertises.)
  ls.a_bits = snap_width(accel, req_a_bits);

  const int p = accel.packing(ls.w_bits);
  const int f = accel.fusion(ls.w_bits);
  const std::int64_t m_tile =
      std::max<std::int64_t>(1, accel.cols * p / f);
  const std::int64_t k_tile = accel.rows;

  const std::int64_t m_tiles = ceil_div(wl.m, m_tile);
  const std::int64_t k_tiles = ceil_div(wl.k, k_tile);

  // Per tile: stream N activation columns; fill + drain the array.  Weight
  // loads are double-buffered (paper Section 5.2) and overlap streaming,
  // except that a tile can never be shorter than the load itself.
  const std::int64_t stream = std::max<std::int64_t>(wl.n, accel.rows);
  const std::int64_t cycles_per_tile = stream + accel.rows + accel.cols;
  ls.cycles = m_tiles * k_tiles * cycles_per_tile;

  const double peak_macs_per_cycle = accel.macs_per_cycle(ls.w_bits);
  ls.utilization =
      static_cast<double>(ls.macs) /
      (static_cast<double>(ls.cycles) * peak_macs_per_cycle);

  // --- memory traffic (bytes) ---
  // Both operands move as packed codes: weights AND activations are
  // bit-packed at their quantized width and the PE array decodes them
  // in-datapath.  With the end-to-end coded activation pipeline the
  // inter-layer buffers hold code streams, so a 4-bit activation costs
  // half a byte, not the full byte the byte-aligned input buffer used to
  // charge.
  const double w_bytes = static_cast<double>(wl.m * wl.k) * ls.w_bits / 8.0;
  const double act_storage_bytes =
      static_cast<double>(wl.k * wl.n) * ls.a_bits / 8.0;
  const double sram_act = act_storage_bytes * static_cast<double>(m_tiles);
  // Outputs are the next layer's activations: re-encoded to codes in the
  // output pipeline and stored at this layer's true activation code width.
  const double out_bytes =
      static_cast<double>(wl.m * wl.n) * ls.a_bits / 8.0;
  // Partial sums spill at 16 bits between K tiles.
  const double psum_bytes =
      static_cast<double>(wl.m * wl.n) * 2.0 *
      static_cast<double>(std::max<std::int64_t>(0, k_tiles - 1)) * 2.0;
  const double sram_bytes = w_bytes + sram_act + out_bytes + psum_bytes;
  const double dram_bytes = w_bytes + act_storage_bytes + out_bytes;
  ls.sram_bytes = sram_bytes;
  ls.dram_bytes = dram_bytes;

  // --- energy ---
  double e = static_cast<double>(ls.macs) * accel.mac_energy(ls.w_bits);
  e += static_cast<double>(wl.m * wl.k) * accel.decode_energy_pj;  // weights
  e += sram_act * accel.decode_energy_pj;                         // acts
  e += out_bytes * accel.encode_energy_pj;
  e += sram_bytes * accel.sram_pj_per_byte;
  e += dram_bytes * accel.dram_pj_per_byte;
  ls.energy_pj = e;
  return ls;
}

}  // namespace

SimResult simulate(const lpa::AcceleratorModel& accel,
                   const std::vector<nn::LayerWorkload>& workloads,
                   const PrecisionMap& precision) {
  LP_CHECK(!workloads.empty());
  SimResult r;
  r.accel_name = accel.name;
  for (const auto& wl : workloads) {
    int w_bits = 8;
    int a_bits = 8;
    if (wl.weight_slot >= 0) {
      const auto s = static_cast<std::size_t>(wl.weight_slot);
      LP_CHECK_MSG(s < precision.weight_bits.size(),
                   "precision map smaller than slot index " << wl.weight_slot);
      w_bits = precision.weight_bits[s];
      a_bits = precision.act_bits[s];
    } else if (!precision.act_bits.empty()) {
      // Activation-activation matmuls run at activation precision.
      w_bits = *std::max_element(precision.act_bits.begin(),
                                 precision.act_bits.end());
      a_bits = w_bits;
    }
    r.layers.push_back(simulate_layer(accel, wl, w_bits, a_bits));
    r.total_cycles += r.layers.back().cycles;
    r.total_macs += r.layers.back().macs;
    r.energy_mj += r.layers.back().energy_pj * 1e-9;
  }
  r.time_ms = static_cast<double>(r.total_cycles) / (accel.freq_ghz * 1e6);
  r.gops = 2.0 * static_cast<double>(r.total_macs) / (r.time_ms * 1e6);
  r.avg_power_w = r.energy_mj / r.time_ms;
  r.gops_per_w = r.avg_power_w > 0.0 ? r.gops / r.avg_power_w : 0.0;
  r.tops_per_mm2 = (r.gops / 1000.0) / accel.compute_area_mm2();
  return r;
}

}  // namespace lp::sim
