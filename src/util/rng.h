// Deterministic random number generation.
//
// All stochastic components of the library (synthetic weights, datasets,
// the LPQ genetic algorithm) draw from lp::Rng so that every experiment is
// reproducible from a single seed.  The generator is a SplitMix64-seeded
// xoshiro256** — fast, high quality, and independent of libstdc++'s
// unspecified distribution implementations (we implement our own transforms
// so results are bit-stable across platforms).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.h"

namespace lp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    LP_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    LP_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * mul;
    have_gauss_ = true;
    return u * mul;
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// Zero-mean Laplace(b): heavy-tailed draw used for DNN-like weights.
  double laplace(double b) {
    const double u = uniform() - 0.5;
    return -b * std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), -u);
  }

  /// Bernoulli(p).
  bool coin(double p) { return uniform() < p; }

  /// Derive an independent child stream (stable under call-order changes).
  Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (0xd1342543de82ef95ULL * (stream_id + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gauss_ = 0.0;
  bool have_gauss_ = false;
};

}  // namespace lp
