// Statistics helpers shared across the library.
//
// The LPQ fitness function pools intermediate representations with
// "Kurtosis-3" (excess kurtosis, DeCarlo 1997), and the evaluation section
// reports RMSE and KL-divergence — all implemented here over raw spans so
// every module (tensor, lpq, benches) shares one audited implementation.
#pragma once

#include <span>
#include <vector>

namespace lp {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const float> xs);
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divide by N); 0 for fewer than one element.
[[nodiscard]] double variance(std::span<const float> xs);

/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const float> xs);

/// Excess kurtosis ("Kurtosis-3"): E[(x-mu)^4]/sigma^4 - 3.
/// Returns 0 when the variance is (numerically) zero.
[[nodiscard]] double kurtosis3(std::span<const float> xs);

/// Root-mean-square error between two equally sized spans.
[[nodiscard]] double rmse(std::span<const float> a, std::span<const float> b);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const float> a, std::span<const float> b);

/// KL divergence D(p || q) between two histograms of the value ranges of
/// `a` (reference) and `b`, built over `bins` shared-range buckets with
/// add-one smoothing.  Used by the Fig. 5(a) loss-function comparison.
[[nodiscard]] double kl_divergence_hist(std::span<const float> a,
                                        std::span<const float> b, int bins = 64);

/// Cosine similarity; 0 if either vector is all-zero.
[[nodiscard]] double cosine_similarity(std::span<const float> a,
                                       std::span<const float> b);

/// Dot product (double accumulation).
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Min/max over a span (asserts non-empty).
[[nodiscard]] float min_value(std::span<const float> xs);
[[nodiscard]] float max_value(std::span<const float> xs);

/// p-quantile (0<=p<=1) of a copy of the data (linear interpolation).
[[nodiscard]] float quantile(std::span<const float> xs, double p);

/// Mean of |x|.
[[nodiscard]] double mean_abs(std::span<const float> xs);

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double kurtosis3 = 0.0;
  float min = 0.0F;
  float max = 0.0F;
};

/// One-pass summary of a span (asserts non-empty).
[[nodiscard]] Summary summarize(std::span<const float> xs);

}  // namespace lp
