// Console table formatter used by the benchmark harnesses to print
// paper-style tables (Table 1-4) and figure series (Fig. 1b/5/6) in a
// uniform layout, plus a CSV emitter for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a data row. Must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 2);

  /// Render with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner (used between experiments in bench binaries).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace lp
