#include "util/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace lp::fault {
namespace {

constexpr std::size_t kNumPoints =
    sizeof(kRegisteredPoints) / sizeof(kRegisteredPoints[0]);

/// Fast-path gate: true while at least one plan is armed.  Off = every
/// LP_FAULT_POINT evaluation is this one relaxed load.
std::atomic<bool> g_armed{false};
/// >0 suppresses firing and arrival counting (SuspendScope).
std::atomic<int> g_suspended{0};

Mutex g_mu;

struct PointState {
  TriggerPlan plan;           // empty = no plan for this point
  bool has_plan = false;
  std::uint64_t arrivals = 0;
  std::uint64_t fires = 0;
};

PointState g_points[kNumPoints] LP_GUARDED_BY(g_mu);

/// Index of a registered name, or kNumPoints if unknown.  The array is
/// tiny (single-digit entries) so a linear strcmp scan beats any map.
std::size_t index_of(const char* point) {
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    if (std::strcmp(kRegisteredPoints[i], point) == 0) return i;
  }
  return kNumPoints;
}

std::size_t checked_index(const std::string& point) {
  const std::size_t i = index_of(point.c_str());
  LP_CHECK_MSG(i < kNumPoints,
               "unregistered fault point '"
                   << point << "' — every injection point must be listed in "
                              "lp::fault::kRegisteredPoints (fault_injection.h)");
  return i;
}

bool plan_fires(const TriggerPlan& p, std::uint64_t arrival) {
  if (p.every != 0 && arrival % p.every == 0) return true;
  if (p.after != 0 && arrival > p.after) return true;
  return std::find(p.hits.begin(), p.hits.end(), arrival) != p.hits.end();
}

std::uint64_t parse_u64(const std::string& s, const std::string& clause) {
  LP_CHECK_MSG(!s.empty() && s.find_first_not_of("0123456789") == std::string::npos,
               "malformed LP_FAULT clause '" << clause << "': '" << s
                                             << "' is not a positive integer");
  const unsigned long long v = std::strtoull(s.c_str(), nullptr, 10);
  LP_CHECK_MSG(v > 0, "malformed LP_FAULT clause '" << clause
                                                    << "': occurrence indices "
                                                       "are 1-based");
  return v;
}

void arm_locked(std::size_t idx, TriggerPlan plan) LP_REQUIRES(g_mu) {
  g_points[idx].plan = std::move(plan);
  g_points[idx].has_plan = true;
  g_armed.store(true, std::memory_order_relaxed);
}

/// One-time lazy LP_FAULT read.  Returns true always (static-init idiom).
bool env_loaded() {
  static const bool loaded = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at first evaluation
    if (const char* spec = std::getenv("LP_FAULT")) {
      if (spec[0] != '\0') set_plan_string(spec);
    }
    return true;
  }();
  return loaded;
}

}  // namespace

void set_plan(const std::string& point, TriggerPlan plan) {
  const std::size_t idx = checked_index(point);
  const MutexLock lk(g_mu);
  arm_locked(idx, std::move(plan));
}

void set_plan_string(const std::string& spec) {
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(';', at);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(at, end - at);
    at = end + 1;
    if (clause.empty()) continue;
    const std::size_t sep = clause.find('@');
    LP_CHECK_MSG(sep != std::string::npos && sep > 0 && sep + 1 < clause.size(),
                 "malformed LP_FAULT clause '" << clause
                                               << "' (want point@trigger)");
    const std::string point = clause.substr(0, sep);
    const std::string trigger = clause.substr(sep + 1);
    TriggerPlan plan;
    if (trigger.rfind("every:", 0) == 0) {
      plan.every = parse_u64(trigger.substr(6), clause);
    } else if (trigger.rfind("after:", 0) == 0) {
      plan.after = parse_u64(trigger.substr(6), clause);
    } else {
      std::size_t h = 0;
      while (h <= trigger.size()) {
        std::size_t plus = trigger.find('+', h);
        if (plus == std::string::npos) plus = trigger.size();
        plan.hits.push_back(parse_u64(trigger.substr(h, plus - h), clause));
        h = plus + 1;
      }
    }
    set_plan(point, std::move(plan));
  }
}

void load_env() {
  (void)env_loaded();  // settle the lazy gate so it stays a no-op later
  // NOLINTNEXTLINE(concurrency-mt-unsafe): explicit caller-driven re-read
  if (const char* spec = std::getenv("LP_FAULT")) {
    if (spec[0] != '\0') set_plan_string(spec);
  }
}

void clear() {
  (void)env_loaded();  // settle the lazy load so it cannot re-arm later
  const MutexLock lk(g_mu);
  for (PointState& p : g_points) p = PointState{};
  g_armed.store(false, std::memory_order_relaxed);
}

bool enabled() {
  (void)env_loaded();
  return g_armed.load(std::memory_order_relaxed);
}

std::uint64_t arrivals(const std::string& point) {
  const std::size_t idx = checked_index(point);
  const MutexLock lk(g_mu);
  return g_points[idx].arrivals;
}

std::uint64_t fires(const std::string& point) {
  const std::size_t idx = checked_index(point);
  const MutexLock lk(g_mu);
  return g_points[idx].fires;
}

SuspendScope::SuspendScope() {
  g_suspended.fetch_add(1, std::memory_order_relaxed);
}

SuspendScope::~SuspendScope() {
  g_suspended.fetch_sub(1, std::memory_order_relaxed);
}

bool should_fail(const char* point) {
  (void)env_loaded();
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  if (g_suspended.load(std::memory_order_relaxed) > 0) return false;
  const std::size_t idx = index_of(point);
  LP_DCHECK_MSG(idx < kNumPoints,
                "LP_FAULT_POINT with unregistered name — add it to "
                "lp::fault::kRegisteredPoints");
  if (idx >= kNumPoints) return false;
  const MutexLock lk(g_mu);
  PointState& p = g_points[idx];
  ++p.arrivals;
  if (!p.has_plan || !plan_fires(p.plan, p.arrivals)) return false;
  ++p.fires;
  return true;
}

}  // namespace lp::fault
