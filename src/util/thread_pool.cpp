#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/fault_injection.h"

namespace lp {
namespace {

// Nested run_chunks depth on this thread (workers and external callers
// alike).  Guards the serial-fallback bound; see kMaxNestingDepth.
thread_local int t_nesting_depth = 0;

struct NestingScope {
  NestingScope() { ++t_nesting_depth; }
  ~NestingScope() { --t_nesting_depth; }
  NestingScope(const NestingScope&) = delete;
  NestingScope& operator=(const NestingScope&) = delete;
};

}  // namespace

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before workers spawn
  if (const char* env = std::getenv("LP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min(v, 1024L));
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int t = 0; t < n - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_ptr<ThreadPool::TaskSet> ThreadPool::claimable_locked() const {
  for (const auto& ts : active_) {
    if (ts->next.load(std::memory_order_relaxed) < ts->total) return ts;
  }
  return nullptr;
}

void ThreadPool::execute_chunks(TaskSet& ts) {
  for (;;) {
    const std::int64_t c = ts.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= ts.total) return;
    std::exception_ptr err;
    try {
      // Chaos harness: a task-execution fault fails this chunk exactly as
      // a throwing chunk body would — first error wins, the set still
      // drains, run_chunks rethrows at the submitter.
      if (LP_FAULT_POINT("pool.task")) {
        throw fault::InjectedFault("pool.task");
      }
      const NestingScope nest;
      (*ts.fn)(c);
    } catch (...) {
      err = std::current_exception();
    }
    const MutexLock lk(ts.mu);
    if (err && !ts.error) ts.error = err;
    if (++ts.done == ts.total) ts.done_cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<TaskSet> ts;
    {
      MutexLock lk(mu_);
      // Explicit wait loop (not a predicate lambda) so the guarded reads
      // sit in the locked scope the analysis can see.
      while (!stop_ && claimable_locked() == nullptr) work_cv_.wait(lk);
      if (stop_) return;
      ts = claimable_locked();
    }
    if (ts) execute_chunks(*ts);
  }
}

void ThreadPool::run_chunks(std::int64_t num_chunks,
                            const std::function<void(std::int64_t)>& fn) {
  if (num_chunks <= 0) return;
  // Serial paths: a pool with no workers, a single chunk, or a nesting
  // level past the fan-out bound.  Same chunk order as the dynamic path
  // would observe with one executor, so results are unchanged; the
  // NestingScope keeps depth accounting uniform with execute_chunks.
  if (workers_.empty() || num_chunks == 1 ||
      t_nesting_depth >= kMaxNestingDepth) {
    const NestingScope nest;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      // Same injection point as the pooled path, so single-threaded runs
      // (and the serial nesting fallback) fault identically.
      if (LP_FAULT_POINT("pool.task")) {
        throw fault::InjectedFault("pool.task");
      }
      fn(c);
    }
    return;
  }
  auto ts = std::make_shared<TaskSet>();
  ts->total = num_chunks;
  ts->fn = &fn;
  {
    const MutexLock lk(mu_);
    active_.push_back(ts);
  }
  work_cv_.notify_all();
  execute_chunks(*ts);  // the caller is an executor too
  std::exception_ptr err;
  {
    MutexLock lk(ts->mu);
    while (ts->done != ts->total) ts->done_cv.wait(lk);
    // MOVE the error out (don't copy): the task set must not keep a
    // reference, or the exception's final release — and the teardown of
    // its what() string, possibly mid-read in a catch handler — would
    // happen on whichever pool worker drops the last TaskSet ref.
    // Taking sole ownership here confines the exception's lifetime to
    // the submitting thread, with this mutex as the handoff edge.
    err = std::move(ts->error);
    ts->error = nullptr;
  }
  {
    const MutexLock lk(mu_);
    active_.erase(std::find(active_.begin(), active_.end(), ts));
  }
  if (err) std::rethrow_exception(err);
}

namespace {

// default_pool() sits at the top of every parallel region, so the common
// path is a single acquire load; the mutex only guards (re)construction.
Mutex g_default_pool_mu;
std::unique_ptr<ThreadPool> g_default_pool  // NOLINT: intentional singleton
    LP_GUARDED_BY(g_default_pool_mu);
std::atomic<ThreadPool*> g_default_pool_ptr{nullptr};

}  // namespace

ThreadPool& default_pool() {
  if (ThreadPool* p = g_default_pool_ptr.load(std::memory_order_acquire)) {
    return *p;
  }
  const MutexLock lk(g_default_pool_mu);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(0);
    g_default_pool_ptr.store(g_default_pool.get(), std::memory_order_release);
  }
  return *g_default_pool;
}

void set_default_pool_threads(int threads) {
  const MutexLock lk(g_default_pool_mu);
  // Drop the fast-path pointer first: the old pool's destructor joins its
  // workers before the replacement becomes visible.
  g_default_pool_ptr.store(nullptr, std::memory_order_release);
  g_default_pool = std::make_unique<ThreadPool>(threads);
  g_default_pool_ptr.store(g_default_pool.get(), std::memory_order_release);
}

void parallel_for(
    ThreadPool& pool, std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body) {
  if (end <= begin) return;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (end - begin + g - 1) / g;
  if (chunks == 1) {
    body(begin, end, 0);
    return;
  }
  pool.run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * g;
    body(b, std::min(end, b + g), c);
  });
}

std::int64_t balanced_grain(std::int64_t count, int threads) {
  LP_CHECK(threads >= 1);
  const std::int64_t target = static_cast<std::int64_t>(threads) * 4;
  return std::max<std::int64_t>(1, (count + target - 1) / target);
}

double chunked_sum(ThreadPool& pool, std::size_t count, std::size_t chunk,
                   const std::function<double(std::size_t, std::size_t)>& fn) {
  LP_CHECK(chunk >= 1);
  if (count <= chunk) return count == 0 ? 0.0 : fn(0, count);
  const std::size_t chunks = (count + chunk - 1) / chunk;
  std::vector<double> partial(chunks, 0.0);
  pool.run_chunks(static_cast<std::int64_t>(chunks), [&](std::int64_t c) {
    const std::size_t begin = static_cast<std::size_t>(c) * chunk;
    partial[static_cast<std::size_t>(c)] = fn(begin, std::min(begin + chunk, count));
  });
  double sum = 0.0;
  for (const double p : partial) sum += p;
  return sum;
}

}  // namespace lp
