// Clang Thread Safety Analysis for the library's concurrency surface.
//
// Every mutex-guarded member and locking function in the runtime and the
// serving layer is annotated with the macros below, so that clang's
// -Wthread-safety (the `static-analysis / thread-safety` CI leg, or a
// local build with -DLOGPOSIT_WERROR_THREAD_SAFETY=ON) proves the locking
// discipline at compile time: an unguarded access to a guarded member, a
// *_locked method called without its capability, or a scoped lock that
// escapes its region all fail the build.  The repo's bit-identity claims
// depend on that discipline — TSan only catches the interleavings a test
// happens to hit; the analysis covers every call site on every diff.
//
// On compilers without the attribute set (GCC builds every tier-1 leg)
// all macros expand to nothing and lp::Mutex / lp::MutexLock / lp::CondVar
// are zero-overhead wrappers over the std primitives they replace, so the
// annotated code generates the exact same locking behavior everywhere.
//
// What the analysis can and cannot express here (see
// docs/STATIC_ANALYSIS.md for the full catalog):
//  * GUARDED_BY covers data owned by one mutex for its whole lifetime
//    (cache shards, queue state, publisher slot).
//  * Phase-confined data (FormatCache: mutated only in the session's
//    serialized prepare phase, read lock-free from parallel build passes)
//    is outside the mutex model — those invariants stay documented at the
//    member and enforced by scripts/lint_invariants.py + TSan.
//  * Condition-variable waits must be written as explicit while-loops in
//    the locked scope, not predicate lambdas: the analysis checks lambda
//    bodies as separate functions with no lock context, so a predicate
//    reading guarded state would be (falsely) flagged.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define LP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LP_THREAD_ANNOTATION_(x)  // not clang: annotations compile away
#endif

/// Type attribute: this class is a lockable capability ("mutex").
#define LP_CAPABILITY(x) LP_THREAD_ANNOTATION_(capability(x))
/// Type attribute: RAII object that holds a capability for its lifetime.
#define LP_SCOPED_CAPABILITY LP_THREAD_ANNOTATION_(scoped_lockable)
/// Data member readable/writable only with the capability held.
#define LP_GUARDED_BY(x) LP_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the capability.
#define LP_PT_GUARDED_BY(x) LP_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function requires the capability held on entry (and keeps it held).
#define LP_REQUIRES(...) LP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on return, not on entry).
#define LP_ACQUIRE(...) LP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define LP_RELEASE(...) LP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define LP_TRY_ACQUIRE(...) \
  LP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must be entered with the capability NOT held (self-deadlock
/// guard for public methods that lock internally).
#define LP_EXCLUDES(...) LP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define LP_RETURN_CAPABILITY(x) LP_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch — must carry a one-line justification at the use site.
#define LP_NO_THREAD_SAFETY_ANALYSIS \
  LP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lp {

class CondVar;

/// std::mutex with the capability attribute, so members can be declared
/// LP_GUARDED_BY(mu_) and locking helpers LP_REQUIRES(mu_).  Same
/// semantics, same size class, no extra state.
class LP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LP_ACQUIRE() { mu_.lock(); }
  void unlock() LP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() LP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over lp::Mutex — the annotated replacement for both
/// std::lock_guard and std::unique_lock.  Internally a
/// std::unique_lock<std::mutex> on the wrapped mutex, so lp::CondVar can
/// wait on it and early unlock() (e.g. before a notify) stays supported;
/// the analysis tracks the held/released state through lock()/unlock().
class LP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LP_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() LP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquire after an early unlock().
  void lock() LP_ACQUIRE() { lk_.lock(); }
  /// Release before scope exit (the destructor then does nothing).
  void unlock() LP_RELEASE() { lk_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable bound to lp::MutexLock.  Waits take the scoped
/// lock (which the caller's scope proves is held); the internal
/// unlock/relock during the wait is invisible to the analysis, which
/// matches the caller-visible contract — the lock is held before and
/// after.  Write wait conditions as explicit while-loops in the locked
/// scope (see the header comment on predicate lambdas).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lk) { cv_.wait(lk.lk_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lk.lk_, tp);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace lp
