// Lightweight precondition / invariant checking for the logposit library.
//
// LP_CHECK / LP_CHECK_MSG throw std::invalid_argument on failure and are
// always enabled: they guard public API contracts (bad user input must not
// silently corrupt a simulation).  LP_ASSERT guards internal invariants and
// throws std::logic_error; it stays on in every build type because most of
// its call sites run once per call, not once per element.  LP_DCHECK is the
// hot-path variant: same contract as LP_ASSERT, but compiled out under
// NDEBUG (Release) so per-element invariants in the codec and datapath
// inner loops cost nothing in serving builds — Debug builds (and the ASan/
// TSan CI legs, which build Debug) still evaluate every one.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lp {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "LP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "LP_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace lp

#define LP_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) ::lp::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define LP_CHECK_MSG(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream lp_check_os_;                                  \
      lp_check_os_ << msg;                                              \
      ::lp::throw_check_failure(#cond, __FILE__, __LINE__,              \
                                lp_check_os_.str());                    \
    }                                                                   \
  } while (false)

#define LP_ASSERT(cond)                                                    \
  do {                                                                     \
    if (!(cond)) ::lp::throw_assert_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define LP_ASSERT_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream lp_assert_os_;                                 \
      lp_assert_os_ << msg;                                             \
      ::lp::throw_assert_failure(#cond, __FILE__, __LINE__,             \
                                 lp_assert_os_.str());                  \
    }                                                                   \
  } while (false)

// Debug-only internal invariant: active exactly when NDEBUG is not
// defined, so Release serving binaries pay nothing for per-element checks
// while every Debug/sanitizer CI leg still evaluates them.  The else
// branch keeps `cond` odr-used (sizeof in an unevaluated context) so a
// variable referenced only by an LP_DCHECK does not become -Wunused under
// Release.
#ifdef NDEBUG
#define LP_DCHECK(cond) \
  do {                  \
    if (false) {        \
      (void)(cond);     \
    }                   \
  } while (false)
#define LP_DCHECK_MSG(cond, msg) \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
    }                            \
  } while (false)
#else
#define LP_DCHECK(cond) LP_ASSERT(cond)
#define LP_DCHECK_MSG(cond, msg) LP_ASSERT_MSG(cond, msg)
#endif
