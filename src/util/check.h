// Lightweight precondition / invariant checking for the logposit library.
//
// LP_CHECK / LP_CHECK_MSG throw std::invalid_argument on failure and are
// always enabled: they guard public API contracts (bad user input must not
// silently corrupt a simulation).  LP_ASSERT guards internal invariants and
// throws std::logic_error; it is also always on because the library is a
// research artifact where debuggability beats the last few percent of speed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lp {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "LP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "LP_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace lp

#define LP_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) ::lp::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define LP_CHECK_MSG(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream lp_check_os_;                                  \
      lp_check_os_ << msg;                                              \
      ::lp::throw_check_failure(#cond, __FILE__, __LINE__,              \
                                lp_check_os_.str());                    \
    }                                                                   \
  } while (false)

#define LP_ASSERT(cond)                                                    \
  do {                                                                     \
    if (!(cond)) ::lp::throw_assert_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define LP_ASSERT_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream lp_assert_os_;                                 \
      lp_assert_os_ << msg;                                             \
      ::lp::throw_assert_failure(#cond, __FILE__, __LINE__,             \
                                 lp_assert_os_.str());                  \
    }                                                                   \
  } while (false)
