// Shared thread-pool parallelism for the forward-pass, quantization and
// LPQ hot paths.
//
// Design constraints (and why this is not a generic task queue):
//  * Determinism.  Every parallel loop in the library must produce output
//    bit-identical to its serial execution, for any pool size.  The pool
//    therefore never decides *what* a chunk computes — callers split work
//    into chunks whose boundaries depend only on the problem size (see
//    parallel_for), and any reduction combines per-chunk partials in chunk
//    order.  Threads only decide *who* runs a chunk.
//  * Nesting and reentrancy.  LPQ evaluates candidates on the pool, and
//    each evaluation runs forward passes whose GEMMs also use the pool; the
//    serving layer adds many *external* submitter threads issuing
//    run_chunks concurrently.  run_chunks is fork-join with caller
//    participation: the calling thread claims chunks like any worker, so a
//    fully busy pool degrades to inline execution instead of deadlocking,
//    and waits form a DAG ordered by nesting depth.  The contract:
//      - run_chunks may be called from any thread, including a pool worker
//        mid-chunk (a pool task submitting run_chunks must not deadlock —
//        the submitter drains its own task set, never parking on a worker
//        that could be parked on it);
//      - concurrent external submitters are safe: each call owns a private
//        TaskSet, workers drain whichever sets are claimable;
//      - beyond kMaxNestingDepth nested levels on one thread, run_chunks
//        falls back to serial inline execution (same chunk order, same
//        results) so pathological recursion bounds its stack instead of
//        fanning out further.
//    tests/test_parallel.cpp pins all three.
//  * One pool per process.  Persistent workers amortize thread creation
//    across the millions of small parallel regions an LPQ search issues
//    (the seed spawned and joined fresh threads per generation).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace lp {

class ThreadPool {
 public:
  /// `threads` <= 0 resolves via resolve_threads() (LP_THREADS env var,
  /// then std::thread::hardware_concurrency).  A pool of size N owns N-1
  /// worker threads; the caller of run_chunks is the Nth executor.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width including the calling thread.
  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Deepest nested run_chunks level (per thread) that still fans out to
  /// the pool; deeper levels run their chunks serially inline.  Two levels
  /// cover every datapath in the library (LPQ candidate eval -> GEMM); the
  /// headroom above that is for embedders.
  static constexpr int kMaxNestingDepth = 4;

  /// Run fn(c) for every chunk index c in [0, num_chunks), blocking until
  /// all complete.  Chunks are claimed dynamically (load balance) but each
  /// index runs exactly once, so callers writing disjoint outputs per index
  /// are deterministic regardless of pool size.  The first exception thrown
  /// by a chunk is rethrown here after the set drains.  Safe to call from
  /// inside another run_chunks chunk and from any number of concurrent
  /// external threads (see header comment on nesting and reentrancy).
  void run_chunks(std::int64_t num_chunks,
                  const std::function<void(std::int64_t)>& fn);

  /// Pool size for a request: `requested` if > 0, else the LP_THREADS
  /// environment variable if set to a positive integer, else
  /// hardware_concurrency (minimum 1).
  [[nodiscard]] static int resolve_threads(int requested);

 private:
  struct TaskSet {
    std::int64_t total = 0;
    std::atomic<std::int64_t> next{0};  ///< next unclaimed chunk
    const std::function<void(std::int64_t)>* fn = nullptr;
    Mutex mu;
    CondVar done_cv;
    std::int64_t done LP_GUARDED_BY(mu) = 0;  ///< chunks finished executing
    std::exception_ptr error LP_GUARDED_BY(mu);
  };

  void worker_loop();
  static void execute_chunks(TaskSet& ts);
  [[nodiscard]] std::shared_ptr<TaskSet> claimable_locked() const
      LP_REQUIRES(mu_);

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar work_cv_;
  std::vector<std::shared_ptr<TaskSet>> active_ LP_GUARDED_BY(mu_);
  bool stop_ LP_GUARDED_BY(mu_) = false;
};

/// The process-wide pool every hot path runs on, created on first use and
/// sized by resolve_threads(0).  LpqParams::threads > 0 overrides it with a
/// dedicated pool for the search only (see LpqEngine).
[[nodiscard]] ThreadPool& default_pool();

/// Replace the default pool with one of the given size (0 = auto).  For
/// process startup, benches and determinism tests; not safe concurrently
/// with parallel work on the old pool.
void set_default_pool_threads(int threads);

/// Split [begin, end) into chunks of `grain` and run
/// body(chunk_begin, chunk_end, chunk_index) for each, on the pool.  Chunk
/// boundaries depend only on begin/end/grain — never on the pool size — so
/// per-chunk reductions combined in chunk order are bit-identical across
/// thread counts.  A single-chunk range runs inline on the caller.
void parallel_for(
    ThreadPool& pool, std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body);

/// Grain that splits `count` items into ~4 chunks per pool thread (load
/// balance without excessive scheduling).  Only for loops whose per-item
/// results are independent of the split (e.g. GEMM rows); reductions that
/// combine partials must use a pool-independent fixed grain instead
/// (see chunked_sum).
[[nodiscard]] std::int64_t balanced_grain(std::int64_t count, int threads);

/// Deterministic parallel sum: evaluate fn(begin, end) over fixed chunks of
/// `chunk` elements of [0, count) and return the partials added in chunk
/// order.  Because the boundaries depend only on count/chunk and the
/// reduction order is fixed, the result is bit-identical for any pool size;
/// a range of at most one chunk runs inline on the caller, so it is also
/// exactly fn(0, count).
double chunked_sum(ThreadPool& pool, std::size_t count, std::size_t chunk,
                   const std::function<double(std::size_t, std::size_t)>& fn);

}  // namespace lp
