// Deterministic fault injection — the test harness that keeps the
// serving stack honest about partial failure.
//
// Production NPU serving treats overload and faults as first-class
// inputs, but a fault path that only fires when hardware actually
// misbehaves is a fault path that is never tested.  This subsystem lets
// tests (and the CI chaos leg) trigger the library's real error paths on
// demand, deterministically:
//
//   * Injection points are named call sites compiled into the library
//     (`LP_FAULT_POINT("pool.task")`).  Each evaluation counts one
//     arrival at that point and returns whether the active plan says
//     this occurrence fails.  With no plan armed the evaluation is a
//     single relaxed atomic load — serving builds pay nothing.
//   * Trigger plans are counter-based, never wall-clock or RNG (the
//     invariant linter bans both in library code): "fail arrivals 3 and
//     7", or "fail every 5th arrival".  Two runs of the same
//     single-threaded workload fault identically; under concurrency the
//     *which thread* of the Nth arrival may vary but the fault count and
//     positions in arrival order do not.
//   * Plans arm via the LP_FAULT environment variable
//     (`LP_FAULT="pool.task@3+7;artifact.read.checksum@every:2"`) or the
//     programmatic API below.  Tests own their determinism by calling
//     clear() first and arming exact plans.
//
// Every injection point name must appear in kRegisteredPoints below —
// the single manifest scripts/lint_invariants.py checks call sites
// against (rule `fault-points`), so a typo'd point name is a lint error,
// not a fault plan that silently never fires.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lp::fault {

/// The manifest: every injection point compiled into the library.  The
/// `fault-points` lint rule fails if a `LP_FAULT_POINT("name")` call
/// site uses a name not listed here (or a non-literal name).  Keep
/// sorted; docs/ROBUSTNESS.md documents what each point simulates.
inline constexpr const char* kRegisteredPoints[] = {
    "artifact.read.checksum",    // artifact body fails its FNV-1a check
    "artifact.read.truncate",    // artifact file reads short
    "kernel.epilogue.nonfinite", // fused encode epilogue reports a
                                 // non-finite output (float-path escape)
    "pool.task",                 // a thread-pool chunk throws before
                                 // running its body
    "snapshot.publish",          // publishing a prepared snapshot fails
};

/// What an injected fault throws at points whose failure mode is an
/// exception (pool.task, snapshot.publish).  Derives from runtime_error,
/// not invalid_argument: an injected fault models infrastructure
/// failure, not caller error.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at " + point), point_(point) {}
  [[nodiscard]] const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// When a registered point fires.  Occurrences are 1-based arrival
/// indices at that point since the last clear().
struct TriggerPlan {
  std::vector<std::uint64_t> hits;  ///< fire on exactly these arrivals
  std::uint64_t every = 0;          ///< also fire when arrival % every == 0
                                    ///< (0 = disabled)
  std::uint64_t after = 0;          ///< also fire on every arrival > after
                                    ///< (0 = disabled)
};

/// Arm `plan` for a registered point.  Throws std::invalid_argument for
/// a name not in kRegisteredPoints.  Replaces any existing plan for the
/// point; arrival counters are NOT reset (clear() resets everything).
void set_plan(const std::string& point, TriggerPlan plan);

/// Parse and arm a plan string: semicolon-separated clauses of
///   point@N[+M...]   fire on arrivals N, M, ...
///   point@every:N    fire on every Nth arrival
///   point@after:N    fire on every arrival past the Nth
/// e.g. "pool.task@3+7;artifact.read.checksum@every:2".  Throws
/// std::invalid_argument on malformed input or unregistered names.
void set_plan_string(const std::string& spec);

/// Re-read the LP_FAULT environment variable and arm its plans (no-op if
/// unset or empty).  The first LP_FAULT_POINT evaluation in a process
/// does this automatically; tests that clear() and want the env plans
/// back call this explicitly.
void load_env();

/// Disarm every plan and zero all counters.  After clear() the fast path
/// is a single relaxed load again.
void clear();

/// True if any plan is armed (forces the lazy LP_FAULT env load first,
/// so callers can branch on "did CI arm a plan?").
[[nodiscard]] bool enabled();

/// Arrivals / fires observed at a point since the last clear().  Throws
/// for unregistered names.
[[nodiscard]] std::uint64_t arrivals(const std::string& point);
[[nodiscard]] std::uint64_t fires(const std::string& point);

/// RAII gate that suppresses firing (arrivals are not counted either)
/// for all threads while any scope is alive.  Used to compute fault-free
/// reference results in the middle of a chaos test without disturbing
/// the armed plan's counters.
class SuspendScope {
 public:
  SuspendScope();
  ~SuspendScope();
  SuspendScope(const SuspendScope&) = delete;
  SuspendScope& operator=(const SuspendScope&) = delete;
};

/// Implementation behind LP_FAULT_POINT: count one arrival at `point`
/// and return whether the armed plan fires on it.  `point` must be a
/// registered name (LP_DCHECKed; the lint rule enforces it statically).
[[nodiscard]] bool should_fail(const char* point);

}  // namespace lp::fault

/// The call-site macro — always a string literal argument so the
/// `fault-points` lint rule can match names against the manifest.
#define LP_FAULT_POINT(name) (::lp::fault::should_fail(name))
