#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lp {

double mean(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (float x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const float> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double s = 0.0;
  for (float x : xs) {
    const double d = x - mu;
    s += d * d;
  }
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const float> xs) { return std::sqrt(variance(xs)); }

double kurtosis3(std::span<const float> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double m2 = 0.0;
  double m4 = 0.0;
  for (float x : xs) {
    const double d = x - mu;
    const double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  const auto n = static_cast<double>(xs.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 1e-30) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double rmse(std::span<const float> a, std::span<const float> b) {
  LP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double mae(std::span<const float> a, std::span<const float> b) {
  LP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return s / static_cast<double>(a.size());
}

double kl_divergence_hist(std::span<const float> a, std::span<const float> b,
                          int bins) {
  LP_CHECK(bins >= 2);
  LP_CHECK(!a.empty() && !b.empty());
  float lo = std::min(min_value(a), min_value(b));
  float hi = std::max(max_value(a), max_value(b));
  if (hi <= lo) hi = lo + 1e-6F;
  std::vector<double> pa(static_cast<std::size_t>(bins), 1.0);  // add-one smoothing
  std::vector<double> pb(static_cast<std::size_t>(bins), 1.0);
  const double scale = bins / (static_cast<double>(hi) - lo);
  auto bucket = [&](float x) {
    auto i = static_cast<int>((static_cast<double>(x) - lo) * scale);
    return static_cast<std::size_t>(std::clamp(i, 0, bins - 1));
  };
  for (float x : a) pa[bucket(x)] += 1.0;
  for (float x : b) pb[bucket(x)] += 1.0;
  const double na = static_cast<double>(a.size()) + bins;
  const double nb = static_cast<double>(b.size()) + bins;
  double kl = 0.0;
  for (int i = 0; i < bins; ++i) {
    const double p = pa[static_cast<std::size_t>(i)] / na;
    const double q = pb[static_cast<std::size_t>(i)] / nb;
    kl += p * std::log(p / q);
  }
  return kl;
}

double dot(std::span<const float> a, std::span<const float> b) {
  LP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  LP_CHECK(a.size() == b.size());
  const double ab = dot(a, b);
  const double aa = dot(a, a);
  const double bb = dot(b, b);
  if (aa <= 0.0 || bb <= 0.0) return 0.0;
  return ab / std::sqrt(aa * bb);
}

float min_value(std::span<const float> xs) {
  LP_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

float max_value(std::span<const float> xs) {
  LP_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

float quantile(std::span<const float> xs, double p) {
  LP_CHECK(!xs.empty());
  LP_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<float> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double pos = p * (static_cast<double>(copy.size()) - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<float>((1.0 - frac) * copy[lo] + frac * copy[hi]);
}

double mean_abs(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (float x : xs) s += std::fabs(x);
  return s / static_cast<double>(xs.size());
}

Summary summarize(std::span<const float> xs) {
  LP_CHECK(!xs.empty());
  Summary s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.kurtosis3 = kurtosis3(xs);
  s.min = min_value(xs);
  s.max = max_value(xs);
  return s;
}

}  // namespace lp
