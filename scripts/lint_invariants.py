#!/usr/bin/env python3
"""Repo-invariant linter: mechanical checks the compiler cannot express.

Each rule pins an invariant the codebase relies on for correctness or
determinism (docs/STATIC_ANALYSIS.md documents the "why" per rule):

  kernel-table        every KernelTable field is populated (non-null) by
                      each compiled backend, and the plam namespace
                      defines every entry point kernels.h declares
  raw-thread          std::thread appears only in the thread pool and the
                      serving worker loop — everything else must fan out
                      through ThreadPool so LP_THREADS stays authoritative
  getenv              std::getenv appears only at the three approved
                      process-config sites (LP_KERNEL, LP_APPROX,
                      LP_THREADS), each resolved once
  nondeterminism      no wall-clock or stdlib-randomness source in library
                      code; all randomness goes through util/rng.h
  fault-points        every LP_FAULT_POINT call site uses a string-literal
                      name listed in lp::fault::kRegisteredPoints
                      (fault_injection.h) — a typo'd point is a fault plan
                      that silently never fires
  float-accum         kernel inner loops accumulate in double (no float /
                      packed-single accumulators, no *_ps adds or FMAs),
                      and the root build pins -ffp-contract=off
  test-registration   every tests/test_*.cpp is registered in
                      tests/CMakeLists.txt (an unregistered test is a
                      test that silently never runs)

Usage:
  lint_invariants.py [--root DIR]   lint a tree (default: repo root)
  lint_invariants.py --self-test    run the rule engine against the
                                    good/bad fixtures in lint_fixtures/

Exit status: 0 clean, 1 violations (or a self-test mismatch), 2 usage /
missing-input errors.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import sys
import tempfile

# ---------------------------------------------------------------------------
# Source scanning helpers


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    numbers, so token scans cannot match prose or log messages."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def cpp_sources(root: pathlib.Path) -> list[pathlib.Path]:
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(p for p in src.rglob("*") if p.suffix in (".h", ".cpp"))


class Violation:
    def __init__(self, rule: str, path: pathlib.Path, line: int, msg: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.msg = msg

    def __str__(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"[{self.rule}] {loc}: {self.msg}"


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# kernel-table


def extract_balanced(text: str, open_idx: int, open_ch: str, close_ch: str) -> str:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return text[open_idx + 1 : i]
    return text[open_idx + 1 :]


def split_top_level(text: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "({[<":
            depth += 1
        elif c in ")}]>":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


KERNEL_BACKENDS = (
    "src/kernels/kernels_scalar.cpp",
    "src/kernels/kernels_avx2.cpp",
    "src/kernels/kernels_avx512.cpp",
)


def rule_kernel_table(root: pathlib.Path) -> list[Violation]:
    rule = "kernel-table"
    header = root / "src/kernels/kernels.h"
    out: list[Violation] = []
    if not header.is_file():
        return [Violation(rule, header, 0, "missing kernels.h")]
    htext = strip_comments_and_strings(header.read_text())

    m = re.search(r"struct\s+KernelTable\s*\{", htext)
    if not m:
        return [Violation(rule, header, 0, "no `struct KernelTable` found")]
    body = extract_balanced(htext, m.end() - 1, "{", "}")
    # Function-pointer members come in two spellings: inline
    # `ret (*name)(...)` or via a `using XFn = ret (*)(...)` alias.
    aliases = set(re.findall(r"using\s+(\w+)\s*=[^;]*\(\s*\*\s*\)", htext))
    fn_fields = re.findall(r"\(\s*\*\s*(\w+)\s*\)\s*\(", body)
    for decl in re.finditer(r"\b(\w+)\s+(\w+)\s*;", body):
        if decl.group(1) in aliases:
            fn_fields.append(decl.group(2))
    if not fn_fields:
        return [Violation(rule, header, line_of(htext, m.start()),
                          "KernelTable has no function-pointer fields")]
    want = 1 + len(fn_fields)  # name + one pointer per field

    for rel in KERNEL_BACKENDS:
        path = root / rel
        if not path.is_file():
            out.append(Violation(rule, path, 0, "missing backend source"))
            continue
        text = strip_comments_and_strings(path.read_text())
        km = re.search(r"KernelTable\s+kTable\s*\{", text)
        if not km:
            out.append(Violation(rule, path, 0,
                                 "no `KernelTable kTable{...}` definition"))
            continue
        init = extract_balanced(text, km.end() - 1, "{", "}")
        entries = split_top_level(init)
        lineno = line_of(text, km.start())
        if len(entries) != want:
            out.append(Violation(
                rule, path, lineno,
                f"kTable initializer has {len(entries)} entries, KernelTable "
                f"declares {want} fields (name + {len(fn_fields)} kernels) — "
                "a short initializer value-initializes the tail to nullptr"))
        for e in entries:
            if e == "nullptr" or e == "0":
                out.append(Violation(rule, path, lineno,
                                     f"kTable entry `{e}` leaves a kernel "
                                     "unpopulated"))

    # The plam backend is not a KernelTable; it must define every entry
    # point the header's `namespace plam` block declares.
    pm = re.search(r"namespace\s+plam\s*\{", htext)
    plam_src = root / "src/kernels/kernels_plam.cpp"
    if pm:
        pbody = extract_balanced(htext, pm.end() - 1, "{", "}")
        declared = re.findall(r"\b(\w+)\s*\([^;]*\)\s*;", pbody)
        if not plam_src.is_file():
            out.append(Violation(rule, plam_src, 0, "missing plam source"))
        else:
            ptext = strip_comments_and_strings(plam_src.read_text())
            for name in declared:
                if not re.search(r"\b" + re.escape(name) + r"\s*\(", ptext):
                    out.append(Violation(
                        rule, plam_src, 0,
                        f"plam entry point `{name}` declared in kernels.h "
                        "but not defined here"))
    return out


# ---------------------------------------------------------------------------
# raw-thread / getenv / nondeterminism


RAW_THREAD_ALLOWED = {
    "src/util/thread_pool.h",
    "src/util/thread_pool.cpp",
    "src/serve/server.h",
    "src/serve/server.cpp",
}

GETENV_ALLOWED = {  # file -> max call count
    "src/kernels/dispatch.cpp": 2,  # LP_KERNEL, LP_APPROX
    "src/util/thread_pool.cpp": 1,  # LP_THREADS
    "src/util/fault_injection.cpp": 2,  # LP_FAULT (lazy load + load_env())
}

NONDET_TOKENS = (
    "std::rand", "srand", "random_device", "system_clock",
    "mt19937", "minstd_rand", "default_random_engine",
)


def rule_raw_thread(root: pathlib.Path) -> list[Violation]:
    out = []
    for path in cpp_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_THREAD_ALLOWED:
            continue
        text = strip_comments_and_strings(path.read_text())
        for m in re.finditer(r"\bstd::thread\b", text):
            out.append(Violation(
                "raw-thread", path, line_of(text, m.start()),
                "raw std::thread outside the thread pool / serving workers "
                "— use lp::ThreadPool so LP_THREADS governs all parallelism"))
    return out


def rule_getenv(root: pathlib.Path) -> list[Violation]:
    out = []
    for path in cpp_sources(root):
        rel = path.relative_to(root).as_posix()
        text = strip_comments_and_strings(path.read_text())
        hits = list(re.finditer(r"\bgetenv\s*\(", text))
        if not hits:
            continue
        cap = GETENV_ALLOWED.get(rel)
        if cap is None:
            for m in hits:
                out.append(Violation(
                    "getenv", path, line_of(text, m.start()),
                    "std::getenv outside the approved process-config sites "
                    "(LP_KERNEL/LP_APPROX in dispatch.cpp, LP_THREADS in "
                    "thread_pool.cpp, LP_FAULT in fault_injection.cpp)"))
        elif len(hits) > cap:
            out.append(Violation(
                "getenv", path, line_of(text, hits[cap].start()),
                f"{len(hits)} getenv calls but only {cap} approved here — "
                "new knobs need an entry in scripts/lint_invariants.py and "
                "docs/STATIC_ANALYSIS.md"))
    return out


def rule_nondeterminism(root: pathlib.Path) -> list[Violation]:
    out = []
    pat = re.compile("|".join(r"\b" + re.escape(t) + r"\b" for t in NONDET_TOKENS))
    for path in cpp_sources(root):
        text = strip_comments_and_strings(path.read_text())
        for m in pat.finditer(text):
            out.append(Violation(
                "nondeterminism", path, line_of(text, m.start()),
                f"`{m.group(0)}` is a nondeterminism source; library code "
                "must use util/rng.h (seeded xoshiro) and steady_clock"))
    return out


# ---------------------------------------------------------------------------
# fault-points


FAULT_MANIFEST = "src/util/fault_injection.h"
# Matched against RAW source text (not the stripped form): the point name
# lives inside a string literal, which strip_comments_and_strings blanks.
FAULT_POINT_CALL = re.compile(r"\bLP_FAULT_POINT\s*\(\s*([^)]*?)\s*\)")


def registered_fault_points(root: pathlib.Path) -> set[str] | None:
    """Parse lp::fault::kRegisteredPoints from the manifest header, or
    None if the header (or the array) is missing."""
    header = root / FAULT_MANIFEST
    if not header.is_file():
        return None
    text = header.read_text()
    m = re.search(r"kRegisteredPoints\s*\[\s*\]\s*=\s*\{", text)
    if not m:
        return None
    body = extract_balanced(text, m.end() - 1, "{", "}")
    return set(re.findall(r'"([^"]*)"', body))


def rule_fault_points(root: pathlib.Path) -> list[Violation]:
    rule = "fault-points"
    manifest = registered_fault_points(root)
    out: list[Violation] = []
    for path in cpp_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel == FAULT_MANIFEST:
            continue  # the macro definition and manifest live here
        text = path.read_text()
        for m in FAULT_POINT_CALL.finditer(text):
            arg = m.group(1)
            lit = re.fullmatch(r'"([^"]*)"', arg)
            if lit is None:
                out.append(Violation(
                    rule, path, line_of(text, m.start()),
                    f"LP_FAULT_POINT({arg}) — the point name must be a "
                    "plain string literal so this rule can check it "
                    "against lp::fault::kRegisteredPoints"))
                continue
            name = lit.group(1)
            if manifest is None:
                out.append(Violation(
                    rule, path, line_of(text, m.start()),
                    f'LP_FAULT_POINT("{name}") but no kRegisteredPoints '
                    f"manifest found in {FAULT_MANIFEST}"))
            elif name not in manifest:
                out.append(Violation(
                    rule, path, line_of(text, m.start()),
                    f'fault point "{name}" is not listed in '
                    "lp::fault::kRegisteredPoints (fault_injection.h) — "
                    "unregistered names make set_plan throw and plans "
                    "silently never fire"))
    return out


# ---------------------------------------------------------------------------
# float-accum


FLOAT_ACC_DECL = re.compile(
    r"\b(?:float|__m128|__m256|__m512)\s+\w*(?:acc|sum)\w*"
    r"|std::vector<\s*float\s*>\s+\w*(?:acc|sum)\w*"
    r"|std::array<\s*float\b[^>]*>\s+\w*(?:acc|sum)\w*")
SINGLE_PREC_ACCUM_OPS = re.compile(
    r"\b_mm(?:256|512)?_(?:add|fmadd|fmsub)_ps\b")


def rule_float_accum(root: pathlib.Path) -> list[Violation]:
    out = []
    kdir = root / "src/kernels"
    for path in sorted(kdir.glob("kernels_*.cpp")) if kdir.is_dir() else []:
        text = strip_comments_and_strings(path.read_text())
        for m in FLOAT_ACC_DECL.finditer(text):
            out.append(Violation(
                "float-accum", path, line_of(text, m.start()),
                f"float-typed accumulator `{m.group(0).strip()}` — kernel "
                "accumulation must be double (ascending-k, rounded once) "
                "for the cross-backend bit-identity contract"))
        for m in SINGLE_PREC_ACCUM_OPS.finditer(text):
            out.append(Violation(
                "float-accum", path, line_of(text, m.start()),
                f"single-precision accumulate `{m.group(0)}` — use the _pd "
                "form; float rounding per step breaks bit-identity"))
    cml = root / "CMakeLists.txt"
    if not cml.is_file() or "-ffp-contract=off" not in cml.read_text():
        out.append(Violation(
            "float-accum", cml, 0,
            "root CMakeLists.txt must pin -ffp-contract=off build-wide "
            "(FMA contraction changes kernel rounding)"))
    return out


# ---------------------------------------------------------------------------
# test-registration


def rule_test_registration(root: pathlib.Path) -> list[Violation]:
    rule = "test-registration"
    tdir = root / "tests"
    cml = tdir / "CMakeLists.txt"
    if not tdir.is_dir():
        return []
    if not cml.is_file():
        return [Violation(rule, cml, 0, "tests/ exists without CMakeLists.txt")]
    registered = cml.read_text()
    out = []
    for path in sorted(tdir.glob("test_*.cpp")):
        if not re.search(r"\b" + re.escape(path.stem) + r"\b", registered):
            out.append(Violation(
                rule, path, 0,
                f"{path.name} is not registered in tests/CMakeLists.txt — "
                "it builds nowhere and ctest never runs it"))
    return out


RULES = (
    rule_kernel_table,
    rule_raw_thread,
    rule_getenv,
    rule_nondeterminism,
    rule_fault_points,
    rule_float_accum,
    rule_test_registration,
)


def lint(root: pathlib.Path) -> list[Violation]:
    out: list[Violation] = []
    for rule in RULES:
        out.extend(rule(root))
    return out


# ---------------------------------------------------------------------------
# Self-test


# fixture directory -> rule id expected to fire on it
BAD_FIXTURES = {
    "bad_kernel_table": "kernel-table",
    "bad_raw_thread": "raw-thread",
    "bad_getenv": "getenv",
    "bad_nondeterminism": "nondeterminism",
    "bad_fault_point": "fault-points",
    "bad_float_accum": "float-accum",
    "bad_unregistered_test": "test-registration",
}


def overlay(src: pathlib.Path, dst: pathlib.Path) -> None:
    for p in src.rglob("*"):
        if p.is_file():
            target = dst / p.relative_to(src)
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy2(p, target)


def self_test(fixtures: pathlib.Path) -> int:
    good = fixtures / "good"
    if not good.is_dir():
        print(f"self-test: missing fixture tree {good}", file=sys.stderr)
        return 2
    failures = 0

    violations = lint(good)
    if violations:
        failures += 1
        print("self-test FAIL: good fixture should be clean, got:")
        for v in violations:
            print(f"  {v}")
    else:
        print("self-test ok: good fixture clean")

    for name, expected_rule in sorted(BAD_FIXTURES.items()):
        bad = fixtures / name
        if not bad.is_dir():
            failures += 1
            print(f"self-test FAIL: missing fixture tree {bad}")
            continue
        with tempfile.TemporaryDirectory(prefix="lint_fixture_") as tmp:
            tree = pathlib.Path(tmp)
            overlay(good, tree)
            overlay(bad, tree)
            violations = lint(tree)
        rules_hit = {v.rule for v in violations}
        if expected_rule not in rules_hit:
            failures += 1
            print(f"self-test FAIL: {name} should trigger [{expected_rule}], "
                  f"got {sorted(rules_hit) or 'no violations'}")
        elif rules_hit - {expected_rule}:
            failures += 1
            print(f"self-test FAIL: {name} also triggered "
                  f"{sorted(rules_hit - {expected_rule})}")
        else:
            n = sum(1 for v in violations if v.rule == expected_rule)
            print(f"self-test ok: {name} -> {n} [{expected_rule}] violation(s)")

    if failures:
        print(f"self-test: {failures} fixture check(s) failed")
        return 1
    print("self-test: all fixtures behave as expected")
    return 0


# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="tree to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the rules against the lint_fixtures/ "
                             "good/bad trees instead of linting --root")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent /
                         "lint_fixtures")

    root = args.root.resolve()
    if not root.is_dir():
        print(f"error: no such directory {root}", file=sys.stderr)
        return 2
    violations = lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
