#!/usr/bin/env python3
"""Markdown link checker for the docs/ tree and README (CI: docs-links).

Stdlib only, no network: external (http/https/mailto) targets are checked
for well-formedness, never fetched.  For every relative link the target
must exist in the repository; for an intra-document fragment the heading
must exist in the target file (GitHub anchor rules: lowercase, spaces to
dashes, punctuation stripped).

Usage: python3 scripts/check_doc_links.py README.md docs/*.md
Exits 1 and lists every broken link when any check fails.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — excluding images' alt-text brackets is unnecessary:
# image targets must resolve too.  Nested parens in targets do not occur
# in this repo's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL_RE = re.compile(r"^(https?|mailto):")
# GitHub serves `../../actions/...` badge/workflow links relative to the
# repository *web* URL, not the file tree — they are external in spirit.
GITHUB_WEB_RE = re.compile(r"^(\.\./)+actions/")


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor rule: strip markup/punctuation,
    lowercase, spaces become dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.lower().replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_anchor(h) for h in HEADING_RE.findall(text)}


def check_file(doc: Path, repo_root: Path) -> list[str]:
    errors: list[str] = []
    text = CODE_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if EXTERNAL_RE.match(target) or GITHUB_WEB_RE.match(target):
            continue  # external: well-formed by regex, not fetched
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_of(doc):
                errors.append(f"{doc}: broken fragment link '{target}'")
            continue
        rel, _, fragment = target.partition("#")
        resolved = (doc.parent / rel).resolve()
        try:
            resolved.relative_to(repo_root)
        except ValueError:
            errors.append(f"{doc}: link escapes the repository: '{target}'")
            continue
        if not resolved.exists():
            errors.append(f"{doc}: broken link '{target}'")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in anchors_of(resolved):
                errors.append(f"{doc}: broken anchor '{target}'")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for arg in argv[1:]:
        doc = Path(arg)
        if not doc.exists():
            errors.append(f"{doc}: file does not exist")
            continue
        errors.extend(check_file(doc, repo_root))
        checked += 1
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'FAILED' if errors else 'all links resolve'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
