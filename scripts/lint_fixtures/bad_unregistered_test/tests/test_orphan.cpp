// VIOLATION: present on disk but absent from tests/CMakeLists.txt — this
// test builds nowhere and ctest never runs it.
int main() { return 0; }
