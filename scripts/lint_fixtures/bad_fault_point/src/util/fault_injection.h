// Fixture manifest: only "pool.task" is registered.
#pragma once

namespace lp::fault {

inline constexpr const char* kRegisteredPoints[] = {
    "pool.task",
};

bool should_fail(const char* point);

}  // namespace lp::fault

#define LP_FAULT_POINT(name) (::lp::fault::should_fail(name))
