#include "util/fault_injection.h"

namespace lp {

constexpr const char* kDynamicName = "pool.task";

bool probe() {
  // Typo'd point: not in the fixture manifest.
  if (LP_FAULT_POINT("pool.taskk")) return true;
  // Non-literal name: the lint rule cannot check it statically.
  if (LP_FAULT_POINT(kDynamicName)) return true;
  return false;
}

}  // namespace lp
