// Minimal KernelTable mirror for linter self-tests.  Shape matters, not
// semantics: one `using ...Fn = ...(*)` alias per kernel slot, a struct
// with a name field plus the aliased members, and a `namespace plam`
// block declaring the approximate entry points.
#pragma once

namespace lp::kernels {

using GemmRowsFn = void (*)(const float* a, const float* b, float* c,
                            long rows, long k, long n);
using QuantizeChunkFn = void (*)(const float* xs, unsigned* out, long n);

struct KernelTable {
  const char* name;
  GemmRowsFn gemm_rows;
  QuantizeChunkFn quantize_chunk;
};

namespace plam {

double mitchell_mul(double x, double y);

bool gemm_codes_nt_rows(const float* a, const float* b, float* c,
                        long row_begin, long row_end, long k, long n);

}  // namespace plam

}  // namespace lp::kernels
