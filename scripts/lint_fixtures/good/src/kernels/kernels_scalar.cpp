#include "kernels.h"

namespace lp::kernels {
namespace {

void gemm_rows_scalar(const float* a, const float* b, float* c, long rows,
                      long k, long n) {
  for (long i = 0; i < rows; ++i) {
    double acc = 0.0;  // kernel accumulation is always double
    for (long kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n];
    c[i * n] = static_cast<float>(acc);
  }
}

void quantize_chunk_scalar(const float* xs, unsigned* out, long n) {
  for (long i = 0; i < n; ++i) out[i] = static_cast<unsigned>(xs[i]);
}

}  // namespace

const KernelTable& scalar_kernels() {
  static constexpr KernelTable kTable{"scalar", gemm_rows_scalar,
                                      quantize_chunk_scalar};
  return kTable;
}

}  // namespace lp::kernels
