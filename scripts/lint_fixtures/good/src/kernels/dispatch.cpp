#include <cstdlib>

#include "kernels.h"

namespace lp::kernels {

const KernelTable& dispatch() {
  static const char* requested = std::getenv("LP_KERNEL");  // approved site
  static const char* approx = std::getenv("LP_APPROX");     // approved site
  (void)requested;
  (void)approx;
  return scalar_kernels();
}

}  // namespace lp::kernels
