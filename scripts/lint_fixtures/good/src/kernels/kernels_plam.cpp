#include "kernels.h"

namespace lp::kernels::plam {

double mitchell_mul(double x, double y) { return x * y; }

bool gemm_codes_nt_rows(const float* a, const float* b, float* c,
                        long row_begin, long row_end, long k, long n) {
  for (long i = row_begin; i < row_end; ++i) {
    double acc = 0.0;
    for (long kk = 0; kk < k; ++kk)
      acc += mitchell_mul(a[i * k + kk], b[kk * n]);
    c[i * n] = static_cast<float>(acc);
  }
  return true;
}

}  // namespace lp::kernels::plam
