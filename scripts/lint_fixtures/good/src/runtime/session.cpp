// Clean library translation unit: no raw threads, no getenv, no
// nondeterminism sources.  Bad fixtures overlay this file with exactly
// one violation each.
#include <chrono>

namespace lp::runtime {

long uptime_ns(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace lp::runtime
