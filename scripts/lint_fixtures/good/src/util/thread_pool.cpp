#include <cstdlib>
#include <thread>
#include <vector>

namespace lp {

int pool_threads() {
  if (const char* env = std::getenv("LP_THREADS")) {  // approved site
    return std::atoi(env);
  }
  return static_cast<int>(std::thread::hardware_concurrency());
}

}  // namespace lp
