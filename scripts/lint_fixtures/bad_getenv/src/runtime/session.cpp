// VIOLATION: getenv outside the approved process-config sites — an
// undocumented knob read at an arbitrary depth of the stack.
#include <cstdlib>

namespace lp::runtime {

bool hidden_flag() { return std::getenv("LP_SECRET_TOGGLE") != nullptr; }

}  // namespace lp::runtime
