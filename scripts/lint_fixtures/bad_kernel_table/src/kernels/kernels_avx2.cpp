#include "kernels.h"

namespace lp::kernels {
namespace {

void gemm_rows_avx2(const float* a, const float* b, float* c, long rows,
                    long k, long n) {
  for (long i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (long kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n];
    c[i * n] = static_cast<float>(acc);
  }
}

}  // namespace

// VIOLATION: quantize_chunk slot left nullptr — the table compiles but
// the first quantize through this backend calls through null.
const KernelTable* avx2_kernels() {
  static constexpr KernelTable kTable{"avx2", gemm_rows_avx2, nullptr};
  return &kTable;
}

}  // namespace lp::kernels
