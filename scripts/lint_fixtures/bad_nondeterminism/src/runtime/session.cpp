// VIOLATION: std::random_device in library code — run-to-run
// nondeterminism that breaks the bit-identity contract.
#include <random>

namespace lp::runtime {

unsigned entropy_seed() {
  std::random_device rd;
  return rd();
}

}  // namespace lp::runtime
