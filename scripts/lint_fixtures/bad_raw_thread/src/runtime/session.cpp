// VIOLATION: raw std::thread in library code outside the thread pool and
// the serving workers — this parallelism would not obey LP_THREADS.
#include <thread>

namespace lp::runtime {

void warm_in_background() {
  std::thread t([] {});
  t.join();
}

}  // namespace lp::runtime
