// Example: LPQ on a Vision Transformer.
//
// Shows the transformer-specific pieces: block-wise search where one block
// is one attention block (paper Section 6), the activation parameter rule,
// and a comparison of the hardware {2,4,8} preset against the free search
// space.
//
// Usage: quantize_vit [model: deit_s|vit_b|swin_t|tiny_vit]
#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/session.h"

int main(int argc, char** argv) {
  using namespace lp;
  const std::string name = argc > 1 ? argv[1] : "tiny_vit";

  nn::ZooOptions zopts;
  zopts.input_size = 32;
  zopts.classes = 16;
  zopts.seed = 11;
  nn::Model model = nn::build_model(name, zopts);
  std::printf("model: %s, %lld params, %zu weight slots\n",
              model.name().c_str(),
              static_cast<long long>(model.weight_param_count()),
              model.num_slots());

  data::DatasetOptions dopts;
  dopts.classes = zopts.classes;
  dopts.n_calibration = 16;
  dopts.n_eval = 192;
  dopts.target_fp_accuracy = 0.80;
  const auto ds = data::make_dataset(model, 3, zopts.input_size, dopts);
  const double fp_acc = data::evaluate_fp(model, ds);
  std::printf("FP top-1: %.2f%% (noise %.3f)\n", 100 * fp_acc, ds.noise);

  auto run = [&](bool hw_preset) {
    lpq::LpqParams params;
    params.population = 8;
    params.passes = 1;
    params.cycles = 2;
    // One search block = one attention block (paper: "Block Size is one
    // attention block for Transformer-based models").
    params.block_mode = lpq::LpqParams::BlockMode::kByBlockId;
    params.space.power_of_two_n = hw_preset;
    params.seed = 31;
    lpq::LpqEngine engine(model, ds.calibration, params);
    const auto result = engine.run();
    const auto stats = lpq::candidate_stats(model, result.best);
    // Evaluation through the runtime session: weights quantize once into
    // the cache, the eval set runs as one batched forward.
    runtime::InferenceSession session(model);
    session.set_formats(
        result.best.layers,
        lpq::act_configs(model, result.best, params.fitness.act_sf,
                         engine.reference().act_scale_centers));
    const double q_acc = data::top1_accuracy(session.run(ds.eval_inputs).logits,
                                             ds.eval_labels);
    std::printf("%-22s W%.1f/A%.1f  size %.3f MB  top-1 %.2f%% (drop %+.2f%%)\n",
                hw_preset ? "hardware preset {2,4,8}" : "free search [2..8]",
                stats.avg_weight_bits, stats.avg_act_bits, stats.size_mb,
                100 * q_acc, 100 * (fp_acc - q_acc));
  };

  std::printf("\nLPQ (blocks = attention blocks):\n");
  run(/*hw_preset=*/false);
  run(/*hw_preset=*/true);
  return 0;
}
