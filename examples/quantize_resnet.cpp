// Example: post-training quantization of a ResNet with LPQ.
//
// Builds a (scaled) ResNet18 with distribution-matched synthetic weights,
// generates a calibration/evaluation dataset, runs the genetic-algorithm
// search, then serves the evaluation set through the quantized-inference
// runtime: an InferenceSession snapshots the winning format assignment
// into cached weight codes once and runs batched forwards against it.
//
// Usage: quantize_resnet [passes] [population]
#include <cstdio>
#include <cstdlib>

#include "data/dataset.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/session.h"

int main(int argc, char** argv) {
  using namespace lp;
  const int passes = argc > 1 ? std::atoi(argv[1]) : 2;
  const int population = argc > 2 ? std::atoi(argv[2]) : 8;

  nn::ZooOptions zopts;
  zopts.input_size = 32;
  zopts.classes = 32;
  zopts.seed = 7;
  nn::Model model = nn::build_resnet18(zopts);
  std::printf("model: %s, %lld weight params in %zu slots\n",
              model.name().c_str(),
              static_cast<long long>(model.weight_param_count()),
              model.num_slots());

  data::DatasetOptions dopts;
  dopts.classes = zopts.classes;
  dopts.n_calibration = 24;
  dopts.n_eval = 256;
  dopts.target_fp_accuracy = 0.72;  // emulate the ImageNet baseline level
  const auto ds = data::make_dataset(model, 3, zopts.input_size, dopts);
  const double fp_acc = data::evaluate_fp(model, ds);
  std::printf("dataset: noise=%.3f  FP top-1=%.2f%%\n", ds.noise, 100 * fp_acc);

  lpq::LpqParams params;
  params.population = population;
  params.passes = passes;
  params.cycles = 2;
  params.block_size = 4;  // paper: B = 4 for CNNs
  params.seed = 2024;
  lpq::LpqEngine engine(model, ds.calibration, params);

  std::printf("\nrunning LPQ: P=%d C=%d K=%d, %zu blocks...\n", params.passes,
              params.cycles, params.population, engine.blocks().size());
  const auto result = engine.run([](const lpq::IterationStat& st,
                                    const lpq::Candidate&) {
    if (st.iteration % 8 == 0) {
      std::printf("  iter %3d: fitness=%.5f avg_bits=%.2f\n", st.iteration,
                  st.best_fitness, st.best_avg_weight_bits);
    }
  });

  std::printf("\nper-layer LP parameters (first 12 of %zu):\n",
              result.best.layers.size());
  const auto& slots = model.slot_list();
  for (std::size_t s = 0; s < result.best.layers.size() && s < 12; ++s) {
    std::printf("  %-16s %s\n", slots[s]->name.c_str(),
                result.best.layers[s].to_string().c_str());
  }

  const auto stats = lpq::candidate_stats(model, result.best);

  // Serve evaluation through the runtime: quantize the weights once into
  // the session's weight-code cache, then run the whole eval set as one
  // batched forward.
  const auto act_cfgs =
      lpq::act_configs(model, result.best, params.fitness.act_sf,
                       engine.reference().act_scale_centers);
  runtime::InferenceSession session(model);
  session.set_formats(result.best.layers, act_cfgs);
  nn::ActTraffic coded_traffic;
  const Tensor logits = session.run(ds.eval_inputs, false, &coded_traffic).logits;
  const double q_acc = data::top1_accuracy(logits, ds.eval_labels);

  // Float-path reference for the end-to-end activation-compression figure:
  // same assignment, inter-layer activations kept as float32.
  runtime::SessionOptions float_opts;
  float_opts.coded_activations = false;
  runtime::InferenceSession float_session(model, float_opts);
  float_session.set_formats(result.best.layers, act_cfgs);
  nn::ActTraffic float_traffic;
  (void)float_session.run(ds.eval_inputs, false, &float_traffic);

  const auto& cache = session.stats();
  const double ratio =
      cache.bytes > 0 ? static_cast<double>(cache.logical_bytes) /
                            static_cast<double>(cache.bytes)
                      : 0.0;
  std::printf("\nruntime: %zu cached weight payloads (%zu packed), "
              "%llu quantize misses\n",
              cache.entries, cache.packed_entries,
              static_cast<unsigned long long>(cache.misses));
  std::printf("  cache bytes     : %.2f MB physical (codes + %.3f MB weight "
              "LUTs + %.3f MB act LUTs) vs %.2f MB decoded-equivalent — "
              "%.1fx compression\n",
              static_cast<double>(cache.bytes) / 1e6,
              static_cast<double>(cache.lut_bytes) / 1e6,
              static_cast<double>(cache.act_lut_bytes) / 1e6,
              static_cast<double>(cache.logical_bytes) / 1e6, ratio);
  const double act_moved = static_cast<double>(coded_traffic.coded_bytes +
                                               coded_traffic.float_bytes);
  const double act_float = static_cast<double>(float_traffic.float_bytes);
  std::printf("  act traffic     : %.2f MB as codes + %.2f MB float fallback "
              "vs %.2f MB all-float — %.1fx end-to-end activation "
              "compression\n",
              static_cast<double>(coded_traffic.coded_bytes) / 1e6,
              static_cast<double>(coded_traffic.float_bytes) / 1e6,
              act_float / 1e6, act_moved > 0 ? act_float / act_moved : 0.0);
  std::printf("\nresults:\n");
  std::printf("  avg weight bits : %.2f\n", stats.avg_weight_bits);
  std::printf("  avg act bits    : %.2f\n", stats.avg_act_bits);
  std::printf("  model size      : %.3f MB (FP: %.3f MB, %.1fx smaller)\n",
              stats.size_mb, stats.fp_size_mb, stats.compression);
  std::printf("  top-1           : %.2f%% (FP %.2f%%, drop %.2f%%)\n",
              100 * q_acc, 100 * fp_acc, 100 * (fp_acc - q_acc));
  return 0;
}
