// Example: simulate a quantized model on LPA and the baseline accelerators.
//
// Traces the GEMM workloads of a model, assigns per-layer precisions, and
// compares latency, energy, throughput and compute density across LPA,
// ANT, BitFusion and AdaptivFloat.  Also demonstrates the bit-level PE
// datapath on one real layer (the functional systolic GEMM).
//
// Usage: accelerator_sim [model] [batch]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lpa/systolic.h"
#include "nn/zoo.h"
#include "sim/simulator.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace lp;
  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const int batch = argc > 2 ? std::atoi(argv[2]) : 1;
  if (batch < 1) {
    std::fprintf(stderr, "invalid batch '%s' (need a positive integer)\n",
                 argv[2]);
    return 1;
  }

  nn::ZooOptions zopts;
  zopts.input_size = 32;
  zopts.classes = 16;
  const nn::Model model = nn::build_model(name, zopts);
  // Trace at the serving batch size: the batch rides each workload's N
  // dimension, so the simulated cycles/energy reflect batched serving,
  // not a batch=1 assumption.  (Workload dims depend only on shapes —
  // quantization preserves them — so the FP trace is the quantized trace.)
  Tensor probe({batch, 3, zopts.input_size, zopts.input_size});
  const auto workloads = model.trace_workloads(probe);
  std::printf("%s: %zu GEMM workloads at batch %d\n", model.name().c_str(),
              workloads.size(), batch);

  // A 2-bit-heavy LP assignment (what LPQ's hardware preset tends to find)
  // vs the per-datatype requirements of the baselines.
  const std::size_t slots = model.num_slots();
  sim::PrecisionMap lp_pm = sim::PrecisionMap::uniform(slots, 2, 4);
  for (std::size_t s = 0; s < slots; s += 4) lp_pm.weight_bits[s] = 4;
  sim::PrecisionMap ant_pm = sim::PrecisionMap::uniform(slots, 4, 8);
  for (std::size_t s = 0; s < slots; s += 5) ant_pm.weight_bits[s] = 8;
  const sim::PrecisionMap af_pm = sim::PrecisionMap::uniform(slots, 8, 8);

  std::printf("\n%-14s %10s %10s %10s %10s %10s\n", "accelerator", "cycles",
              "time(ms)", "energy(mJ)", "GOPS", "TOPS/mm2");
  auto report = [&](const lpa::AcceleratorModel& accel,
                    const sim::PrecisionMap& pm) {
    const auto r = sim::simulate(accel, workloads, pm);
    std::printf("%-14s %10lld %10.3f %10.3f %10.1f %10.2f\n",
                r.accel_name.c_str(), static_cast<long long>(r.total_cycles),
                r.time_ms, r.energy_mj, r.gops, r.tops_per_mm2);
  };
  report(lpa::make_lpa(), lp_pm);
  report(lpa::make_posit_pe(), lp_pm);
  report(lpa::make_ant(), ant_pm);
  report(lpa::make_bitfusion(), ant_pm);
  report(lpa::make_adaptivfloat(), af_pm);

  // --- bit-level datapath demo on a small GEMM ---
  std::printf("\nbit-level PE datapath check (16x32 x 32x8 GEMM):\n");
  Rng rng(3);
  Tensor w({16, 32});
  Tensor x({32, 8});
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const LPConfig wcfg{4, 1, 2, 3.2};
  const LPConfig acfg{8, 2, 2, 0.0};
  lpa::GemmStats stats;
  const Tensor hw = lpa::lpa_gemm(w, x, wcfg, acfg, &stats);
  const Tensor ref = lpa::lpa_gemm_reference(w, x, wcfg, acfg);
  std::printf("  MACs=%lld zero-skipped=%lld\n",
              static_cast<long long>(stats.total_macs),
              static_cast<long long>(stats.zero_skipped));
  std::printf("  datapath vs double reference RMSE: %.6f (output std %.4f)\n",
              rmse(hw.data(), ref.data()), stddev(ref.data()));
  return 0;
}
