// Example: compare number formats on real weight distributions.
//
// Loads a zoo model, takes a few of its layers, and quantizes each layer's
// weights with every format in the study (LP, posit, AdaptivFloat, INT,
// LNS, FP8, flint) at the same bit width, printing per-layer RMSE — a
// miniature of the paper's Fig. 5(b).
//
// Usage: format_explorer [model] [bits]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/lp_format.h"
#include "formats/adaptivfloat.h"
#include "formats/flint.h"
#include "formats/lns.h"
#include "formats/minifloat.h"
#include "formats/posit.h"
#include "formats/uniform_int.h"
#include "nn/zoo.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace lp;
  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 6;

  nn::ZooOptions zopts;
  zopts.input_size = 32;
  zopts.classes = 16;
  const nn::Model model = nn::build_model(name, zopts);
  const auto& slots = model.slot_list();

  std::printf("%s, %d-bit quantization RMSE per layer (lower is better):\n\n",
              model.name().c_str(), bits);
  std::printf("%-18s %9s %9s %9s %9s %9s %9s\n", "layer", "LP", "Posit",
              "AdaptFlt", "INT", "LNS", "Flint");

  double sums[6] = {};
  int count = 0;
  for (std::size_t s = 0; s < slots.size(); s += 2) {  // every other layer
    const auto w = slots[s]->weight.data();
    // LP: adapt sf to the layer (rs mid-range, es 1).
    LPConfig cfg{bits, std::min(1, std::max(0, bits - 3)),
                 std::max(1, bits / 2), -std::log2(mean_abs(w))};
    const LPFormat lp_fmt(cfg);
    const PositFormat posit_fmt(bits, 1);
    const auto af_fmt = AdaptivFloatFormat::calibrated(
        bits, std::min(4, bits - 2), w);
    const auto int_fmt = UniformIntFormat::calibrated(bits, w);
    const auto lns_fmt = LnsFormat::calibrated(bits, std::max(0, bits - 4), w);
    const auto flint_fmt = FlintFormat::calibrated(bits, w);

    const NumberFormat* fmts[6] = {&lp_fmt, &posit_fmt, &af_fmt,
                                   &int_fmt, &lns_fmt, &flint_fmt};
    std::printf("%-18s", slots[s]->name.c_str());
    for (int i = 0; i < 6; ++i) {
      const double e = quantization_rmse(w, *fmts[i]);
      sums[i] += e;
      std::printf(" %9.5f", e);
    }
    std::printf("\n");
    ++count;
  }
  std::printf("%-18s", "mean");
  for (double s : sums) std::printf(" %9.5f", s / count);
  std::printf("\n\nLP adapts <n,es,rs,sf> per layer; the others adapt only "
              "range (scale/bias) or nothing.\n");
  return 0;
}
