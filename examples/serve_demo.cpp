// Serving demo: the multi-tenant core end to end.
//
//   1. Quantize a model once and save it as a versioned artifact.
//   2. Cold-start a second session from the artifact — zero quantization.
//   3. Serve concurrent clients through the dynamic-batching server.
//   4. Hot-swap the published assignment mid-serve.
//   5. Print p50/p99 latency and the coalescing stats.
//
// Build: cmake --build build && ./build/examples/serve_demo
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/session.h"
#include "serve/server.h"
#include "util/rng.h"

int main() {
  using namespace lp;

  // --- 1. Quantize once, persist the artifact ---
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model model = nn::build_tiny_cnn(o);
  const auto centers = lpq::sf_centers(model);
  std::vector<LPConfig> w4, w6, a4, a6;
  for (std::size_t s = 0; s < model.num_slots(); ++s) {
    w4.push_back(LPConfig{4, 1, 2, centers[s]});
    w6.push_back(LPConfig{6, 2, 3, centers[s]});
  }
  for (const LPConfig& c : w4) a4.push_back(activation_config(c, 0.5));
  for (const LPConfig& c : w6) a6.push_back(activation_config(c, 0.5));

  const char* path = "serve_demo_artifact.bin";
  {
    runtime::InferenceSession quantizer(model);
    quantizer.set_formats(w4, a4);
    quantizer.save_artifact(path);
    std::printf("quantized %zu layers, artifact saved to %s\n",
                model.num_slots(), path);
  }

  // --- 2. Cold-start a fresh session from the artifact ---
  // cold_start() is the hardened entry point: a clean artifact loads
  // with zero quantization work; a corrupt one reports its
  // ArtifactErrorCode and falls back to re-quantizing from the configs.
  runtime::InferenceSession session(model);
  const runtime::ColdStartResult cs = session.cold_start(path, w4, a4);
  const runtime::CacheStats cold = session.stats();
  std::printf("cold start: published v%llu from %s, misses=%llu\n",
              static_cast<unsigned long long>(cs.version),
              cs.loaded ? "artifact (no re-quantization)"
                        : "re-quantization fallback",
              static_cast<unsigned long long>(cold.misses));

  // --- 3. Concurrent clients against the dynamic-batching server ---
  serve::ServerOptions sopts;
  sopts.workers = 2;
  sopts.max_batch = 8;
  sopts.batch_deadline = std::chrono::microseconds{200};
  serve::Server server(session.publisher(), sopts);

  constexpr int kClients = 8;
  constexpr int kRequests = 24;
  std::mutex mu;
  std::vector<double> lat_us;
  int not_ok = 0;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Tensor x({1, 3, 16, 16});
      Rng rng(static_cast<std::uint64_t>(1000 + c));
      for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
      for (int r = 0; r < kRequests; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        // Every future resolves with a status — check it before logits.
        const serve::Response resp = server.submit(x).get();
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        const std::lock_guard<std::mutex> lk(mu);
        if (!resp.ok()) {
          ++not_ok;
          continue;  // kOverloaded / kDeadlineExceeded / ... — no logits
        }
        lat_us.push_back(us);
        if (r == 0 && c == 0) {
          std::printf("first response: %s, v%llu, rode a %lld-row fused batch\n",
                      serve::to_string(resp.status),
                      static_cast<unsigned long long>(resp.model_version),
                      static_cast<long long>(resp.batch_rows));
        }
      }
    });
  }

  // --- 4. Hot-swap to a 6-bit assignment while clients are in flight ---
  session.set_formats(w6, a6);
  std::printf("hot-swapped to 6-bit weights mid-serve (v%llu published)\n",
              static_cast<unsigned long long>(
                  session.servable()->version()));

  for (std::thread& t : clients) t.join();
  server.shutdown();

  // --- 5. Latency + coalescing report ---
  std::sort(lat_us.begin(), lat_us.end());
  const auto pct = [&](double p) {
    return lat_us[static_cast<std::size_t>(
        p * static_cast<double>(lat_us.size() - 1))];
  };
  const serve::ServerStats st = server.stats();
  std::printf("served %llu requests in %llu fused batches "
              "(mean %.2f rows, max %llu)\n",
              static_cast<unsigned long long>(st.responses),
              static_cast<unsigned long long>(st.batches),
              st.batches ? static_cast<double>(st.batched_rows) /
                               static_cast<double>(st.batches)
                         : 0.0,
              static_cast<unsigned long long>(st.max_batch_rows));
  std::printf("latency: p50=%.0fus p99=%.0fus (%d non-ok)\n",
              pct(0.50), pct(0.99), not_ok);
  const serve::ServerHealth h = server.health();
  std::printf("health: accepted=%llu shed=%llu expired=%llu "
              "queue-wait p50=%lldus p99=%lldus degrade-events=%llu\n",
              static_cast<unsigned long long>(h.accepted),
              static_cast<unsigned long long>(h.shed),
              static_cast<unsigned long long>(h.expired),
              static_cast<long long>(h.wait_p50.count()),
              static_cast<long long>(h.wait_p99.count()),
              static_cast<unsigned long long>(h.degrade_events));
  std::remove(path);
  return 0;
}
