// Quickstart: the Logarithmic Posit data type in five minutes.
//
//   1. Define an LP configuration <n, es, rs, sf>.
//   2. Inspect its representable values and bit-level decoding.
//   3. Quantize data with it and measure the error.
//   4. See why the *adaptive* fields matter: match the format to the data
//      distribution and watch the error drop.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/accuracy_profile.h"
#include "core/lp_codec.h"
#include "core/lp_format.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace lp;

  // --- 1. A 6-bit LP with 1 exponent bit, regime capped at 3, no bias ---
  const LPConfig cfg{/*n=*/6, /*es=*/1, /*rs=*/3, /*sf=*/0.0};
  const LPFormat fmt(cfg);
  std::printf("format: %s\n", fmt.name().c_str());

  // --- 2. Bit-level view of one code ---
  const std::uint32_t code = 0b011010;  // sign 0, regime "11"+"0", tail "10"
  const LPFields f = decode_fields(code, cfg);
  std::printf("code 0b011010: k=%d ulfx=%.3f scale=%.3f value=%.4f\n", f.k,
              f.ulfx, f.scale, decode_value(code, cfg));

  // All representable magnitudes:
  const CodeTable table(cfg);
  std::printf("codes: %zu values, min_pos=%.5g max=%.5g\n",
              table.values().size(), table.min_positive(), table.max_value());

  // --- 3. Quantize a batch of Gaussian data ---
  Rng rng(42);
  std::vector<float> data(4096);
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.02));
  const double err_default = quantization_rmse(data, fmt);
  std::printf("\nGaussian(0, 0.02) with sf=0   : RMSE = %.6f\n", err_default);

  // --- 4. Adapt the scale factor to the data: center the tapered
  //        accuracy region on the data's typical magnitude ---
  const double center = -std::log2(mean_abs(data));
  LPConfig adapted = cfg;
  adapted.sf = center;
  const LPFormat fmt_adapted(adapted);
  const double err_adapted = quantization_rmse(data, fmt_adapted);
  std::printf("same data with sf=%-6.2f      : RMSE = %.6f  (%.1fx better)\n",
              adapted.sf, err_adapted, err_default / err_adapted);

  // Heavier tails?  Open the regime cap for more tapering.
  for (auto& x : data) x = static_cast<float>(rng.laplace(0.02));
  LPConfig tapered = adapted;
  tapered.rs = 5;
  tapered.sf = -std::log2(mean_abs(data));
  const LPFormat fmt_tapered(tapered);
  std::printf("Laplace tails, rs=3 vs rs=5   : RMSE = %.6f vs %.6f\n",
              quantization_rmse(data, fmt_adapted),
              quantization_rmse(data, fmt_tapered));

  // --- Accuracy profile (paper Fig. 1(b)): tapered, movable accuracy ---
  std::printf("\ndecimal accuracy vs magnitude (LP<6,1,3> sf=0):\n");
  for (const auto& pt : sample_profile(accuracy_profile(fmt), 1e-3, 1e3, 13)) {
    std::printf("  |x| = 2^%+5.1f : %4.2f digits  %s\n", pt.log2_value,
                pt.decimal_accuracy,
                std::string(static_cast<std::size_t>(pt.decimal_accuracy * 20),
                            '#')
                    .c_str());
  }
  return 0;
}
