// Table 4 — PE-type ablation on ResNet50: compute density, top-1 accuracy
// and energy efficiency for LPA-2/4/8 (mixed), LPA-8, LPA-2, a standard
// posit PE (fixed tapering), and AdaptivFloat-8.
#include <iostream>

#include "bench/common.h"
#include "bench/workloads.h"
#include "formats/adaptivfloat.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace lp;
  using namespace lp::bench;

  print_banner(std::cout, "Table 4 — PE-type ablation (ResNet50)");

  // Accuracy comes from the substrate models; density and efficiency run
  // on full-scale ImageNet ResNet50 dimensions (see bench_table3).
  WorkbenchOptions wopts;
  wopts.target_fp_accuracy = 0.7772;
  Workbench wb = make_workbench("resnet50", wopts);
  const auto workloads = resnet50_imagenet_workloads();
  const std::size_t hw_slots = workload_slot_count(workloads);
  const std::size_t slots = wb.model.num_slots();

  Table t({"PE-type", "Density(TOPS/mm2)", "Top-1(%)", "Eff.(GOPS/W)"});
  auto add = [&](const lpa::AcceleratorModel& accel,
                 const sim::PrecisionMap& pm, const std::string& name,
                 double top1) {
    const auto r = sim::simulate(accel, workloads, pm);
    t.add_row({name, Table::num(r.tops_per_mm2, 2), Table::num(top1, 2),
               Table::num(r.gops_per_w, 2)});
  };

  // LPA-2/4/8: accuracy from this repo's LPQ hardware preset; density and
  // efficiency at the paper's mixed allocation (~2.8 avg bits) so the
  // hardware ablation is comparable to Table 4 (see bench_table3).
  BitAllocation mixed_alloc;
  const auto lpq_row = run_lpq(wb, false, /*hardware_preset=*/true, &mixed_alloc);
  sim::PrecisionMap mixed_pm;
  mixed_pm.weight_bits = imagenet_allocation(hw_slots, ImageNetAlloc::kLpaMixed);
  mixed_pm.act_bits.assign(hw_slots, 8);
  for (std::size_t s = 0; s < hw_slots; ++s) {
    mixed_pm.act_bits[s] = mixed_pm.weight_bits[s] <= 2 ? 4 : 8;
  }
  add(lpa::make_lpa(), mixed_pm, "LPA-2/4/8", lpq_row.top1);

  // LPA-8 / LPA-2: uniform width, per-layer RMSE-optimal <es, rs, sf>.
  auto uniform_lp = [&](int n) {
    lpq::Candidate c;
    const lpq::SearchSpace sp;
    for (std::size_t s = 0; s < slots; ++s) {
      c.layers.push_back(lpq::rmse_optimal_config(
          wb.model.slot_list()[s]->weight.data(), n, sp));
    }
    return c;
  };
  lpq::LpqEngine probe_engine(wb.model, wb.dataset.calibration,
                              bench_lpq_params(false, true));
  const auto c8 = uniform_lp(8);
  const auto spec8 = probe_engine.make_spec(c8);
  add(lpa::make_lpa(), sim::PrecisionMap::uniform(hw_slots, 8, 8), "LPA-8",
      evaluate_spec(wb, spec8.spec));
  const auto c2 = uniform_lp(2);
  const auto spec2 = probe_engine.make_spec(c2);
  add(lpa::make_lpa(), sim::PrecisionMap::uniform(hw_slots, 2, 4), "LPA-2",
      evaluate_spec(wb, spec2.spec));

  // Posit-2/4/8: LPQ constrained to fixed tapering (rs = n-1) on the
  // larger linear-domain posit PE.
  {
    auto params = bench_lpq_params(false, /*hardware_preset=*/true);
    params.space.posit_like = true;
    lpq::LpqEngine engine(wb.model, wb.dataset.calibration, params);
    const auto result = engine.run();
    const auto spec = engine.make_spec(result.best);
    add(lpa::make_posit_pe(), mixed_pm, "Posit-2/4/8",
        evaluate_spec(wb, spec.spec));
  }

  // AdaptivFloat-8: uniform AF8 weights/acts on the AF PE.
  {
    const auto r_af = run_adaptivfloat(wb, "AF");
    // Reuse the AF stand-in but force uniform 8-bit for the Table 4 row.
    const auto act_maxes = wb.model.measure_act_maxes(wb.dataset.calibration);
    nn::QuantSpec spec;
    spec.resize(slots);
    std::vector<std::unique_ptr<NumberFormat>> storage;
    const auto slot_node = wb.model.slot_node_map();
    for (std::size_t s = 0; s < slots; ++s) {
      storage.push_back(
          std::make_unique<AdaptivFloatFormat>(AdaptivFloatFormat::calibrated(
              8, 4, wb.model.slot_list()[s]->weight.data())));
      spec.weight_fmt[s] = storage.back().get();
      const float mx = std::max(
          1e-6F, act_maxes[static_cast<std::size_t>(slot_node[s])]);
      const std::vector<float> probe_v{mx, -mx};
      storage.push_back(std::make_unique<AdaptivFloatFormat>(
          AdaptivFloatFormat::calibrated(8, 4, probe_v)));
      spec.act_fmt[s] = storage.back().get();
    }
    (void)r_af;
    add(lpa::make_adaptivfloat(), sim::PrecisionMap::uniform(hw_slots, 8, 8),
        "AdaptivFloat-8", evaluate_spec(wb, spec));
  }

  t.print(std::cout);

  std::cout << "\npaper reference:\n";
  Table p({"PE-type", "Density(TOPS/mm2)", "Top-1(%)", "Eff.(GOPS/W)"});
  p.add_row({"LPA-2/4/8", "16.84", "76.98", "212.17"});
  p.add_row({"LPA-8", "6.98", "77.70", "124.26"});
  p.add_row({"LPA-2", "23.79", "0.0", "438.96"});
  p.add_row({"Posit-2/4/8", "3.15", "73.65", "70.36"});
  p.add_row({"AdaptivFloat-8", "2.74", "76.13", "71.12"});
  p.print(std::cout);
  return 0;
}
