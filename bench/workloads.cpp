#include "bench/workloads.h"

#include <algorithm>
#include <string>

namespace lp::bench {
namespace {

struct Builder {
  std::vector<nn::LayerWorkload> list;
  int next_slot = 0;

  void gemm(const std::string& name, std::int64_t m, std::int64_t k,
            std::int64_t n, bool weighted = true) {
    nn::LayerWorkload wl;
    wl.name = name;
    wl.m = m;
    wl.k = k;
    wl.n = n;
    wl.weight_slot = weighted ? next_slot++ : -1;
    list.push_back(wl);
  }
};

}  // namespace

std::vector<nn::LayerWorkload> resnet50_imagenet_workloads() {
  Builder b;
  // Stem: 7x7/2 conv, 3->64, output 112x112.
  b.gemm("conv1", 64, 3 * 49, 112 * 112);

  struct Stage {
    int blocks;
    int mid;
    int out;
    int spatial_in;   // input H=W of the stage (after any previous stride)
    int spatial_out;  // output H=W
  };
  // After the stem's maxpool the grid is 56x56.
  const Stage stages[] = {{3, 64, 256, 56, 56},
                          {4, 128, 512, 56, 28},
                          {6, 256, 1024, 28, 14},
                          {3, 512, 2048, 14, 7}};
  int cin = 64;
  for (int s = 0; s < 4; ++s) {
    const auto& st = stages[s];
    for (int blk = 0; blk < st.blocks; ++blk) {
      const bool first = blk == 0;
      const int n_in = first ? st.spatial_in * st.spatial_in
                             : st.spatial_out * st.spatial_out;
      const int n_out = st.spatial_out * st.spatial_out;
      // Built by append: the chained operator+ form trips a GCC 12
      // -Wrestrict false positive (PR 105329) at -O2 under -Werror.
      std::string nm("s");
      nm += std::to_string(s);
      nm += ".b";
      nm += std::to_string(blk);
      b.gemm(nm + ".conv1", st.mid, cin, n_in);              // 1x1
      b.gemm(nm + ".conv2", st.mid, st.mid * 9, n_out);      // 3x3 (stride here)
      b.gemm(nm + ".conv3", st.out, st.mid, n_out);          // 1x1
      if (first) b.gemm(nm + ".down", st.out, cin, n_out);   // 1x1 shortcut
      cin = st.out;
    }
  }
  b.gemm("fc", 1000, 2048, 1);
  return b.list;
}

std::vector<nn::LayerWorkload> vit_b_imagenet_workloads() {
  Builder b;
  constexpr int kDim = 768;
  constexpr int kMlp = 3072;
  constexpr int kTokens = 197;  // 14x14 patches + CLS
  constexpr int kHeads = 12;
  constexpr int kHeadDim = kDim / kHeads;
  b.gemm("patch_embed", kDim, 3 * 16 * 16, 14 * 14);
  for (int blk = 0; blk < 12; ++blk) {
    const std::string nm = "blk" + std::to_string(blk);
    for (const char* proj : {".q", ".k", ".v"}) {
      b.gemm(nm + proj, kDim, kDim, kTokens);
    }
    b.gemm(nm + ".qk", kTokens, kHeadDim, kTokens * kHeads, /*weighted=*/false);
    b.gemm(nm + ".av", kTokens, kTokens, kHeadDim * kHeads, /*weighted=*/false);
    b.gemm(nm + ".o", kDim, kDim, kTokens);
    b.gemm(nm + ".mlp1", kMlp, kDim, kTokens);
    b.gemm(nm + ".mlp2", kDim, kMlp, kTokens);
  }
  b.gemm("head", 1000, kDim, 1);
  return b.list;
}

std::size_t workload_slot_count(const std::vector<nn::LayerWorkload>& wl) {
  int max_slot = -1;
  for (const auto& w : wl) max_slot = std::max(max_slot, w.weight_slot);
  return static_cast<std::size_t>(max_slot + 1);
}

std::vector<int> imagenet_allocation(std::size_t slots, ImageNetAlloc kind) {
  std::vector<int> bits(slots, 4);
  switch (kind) {
    case ImageNetAlloc::kLpaMixed:
      for (std::size_t i = 0; i < slots; ++i) {
        const double rank = static_cast<double>(i) / static_cast<double>(slots);
        bits[i] = rank < 0.1 ? 8 : (rank < 0.4 ? 4 : 2);
      }
      break;
    case ImageNetAlloc::kFourEight:
      for (std::size_t i = 0; i < slots / 5; ++i) bits[i] = 8;
      break;
    case ImageNetAlloc::kEightBit:
      bits.assign(slots, 8);
      break;
  }
  return bits;
}

}  // namespace lp::bench
