// Table 3 — accelerator comparison at 28 nm with identical 8x8 arrays and
// 512 kB buffers: component areas, ResNet50 throughput, compute density
// (TOPS/mm^2) and total area for LPA vs ANT vs BitFusion vs AdaptivFloat.
//
// Hardware metrics run on the *full-scale* ImageNet ResNet50 GEMM
// dimensions (bench/workloads.h) at the paper's per-architecture precision
// mixes: LPA executes the ~2.8-avg-bit allocation its LPQ finds on real
// models, ANT/BitFusion their 4/8 INT mixes, AdaptivFloat 8-bit.  The
// algorithmic side (what precision this repo's LPQ finds on the synthetic
// substrate, and at what accuracy) is reported separately below.
#include <iostream>

#include "bench/common.h"
#include "bench/workloads.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace lp;
  using namespace lp::bench;

  print_banner(std::cout, "Table 3 — accelerator area / throughput @28nm");

  const auto workloads = resnet50_imagenet_workloads();
  const std::size_t slots = workload_slot_count(workloads);

  sim::PrecisionMap lpa_pm;
  lpa_pm.weight_bits = imagenet_allocation(slots, ImageNetAlloc::kLpaMixed);
  lpa_pm.act_bits.assign(slots, 8);
  for (std::size_t s = 0; s < slots; ++s) {
    lpa_pm.act_bits[s] = lpa_pm.weight_bits[s] <= 2 ? 4 : 8;
  }
  sim::PrecisionMap ant_pm;
  ant_pm.weight_bits = imagenet_allocation(slots, ImageNetAlloc::kFourEight);
  ant_pm.act_bits.assign(slots, 8);
  const sim::PrecisionMap bf_pm = ant_pm;
  const auto af_pm = sim::PrecisionMap::uniform(slots, 8, 8);

  Table t({"Architecture", "Compute Area(um2)", "Throughput(GOPS)",
           "Density(TOPS/mm2)", "Total Area(mm2)"});
  double lpa_density = 0.0;
  double ant_density = 0.0;
  auto add = [&](const lpa::AcceleratorModel& accel,
                 const sim::PrecisionMap& pm) {
    const auto r = sim::simulate(accel, workloads, pm);
    if (accel.kind == lpa::AccelKind::kLPA) lpa_density = r.tops_per_mm2;
    if (accel.kind == lpa::AccelKind::kANT) ant_density = r.tops_per_mm2;
    t.add_row({r.accel_name, Table::num(accel.compute_area_um2(), 2),
               Table::num(r.gops, 1), Table::num(r.tops_per_mm2, 2),
               Table::num(accel.total_area_mm2(), 3)});
  };
  add(lpa::make_lpa(), lpa_pm);
  add(lpa::make_ant(), ant_pm);
  add(lpa::make_bitfusion(), bf_pm);
  add(lpa::make_adaptivfloat(), af_pm);
  t.print(std::cout);
  std::cout << "LPA / ANT density ratio: "
            << Table::num(lpa_density / ant_density, 2) << " (paper: 1.91)\n";

  std::cout << "\npaper reference (ResNet50, Synopsys DC + DnnWeaver):\n";
  Table p({"Architecture", "Compute Area(um2)", "Throughput(GOPS)",
           "Density(TOPS/mm2)", "Total Area(mm2)"});
  p.add_row({"LPA", "12078.72", "203.4", "16.84", "4.212"});
  p.add_row({"ANT", "5102.28", "44.95", "8.81", "4.205"});
  p.add_row({"BitFusion", "5093.75", "44.01", "8.64", "4.205"});
  p.add_row({"AdaptivFloat", "23357.14", "63.99", "2.74", "4.223"});
  p.print(std::cout);

  // Substrate-side algorithmic result: what this repo's LPQ hardware
  // preset finds on the synthetic-substrate ResNet50 and at what accuracy.
  WorkbenchOptions wopts;
  wopts.target_fp_accuracy = 0.7772;
  Workbench wb = make_workbench("resnet50", wopts);
  BitAllocation lpq_alloc;
  const auto lpq_row =
      run_lpq(wb, /*transformer=*/false, /*hardware_preset=*/true, &lpq_alloc);
  std::cout << "\nsubstrate LPQ(hw) on resnet50: " << lpq_row.wa << ", top-1 "
            << Table::num(lpq_row.top1, 2) << "% (FP "
            << Table::num(100 * wb.fp_accuracy, 2)
            << "%).  The synthetic substrate needs more weight bits than "
               "real ImageNet models\n(see EXPERIMENTS.md), which is why "
               "the hardware rows above use the paper's allocation.\n";
  return 0;
}
