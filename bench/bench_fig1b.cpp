// Fig. 1(b) — relative (decimal) accuracy vs magnitude for LP against
// AdaptivFloat and standard posit, demonstrating LP's distribution-aware
// properties: tapered accuracy whose peak the scale factor moves and whose
// shape the regime cap controls, versus AF's flat profile that dies
// outside its calibrated range.
#include <cmath>
#include <iostream>

#include "core/accuracy_profile.h"
#include "core/lp_format.h"
#include "formats/adaptivfloat.h"
#include "formats/posit.h"
#include "util/table.h"

int main() {
  using namespace lp;
  print_banner(std::cout, "Fig. 1(b) — relative accuracy vs magnitude");

  const LPFormat lp_centered(LPConfig{8, 1, 3, 0.0});
  const LPFormat lp_shifted(LPConfig{8, 1, 3, 6.0});   // peak moved to 2^-6
  const LPFormat lp_wide(LPConfig{8, 1, 7, 0.0});      // wide tapering
  const PositFormat posit(8, 1);
  const AdaptivFloatFormat af(8, 4, 7);

  struct Series {
    const char* name;
    const NumberFormat* fmt;
  };
  const Series series[] = {
      {"LP<8,1,3,sf=0>", &lp_centered}, {"LP<8,1,3,sf=6>", &lp_shifted},
      {"LP<8,1,7,sf=0>", &lp_wide},     {"Posit<8,1>", &posit},
      {"AdaptivFloat<8,e4>", &af},
  };

  Table t({"log2|x|", series[0].name, series[1].name, series[2].name,
           series[3].name, series[4].name});
  for (int l2 = -16; l2 <= 16; l2 += 2) {
    std::vector<std::string> row{Table::num(l2, 0)};
    for (const auto& s : series) {
      const double acc = decimal_accuracy_at(*s.fmt, std::exp2(l2));
      row.push_back(Table::num(acc, 2));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  // Programmatic shape checks mirroring the paper's claims.
  const double lp_at_center = decimal_accuracy_at(lp_centered, 1.0);
  const double lp_at_tail = decimal_accuracy_at(lp_centered, std::exp2(-12));
  const double lp_shift_peak = decimal_accuracy_at(lp_shifted, std::exp2(-6));
  const double af_in = decimal_accuracy_at(af, 1.0);
  const double af_out = decimal_accuracy_at(af, std::exp2(14));
  std::cout << "\nshape checks (paper Fig. 1(b)):\n"
            << "  tapered:   LP acc at 2^0 (" << Table::num(lp_at_center, 2)
            << ") > at 2^-12 (" << Table::num(lp_at_tail, 2) << ")  "
            << (lp_at_center > lp_at_tail ? "[OK]" : "[MISMATCH]") << '\n'
            << "  movable:   LP<sf=6> acc at 2^-6 ("
            << Table::num(lp_shift_peak, 2) << ") ~ LP<sf=0> at 2^0  "
            << (std::fabs(lp_shift_peak - lp_at_center) < 0.2 ? "[OK]"
                                                              : "[MISMATCH]")
            << '\n'
            << "  AF flat:   in-range acc " << Table::num(af_in, 2)
            << ", out-of-range " << Table::num(af_out, 2) << "  "
            << (af_in > 0.8 && af_out < 0.3 ? "[OK]" : "[MISMATCH]") << '\n';
  return 0;
}
