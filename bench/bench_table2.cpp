// Table 2 — PTQ accuracy on Vision Transformers (ViT-B, DeiT-S, Swin-T):
// baseline FP plus Evol-Q / FQ-ViT stand-ins and LPQ.  LPQ's search blocks
// are whole attention blocks (paper Section 6).
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

namespace {

struct PaperRow {
  const char* method;
  const char* wa;
  double top1;
};

void run_model(const std::string& name, double paper_baseline,
               const std::vector<PaperRow>& paper_rows) {
  using namespace lp;
  using namespace lp::bench;

  print_banner(std::cout, "Table 2 — " + name);
  WorkbenchOptions wopts;
  wopts.input_size = 16;  // 4x4 patches -> compact token grids
  wopts.n_eval = 192;
  wopts.target_fp_accuracy = paper_baseline / 100.0;
  Workbench wb = make_workbench(name, wopts);

  Table measured({"Method", "W/A", "Size(MB)", "Top-1(%)", "vs FP"});
  auto add = [&](const MethodResult& r) {
    auto row = to_row(r);
    row.push_back(Table::num(r.top1 - 100.0 * wb.fp_accuracy, 2));
    measured.add_row(std::move(row));
  };

  MethodResult base;
  base.method = "Baseline (FP32)";
  base.wa = "32/32";
  base.size_mb = static_cast<double>(wb.model.weight_param_count()) * 4 / 1e6;
  base.top1 = 100.0 * wb.fp_accuracy;
  add(base);
  add(run_evolq_style(wb, "Evol-Q*"));
  add(run_uniform_int(wb, "FQ-ViT*", 4, 8));
  add(run_lpq(wb, /*transformer=*/true, /*hardware_preset=*/false));
  measured.print(std::cout);

  Table paper({"Method (paper)", "W/A", "Top-1(%)"});
  for (const auto& pr : paper_rows) {
    paper.add_row({pr.method, pr.wa, lp::Table::num(pr.top1, 2)});
  }
  std::cout << "\npaper reference (ImageNet, full-size models):\n";
  paper.print(std::cout);
}

}  // namespace

int main() {
  run_model("vit_b", 84.53,
            {{"Baseline", "32/32", 84.53},
             {"Evol-Q", "4/8", 79.50},
             {"FQ-ViT", "4/8", 78.73},
             {"LPQ (ours)", "MP4.7/MP6.3", 80.14}});
  run_model("deit_s", 79.80,
            {{"Baseline", "32/32", 79.80},
             {"Evol-Q", "4/8", 77.06},
             {"FQ-ViT", "4/8", 76.93},
             {"LPQ (ours)", "MP3.9/MP5.5", 78.01}});
  run_model("swin_t", 81.20,
            {{"Baseline", "32/32", 81.20},
             {"Evol-Q", "4/8", 80.43},
             {"FQ-ViT", "4/8", 80.73},
             {"LPQ (ours)", "MP4.5/MP6.2", 80.98}});
  return 0;
}
