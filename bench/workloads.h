// Full-scale (ImageNet) GEMM workload generators for the hardware benches.
//
// The accuracy experiments run on width-scaled models, but accelerator
// behaviour (packing utilization, tiling) depends on the real layer
// dimensions: a 2-bit LPA PE column holds 4 weights, which only pays off
// when output channels >> array width.  These generators emit the exact
// GEMM dimensions of ResNet50 (224x224) and ViT-B/16 (224x224, 197
// tokens), with sequential weight-slot ids.
#pragma once

#include <vector>

#include "nn/node.h"

namespace lp::bench {

/// ResNet50 v1.5 at 224x224: 54 weighted GEMMs (53 convs + fc).
[[nodiscard]] std::vector<nn::LayerWorkload> resnet50_imagenet_workloads();

/// ViT-B/16 at 224x224: patch embed + 12 blocks (attention + MLP) + head.
/// Attention score/value matmuls carry weight_slot = -1.
[[nodiscard]] std::vector<nn::LayerWorkload> vit_b_imagenet_workloads();

/// Number of weight slots referenced by a workload list.
[[nodiscard]] std::size_t workload_slot_count(
    const std::vector<nn::LayerWorkload>& wl);

/// Positional paper-style bit allocation (early layers are the sensitive
/// ones): kLpaMixed = first 10% at 8b, next 30% at 4b, rest 2b (~2.8 avg);
/// kAnt/kIntMixed = first 20% at 8b, rest 4b; kEightBit = all 8b.
enum class ImageNetAlloc { kLpaMixed, kFourEight, kEightBit };
[[nodiscard]] std::vector<int> imagenet_allocation(std::size_t slots,
                                                   ImageNetAlloc kind);

}  // namespace lp::bench
