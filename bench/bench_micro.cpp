// Microbenchmarks (google-benchmark): LP codec throughput, code-table
// construction, the bit-level PE datapath, the LPA functional GEMM, and a
// full quantized forward pass.  These quantify the emulation costs that
// gate how large an LPQ search budget is practical.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/lp_codec.h"
#include "core/lp_format.h"
#include "core/quant_index.h"
#include "kernels/kernels.h"
#include "lpa/datapath.h"
#include "lpa/systolic.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace lp;

void BM_DecodeValue(benchmark::State& state) {
  const LPConfig cfg{8, 2, 5, 0.5};
  std::uint32_t code = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_value(code, cfg));
    code = (code + 37) & 0xFF;
  }
}
BENCHMARK(BM_DecodeValue);

void BM_CodeTableBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LPConfig cfg{n, n >= 4 ? 1 : 0, std::max(1, n / 2), 0.25};
  for (auto _ : state) {
    CodeTable table(cfg);
    benchmark::DoNotOptimize(table.values().size());
  }
}
BENCHMARK(BM_CodeTableBuild)->Arg(4)->Arg(8)->Arg(12);

void BM_QuantizeTensor(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto _ : state) {
    std::vector<float> copy = data;
    benchmark::DoNotOptimize(quantize_span(copy, fmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeTensor)->Arg(1024)->Arg(65536);

// Scalar vs. batched LP quantization on the same buffer (quantization is
// idempotent, so the work per element is identical every iteration; no
// copy noise in the ratio).  The scalar loop is the seed's per-element
// path: one virtual call plus a binary search over the double value table
// per element.
void BM_QuantizeScalarPath(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    double se = 0.0;
    for (float& x : data) {
      const double q = nf.quantize(x);
      const double d = static_cast<double>(x) - q;
      se += d * d;
      x = static_cast<float>(q);
    }
    benchmark::DoNotOptimize(se);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeScalarPath)->Arg(1 << 20);

void BM_QuantizeBatchPath(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.quantize_batch(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeBatchPath)->Arg(1 << 20);

// --- thread-pool benches -------------------------------------------------
// Serial baselines force the default pool to one thread; the Pool variants
// use automatic sizing (LP_THREADS / hardware_concurrency).  The outputs
// are bit-identical between the two — only the wall clock moves.

/// ResNet-ish GEMM stack: conv-as-GEMM shapes from a CIFAR ResNet18 trunk
/// (m = Cout, k = Cin*3*3, n = Hout*Wout).
void run_resnet_gemm_stack(const std::vector<Tensor>& as,
                           const std::vector<Tensor>& bs) {
  for (std::size_t i = 0; i < as.size(); ++i) {
    benchmark::DoNotOptimize(matmul(as[i], bs[i]).numel());
  }
}

struct GemmStack {
  std::vector<Tensor> as, bs;
  GemmStack() {
    Rng rng(4);
    for (const auto& [m, k, n] :
         {std::array<std::int64_t, 3>{64, 576, 784},
          std::array<std::int64_t, 3>{128, 1152, 196},
          std::array<std::int64_t, 3>{256, 2304, 49}}) {
      Tensor a({m, k});
      Tensor b({k, n});
      for (float& v : a.data()) v = static_cast<float>(rng.gaussian(0.0, 0.1));
      for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
      as.push_back(std::move(a));
      bs.push_back(std::move(b));
    }
  }
  [[nodiscard]] std::int64_t flops() const {
    std::int64_t f = 0;
    for (std::size_t i = 0; i < as.size(); ++i) {
      f += 2 * as[i].dim(0) * as[i].dim(1) * bs[i].dim(1);
    }
    return f;
  }
};

void BM_GemmSerial(benchmark::State& state) {
  const GemmStack stack;
  set_default_pool_threads(1);
  for (auto _ : state) run_resnet_gemm_stack(stack.as, stack.bs);
  state.SetItemsProcessed(state.iterations() * stack.flops());
  set_default_pool_threads(0);
}
BENCHMARK(BM_GemmSerial)->Unit(benchmark::kMillisecond);

void BM_GemmPool(benchmark::State& state) {
  const GemmStack stack;
  set_default_pool_threads(0);
  for (auto _ : state) run_resnet_gemm_stack(stack.as, stack.bs);
  state.SetItemsProcessed(state.iterations() * stack.flops());
}
BENCHMARK(BM_GemmPool)->Unit(benchmark::kMillisecond);

/// Batched LP quantization of a 1M-element tensor; Arg is the pool-size
/// override (1 = serial baseline, 0 = automatic).
void BM_QuantizeBatchPool(benchmark::State& state) {
  set_default_pool_threads(static_cast<int>(state.range(0)));
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(1U << 20);
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.quantize_batch(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
  set_default_pool_threads(0);
}
BENCHMARK(BM_QuantizeBatchPool)->Arg(1)->Arg(0);

/// Full LPQ search on the tiny CNN; Arg is the pool size for BOTH the
/// candidate loop (LpqParams::threads) and the nested tensor ops (default
/// pool), so Arg(1) is a genuinely serial baseline and Arg(0) is fully
/// pooled.  Candidate fitness evaluation — a quantized forward per
/// candidate — dominates, so this measures the pool-driven evaluation path
/// end to end.
void BM_LpqEvalPool(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  set_default_pool_threads(threads);
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  Tensor calib({2, 3, 16, 16});
  Rng rng(6);
  for (float& v : calib.data()) v = static_cast<float>(rng.gaussian());
  lpq::LpqParams params;
  params.population = 8;
  params.passes = 1;
  params.cycles = 1;
  params.block_size = 4;
  params.diversity_children = 3;
  params.threads = threads;
  for (auto _ : state) {
    lpq::LpqEngine engine(m, calib, params);
    benchmark::DoNotOptimize(engine.run().best.fitness);
  }
  state.SetItemsProcessed(state.iterations() * params.population);
  set_default_pool_threads(0);
}
BENCHMARK(BM_LpqEvalPool)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- kernel-dispatch benches ---------------------------------------------
// Direct kernel-table calls, no thread pool: the scalar reference (naive
// row loop) against the blocked/register-tiled SIMD variants.  Outputs are
// bit-identical across tables (test_kernels pins it); only the wall clock
// moves.  The AVX2 cases skip on hosts without the feature.

/// Mid-stack ResNet conv-as-GEMM shape (m = Cout, k = Cin*3*3, n = Ho*Wo).
void run_gemm_kernel_bench(benchmark::State& state,
                           const kernels::KernelTable& kt) {
  constexpr std::int64_t m = 128, k = 1152, n = 196;
  Rng rng(4);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto& v : b) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    kt.gemm_rows(a.data(), b.data(), nullptr, c.data(), 0, m, k, n);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}

void BM_GemmKernelScalar(benchmark::State& state) {
  run_gemm_kernel_bench(state, kernels::scalar_kernels());
}
BENCHMARK(BM_GemmKernelScalar)->Unit(benchmark::kMillisecond);

void BM_GemmKernelAvx2(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx2_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  run_gemm_kernel_bench(state, *kt);
}
BENCHMARK(BM_GemmKernelAvx2)->Unit(benchmark::kMillisecond);

/// Quantize-kernel A/B on one 1M-element buffer (quantization is
/// idempotent, so work per iteration is stable after the first pass).
void run_quantize_kernel_bench(benchmark::State& state,
                               const kernels::KernelTable& kt) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  const QuantIndex index(fmt.all_values());
  const kernels::QuantIndexView view = index.view();
  Rng rng(1);
  std::vector<float> data(1U << 20);
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.quantize_chunk(view, data.data(), data.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}

void BM_QuantizeKernelScalar(benchmark::State& state) {
  run_quantize_kernel_bench(state, kernels::scalar_kernels());
}
BENCHMARK(BM_QuantizeKernelScalar);

void BM_QuantizeKernelAvx2(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx2_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  run_quantize_kernel_bench(state, *kt);
}
BENCHMARK(BM_QuantizeKernelAvx2);

void BM_PeMacDatapath(benchmark::State& state) {
  const LPConfig wcfg{4, 1, 2, 2.0};
  const LPConfig acfg{8, 2, 2, 0.0};
  const lpa::DecoderConfig wdc = lpa::DecoderConfig::from(wcfg);
  const lpa::DecoderConfig adc = lpa::DecoderConfig::from(acfg);
  const CodeTable wtab(wcfg), atab(acfg);
  const auto w = lpa::decode_lane(wtab.quantize_code(0.31), wdc);
  const auto a = lpa::decode_lane(atab.quantize_code(-1.7), adc);
  lpa::PartialSum psum;
  for (auto _ : state) {
    lpa::accumulate(psum, lpa::multiply(w, a));
    benchmark::DoNotOptimize(psum.mantissa);
  }
}
BENCHMARK(BM_PeMacDatapath);

void BM_LpaGemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  Tensor w({n, n}), x({n, n});
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const LPConfig wcfg{4, 1, 2, 3.0};
  const LPConfig acfg{8, 2, 2, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpa::lpa_gemm(w, x, wcfg, acfg));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_LpaGemm)->Arg(16)->Arg(32);

void BM_QuantizedForward(benchmark::State& state) {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  nn::QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat fmt(LPConfig{4, 1, 2, 4.0});
  for (auto& f : spec.weight_fmt) f = &fmt;
  Tensor x({4, 3, 16, 16});
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.forward_quantized(x, spec).logits.numel());
  }
}
BENCHMARK(BM_QuantizedForward);

}  // namespace

BENCHMARK_MAIN();
