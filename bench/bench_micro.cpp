// Microbenchmarks (google-benchmark): LP codec throughput, code-table
// construction, the bit-level PE datapath, the LPA functional GEMM, and a
// full quantized forward pass.  These quantify the emulation costs that
// gate how large an LPQ search budget is practical.
#include <benchmark/benchmark.h>

#include "core/lp_codec.h"
#include "core/lp_format.h"
#include "lpa/datapath.h"
#include "lpa/systolic.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace {

using namespace lp;

void BM_DecodeValue(benchmark::State& state) {
  const LPConfig cfg{8, 2, 5, 0.5};
  std::uint32_t code = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_value(code, cfg));
    code = (code + 37) & 0xFF;
  }
}
BENCHMARK(BM_DecodeValue);

void BM_CodeTableBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LPConfig cfg{n, n >= 4 ? 1 : 0, std::max(1, n / 2), 0.25};
  for (auto _ : state) {
    CodeTable table(cfg);
    benchmark::DoNotOptimize(table.values().size());
  }
}
BENCHMARK(BM_CodeTableBuild)->Arg(4)->Arg(8)->Arg(12);

void BM_QuantizeTensor(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto _ : state) {
    std::vector<float> copy = data;
    benchmark::DoNotOptimize(quantize_span(copy, fmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeTensor)->Arg(1024)->Arg(65536);

// Scalar vs. batched LP quantization on the same buffer (quantization is
// idempotent, so the work per element is identical every iteration; no
// copy noise in the ratio).  The scalar loop is the seed's per-element
// path: one virtual call plus a binary search over the double value table
// per element.
void BM_QuantizeScalarPath(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    double se = 0.0;
    for (float& x : data) {
      const double q = nf.quantize(x);
      const double d = static_cast<double>(x) - q;
      se += d * d;
      x = static_cast<float>(q);
    }
    benchmark::DoNotOptimize(se);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeScalarPath)->Arg(1 << 20);

void BM_QuantizeBatchPath(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.quantize_batch(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeBatchPath)->Arg(1 << 20);

void BM_PeMacDatapath(benchmark::State& state) {
  const LPConfig wcfg{4, 1, 2, 2.0};
  const LPConfig acfg{8, 2, 2, 0.0};
  const lpa::DecoderConfig wdc = lpa::DecoderConfig::from(wcfg);
  const lpa::DecoderConfig adc = lpa::DecoderConfig::from(acfg);
  const CodeTable wtab(wcfg), atab(acfg);
  const auto w = lpa::decode_lane(wtab.quantize_code(0.31), wdc);
  const auto a = lpa::decode_lane(atab.quantize_code(-1.7), adc);
  lpa::PartialSum psum;
  for (auto _ : state) {
    lpa::accumulate(psum, lpa::multiply(w, a));
    benchmark::DoNotOptimize(psum.mantissa);
  }
}
BENCHMARK(BM_PeMacDatapath);

void BM_LpaGemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  Tensor w({n, n}), x({n, n});
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const LPConfig wcfg{4, 1, 2, 3.0};
  const LPConfig acfg{8, 2, 2, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpa::lpa_gemm(w, x, wcfg, acfg));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_LpaGemm)->Arg(16)->Arg(32);

void BM_QuantizedForward(benchmark::State& state) {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  nn::QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat fmt(LPConfig{4, 1, 2, 4.0});
  for (auto& f : spec.weight_fmt) f = &fmt;
  Tensor x({4, 3, 16, 16});
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.forward_quantized(x, spec).logits.numel());
  }
}
BENCHMARK(BM_QuantizedForward);

}  // namespace

BENCHMARK_MAIN();
